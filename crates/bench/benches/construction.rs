//! End-to-end construction bench plus the Theorem-1 kernel comparison.
//!
//! Two groups:
//!
//! * `construction`: wall time of the end-to-end build at
//!   `n ∈ {200, 500, 1000}`, `k ∈ {2, 3}`, along a threads axis — the
//!   sequential oracle (`threads = 1`) vs the host's full parallelism — the
//!   repo's headline perf trajectory (the `perf_baseline` harness bin
//!   records the same numbers, plus the per-thread work accounting, into
//!   `BENCH_construction.json`; the two axes produce bit-identical schemes,
//!   so the gap is pure construction wall time).
//! * `theorem1_kernel`: the batched frontier/CSR `multi_source_hop_bounded`
//!   against the retained naive reference on the acceptance workload
//!   (1000 vertices, |V'| = 32, B = 16); the batched kernel must stay ≥ 5×
//!   faster.
//! * `clusters`: the batched restricted multi-source cluster growing
//!   (`grow_exact_clusters_batched_with_pivots`) against the retained
//!   per-centre restricted Dijkstra oracle, whole exact family at n = 1000,
//!   k = 2. The recorded bar (BENCH_construction.json): the spanning top
//!   level must stay ≥ 3× faster batched; whole-family growth is tracked
//!   alongside (currently ~parity — level-0 clusters average ~30 members at
//!   degree 8, where the per-centre heap search is already cheap).
//! * `assemble`: `RoutingScheme::assemble` over a prebuilt exact cluster
//!   family at `n ∈ {500, 1000, 10000}`, `k ∈ {2, 3}` — the Section-4
//!   tables/labels assembly the compact-forest membership CSR rewrote; the
//!   recorded bar (BENCH_construction.json) is ≥ 2× vs the pre-forest
//!   assembly at n = 1000, k = 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use en_congest_algos::theorem1::{multi_source_hop_bounded, multi_source_hop_bounded_reference};
use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_graph::{BuildOptions, CsrGraph};
use en_routing::construction::{build_routing_scheme_with, ConstructionConfig};
use en_routing::exact::{
    exact_cluster_family, exact_pivots_csr, grow_exact_cluster_csr,
    grow_exact_clusters_batched_with_pivots, membership_thresholds,
};
use en_routing::scheme::RoutingScheme;
use en_routing::{Hierarchy, SchemeParams};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    for n in [200usize, 500, 1000] {
        let g = erdos_renyi_connected(
            &GeneratorConfig::new(n, 42).with_weights(1, 100),
            8.0 / n as f64,
        );
        for k in [2usize, 3] {
            for (axis, threads) in [("t1", 1usize), ("tmax", host_cpus)] {
                group.bench_with_input(
                    BenchmarkId::new(
                        "build_routing_scheme",
                        format!("n{n}_k{k}_{axis}x{threads}"),
                    ),
                    &(k, threads),
                    |b, &(k, threads)| {
                        b.iter(|| {
                            build_routing_scheme_with(
                                &g,
                                &ConstructionConfig::new(k, 42),
                                &BuildOptions::new(threads),
                            )
                            .unwrap()
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_theorem1_kernel(c: &mut Criterion) {
    let n = 1000;
    let g = erdos_renyi_connected(
        &GeneratorConfig::new(n, 7).with_weights(1, 100),
        8.0 / n as f64,
    );
    let sources: Vec<usize> = (0..32).map(|i| i * 31 % n).collect();
    let mut group = c.benchmark_group("theorem1_kernel");
    group.sample_size(20);
    group.bench_function("batched_n1000_s32_b16", |b| {
        b.iter(|| multi_source_hop_bounded(&g, &sources, 16, 0.25, 10))
    });
    group.bench_function("naive_reference_n1000_s32_b16", |b| {
        b.iter(|| multi_source_hop_bounded_reference(&g, &sources, 16))
    });
    group.finish();
}

fn bench_clusters_kernel(c: &mut Criterion) {
    let n = 1000;
    let g = erdos_renyi_connected(
        &GeneratorConfig::new(n, 7).with_weights(1, 100),
        8.0 / n as f64,
    );
    let params = SchemeParams::new(2, n, 42);
    let hierarchy = Hierarchy::sample(&params);
    let csr = CsrGraph::from_graph(&g);
    let pivots = exact_pivots_csr(&csr, &hierarchy);
    let per_level: Vec<(usize, Vec<usize>, Vec<u64>)> = (0..hierarchy.k())
        .map(|i| {
            (
                i,
                hierarchy.centers_at(i),
                membership_thresholds(&pivots, i),
            )
        })
        .collect();
    let mut group = c.benchmark_group("clusters");
    group.sample_size(10);
    group.bench_function("batched_family_n1000_k2", |b| {
        b.iter(|| {
            per_level
                .iter()
                .map(|(i, centers, threshold)| {
                    grow_exact_clusters_batched_with_pivots(&csr, centers, *i, threshold, &pivots)
                        .num_clusters()
                })
                .sum::<usize>()
        })
    });
    group.bench_function("per_centre_oracle_n1000_k2", |b| {
        b.iter(|| {
            per_level
                .iter()
                .map(|(i, centers, threshold)| {
                    centers
                        .iter()
                        .map(|&c| grow_exact_cluster_csr(&csr, c, *i, threshold).size())
                        .sum::<usize>()
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_assemble(c: &mut Criterion) {
    let mut group = c.benchmark_group("assemble");
    group.sample_size(10);
    for n in [500usize, 1000, 10000] {
        let g = erdos_renyi_connected(
            &GeneratorConfig::new(n, 42).with_weights(1, 100),
            8.0 / n as f64,
        );
        for k in [2usize, 3] {
            let params = SchemeParams::new(k, n, 42);
            let hierarchy = Hierarchy::sample(&params);
            let family = exact_cluster_family(&g, &hierarchy);
            group.bench_with_input(
                BenchmarkId::new("assemble", format!("n{n}_k{k}")),
                &family,
                |b, family| b.iter(|| RoutingScheme::assemble(family, 42)),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_construction,
    bench_theorem1_kernel,
    bench_clusters_kernel,
    bench_assemble
);
criterion_main!(benches);
