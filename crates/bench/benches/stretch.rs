//! Figure A bench: per-packet routing cost (find-tree + hop-by-hop forwarding)
//! as `k` grows, plus the stretch measurement pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use en_bench::Workload;
use en_graph::dijkstra::dijkstra;
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_routing::stretch::measure_stretch_sampled;

fn bench_routing_queries(c: &mut Criterion) {
    let n = 128;
    let g = Workload::ErdosRenyi.generate(n, 3);
    let mut group = c.benchmark_group("route_one_packet");
    for k in [2usize, 4] {
        let built = build_routing_scheme(&g, &ConstructionConfig::new(k, 3)).unwrap();
        let exact = dijkstra(&g, 0).dist[n - 1];
        group.bench_with_input(BenchmarkId::new("route", k), &k, |b, _| {
            b.iter(|| built.scheme.route_with_exact(&g, 0, n - 1, exact).unwrap())
        });
    }
    group.finish();
}

fn bench_stretch_measurement(c: &mut Criterion) {
    let n = 128;
    let g = Workload::Geometric.generate(n, 5);
    let built = build_routing_scheme(&g, &ConstructionConfig::new(3, 5)).unwrap();
    let mut group = c.benchmark_group("stretch_measurement");
    group.sample_size(10);
    group.bench_function("sampled_200_pairs", |b| {
        b.iter(|| measure_stretch_sampled(&g, &built.scheme, 200, 9))
    });
    group.finish();
}

criterion_group!(benches, bench_routing_queries, bench_stretch_measurement);
criterion_main!(benches);
