//! Figure F bench: hopset construction and verification cost as the trade-off
//! parameter `ρ` varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use en_bench::Workload;
use en_hopset::verify::verify_hopset;
use en_hopset::{build_hopset, HopsetConfig};

fn bench_hopset(c: &mut Criterion) {
    let g = Workload::Geometric.generate(128, 17);
    let mut group = c.benchmark_group("hopset");
    group.sample_size(10);
    for rho in [0.25f64, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("build", format!("rho{rho}")),
            &rho,
            |b, &rho| b.iter(|| build_hopset(&g, &HopsetConfig::new(rho, 0.1, 17))),
        );
    }
    let hopset = build_hopset(&g, &HopsetConfig::new(0.5, 0.1, 17));
    group.bench_function("verify_definition_1", |b| {
        b.iter(|| verify_hopset(&g, &hopset))
    });
    group.finish();
}

criterion_group!(benches, bench_hopset);
criterion_main!(benches);
