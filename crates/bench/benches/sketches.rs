//! Figure D bench: sketch construction and the `O(k)`-time `Dist` query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use en_bench::Workload;
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_routing::distance_estimation::DistanceEstimation;

fn bench_sketches(c: &mut Criterion) {
    let n = 128;
    let g = Workload::ErdosRenyi.generate(n, 13);
    let mut group = c.benchmark_group("distance_estimation");
    for k in [2usize, 4] {
        let built = build_routing_scheme(&g, &ConstructionConfig::new(k, 13)).unwrap();
        group.bench_with_input(BenchmarkId::new("build_sketches", k), &k, |b, _| {
            b.iter(|| DistanceEstimation::build(&built.family))
        });
        group.bench_with_input(BenchmarkId::new("query", k), &k, |b, _| {
            b.iter(|| built.sketches.query(3, n - 2).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sketches);
criterion_main!(benches);
