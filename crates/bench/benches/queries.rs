//! Serving-path benches for the `en_wire` subsystem.
//!
//! Groups:
//!
//! * `snapshot`: serializing a built scheme and the zero-copy
//!   `FlatScheme::from_bytes` load+validate, at n = 1000, k ∈ {2, 3}.
//! * `queries`: batched `route` throughput off the flat columns — the
//!   serving hot path (`find_tree` + hop-by-hop forwarding, no Dijkstra) —
//!   single-threaded and sharded over scoped threads, per workload shape
//!   (uniform / Zipf-hotspot / near-far). The `perf_baseline` harness bin
//!   records the same numbers (plus n = 10000) into `BENCH_queries.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_wire::{generate_pairs, FlatScheme, PairWorkload, QueryEngine};

fn bench_snapshot(c: &mut Criterion) {
    let n = 1000;
    let g = erdos_renyi_connected(
        &GeneratorConfig::new(n, 42).with_weights(1, 100),
        8.0 / n as f64,
    );
    let mut group = c.benchmark_group("snapshot");
    group.sample_size(10);
    for k in [2usize, 3] {
        let built = build_routing_scheme(&g, &ConstructionConfig::new(k, 42)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("serialize", format!("n{n}_k{k}")),
            &built,
            |b, built| b.iter(|| en_wire::serialize(&built.scheme)),
        );
        let bytes = en_wire::serialize(&built.scheme);
        group.bench_with_input(
            BenchmarkId::new("load_zero_copy", format!("n{n}_k{k}")),
            &bytes,
            |b, bytes| b.iter(|| FlatScheme::from_bytes(bytes).expect("valid snapshot")),
        );
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let n = 1000;
    let g = erdos_renyi_connected(
        &GeneratorConfig::new(n, 42).with_weights(1, 100),
        8.0 / n as f64,
    );
    let built = build_routing_scheme(&g, &ConstructionConfig::new(2, 42)).unwrap();
    let bytes = en_wire::serialize(&built.scheme);
    let flat = FlatScheme::from_bytes(&bytes).expect("valid snapshot");
    let engine = QueryEngine::new(flat, &g).expect("graph matches");
    let workloads = [
        PairWorkload::Uniform,
        PairWorkload::ZipfHotspot { exponent: 1.1 },
        PairWorkload::NearFar {
            near_fraction: 0.5,
            walk_hops: 2,
        },
    ];
    let mut group = c.benchmark_group("queries");
    group.sample_size(10);
    for w in &workloads {
        let pairs = generate_pairs(&g, w, 10_000, 7);
        for threads in [1usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("route_batch_{}", w.name()),
                    format!("n{n}_k2_t{threads}"),
                ),
                &pairs,
                |b, pairs| b.iter(|| engine.route_batch(pairs, None, threads)),
            );
        }
    }
    // The in-memory scheme on the same batch, as the serving yardstick.
    let pairs = generate_pairs(&g, &PairWorkload::Uniform, 10_000, 7);
    group.bench_with_input(
        BenchmarkId::new("route_batch_in_memory", format!("n{n}_k2_t1")),
        &pairs,
        |b, pairs| {
            b.iter(|| {
                pairs
                    .iter()
                    .map(|&(u, v)| {
                        built
                            .scheme
                            .route_with_exact(&g, u, v, 0)
                            .expect("delivery succeeds")
                            .length
                    })
                    .sum::<u64>()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_snapshot, bench_queries);
criterion_main!(benches);
