//! Criterion bench behind Table 1: wall-clock cost of building each scheme on
//! the same workload (complements the round counts printed by the `table1`
//! harness binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use en_bench::Workload;
use en_routing::baselines::landmark::build_landmark_baseline;
use en_routing::baselines::tz::build_tz_baseline;
use en_routing::construction::{build_routing_scheme, ConstructionConfig};

fn bench_table1(c: &mut Criterion) {
    let n = 128;
    let g = Workload::ErdosRenyi.generate(n, 1);
    let mut group = c.benchmark_group("table1_construction");
    group.sample_size(10);
    for k in [2usize, 3] {
        group.bench_with_input(BenchmarkId::new("this_paper", k), &k, |b, &k| {
            b.iter(|| build_routing_scheme(&g, &ConstructionConfig::new(k, 1)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("tz01", k), &k, |b, &k| {
            b.iter(|| build_tz_baseline(&g, k, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lp13_landmark", k), &k, |b, &k| {
            b.iter(|| build_landmark_baseline(&g, k, 1, 8).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
