//! Figure B bench: cost of assembling tables/labels from a cluster family, and
//! of measuring their sizes, as `k` varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use en_bench::Workload;
use en_routing::exact::exact_cluster_family;
use en_routing::hierarchy::Hierarchy;
use en_routing::params::SchemeParams;
use en_routing::scheme::RoutingScheme;

fn bench_assembly(c: &mut Criterion) {
    let n = 128;
    let g = Workload::ErdosRenyi.generate(n, 7);
    let mut group = c.benchmark_group("scheme_assembly");
    group.sample_size(10);
    for k in [2usize, 4] {
        let params = SchemeParams::new(k, n, 7);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        group.bench_with_input(BenchmarkId::new("assemble", k), &k, |b, _| {
            b.iter(|| RoutingScheme::assemble(&family, 7))
        });
        let scheme = RoutingScheme::assemble(&family, 7);
        group.bench_with_input(BenchmarkId::new("measure_table_words", k), &k, |b, _| {
            b.iter(|| (scheme.max_table_words(), scheme.max_label_words()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assembly);
criterion_main!(benches);
