//! Figure E bench: tree-routing construction and per-hop forwarding cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use en_graph::dijkstra::dijkstra;
use en_graph::generators::{random_tree, GeneratorConfig};
use en_graph::tree::RootedTree;
use en_tree_routing::{TreeRoutingConfig, TreeRoutingScheme};

fn bench_tree_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_routing");
    for n in [256usize, 1024] {
        let g = random_tree(&GeneratorConfig::new(n, 3));
        let tree = RootedTree::from_shortest_paths(&g, &dijkstra(&g, 0));
        group.bench_with_input(BenchmarkId::new("build_two_level", n), &n, |b, _| {
            b.iter(|| TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(5)))
        });
        group.bench_with_input(BenchmarkId::new("build_single_level", n), &n, |b, _| {
            b.iter(|| TreeRoutingScheme::build(&tree, &TreeRoutingConfig::single_level()))
        });
        let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(5));
        group.bench_with_input(BenchmarkId::new("route", n), &n, |b, _| {
            b.iter(|| scheme.route(1, n - 1).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_routing);
criterion_main!(benches);
