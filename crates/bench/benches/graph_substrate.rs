//! Substrate bench: the graph primitives every layer sits on (generation,
//! Dijkstra, hop-bounded Bellman–Ford, BFS-tree construction on the CONGEST
//! simulator, Lemma 1 broadcast).

use criterion::{criterion_group, criterion_main, Criterion};

use en_congest::bfs_tree::build_bfs_tree;
use en_congest::broadcast::pipelined_broadcast;
use en_graph::bellman_ford::hop_bounded_distances;
use en_graph::dijkstra::dijkstra;
use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

fn bench_substrate(c: &mut Criterion) {
    let n = 512;
    let cfg = GeneratorConfig::new(n, 19).with_weights(1, 100);
    let g = erdos_renyi_connected(&cfg, 8.0 / n as f64);
    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);
    group.bench_function("generate_erdos_renyi_512", |b| {
        b.iter(|| erdos_renyi_connected(&cfg, 8.0 / n as f64))
    });
    group.bench_function("dijkstra_512", |b| b.iter(|| dijkstra(&g, 0)));
    group.bench_function("hop_bounded_bf_512_b16", |b| {
        b.iter(|| hop_bounded_distances(&g, 0, 16))
    });
    group.bench_function("congest_bfs_tree_512", |b| b.iter(|| build_bfs_tree(&g, 0)));
    let msgs: Vec<u64> = (0..32).collect();
    group.bench_function("lemma1_broadcast_32_msgs", |b| {
        b.iter(|| pipelined_broadcast(&g, 0, &msgs))
    });
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
