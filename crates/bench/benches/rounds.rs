//! Figure C bench: wall-clock scaling of the full distributed construction
//! with `n`, for an even and an odd `k` (the round-count scaling is printed by
//! the `rounds_vs_n` harness binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use en_bench::Workload;
use en_routing::construction::{build_routing_scheme, ConstructionConfig};

fn bench_construction_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction_vs_n");
    group.sample_size(10);
    for n in [64usize, 128] {
        let g = Workload::ErdosRenyi.generate(n, 11);
        for k in [4usize, 5] {
            group.bench_with_input(BenchmarkId::new(format!("k{k}"), n), &n, |b, _| {
                b.iter(|| build_routing_scheme(&g, &ConstructionConfig::new(k, 11)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_construction_scaling);
criterion_main!(benches);
