//! Derived figure E: the distributed tree-routing scheme (Theorem 7 /
//! Remark 3) — stretch 1, `O(log n)` tables, `O(log² n)` labels, and the
//! `Õ(√n + D)` construction-round charge.
//!
//! Usage: `cargo run --release -p en_bench --bin tree_routing [max_n]`

use en_graph::dijkstra::dijkstra;
use en_graph::generators::{random_tree, GeneratorConfig};
use en_graph::tree::RootedTree;
use en_tree_routing::{remark3_rounds, theorem7_rounds, TreeRoutingConfig, TreeRoutingScheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2048);
    let sizes: Vec<usize> = [128usize, 256, 512, 1024, 2048, 4096]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();

    println!("== Figure E (derived): distributed tree routing (Theorem 7) ==\n");
    println!(
        "{:>6} {:>9} {:>10} {:>10} {:>12} {:>14} {:>16}",
        "n", "portals", "tbl(max w)", "lbl(max w)", "stretch", "Thm7 rounds", "Remark3 (s=16)"
    );
    for &n in &sizes {
        let g = random_tree(&GeneratorConfig::new(n, 5));
        let tree = RootedTree::from_shortest_paths(&g, &dijkstra(&g, 0));
        let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(9));
        // Verify stretch 1 on sampled pairs.
        let mut rng = StdRng::seed_from_u64(77);
        let mut max_stretch: f64 = 1.0;
        for _ in 0..200 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let route = scheme.route(u, v).expect("tree routing succeeds");
            let exact = tree.tree_distance(u, v).expect("both in tree");
            let got = route.length_in(&g).expect("route uses tree edges");
            if exact > 0 {
                max_stretch = max_stretch.max(got as f64 / exact as f64);
            }
        }
        println!(
            "{:>6} {:>9} {:>10} {:>10} {:>12.4} {:>14} {:>16}",
            n,
            scheme.portals().len(),
            scheme.max_table_words(),
            scheme.max_label_words(),
            max_stretch,
            theorem7_rounds(n, 16),
            remark3_rounds(n, 16, 16)
        );
        assert!(
            (max_stretch - 1.0).abs() < 1e-12,
            "tree routing must be exact"
        );
    }
    println!("\n(tables stay O(log n), labels O(log^2 n), stretch exactly 1)");
}
