//! Derived figure C: construction rounds versus `n`, for an even and an odd
//! `k`, against the paper's `(n^{1/2+1/k} + D) · n^{o(1)}` /
//! `(n^{1/2+1/(2k)} + D) · n^{o(1)}` formulas.
//!
//! At laptop scales the absolute round numbers are dominated by the paper's
//! lower-order factors (`1/ε = 48k⁴` from Theorem 1 and the hopset's `β²`), so
//! the column to read is the **growth factor** per doubling of `n`, which
//! should track the `n^{1/2+1/k}` (even `k`) / `n^{1/2+1/(2k)}` (odd `k`)
//! leading term. See EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p en_bench --bin rounds_vs_n [max_n]`

use en_bench::{measure_this_paper, Workload};
use en_graph::bfs::hop_diameter_estimate;
use en_routing::baselines::formulas;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let seed = 23;
    let sizes: Vec<usize> = [64usize, 128, 256, 512, 1024]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();

    println!("== Figure C (derived): construction rounds vs n ==\n");
    for k in [4usize, 5] {
        let exponent = if k % 2 == 0 {
            0.5 + 1.0 / k as f64
        } else {
            0.5 + 1.0 / (2.0 * k as f64)
        };
        println!(
            "-- k = {k} ({}), leading term n^{exponent:.3} --",
            if k % 2 == 0 { "even" } else { "odd" }
        );
        println!(
            "{:>6} {:>6} {:>7} {:>14} {:>9} {:>16} {:>9} {:>14}",
            "n", "D~", "beta", "measured", "growth", "paper formula", "growth", "leading-term"
        );
        let mut prev_measured: Option<usize> = None;
        let mut prev_formula: Option<f64> = None;
        for &n in &sizes {
            let g = Workload::ErdosRenyi.generate(n, seed);
            let d = hop_diameter_estimate(&g);
            let (built, m) = measure_this_paper(&g, k, seed, 50);
            let beta = built.hopset_beta.unwrap_or(1);
            let formula = formulas::this_paper_rounds(n, k, d, beta);
            let growth_measured = prev_measured
                .map(|p| format!("{:.2}x", m.rounds as f64 / p as f64))
                .unwrap_or_else(|| "-".into());
            let growth_formula = prev_formula
                .map(|p| format!("{:.2}x", formula / p))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:>6} {:>6} {:>7} {:>14} {:>9} {:>16.0} {:>9} {:>14.2}",
                n,
                d,
                beta,
                m.rounds,
                growth_measured,
                formula,
                growth_formula,
                2f64.powf(exponent) // expected growth per doubling from the leading term
            );
            prev_measured = Some(m.rounds);
            prev_formula = Some(formula);
        }
        println!();
    }
    println!(
        "(growth per doubling should approach 2^(1/2+1/k) for even k and 2^(1/2+1/(2k)) for odd k,"
    );
    println!(" i.e. the odd-k rows grow more slowly — the paper's even/odd asymmetry)");
}
