//! Derived figure F: hopset quality (Theorem 2) — the `(β, ε)` property of the
//! path-reporting hopsets built on the virtual graphs the construction uses.
//!
//! Usage: `cargo run --release -p en_bench --bin hopset_quality [n]`

use en_bench::Workload;
use en_graph::bfs::hop_diameter_estimate;
use en_hopset::verify::verify_hopset_with_beta;
use en_hopset::{build_hopset, HopsetConfig};
use en_routing::hierarchy::Hierarchy;
use en_routing::params::SchemeParams;
use en_routing::preprocess::Preprocessing;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let seed = 41;

    println!("== Figure F (derived): hopset quality on the virtual graph ==\n");
    println!(
        "{:>3} {:>7} {:>8} {:>8} {:>10} {:>12} {:>12} {:>14}",
        "k", "|V'|", "|E'|", "|F|", "beta", "max ratio", "violations", "Thm2 rounds"
    );
    for k in [2usize, 3, 4, 5] {
        let g = Workload::ErdosRenyi.generate(n, seed);
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        let d = hop_diameter_estimate(&g);
        let Some(pre) = Preprocessing::run(&g, &hierarchy, &params, d) else {
            println!("{k:>3}  (V' empty; no large scales)");
            continue;
        };
        let report = verify_hopset_with_beta(&pre.gprime, &pre.hopset, pre.beta);
        let cfg = HopsetConfig::new(params.hopset_rho(), params.epsilon() / 3.0, seed);
        println!(
            "{:>3} {:>7} {:>8} {:>8} {:>10} {:>12.4} {:>12} {:>14}",
            k,
            pre.m(),
            pre.gprime.num_edges(),
            pre.hopset.len(),
            pre.beta,
            report.max_ratio,
            report.lower_violations,
            cfg.construction_rounds(pre.m(), d)
        );
        assert!(report.satisfies(pre.beta, params.epsilon()));
    }
    println!(
        "\n(also exercised directly on raw graphs by `cargo bench -p en_bench --bench hopset`)"
    );
    // A standalone check on a raw (non-virtual) graph, for reference.
    let g = Workload::Geometric.generate(n.min(256), seed);
    let h = build_hopset(&g, &HopsetConfig::new(0.4, 0.1, seed));
    let report = verify_hopset_with_beta(&g, &h, h.beta());
    println!(
        "raw geometric graph: |F| = {}, beta = {}, max ratio = {:.4}, violations = {}",
        h.len(),
        h.beta(),
        report.max_ratio,
        report.lower_violations
    );
}
