//! Deterministic corruption soak for the serving stack.
//!
//! Executes seeded fault plans from `en_wire::faultsim` against a freshly
//! built snapshot and asserts *error-not-crash* at every layer:
//!
//! 1. **Load drill** — truncation at every section boundary, a single-bit
//!    flip in every header bit, seeded bit flips inside every section, and
//!    scrambled offset columns; every fault must be rejected by
//!    `FlatScheme::from_bytes` with a structured error.
//! 2. **Degraded-query drill** — content-section corruption is forced in
//!    past validation (`from_bytes_unvalidated`, simulating corruption that
//!    strikes after load) and batches are routed at 1/2/8 threads; the
//!    process must survive, every query must resolve to an outcome or a
//!    structured error, and the per-shard accounting must add up.
//! 3. **Hot-swap race** — a `SchemeStore` swaps between two valid epochs
//!    while corrupt publishes are fired at it and reader threads route
//!    batches off pinned epochs; every reader batch must be bit-identical
//!    to exactly the epoch it pinned, and no corrupt publish may land.
//! 4. **Determinism check** — on the pristine snapshot, batch outcomes at
//!    1/2/8 threads must be bit-identical and fault counters must be zero.
//!
//! Usage: `cargo run --release -p en_bench --bin fault_drill [-- --smoke]`
//!
//! `--smoke` shrinks the graph and iteration counts for CI. Exits non-zero
//! (with a failing summary) if any fault goes undetected or any invariant
//! breaks.
//!
//! `--obs-out <path>` installs an [`en_obs::MetricsRegistry`] for the run
//! and writes its `en-obs/v1` JSON-lines dump to `<path>` on completion:
//! every phase summary that is printed for humans is mirrored as a
//! structured `drill.*` event, and the drill's fault totals land as
//! `drill.*` counters alongside the instrumented-library metrics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use en_wire::checksum::fnv1a_words;
use en_wire::faultsim::{
    drill_loads, header_flip_plan, offset_scramble_plan, section_flip_plan, truncation_plan,
    FaultReport,
};
use en_wire::{
    generate_pairs, BatchOutcome, CacheConfig, FlatScheme, MappedSnapshot, PairWorkload,
    QueryEngine, SchemeStore,
};

/// Folds a batch's observable outcome into one word, so "bit-identical"
/// is a single comparison.
fn digest(batch: &BatchOutcome) -> u64 {
    let mut words: Vec<u64> = Vec::new();
    for out in &batch.outcomes {
        match out {
            Ok(o) => {
                words.push(1);
                words.push(o.tree_root as u64);
                words.push(o.level as u64);
                words.push(o.length);
                words.extend(o.path.nodes().iter().map(|&v| v as u64));
            }
            Err(_) => words.push(0),
        }
    }
    fnv1a_words(&words)
}

fn build_snapshot(n: usize, k: usize, graph_seed: u64, build_seed: u64) -> Vec<u8> {
    let g = erdos_renyi_connected(
        &GeneratorConfig::new(n, graph_seed).with_weights(1, 50),
        8.0 / n as f64,
    );
    let built = build_routing_scheme(&g, &ConstructionConfig::new(k, build_seed)).unwrap();
    en_wire::serialize(&built.scheme)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let obs_out = args.iter().position(|a| a == "--obs-out").map(|i| {
        std::path::PathBuf::from(args.get(i + 1).expect("--obs-out requires a path argument"))
    });
    let obs_registry = obs_out
        .as_ref()
        .map(|_| Arc::new(en_obs::MetricsRegistry::new()));
    // The closure (not a bare fn path) forces the Arc<dyn Recorder> coercion.
    #[allow(clippy::redundant_closure)]
    let _obs_guard = obs_registry.clone().map(|r| en_obs::install(r));

    let n = if smoke { 120 } else { 600 };
    let k = 2;
    let flips_per_section = if smoke { 4 } else { 24 };
    let scrambles = if smoke { 16 } else { 96 };
    let pairs_len = if smoke { 400 } else { 4_000 };

    let g = erdos_renyi_connected(
        &GeneratorConfig::new(n, 42).with_weights(1, 50),
        8.0 / n as f64,
    );
    let built = build_routing_scheme(&g, &ConstructionConfig::new(k, 42)).unwrap();
    let bytes = en_wire::serialize(&built.scheme);
    let manifest = FlatScheme::from_bytes(&bytes)
        .expect("pristine snapshot validates")
        .manifest();
    println!(
        "fault_drill: n={n} k={k}, snapshot {} bytes, {} sections{}",
        bytes.len(),
        manifest.sections.len(),
        if smoke { " (smoke)" } else { "" }
    );

    let mut failures: Vec<String> = Vec::new();
    let mut report = FaultReport::default();

    // --- Phase 1: load drill -------------------------------------------------
    report.merge(drill_loads(&bytes, &truncation_plan(&manifest)));
    report.merge(drill_loads(&bytes, &header_flip_plan()));
    report.merge(drill_loads(
        &bytes,
        &section_flip_plan(&manifest, 0xFA01, flips_per_section),
    ));
    report.merge(drill_loads(
        &bytes,
        &offset_scramble_plan(&manifest, 0xFA02, scrambles),
    ));
    println!("  load drill: {}", report.summary());
    if en_obs::active() {
        en_obs::event(
            en_obs::Level::Info,
            "drill.load",
            &[
                ("injected", (report.injected as u64).into()),
                ("detected", (report.detected as u64).into()),
                ("undetected", (report.undetected.len() as u64).into()),
            ],
        );
    }
    for name in &report.undetected {
        failures.push(format!("load fault validated clean: {name}"));
    }
    // The v3 member-slot rank index must actually be drilled, not just exist:
    // the manifest-driven plans cover every section, so its name shows up in
    // both the flip and the scramble plans.
    for plan_name in ["flip member_slots", "scramble member_slots"] {
        let covered = section_flip_plan(&manifest, 0xFA01, flips_per_section)
            .iter()
            .chain(&offset_scramble_plan(&manifest, 0xFA02, scrambles))
            .any(|c| c.name.starts_with(plan_name));
        if !covered {
            failures.push(format!("fault plans never target \"{plan_name}\""));
        }
    }

    // --- Phase 1b: mmap open drill -------------------------------------------
    // The mapped open's SIGBUS-safety contract: a boundary-truncated file is
    // never mapped (the pre-map length check routes it to the heap fallback)
    // and still fails validation; the pristine file maps and validates.
    let tmp = std::path::Path::new("target/tmp");
    std::fs::create_dir_all(tmp).expect("scratch dir under target/");
    let pristine_path = tmp.join("fault_drill_pristine.enwire");
    std::fs::write(&pristine_path, &bytes).expect("write pristine snapshot");
    match MappedSnapshot::open(&pristine_path) {
        Ok(snap) => {
            if snap.bytes() != &bytes[..] {
                failures.push("mmap drill: pristine bytes differ after open".into());
            }
            let mappable = cfg!(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ));
            if mappable && !snap.is_mapped() {
                failures.push("mmap drill: pristine snapshot did not map".into());
            }
            if FlatScheme::from_bytes(snap.bytes()).is_err() {
                failures.push("mmap drill: pristine mapped snapshot failed validation".into());
            }
        }
        Err(e) => failures.push(format!("mmap drill: pristine open failed: {e}")),
    }
    std::fs::remove_file(&pristine_path).ok();
    let mut mmap_cases = 0usize;
    for (i, case) in truncation_plan(&manifest).iter().enumerate() {
        let corrupt = case.apply(&bytes);
        let p = tmp.join(format!("fault_drill_mmap_{i}.enwire"));
        std::fs::write(&p, &corrupt).expect("write truncated snapshot");
        match MappedSnapshot::open(&p) {
            Ok(snap) => {
                if snap.is_mapped() {
                    failures.push(format!("mmap drill: {} was mapped", case.name));
                }
                if snap.bytes() != &corrupt[..] {
                    failures.push(format!("mmap drill: {} bytes differ", case.name));
                }
                if FlatScheme::from_bytes(snap.bytes()).is_ok() {
                    failures.push(format!("mmap drill: {} validated clean", case.name));
                }
            }
            Err(e) => failures.push(format!("mmap drill: {} open failed: {e}", case.name)),
        }
        std::fs::remove_file(&p).ok();
        mmap_cases += 1;
    }
    println!(
        "  mmap drill: pristine mapped + validated, \
         {mmap_cases} boundary truncations opened unmapped and rejected"
    );
    if en_obs::active() {
        en_obs::event(
            en_obs::Level::Info,
            "drill.mmap",
            &[("truncation_cases", (mmap_cases as u64).into())],
        );
    }

    // --- Phase 2: degraded-query drill --------------------------------------
    // Corruption that strikes *after* validation: force the corrupt bytes in
    // with the shape-only pass and route batches across thread counts. The
    // contract is survival + accounting, not bit-identity (which sharding
    // retries corruption hits is thread-dependent by design).
    let pairs = generate_pairs(&g, &PairWorkload::Uniform, pairs_len, 7);
    let degraded_plan = {
        let mut plan = section_flip_plan(&manifest, 0xFA03, flips_per_section.min(6));
        plan.extend(offset_scramble_plan(&manifest, 0xFA04, scrambles.min(24)));
        plan
    };
    let mut degraded_runs = 0usize;
    let mut degraded_queries = 0usize;
    // Shard panics are caught and retried by design; keep the default
    // hook's backtraces out of the drill log.
    std::panic::set_hook(Box::new(|_| {}));
    for case in &degraded_plan {
        let corrupt = case.apply(&bytes);
        // Only shape-valid buffers can be forced in; the rest were already
        // proven detected in phase 1.
        let Ok(flat) = FlatScheme::from_bytes_unvalidated(&corrupt) else {
            report.injected += 1;
            report.detected += 1;
            continue;
        };
        let Ok(engine) = QueryEngine::new(flat, &g) else {
            report.injected += 1;
            report.detected += 1;
            continue;
        };
        report.injected += 1;
        let mut errors_seen = 0usize;
        let mut ok = true;
        for threads in [1usize, 2, 8] {
            let batch = engine.route_batch(&pairs, None, threads);
            if batch.outcomes.len() != pairs.len() {
                failures.push(format!(
                    "{}: {} outcomes for {} pairs at {threads} threads",
                    case.name,
                    batch.outcomes.len(),
                    pairs.len()
                ));
                ok = false;
            }
            let s = &batch.stats;
            if s.delivered + s.failed != s.pairs || s.pairs != pairs.len() {
                failures.push(format!(
                    "{}: stats do not add up at {threads} threads: {s:?}",
                    case.name
                ));
                ok = false;
            }
            let shard_q: usize = batch.shards.iter().map(|sh| sh.queries).sum();
            let shard_e: usize = batch.shards.iter().map(|sh| sh.errors).sum();
            if shard_q != pairs.len() || shard_e != s.failed {
                failures.push(format!(
                    "{}: shard accounting off at {threads} threads: \
                     queries {shard_q}/{} errors {shard_e}/{}",
                    case.name,
                    pairs.len(),
                    s.failed
                ));
                ok = false;
            }
            errors_seen += s.failed;
        }
        // The same corrupt snapshot behind a hot-route cache: the process
        // must still survive and the per-shard accounting must reconstruct
        // the batch exactly; non-panicked shards account one cache lookup
        // (hit or miss) per query.
        let cached_engine = QueryEngine::new(*engine.flat(), &g)
            .expect("same graph")
            .with_cache(CacheConfig { capacity: 64 });
        for threads in [2usize, 8] {
            let batch = cached_engine.route_batch(&pairs, None, threads);
            let s = &batch.stats;
            let shard_q: usize = batch.shards.iter().map(|sh| sh.queries).sum();
            let shard_e: usize = batch.shards.iter().map(|sh| sh.errors).sum();
            if shard_q != pairs.len() || shard_e != s.failed || s.pairs != pairs.len() {
                failures.push(format!(
                    "{}: cached shard accounting off at {threads} threads: \
                     queries {shard_q}/{} errors {shard_e}/{}",
                    case.name,
                    pairs.len(),
                    s.failed
                ));
                ok = false;
            }
            for (si, shard) in batch.shards.iter().enumerate() {
                if !shard.panicked && shard.cache.hits + shard.cache.misses != shard.queries as u64
                {
                    failures.push(format!(
                        "{}: shard {si} cache counters off at {threads} threads: \
                         {:?} for {} queries",
                        case.name, shard.cache, shard.queries
                    ));
                    ok = false;
                }
            }
        }
        degraded_runs += 1;
        degraded_queries += errors_seen;
        if !ok {
            report.undetected.push(case.name.clone());
        } else if errors_seen > 0 {
            report.degraded += 1;
        } else {
            report.survived += 1;
        }
    }
    let _ = std::panic::take_hook();
    println!(
        "  degraded drill: {degraded_runs} corrupt snapshots served, \
         {degraded_queries} queries degraded to errors, 0 crashes"
    );
    if en_obs::active() {
        en_obs::event(
            en_obs::Level::Info,
            "drill.degraded",
            &[
                ("snapshots_served", (degraded_runs as u64).into()),
                ("queries_degraded", (degraded_queries as u64).into()),
            ],
        );
    }

    // --- Phase 3: hot-swap race ----------------------------------------------
    let bytes_b = build_snapshot(n, k, 42, 43); // same graph, different scheme
    let store = Arc::new(SchemeStore::new(bytes.clone()).expect("epoch 0 validates"));
    let race_pairs = generate_pairs(&g, &PairWorkload::Uniform, pairs_len.min(500), 11);
    let digest_for = |snapshot: &[u8]| {
        let flat = FlatScheme::from_bytes(snapshot).expect("epoch bytes validate");
        let engine = QueryEngine::new(flat, &g).expect("same graph");
        digest(&engine.route_batch(&race_pairs, None, 2))
    };
    let digest_a = digest_for(&bytes);
    let digest_b = digest_for(&bytes_b);
    let publishes = if smoke { 20 } else { 200 };
    let stop = AtomicBool::new(false);
    let race_result: Result<(usize, Vec<String>), String> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = &stop;
                let g = &g;
                let race_pairs = &race_pairs;
                scope.spawn(move || {
                    let mut batches = 0usize;
                    let mut bad: Vec<String> = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let epoch = store.current();
                        let flat = epoch.scheme();
                        let engine = QueryEngine::new(flat, g).expect("same graph");
                        let d = digest(&engine.route_batch(race_pairs, None, 2));
                        let expect = if epoch.id() % 2 == 0 {
                            digest_a
                        } else {
                            digest_b
                        };
                        if d != expect {
                            bad.push(format!(
                                "epoch {} served a torn/mixed view (digest {d:#x})",
                                epoch.id()
                            ));
                        }
                        batches += 1;
                    }
                    (batches, bad)
                })
            })
            .collect();

        // Writer: alternate valid epochs (even ids get A, odd get B) while
        // firing corrupt candidates that must all be rejected in place.
        let mut corrupt_rejected = 0usize;
        for i in 0..publishes {
            let next = if store.current_id() % 2 == 0 {
                &bytes_b
            } else {
                &bytes
            };
            let id = store.publish(next.clone()).expect("valid publish lands");
            assert_eq!(id, store.current_id());
            let mut junk = next.clone();
            let at = (i * 997) % junk.len();
            junk[at] ^= 0x10;
            match store.publish(junk) {
                Err(_) => corrupt_rejected += 1,
                Ok(id) => return Err(format!("corrupt publish landed as epoch {id}")),
            }
        }
        stop.store(true, Ordering::Relaxed);
        let mut total_batches = 0usize;
        let mut bad = Vec::new();
        for r in readers {
            let (batches, mut b) = r.join().expect("reader panicked");
            total_batches += batches;
            bad.append(&mut b);
        }
        assert_eq!(corrupt_rejected, publishes);
        Ok((total_batches, bad))
    });
    match race_result {
        Ok((total_batches, bad)) => {
            println!(
                "  hot-swap race: {publishes} publishes + {publishes} corrupt rejects, \
                 {total_batches} reader batches, {} torn views",
                bad.len()
            );
            if en_obs::active() {
                en_obs::event(
                    en_obs::Level::Info,
                    "drill.hotswap",
                    &[
                        ("publishes", (publishes as u64).into()),
                        ("corrupt_rejects", (publishes as u64).into()),
                        ("reader_batches", (total_batches as u64).into()),
                        ("torn_views", (bad.len() as u64).into()),
                    ],
                );
            }
            failures.extend(bad);
            let stats = store.stats();
            if stats.rejected != publishes as u64 || stats.published != publishes as u64 {
                failures.push(format!("store counters off: {stats:?}"));
            }
        }
        Err(e) => failures.push(e),
    }

    // --- Phase 4: pristine determinism + fault counters stay zero ------------
    let flat = FlatScheme::from_bytes(&bytes).expect("pristine snapshot validates");
    let engine = QueryEngine::new(flat, &g).expect("same graph");
    let batches: Vec<BatchOutcome> = [1usize, 2, 8]
        .iter()
        .map(|&t| engine.route_batch(&pairs, None, t))
        .collect();
    let d0 = digest(&batches[0]);
    for (b, t) in batches.iter().zip([1usize, 2, 8]) {
        if digest(b) != d0 {
            failures.push(format!("pristine outcomes differ at {t} threads"));
        }
        if b.stats.shard_panics != 0 || b.stats.retried != 0 || b.stats.degraded != 0 {
            failures.push(format!(
                "pristine batch reports fault counters at {t} threads: {:?}",
                b.stats
            ));
        }
        if b.stats.failed != 0 {
            failures.push(format!("pristine batch failed queries at {t} threads"));
        }
    }
    // The cache is observationally invisible on the pristine snapshot too:
    // same digests at every thread count, and the batch counters account
    // one lookup per pair.
    let cached_engine = QueryEngine::new(*engine.flat(), &g)
        .expect("same graph")
        .with_cache(CacheConfig { capacity: 64 });
    for t in [1usize, 2, 8] {
        let b = cached_engine.route_batch(&pairs, None, t);
        if digest(&b) != d0 {
            failures.push(format!("cached pristine outcomes differ at {t} threads"));
        }
        if b.stats.cache_hits + b.stats.cache_misses != pairs.len() as u64 {
            failures.push(format!(
                "cached pristine batch lookup accounting off at {t} threads: {:?}",
                b.stats
            ));
        }
    }
    println!(
        "  determinism: outcomes bit-identical at 1/2/8 threads \
         (cached and uncached), fault counters zero"
    );
    if en_obs::active() {
        en_obs::event(
            en_obs::Level::Info,
            "drill.determinism",
            &[
                ("thread_counts", 3u64.into()),
                ("bit_identical", (failures.is_empty()).into()),
            ],
        );
        en_obs::counter_add("drill.faults_injected", report.injected as u64);
        en_obs::counter_add("drill.faults_detected", report.detected as u64);
        en_obs::counter_add("drill.faults_degraded", report.degraded as u64);
        en_obs::counter_add("drill.faults_survived", report.survived as u64);
        en_obs::counter_add("drill.failures", failures.len() as u64);
    }
    if let (Some(path), Some(reg)) = (&obs_out, &obs_registry) {
        en_bench::write_obs_dump(path, reg).expect("write obs dump");
        println!("wrote obs dump to {}", path.display());
    }

    println!("fault_drill summary: {}", report.summary());
    if report.undetected.is_empty() && failures.is_empty() {
        println!("fault_drill: PASS (100% of faults detected or survived degraded)");
    } else {
        for f in &failures {
            eprintln!("fault_drill FAILURE: {f}");
        }
        eprintln!("fault_drill: FAIL ({} failures)", failures.len());
        std::process::exit(1);
    }
}
