//! Reproduces **Table 1** of the paper: a comparison of compact routing
//! schemes on the axes *rounds*, *table size*, *label size* and *stretch*.
//!
//! For every workload and every `k`, the harness builds
//!
//! * the paper's distributed construction (even and odd `k` rows),
//! * the centralized Thorup–Zwick baseline (`O(m)` rounds row), and
//! * the LP13-style landmark baseline (`Ω(√n)` tables row),
//!
//! and prints measured values next to the closed-form round formulas of the
//! remaining rows (\[LP15\] variants and the `Ω̃(√n + D)` lower bound).
//!
//! Usage: `cargo run --release -p en_bench --bin table1 [n] [pairs]`

use en_bench::{
    measure_landmark, measure_this_paper, measure_tz, print_comparison_header, print_graph_header,
    print_measurement, Workload,
};
use en_graph::bellman_ford::shortest_path_diameter;
use en_graph::bfs::hop_diameter_estimate;
use en_routing::baselines::formulas;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let pairs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
    let seed = 2016;
    let ks = [2usize, 3, 4, 5];

    println!("== Table 1 reproduction: compact routing schemes ==");
    println!("   (paper bounds: rows of Table 1; measured: this harness)\n");

    for workload in [Workload::ErdosRenyi, Workload::Geometric] {
        let g = workload.generate(n, seed);
        print_graph_header(workload.name(), &g);
        let d = hop_diameter_estimate(&g);
        let s = if n <= 512 {
            shortest_path_diameter(&g)
        } else {
            0
        };
        println!("#   shortest-path diameter S = {s}");
        for &k in &ks {
            println!(
                "\n-- k = {k} (stretch target 4k-5 = {}) --",
                4 * k as i64 - 5
            );
            print_comparison_header();
            let (built, ours) = measure_this_paper(&g, k, seed, pairs);
            let (_, tz) = measure_tz(&g, k, seed, pairs);
            let (_, lm) = measure_landmark(&g, k, seed, pairs, d);
            print_measurement(&ours);
            print_measurement(&tz);
            print_measurement(&lm);
            // Formula-only rows (no reference implementations exist).
            let beta = built.hopset_beta.unwrap_or(1);
            println!(
                "{:<28} {:>12.0}   (formula only; table O~(n^1/k), stretch 4k-3+o(1))",
                format!("LP15 hybrid (k={k})"),
                formulas::lp15_small_table_rounds(n, k, d)
            );
            println!(
                "{:<28} {:>12.0}   (formula only; table O~(n^1/k), stretch 4k-3)",
                format!("LP15 S-based (k={k})"),
                formulas::lp15_spd_rounds(n, k, s.max(d))
            );
            println!(
                "{:<28} {:>12.0}   (lower bound Omega~(sqrt n + D) [SHK+12])",
                "lower bound",
                formulas::lower_bound_rounds(n, d)
            );
            println!(
                "{:<28} {:>12.0}   (paper formula, even/odd dispatch, beta~{beta})",
                "this paper (formula)",
                formulas::this_paper_rounds(n, k, d, beta)
            );
        }
        println!();
    }
}
