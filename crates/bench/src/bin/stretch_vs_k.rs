//! Derived figure A: measured stretch versus `k`, against the `4k − 5 + o(1)`
//! bound of Theorem 5.
//!
//! Usage: `cargo run --release -p en_bench --bin stretch_vs_k [n] [pairs]`

use en_bench::{measure_this_paper, print_graph_header, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let pairs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(600);
    let seed = 7;

    println!("== Figure A (derived): stretch vs k ==\n");
    for workload in Workload::all() {
        let g = workload.generate(n, seed);
        print_graph_header(workload.name(), &g);
        println!(
            "{:>3} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "k", "bound 4k-5", "max", "avg", "median", "p95"
        );
        for k in 1..=6usize {
            let (built, m) = measure_this_paper(&g, k, seed + k as u64, pairs);
            println!(
                "{:>3} {:>12.2} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
                k,
                built.params.stretch_bound(),
                m.stretch.max_stretch,
                m.stretch.avg_stretch,
                m.stretch.median_stretch,
                m.stretch.p95_stretch
            );
            assert!(
                m.stretch.max_stretch <= built.params.stretch_bound() + 1e-9,
                "measured stretch exceeded the paper's bound"
            );
        }
        println!();
    }
}
