//! Validates an `en-obs/v1` JSON-lines dump — the CI back-stop for the
//! harness binaries' `--obs-out` flag.
//!
//! Usage: `cargo run -p en_bench --bin obs_check -- <dump.jsonl> [<dump2.jsonl> ...]`
//!
//! Each argument is parsed with [`en_obs::validate_jsonl`]; a one-line
//! summary (counter/gauge/histogram/span/event counts) is printed per
//! file. Any schema violation is reported with its line number and the
//! process exits non-zero, so a malformed dump fails the CI step instead
//! of passing silently.

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: obs_check <dump.jsonl> [<dump2.jsonl> ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs_check: {path}: {e}");
                failed = true;
                continue;
            }
        };
        match en_obs::validate_jsonl(&text) {
            Ok(summary) => {
                println!(
                    "obs_check: {path}: OK ({} lines: {} counters, {} gauges, \
                     {} histograms, {} spans, {} events)",
                    summary.lines,
                    summary.counters,
                    summary.gauges,
                    summary.histograms,
                    summary.spans,
                    summary.events
                );
            }
            Err(e) => {
                eprintln!("obs_check: {path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
