//! Records the repo's perf trajectory: wall time per construction phase at
//! the standard bench sizes, written to `BENCH_construction.json`.
//!
//! Per `(n, k)` point the harness times each phase the quickstart exercises —
//! workload generation, the Theorem-1 batched kernel on the acceptance
//! workload shape (|V'| = 32, B = 16), the end-to-end
//! `build_routing_scheme`, and a routing + sketch query batch — and, once per
//! run, the batched-vs-reference kernel ratios the acceptance bars track:
//! Theorem 1 batched vs naive (`≥ 5×`) and the `clusters` workload — the
//! batched restricted multi-source cluster growing against the retained
//! per-centre restricted Dijkstra oracle at k = 2, recorded both for the
//! whole exact family and for the spanning top level alone (the recorded
//! bar: spanning `≥ 3×`; family growth is tracked alongside and currently
//! sits near parity, because ~30-member level-0 clusters keep the
//! per-centre heap search cheap). Each measurement is a best-of-N (N = 3
//! for phases, 9 for the kernel comparisons and the serving
//! throughput/ratio numbers), so the committed JSON stays comparable
//! across machines with noisy schedulers.
//!
//! The `assemble` workload tracks the Section-4 tables/labels assembly over
//! a prebuilt exact family at `n ∈ {500, 1000, 10000}`, `k ∈ {2, 3}`,
//! alongside a bytes gauge of the family's compact-forest footprint
//! (`ClusterFamily::cluster_bytes`) — the pair of numbers the arena-backed
//! cluster forest is accountable to (recorded bars: assemble ≥ 2× vs the
//! pre-forest assembly at n = 1000/k = 2, footprint ≥ 5× below the old
//! `O(n · #clusters)` representation's ~14 MB there). The `entries` sweep
//! includes the n = 10000 end-to-end build the compact family unlocked.
//!
//! The `queries` workload tracks the `en_wire` serving path: per `(n, k)`
//! at `n ∈ {1000, 10000}` it snapshots the built scheme and times the
//! open-path costs *separately* — `read_us`, the buffer copy alone (what
//! an owned open pays to get the bytes in hand), `shape_open_us`, the
//! header-only `from_bytes_unvalidated` parse, `mmap_open_us`, the
//! page-cache alternative (`MappedSnapshot::open` plus the same shape
//! parse, no copy), and `validate_us`, the checksum walk alone (full
//! `from_bytes` minus the shape-only open; the per-publish integrity tax,
//! also reported as GB/s, now sharded over `validate_threads` scoped
//! workers whose per-thread word accounting must total the serial span) —
//! then measures batched routing throughput off the flat columns
//! (single-threaded and sharded over scoped threads) and, on the very
//! same pairs, the in-memory `RoutingScheme` single-threaded throughput,
//! recording `flat_vs_inmem` (flat single-thread ÷ in-memory routes/sec;
//! the unified-kernel goal is 1.0). Beside the uniform pairs it records
//! the Zipf-hotspot workload (exponent 1.2, both endpoints skewed) with
//! the hot-route cache on — outcomes asserted bit-identical to the
//! uncached run, `cache_hit_rate` committed — the skewed-traffic shape
//! the serving layer is optimised for. All of it is written to
//! `BENCH_queries.json` together with the snapshot size and the host's
//! CPU count (the multi-thread number only shows real scaling on a
//! multi-core host).
//!
//! The end-to-end build is timed along a threads axis — the sequential
//! oracle (`threads = 1`) and the host's full parallelism — and the
//! multi-thread build's per-thread work accounting
//! (`BuildStats::per_thread_sources` / `per_thread_members`) is written into
//! each entry, with its totals asserted equal to the sequential build's (the
//! outputs themselves are bit-identical by construction; the committed
//! speedup number is only meaningful when `host_cpus > 1`).
//!
//! Alongside the throughput numbers the queries entry records the
//! observability tax both ways: `obs_noop_overhead`, the uniform
//! single-thread batch re-measured with **no recorder installed** (the
//! production default — the instrumented path differs from uninstrumented
//! code by one relaxed atomic load per chunk; the committed bar is ≤ 1.02,
//! with base and no-op runs interleaved pair-wise so host noise cannot
//! skew the ratio),
//! and `obs_active_overhead`, the same batch with a live
//! `en_obs::MetricsRegistry` installed (per-route latency/hops histograms
//! and batch counters actually recording — informational, not a bar).
//!
//! Usage: `cargo run --release -p en_bench --bin perf_baseline [--smoke]
//! [--obs-out <path>]`
//!
//! `--smoke` restricts the sweep to the smallest size and skips the file
//! writes — the CI smoke check that keeps this bin (and the phase plumbing
//! it exercises, including the queries/serving path) green. `--obs-out
//! <path>` installs a process-global metrics registry for the whole run and
//! writes its `en-obs/v1` JSON-lines dump to `<path>` on exit (CI's
//! obs-smoke step validates that dump with the `obs_check` bin; committed
//! BENCH numbers are recorded *without* this flag, so the serving numbers
//! stay on the uninstrumented path).

use std::fmt::Write as _;
use std::time::Instant;

use en_wire::{generate_pairs, CacheConfig, FlatScheme, MappedSnapshot, PairWorkload, QueryEngine};

use en_bench::warn_if_round_limit_hit;
use en_congest_algos::theorem1::{multi_source_hop_bounded, multi_source_hop_bounded_reference};
use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_graph::{BuildOptions, CsrGraph, WeightedGraph};
use en_routing::construction::{
    build_routing_scheme, build_routing_scheme_with, ConstructionConfig,
};
use en_routing::exact::{
    exact_cluster_family, exact_pivots_csr, grow_exact_cluster_csr,
    grow_exact_clusters_batched_with_pivots, membership_thresholds,
};
use en_routing::scheme::RoutingScheme;
use en_routing::{Hierarchy, SchemeParams};

const OUTPUT: &str = "BENCH_construction.json";
const QUERIES_OUTPUT: &str = "BENCH_queries.json";
/// Worker threads for the sharded batch measurement (recorded in the JSON;
/// only meaningful as a speedup on a host with that many cores).
const QUERY_THREADS: usize = 8;

fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::MAX;
    let mut out = None;
    for _ in 0..runs {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best * 1e3, out.expect("runs >= 1"))
}

fn workload(n: usize) -> WeightedGraph {
    erdos_renyi_connected(
        &GeneratorConfig::new(n, 42).with_weights(1, 100),
        8.0 / n as f64,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let obs_out = args.iter().position(|a| a == "--obs-out").map(|i| {
        std::path::PathBuf::from(args.get(i + 1).expect("--obs-out requires a path argument"))
    });
    let obs_registry = obs_out
        .as_ref()
        .map(|_| std::sync::Arc::new(en_obs::MetricsRegistry::new()));
    #[allow(clippy::redundant_closure)] // closure forces the Arc<dyn> coercion
    let _obs_guard = obs_registry.clone().map(|r| en_obs::install(r));
    let sizes: &[usize] = if smoke {
        &[200]
    } else {
        &[200, 500, 1000, 10000]
    };
    let runs = if smoke { 1 } else { 3 };

    // The acceptance-bar kernel comparison: batched vs retained naive on a
    // 1000-vertex graph, |V'| = 32, B = 16 (200 vertices in smoke mode).
    let kn = if smoke { 200 } else { 1000 };
    let kg = erdos_renyi_connected(
        &GeneratorConfig::new(kn, 7).with_weights(1, 100),
        8.0 / kn as f64,
    );
    let ksources: Vec<usize> = (0..32).map(|i| i * 31 % kn).collect();
    let kernel_runs = if smoke { 3 } else { 9 };
    let (kernel_batched_ms, _) = best_of(kernel_runs, || {
        multi_source_hop_bounded(&kg, &ksources, 16, 0.25, 10)
    });
    let (kernel_naive_ms, _) = best_of(kernel_runs, || {
        multi_source_hop_bounded_reference(&kg, &ksources, 16)
    });
    let kernel_speedup = kernel_naive_ms / kernel_batched_ms;
    println!(
        "theorem1 kernel (n={kn}, |V'|=32, B=16): batched {kernel_batched_ms:.3} ms, \
         naive {kernel_naive_ms:.3} ms, speedup {kernel_speedup:.1}x"
    );

    // The clusters workload: batched restricted multi-source cluster growing
    // vs the retained per-centre restricted Dijkstra oracle at k = 2 on the
    // same graph — the whole exact cluster family (every level), plus the
    // spanning top level alone (threshold = ∞ for every vertex, the shape
    // where source regions overlap completely and batching pays most).
    let cparams = SchemeParams::new(2, kn, 42);
    let chierarchy = Hierarchy::sample(&cparams);
    let ccsr = CsrGraph::from_graph(&kg);
    let cpivots = exact_pivots_csr(&ccsr, &chierarchy);
    let per_level: Vec<(usize, Vec<usize>, Vec<u64>)> = (0..chierarchy.k())
        .map(|i| {
            (
                i,
                chierarchy.centers_at(i),
                membership_thresholds(&cpivots, i),
            )
        })
        .collect();
    let num_centers: usize = per_level.iter().map(|(_, c, _)| c.len()).sum();
    let (clusters_batched_ms, _) = best_of(kernel_runs, || {
        per_level
            .iter()
            .map(|(i, centers, threshold)| {
                grow_exact_clusters_batched_with_pivots(&ccsr, centers, *i, threshold, &cpivots)
                    .num_clusters()
            })
            .sum::<usize>()
    });
    let (clusters_per_centre_ms, _) = best_of(kernel_runs, || {
        per_level
            .iter()
            .map(|(i, centers, threshold)| {
                centers
                    .iter()
                    .map(|&c| grow_exact_cluster_csr(&ccsr, c, *i, threshold).size())
                    .sum::<usize>()
            })
            .sum::<usize>()
    });
    let clusters_speedup = clusters_per_centre_ms / clusters_batched_ms;
    let (top_level, top_centers, top_threshold) = per_level.last().expect("k >= 1");
    let (spanning_batched_ms, _) = best_of(kernel_runs, || {
        grow_exact_clusters_batched_with_pivots(
            &ccsr,
            top_centers,
            *top_level,
            top_threshold,
            &cpivots,
        )
        .num_clusters()
    });
    let (spanning_per_centre_ms, _) = best_of(kernel_runs, || {
        top_centers
            .iter()
            .map(|&c| grow_exact_cluster_csr(&ccsr, c, *top_level, top_threshold).size())
            .sum::<usize>()
    });
    let spanning_speedup = spanning_per_centre_ms / spanning_batched_ms;
    println!(
        "clusters family (n={kn}, k=2, {num_centers} centres): batched \
         {clusters_batched_ms:.3} ms, per-centre {clusters_per_centre_ms:.3} ms, \
         speedup {clusters_speedup:.1}x"
    );
    println!(
        "clusters spanning level (n={kn}, {} centres): batched \
         {spanning_batched_ms:.3} ms, per-centre {spanning_per_centre_ms:.3} ms, \
         speedup {spanning_speedup:.1}x",
        top_centers.len()
    );

    // The assemble workload: Section-4 tables/labels assembly over a
    // prebuilt exact family, plus the family's compact-forest byte footprint.
    let assemble_sizes: &[usize] = if smoke { &[200] } else { &[500, 1000, 10000] };
    let mut assemble_entries = String::new();
    for &n in assemble_sizes {
        let g = workload(n);
        for k in [2usize, 3] {
            let params = SchemeParams::new(k, n, 42);
            let hierarchy = Hierarchy::sample(&params);
            let family = exact_cluster_family(&g, &hierarchy);
            let family_bytes = family.cluster_bytes();
            let (assemble_ms, _) = best_of(runs, || RoutingScheme::assemble(&family, 42));
            println!(
                "assemble n={n} k={k}: {assemble_ms:.3} ms, {} clusters, \
                 total members {}, family footprint {:.2} MB",
                family.num_clusters(),
                family.total_cluster_size(),
                family_bytes as f64 / 1e6
            );
            if !assemble_entries.is_empty() {
                assemble_entries.push_str(",\n");
            }
            let _ = write!(
                assemble_entries,
                "    {{\"n\": {n}, \"k\": {k}, \"assemble_ms\": {assemble_ms:.3}, \
                 \"clusters\": {}, \"total_members\": {}, \"family_bytes\": {family_bytes}}}",
                family.num_clusters(),
                family.total_cluster_size()
            );
        }
    }

    // The queries workload: the en_wire serving path — snapshot size,
    // zero-copy load time, and batched routing throughput off the flat
    // columns, single-threaded vs sharded.
    let query_sizes: &[usize] = if smoke { &[200] } else { &[1000, 10000] };
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let query_pairs = if smoke { 2_000 } else { 20_000 };
    let mut query_entries = String::new();
    for &n in query_sizes {
        let g = workload(n);
        for k in [2usize, 3] {
            let built = build_routing_scheme(&g, &ConstructionConfig::new(k, 42)).unwrap();
            let (serialize_ms, bytes) = best_of(runs, || en_wire::serialize(&built.scheme));
            // Open-path costs, kept apart so each optimisation is
            // attributable: `read_us` is the buffer copy alone (what an
            // owned open pays to get the bytes in hand), `shape_open_us`
            // the header-only `from_bytes_unvalidated` parse,
            // `mmap_open_us` the page-cache open (`MappedSnapshot::open` +
            // the same shape parse — no copy, the bytes stay in the kernel
            // page cache), and `validate_us` the checksum walk alone (full
            // `from_bytes` minus the shape-only open) — the per-publish
            // integrity tax the v3 checksum layer charges.
            let (read_ms, _) = best_of(kernel_runs, || bytes.clone().len());
            let (shape_ms, _) = best_of(kernel_runs, || {
                FlatScheme::from_bytes_unvalidated(&bytes)
                    .expect("snapshot opens")
                    .n()
            });
            let tmp = std::path::Path::new("target/tmp");
            std::fs::create_dir_all(tmp).expect("scratch dir under target/");
            let snap_path = tmp.join(format!("perf_baseline_{n}_{k}.enwire"));
            std::fs::write(&snap_path, &bytes).expect("write snapshot scratch file");
            let (mmap_ms, mapped) = best_of(kernel_runs, || {
                let snap = MappedSnapshot::open(&snap_path).expect("snapshot opens");
                FlatScheme::from_bytes_unvalidated(snap.bytes())
                    .expect("snapshot opens")
                    .n();
                snap.is_mapped()
            });
            std::fs::remove_file(&snap_path).ok();
            let (full_ms, _) = best_of(kernel_runs, || {
                FlatScheme::from_bytes(&bytes)
                    .expect("snapshot validates")
                    .n()
            });
            let validate_ms = (full_ms - shape_ms).max(0.0);
            // The sharded checksum walk's per-thread accounting must total
            // exactly the serial span, at the auto-picked width and at an
            // explicit one.
            let (_, serial_walk) =
                FlatScheme::from_bytes_accounted(&bytes, 1).expect("snapshot validates");
            let (_, auto_walk) =
                FlatScheme::from_bytes_accounted(&bytes, 0).expect("snapshot validates");
            let (_, wide_walk) =
                FlatScheme::from_bytes_accounted(&bytes, 4).expect("snapshot validates");
            assert_eq!(serial_walk.threads, 1);
            for walk in [&auto_walk, &wide_walk] {
                assert_eq!(
                    walk.total_words(),
                    serial_walk.total_words(),
                    "sharded validation must account the serial span"
                );
                assert_eq!(walk.per_thread_words.len(), walk.threads);
            }
            let validate_threads = auto_walk.threads;
            let validate_gbps = if validate_ms > 0.0 {
                bytes.len() as f64 / 1e9 / (validate_ms / 1e3)
            } else {
                0.0
            };
            let flat = FlatScheme::from_bytes(&bytes).expect("snapshot validates");
            let engine = QueryEngine::new(flat, &g).expect("graph matches snapshot");
            let pairs = generate_pairs(&g, &PairWorkload::Uniform, query_pairs, 7);
            // Throughput and ratio numbers are acceptance-tracked; give them
            // the kernel-comparison best-of-N so one noisy scheduler slice
            // does not move the committed trajectory.
            let (single_ms, delivered) = best_of(kernel_runs, || {
                engine.route_batch(&pairs, None, 1).stats.delivered
            });
            assert_eq!(delivered, pairs.len(), "all pairs must deliver");
            let (multi_ms, _) = best_of(kernel_runs, || {
                engine
                    .route_batch(&pairs, None, QUERY_THREADS)
                    .stats
                    .delivered
            });
            // The same pairs through the in-memory scheme, single-threaded
            // and with the same exact=0 shortcut, so `flat_vs_inmem` is the
            // flat columns against the owned structures with the identical
            // forwarding kernel on both sides.
            let (inmem_ms, inmem_delivered) = best_of(kernel_runs, || {
                pairs
                    .iter()
                    .filter(|&&(u, v)| built.scheme.route_with_exact(&g, u, v, 0).is_ok())
                    .count()
            });
            assert_eq!(inmem_delivered, pairs.len(), "all pairs must deliver");
            let single_rps = pairs.len() as f64 / (single_ms / 1e3);
            let multi_rps = pairs.len() as f64 / (multi_ms / 1e3);
            let inmem_rps = pairs.len() as f64 / (inmem_ms / 1e3);
            let flat_vs_inmem = single_rps / inmem_rps;
            // The observability tax, measured on the very same uniform
            // single-thread batch. No-op: nothing installed (unless the
            // whole run carries --obs-out), so the gate branch-predicts
            // false and the only added work is one relaxed load per chunk —
            // the committed bar is ≤ 1.02. Both sides of the ratio run the
            // identical code path, so the runs are INTERLEAVED pair-wise
            // (base, noop, base, noop, …) and each side keeps its own
            // best-of: scheduler drift on the noisy single-CPU recording
            // host then lands on both sides instead of skewing whichever
            // block ran second. Active: a scoped registry actually
            // recording per-route histograms and batch counters
            // (informational, same interleaved base).
            let mut noop_base_ms = f64::MAX;
            let mut obs_noop_ms = f64::MAX;
            for _ in 0..kernel_runs {
                let t = Instant::now();
                engine.route_batch(&pairs, None, 1);
                noop_base_ms = noop_base_ms.min(t.elapsed().as_secs_f64() * 1e3);
                let t = Instant::now();
                engine.route_batch(&pairs, None, 1);
                obs_noop_ms = obs_noop_ms.min(t.elapsed().as_secs_f64() * 1e3);
            }
            let obs_noop_overhead = obs_noop_ms / noop_base_ms;
            let obs_scoped = std::sync::Arc::new(en_obs::MetricsRegistry::new());
            let (obs_active_ms, _) = {
                let _g = en_obs::install(obs_scoped.clone());
                best_of(kernel_runs, || {
                    engine.route_batch(&pairs, None, 1).stats.delivered
                })
            };
            let obs_active_overhead = obs_active_ms / noop_base_ms;
            assert_eq!(
                obs_scoped.counter_value("wire.batch.delivered"),
                (kernel_runs * pairs.len()) as u64,
                "active-recorder pass must account every delivered route"
            );
            // The Zipf-hotspot workload (both endpoints skewed, exponent
            // 1.2) with the hot-route cache in front of the kernel: the
            // skewed-traffic shape serving is optimised for. Outcomes are
            // bit-identical to the uncached run by construction — asserted
            // outcome-by-outcome here before the timed passes.
            let zipf_exponent = 1.2;
            let cache_capacity = 4096usize;
            let zipf_pairs = generate_pairs(
                &g,
                &PairWorkload::ZipfHotspot {
                    exponent: zipf_exponent,
                },
                query_pairs,
                7,
            );
            let cached_engine = QueryEngine::new(flat, &g)
                .expect("graph matches snapshot")
                .with_cache(CacheConfig {
                    capacity: cache_capacity,
                });
            let plain_batch = engine.route_batch(&zipf_pairs, None, 1);
            let cached_batch = cached_engine.route_batch(&zipf_pairs, None, 1);
            for (i, (a, b)) in plain_batch
                .outcomes
                .iter()
                .zip(&cached_batch.outcomes)
                .enumerate()
            {
                let (a, b) = (a.as_ref().expect("delivers"), b.as_ref().expect("delivers"));
                assert!(
                    a.path == b.path
                        && a.length == b.length
                        && a.stretch.to_bits() == b.stretch.to_bits(),
                    "cached zipf outcome {i} diverged"
                );
            }
            let (zipf_plain_ms, _) = best_of(kernel_runs, || {
                engine.route_batch(&zipf_pairs, None, 1).stats.delivered
            });
            let (zipf_cached_ms, zipf_stats) = best_of(kernel_runs, || {
                cached_engine.route_batch(&zipf_pairs, None, 1).stats
            });
            let cache_hit_rate = zipf_stats.cache_hit_rate();
            let zipf_plain_rps = zipf_pairs.len() as f64 / (zipf_plain_ms / 1e3);
            let zipf_cached_rps = zipf_pairs.len() as f64 / (zipf_cached_ms / 1e3);
            let zipf_vs_uniform = zipf_cached_rps / single_rps;
            println!(
                "queries n={n} k={k}: snapshot {} bytes ({:.1}/vertex), serialize \
                 {serialize_ms:.3} ms, read {:.1} us, shape open {:.1} us, \
                 mmap open {:.1} us (mapped: {mapped}), validate {:.1} us \
                 ({validate_gbps:.2} GB/s, {validate_threads} threads), \
                 {} pairs: single {single_ms:.3} ms \
                 ({single_rps:.0} routes/s), {QUERY_THREADS} threads {multi_ms:.3} ms \
                 ({multi_rps:.0} routes/s, {:.2}x), in-memory {inmem_ms:.3} ms \
                 ({inmem_rps:.0} routes/s, flat/inmem {flat_vs_inmem:.2})",
                bytes.len(),
                bytes.len() as f64 / n as f64,
                read_ms * 1e3,
                shape_ms * 1e3,
                mmap_ms * 1e3,
                validate_ms * 1e3,
                pairs.len(),
                multi_rps / single_rps
            );
            println!(
                "          zipf s={zipf_exponent} cache cap {cache_capacity}: \
                 uncached {zipf_plain_ms:.3} ms ({zipf_plain_rps:.0} routes/s), \
                 cached {zipf_cached_ms:.3} ms ({zipf_cached_rps:.0} routes/s, \
                 hit rate {cache_hit_rate:.2}), zipf-cached/uniform {zipf_vs_uniform:.2}"
            );
            println!(
                "          obs overhead (single-thread): no-op recorder \
                 {obs_noop_ms:.3} ms ({obs_noop_overhead:.3}x, bar <= 1.02), \
                 active registry {obs_active_ms:.3} ms ({obs_active_overhead:.3}x)"
            );
            if !query_entries.is_empty() {
                query_entries.push_str(",\n");
            }
            let _ = write!(
                query_entries,
                "    {{\"n\": {n}, \"k\": {k}, \"snapshot_bytes\": {}, \
                 \"serialize_ms\": {serialize_ms:.3}, \"read_us\": {:.1}, \
                 \"shape_open_us\": {:.1}, \"mmap_open_us\": {:.1}, \
                 \"mmap_mapped\": {mapped}, \
                 \"validate_us\": {:.1}, \"validate_gb_per_s\": {validate_gbps:.2}, \
                 \"validate_threads\": {validate_threads}, \
                 \"validate_per_thread_words\": {:?}, \
                 \"pairs\": {}, \"single_thread_ms\": {single_ms:.3}, \
                 \"single_routes_per_sec\": {single_rps:.0}, \
                 \"multi_thread_ms\": {multi_ms:.3}, \
                 \"multi_routes_per_sec\": {multi_rps:.0}, \
                 \"multi_vs_single\": {:.2}, \
                 \"inmem_thread_ms\": {inmem_ms:.3}, \
                 \"inmem_routes_per_sec\": {inmem_rps:.0}, \
                 \"flat_vs_inmem\": {flat_vs_inmem:.2}, \
                 \"zipf_exponent\": {zipf_exponent}, \
                 \"cache_capacity\": {cache_capacity}, \
                 \"zipf_routes_per_sec\": {zipf_plain_rps:.0}, \
                 \"zipf_cached_routes_per_sec\": {zipf_cached_rps:.0}, \
                 \"cache_hit_rate\": {cache_hit_rate:.3}, \
                 \"zipf_cached_vs_uniform\": {zipf_vs_uniform:.2}, \
                 \"obs_noop_overhead\": {obs_noop_overhead:.3}, \
                 \"obs_active_overhead\": {obs_active_overhead:.3}}}",
                bytes.len(),
                read_ms * 1e3,
                shape_ms * 1e3,
                mmap_ms * 1e3,
                validate_ms * 1e3,
                auto_walk.per_thread_words,
                pairs.len(),
                multi_rps / single_rps
            );
        }
    }

    let mut entries = String::new();
    for &n in sizes {
        // The n = 10000 end-to-end point is a single timed run (it exists to
        // prove the size completes and track its ballpark, not to win a
        // best-of race).
        let runs = if n >= 10_000 { 1 } else { runs };
        for k in [2usize, 3] {
            let (gen_ms, g) = best_of(runs, || workload(n));
            let sources: Vec<usize> = (0..32).map(|i| i * 31 % n).collect();
            let (kernel_ms, _) = best_of(runs, || {
                multi_source_hop_bounded(&g, &sources, 16, 0.25, 10)
            });
            // The construction threads axis: the sequential oracle vs the
            // host's full parallelism. The outputs are bit-identical (the
            // default `cargo test` pass proves it), so only wall time and
            // the per-thread work accounting may differ — and the totals of
            // the accounting must not.
            let (build_ms, built) = best_of(runs, || {
                build_routing_scheme_with(
                    &g,
                    &ConstructionConfig::new(k, 42),
                    &BuildOptions::sequential(),
                )
                .unwrap()
            });
            let (build_mt_ms, built_mt) = best_of(runs, || {
                build_routing_scheme_with(
                    &g,
                    &ConstructionConfig::new(k, 42),
                    &BuildOptions::new(host_cpus),
                )
                .unwrap()
            });
            assert_eq!(
                built.build_stats.total_sources(),
                built_mt.build_stats.total_sources(),
                "parallel build swept different sources"
            );
            assert_eq!(
                built.build_stats.total_members(),
                built_mt.build_stats.total_members(),
                "parallel build produced different members"
            );
            let per_thread_sources = built_mt.build_stats.per_thread_sources.clone();
            let per_thread_members = built_mt.build_stats.per_thread_members.clone();
            warn_if_round_limit_hit(&built);
            let (route_ms, _) = best_of(runs, || {
                let mut total = 0u64;
                for (src, dst) in [(0, n - 1), (n / 7, n / 2), (n / 3, n - 2)] {
                    total += built.scheme.route(&g, src, dst).unwrap().length;
                    total += built.sketches.query(src, dst).unwrap().estimate;
                }
                total
            });
            println!(
                "n={n} k={k}: generate {gen_ms:.3} ms, theorem1 {kernel_ms:.3} ms, \
                 build 1 thread {build_ms:.3} ms / {host_cpus} threads {build_mt_ms:.3} ms \
                 ({:.2}x, {} rounds charged), route+sketch {route_ms:.3} ms",
                build_ms / build_mt_ms,
                built.total_rounds()
            );
            println!(
                "          per-thread work (sources/members): {per_thread_sources:?} / \
                 {per_thread_members:?}"
            );
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            let _ = write!(
                entries,
                "    {{\"n\": {n}, \"k\": {k}, \"generate_ms\": {gen_ms:.3}, \
                 \"theorem1_kernel_ms\": {kernel_ms:.3}, \"build_ms\": {build_ms:.3}, \
                 \"build_threads\": {host_cpus}, \"build_threads_ms\": {build_mt_ms:.3}, \
                 \"per_thread_sources\": {per_thread_sources:?}, \
                 \"per_thread_members\": {per_thread_members:?}, \
                 \"charged_rounds\": {}, \"route_and_sketch_ms\": {route_ms:.3}}}",
                built.total_rounds()
            );
        }
    }

    // The obs dump is written in smoke mode too — CI's obs-smoke step runs
    // `--smoke --obs-out` and validates the emitted file.
    if let (Some(path), Some(reg)) = (&obs_out, &obs_registry) {
        en_bench::write_obs_dump(path, reg).expect("write obs dump");
        println!("wrote obs dump to {}", path.display());
    }

    if smoke {
        println!("smoke mode: skipping {OUTPUT} and {QUERIES_OUTPUT} writes");
        return;
    }
    let queries_json = format!(
        "{{\n  \"schema\": \"en-bench/queries-v4\",\n  \"workload\": \
         \"uniform + zipf(1.2) pairs over erdos-renyi avg-degree 8, \
         weights 1..=100, seed 42\",\n  \
         \"host_cpus\": {host_cpus},\n  \"multi_threads\": {QUERY_THREADS},\n  \
         \"entries\": [\n{query_entries}\n  ]\n}}\n"
    );
    std::fs::write(QUERIES_OUTPUT, queries_json).expect("write BENCH_queries.json");
    println!("wrote {QUERIES_OUTPUT}");
    let json = format!(
        "{{\n  \"schema\": \"en-bench/construction-v1\",\n  \"workload\": \
         \"erdos-renyi avg-degree 8, weights 1..=100, seed 42\",\n  \
         \"host_cpus\": {host_cpus},\n  \
         \"theorem1_kernel\": {{\"n\": {kn}, \"sources\": 32, \"hop_bound\": 16, \
         \"batched_ms\": {kernel_batched_ms:.3}, \"naive_ms\": {kernel_naive_ms:.3}, \
         \"speedup\": {kernel_speedup:.2}}},\n  \
         \"clusters_kernel\": {{\"n\": {kn}, \"k\": 2, \"centers\": {num_centers}, \
         \"family_batched_ms\": {clusters_batched_ms:.3}, \
         \"family_per_centre_ms\": {clusters_per_centre_ms:.3}, \
         \"family_speedup\": {clusters_speedup:.2}, \
         \"spanning_batched_ms\": {spanning_batched_ms:.3}, \
         \"spanning_per_centre_ms\": {spanning_per_centre_ms:.3}, \
         \"spanning_speedup\": {spanning_speedup:.2}}},\n  \
         \"assemble\": [\n{assemble_entries}\n  ],\n  \"entries\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(OUTPUT, json).expect("write BENCH_construction.json");
    println!("wrote {OUTPUT}");
}
