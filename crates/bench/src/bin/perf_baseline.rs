//! Records the repo's perf trajectory: wall time per construction phase at
//! the standard bench sizes, written to `BENCH_construction.json`.
//!
//! Per `(n, k)` point the harness times each phase the quickstart exercises —
//! workload generation, the Theorem-1 batched kernel on the acceptance
//! workload shape (|V'| = 32, B = 16), the end-to-end
//! `build_routing_scheme`, and a routing + sketch query batch — and, once per
//! run, the batched-vs-naive kernel ratio the acceptance bar tracks
//! (`≥ 5×`). Each measurement is a best-of-N (N = 3 for phases, 9 for the
//! kernel comparison), so the committed JSON stays comparable across
//! machines with noisy schedulers.
//!
//! Usage: `cargo run --release -p en_bench --bin perf_baseline [--smoke]`
//!
//! `--smoke` restricts the sweep to the smallest size and skips the file
//! write — the CI smoke check that keeps this bin (and the phase plumbing it
//! exercises) green.

use std::fmt::Write as _;
use std::time::Instant;

use en_bench::warn_if_round_limit_hit;
use en_congest_algos::theorem1::{multi_source_hop_bounded, multi_source_hop_bounded_reference};
use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_graph::WeightedGraph;
use en_routing::construction::{build_routing_scheme, ConstructionConfig};

const OUTPUT: &str = "BENCH_construction.json";

fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::MAX;
    let mut out = None;
    for _ in 0..runs {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best * 1e3, out.expect("runs >= 1"))
}

fn workload(n: usize) -> WeightedGraph {
    erdos_renyi_connected(
        &GeneratorConfig::new(n, 42).with_weights(1, 100),
        8.0 / n as f64,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke { &[200] } else { &[200, 500, 1000] };
    let runs = if smoke { 1 } else { 3 };

    // The acceptance-bar kernel comparison: batched vs retained naive on a
    // 1000-vertex graph, |V'| = 32, B = 16 (200 vertices in smoke mode).
    let kn = if smoke { 200 } else { 1000 };
    let kg = erdos_renyi_connected(
        &GeneratorConfig::new(kn, 7).with_weights(1, 100),
        8.0 / kn as f64,
    );
    let ksources: Vec<usize> = (0..32).map(|i| i * 31 % kn).collect();
    let kernel_runs = if smoke { 3 } else { 9 };
    let (kernel_batched_ms, _) = best_of(kernel_runs, || {
        multi_source_hop_bounded(&kg, &ksources, 16, 0.25, 10)
    });
    let (kernel_naive_ms, _) = best_of(kernel_runs, || {
        multi_source_hop_bounded_reference(&kg, &ksources, 16)
    });
    let kernel_speedup = kernel_naive_ms / kernel_batched_ms;
    println!(
        "theorem1 kernel (n={kn}, |V'|=32, B=16): batched {kernel_batched_ms:.3} ms, \
         naive {kernel_naive_ms:.3} ms, speedup {kernel_speedup:.1}x"
    );

    let mut entries = String::new();
    for &n in sizes {
        for k in [2usize, 3] {
            let (gen_ms, g) = best_of(runs, || workload(n));
            let sources: Vec<usize> = (0..32).map(|i| i * 31 % n).collect();
            let (kernel_ms, _) = best_of(runs, || {
                multi_source_hop_bounded(&g, &sources, 16, 0.25, 10)
            });
            let (build_ms, built) = best_of(runs, || {
                build_routing_scheme(&g, &ConstructionConfig::new(k, 42)).unwrap()
            });
            warn_if_round_limit_hit(&built);
            let (route_ms, _) = best_of(runs, || {
                let mut total = 0u64;
                for (src, dst) in [(0, n - 1), (n / 7, n / 2), (n / 3, n - 2)] {
                    total += built.scheme.route(&g, src, dst).unwrap().length;
                    total += built.sketches.query(src, dst).unwrap().estimate;
                }
                total
            });
            println!(
                "n={n} k={k}: generate {gen_ms:.3} ms, theorem1 {kernel_ms:.3} ms, \
                 build {build_ms:.3} ms ({} rounds charged), route+sketch {route_ms:.3} ms",
                built.total_rounds()
            );
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            let _ = write!(
                entries,
                "    {{\"n\": {n}, \"k\": {k}, \"generate_ms\": {gen_ms:.3}, \
                 \"theorem1_kernel_ms\": {kernel_ms:.3}, \"build_ms\": {build_ms:.3}, \
                 \"charged_rounds\": {}, \"route_and_sketch_ms\": {route_ms:.3}}}",
                built.total_rounds()
            );
        }
    }

    if smoke {
        println!("smoke mode: skipping {OUTPUT} write");
        return;
    }
    let json = format!(
        "{{\n  \"schema\": \"en-bench/construction-v1\",\n  \"workload\": \
         \"erdos-renyi avg-degree 8, weights 1..=100, seed 42\",\n  \
         \"theorem1_kernel\": {{\"n\": {kn}, \"sources\": 32, \"hop_bound\": 16, \
         \"batched_ms\": {kernel_batched_ms:.3}, \"naive_ms\": {kernel_naive_ms:.3}, \
         \"speedup\": {kernel_speedup:.2}}},\n  \"entries\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(OUTPUT, json).expect("write BENCH_construction.json");
    println!("wrote {OUTPUT}");
}
