//! Derived figure D: distance estimation (Theorem 6) — sketch size, stretch
//! `2k − 1 + o(1)`, and `O(k)` query time.
//!
//! Usage: `cargo run --release -p en_bench --bin sketches [n] [pairs]`

use en_bench::Workload;
use en_graph::dijkstra::dijkstra;
use en_routing::construction::{build_routing_scheme, ConstructionConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let pairs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(500);
    let seed = 31;

    println!("== Figure D (derived): distance estimation ==\n");
    let g = Workload::ErdosRenyi.generate(n, seed);
    println!(
        "{:>3} {:>14} {:>14} {:>12} {:>12} {:>12} {:>10}",
        "k",
        "sketch(max w)",
        "sketch(avg w)",
        "bound 2k-1",
        "max stretch",
        "avg stretch",
        "max iters"
    );
    for k in 1..=6usize {
        let built = build_routing_scheme(&g, &ConstructionConfig::new(k, seed + k as u64))
            .expect("construction succeeds");
        let oracle = &built.sketches;
        let mut rng = StdRng::seed_from_u64(seed + 100 + k as u64);
        let mut max_stretch: f64 = 1.0;
        let mut sum_stretch = 0.0;
        let mut count = 0;
        let mut max_iters = 0;
        for _ in 0..pairs {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            while v == u {
                v = rng.gen_range(0..n);
            }
            let exact = dijkstra(&g, u).dist[v];
            if exact == 0 {
                continue;
            }
            let est = oracle.query(u, v).expect("query succeeds");
            let stretch = est.estimate as f64 / exact as f64;
            max_stretch = max_stretch.max(stretch);
            sum_stretch += stretch;
            count += 1;
            max_iters = max_iters.max(est.iterations);
        }
        println!(
            "{:>3} {:>14} {:>14.1} {:>12.2} {:>12.3} {:>12.3} {:>10}",
            k,
            oracle.max_sketch_words(),
            oracle.avg_sketch_words(),
            built.params.sketch_stretch_bound(),
            max_stretch,
            sum_stretch / count.max(1) as f64,
            max_iters
        );
        assert!(max_stretch <= built.params.sketch_stretch_bound() + 1e-9);
        assert!(max_iters < k.max(1));
    }
}
