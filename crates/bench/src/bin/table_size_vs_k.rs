//! Derived figure B: routing-table size versus `k`.
//!
//! The paper's scheme has tables of `Õ(n^{1/k})` words (shrinking with `k`),
//! while the LP13-style baseline stays at `Ω(√n)` regardless of `k` — the
//! central deficiency Table 1 highlights.
//!
//! Usage: `cargo run --release -p en_bench --bin table_size_vs_k [n]`

use en_bench::{measure_landmark, measure_this_paper, measure_tz, print_graph_header, Workload};
use en_graph::bfs::hop_diameter_estimate;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let seed = 13;

    println!("== Figure B (derived): routing-table size vs k ==\n");
    let g = Workload::ErdosRenyi.generate(n, seed);
    print_graph_header(Workload::ErdosRenyi.name(), &g);
    let d = hop_diameter_estimate(&g);
    println!(
        "{:>3} {:>16} {:>16} {:>16} {:>16} {:>14}",
        "k",
        "ours max(words)",
        "ours avg(words)",
        "TZ01 avg(words)",
        "LP13 avg(words)",
        "bound n^{1/k}lnn"
    );
    for k in 1..=6usize {
        let (built, ours) = measure_this_paper(&g, k, seed + k as u64, 50);
        let (_, tz) = measure_tz(&g, k, seed + k as u64, 50);
        let (_, lm) = measure_landmark(&g, k, seed + k as u64, 50, d);
        println!(
            "{:>3} {:>16} {:>16.1} {:>16.1} {:>16.1} {:>14}",
            k,
            ours.max_table_words,
            ours.avg_table_words,
            tz.avg_table_words,
            lm.avg_table_words,
            built.params.overlap_bound()
        );
    }
    println!("\n(ours/TZ01 shrink with k; the landmark baseline's tables do not — Table 1's key contrast)");
}
