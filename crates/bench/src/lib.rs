//! Shared harness code for the Table 1 reproduction and the derived figures.
//!
//! Every harness binary follows the same recipe: generate a reproducible
//! workload graph, build one or more schemes on it, measure rounds / table
//! size / label size / stretch, and print a fixed-width table whose rows match
//! the corresponding table or figure of the paper. `EXPERIMENTS.md` records
//! the paper-vs-measured comparison produced by these binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use en_graph::generators::{
    erdos_renyi_connected, random_geometric_connected, two_tier_isp, GeneratorConfig,
};
use en_graph::properties::GraphProperties;
use en_graph::WeightedGraph;
use en_routing::baselines::landmark::{build_landmark_baseline, LandmarkBaseline};
use en_routing::baselines::tz::{build_tz_baseline, TzBaseline};
use en_routing::construction::{build_routing_scheme, BuiltScheme, ConstructionConfig};
use en_routing::stretch::{measure_stretch_sampled, StretchReport};

/// The workload families used across the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Erdős–Rényi `G(n, p)` with `p` chosen for average degree ≈ 8.
    ErdosRenyi,
    /// Random geometric graph in the unit square (mesh-like, larger diameter).
    Geometric,
    /// Two-tier ISP-like topology (dense core + access trees).
    Isp,
}

impl Workload {
    /// Human-readable name for table headers.
    pub fn name(self) -> &'static str {
        match self {
            Workload::ErdosRenyi => "erdos-renyi",
            Workload::Geometric => "geometric",
            Workload::Isp => "two-tier-isp",
        }
    }

    /// Generates the workload graph for `n` vertices with the given seed.
    pub fn generate(self, n: usize, seed: u64) -> WeightedGraph {
        let cfg = GeneratorConfig::new(n, seed).with_weights(1, 100);
        match self {
            Workload::ErdosRenyi => {
                let p = (8.0 / n as f64).min(1.0);
                erdos_renyi_connected(&cfg, p)
            }
            Workload::Geometric => {
                let radius = (12.0 / n as f64).sqrt().min(1.0);
                random_geometric_connected(&cfg, radius)
            }
            Workload::Isp => two_tier_isp(&cfg, 0.1),
        }
    }

    /// All workloads, for sweeps.
    pub fn all() -> [Workload; 3] {
        [Workload::ErdosRenyi, Workload::Geometric, Workload::Isp]
    }
}

/// One measured row of a scheme comparison.
#[derive(Debug, Clone)]
pub struct SchemeMeasurement {
    /// Row label (scheme name).
    pub scheme: String,
    /// Rounds charged/simulated for the construction.
    pub rounds: usize,
    /// Maximum routing-table size in words.
    pub max_table_words: usize,
    /// Average routing-table size in words.
    pub avg_table_words: f64,
    /// Maximum label size in words.
    pub max_label_words: usize,
    /// Stretch statistics over sampled pairs.
    pub stretch: StretchReport,
}

/// Warns when any simulated CONGEST run inside the construction was cut
/// off by the simulator's round limit before reaching quiescence — the
/// reported round counts would be silently truncated otherwise
/// ([`SimulationConfig::with_max_rounds`] keeps `Default`'s 1M-round cap
/// unless a harness overrides it).
///
/// The warning is emitted twice: as a structured `warn` event (plus the
/// `bench.round_limit_hits` counter) on the installed [`en_obs::Recorder`],
/// and as the same human-readable stderr line as before, so interactive
/// harness runs keep their rendering while `--obs-out` dumps carry the
/// machine-readable record.
///
/// [`SimulationConfig::with_max_rounds`]: en_congest::SimulationConfig::with_max_rounds
pub fn warn_if_round_limit_hit(built: &BuiltScheme) {
    let hits = built.diagnostics.round_limit_hits;
    if hits > 0 {
        en_obs::counter_add("bench.round_limit_hits", hits as u64);
        en_obs::event(
            en_obs::Level::Warn,
            "bench.round_limit_hit",
            &[
                ("hits", hits.into()),
                ("rounds_reported", built.total_rounds().into()),
            ],
        );
        eprintln!(
            "warning: {hits} simulated exploration(s) hit the simulator round limit before \
             quiescence; reported round counts are truncated (raise SimulationConfig::max_rounds)"
        );
    }
}

/// Writes `registry`'s full `en-obs/v1` JSON-lines dump to `path` — the
/// shared back half of the harness binaries' `--obs-out` flag.
///
/// # Errors
///
/// Propagates the underlying file-write error.
pub fn write_obs_dump(
    path: &std::path::Path,
    registry: &en_obs::MetricsRegistry,
) -> std::io::Result<()> {
    std::fs::write(path, en_obs::to_jsonl(registry))
}

/// Builds the paper's scheme and measures it.
pub fn measure_this_paper(
    g: &WeightedGraph,
    k: usize,
    seed: u64,
    pairs: usize,
) -> (BuiltScheme, SchemeMeasurement) {
    let built = build_routing_scheme(g, &ConstructionConfig::new(k, seed))
        .expect("construction on a connected workload succeeds");
    warn_if_round_limit_hit(&built);
    let stretch = measure_stretch_sampled(g, &built.scheme, pairs, seed ^ 0x57AE);
    let m = SchemeMeasurement {
        scheme: format!("this paper (k={k})"),
        rounds: built.total_rounds(),
        max_table_words: built.scheme.max_table_words(),
        avg_table_words: built.scheme.avg_table_words(),
        max_label_words: built.scheme.max_label_words(),
        stretch,
    };
    (built, m)
}

/// Builds the Thorup–Zwick baseline and measures it.
pub fn measure_tz(
    g: &WeightedGraph,
    k: usize,
    seed: u64,
    pairs: usize,
) -> (TzBaseline, SchemeMeasurement) {
    let baseline = build_tz_baseline(g, k, seed).expect("baseline construction succeeds");
    let stretch = measure_stretch_sampled(g, &baseline.scheme, pairs, seed ^ 0x57AE);
    let m = SchemeMeasurement {
        scheme: format!("TZ01 centralized (k={k})"),
        rounds: baseline.ledger.total_rounds(),
        max_table_words: baseline.scheme.max_table_words(),
        avg_table_words: baseline.scheme.avg_table_words(),
        max_label_words: baseline.scheme.max_label_words(),
        stretch,
    };
    (baseline, m)
}

/// Builds the LP13-style landmark baseline and measures it.
pub fn measure_landmark(
    g: &WeightedGraph,
    k: usize,
    seed: u64,
    pairs: usize,
    hop_diameter: usize,
) -> (LandmarkBaseline, SchemeMeasurement) {
    let baseline =
        build_landmark_baseline(g, k, seed, hop_diameter).expect("baseline construction succeeds");
    let stretch = measure_stretch_sampled(g, &baseline.scheme, pairs, seed ^ 0x57AE);
    let m = SchemeMeasurement {
        scheme: format!("LP13-style landmarks (k={k})"),
        rounds: baseline.ledger.total_rounds(),
        max_table_words: baseline.scheme.max_table_words(),
        avg_table_words: baseline.scheme.avg_table_words(),
        max_label_words: baseline.scheme.max_label_words(),
        stretch,
    };
    (baseline, m)
}

/// Prints a header line describing the workload graph.
pub fn print_graph_header(name: &str, g: &WeightedGraph) {
    let props = GraphProperties::compute_fast(g);
    println!(
        "# workload={name} n={} m={} D~={} max_deg={} max_w={}",
        props.n, props.m, props.hop_diameter, props.max_degree, props.max_weight
    );
}

/// Prints the fixed-width header of a scheme-comparison table.
pub fn print_comparison_header() {
    println!(
        "{:<28} {:>12} {:>10} {:>10} {:>8} {:>9} {:>9} {:>9}",
        "scheme", "rounds", "tbl(max)", "tbl(avg)", "lbl(max)", "str(max)", "str(avg)", "str(p95)"
    );
}

/// Prints one measured row.
pub fn print_measurement(m: &SchemeMeasurement) {
    println!(
        "{:<28} {:>12} {:>10} {:>10.1} {:>8} {:>9.3} {:>9.3} {:>9.3}",
        m.scheme,
        m.rounds,
        m.max_table_words,
        m.avg_table_words,
        m.max_label_words,
        m.stretch.max_stretch,
        m.stretch.avg_stretch,
        m.stretch.p95_stretch
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_generate_connected_graphs() {
        for w in Workload::all() {
            let g = w.generate(64, 3);
            assert!(en_graph::bfs::is_connected(&g), "{}", w.name());
            assert_eq!(g.num_nodes(), 64);
        }
    }

    #[test]
    fn measurements_produce_sane_numbers() {
        let g = Workload::ErdosRenyi.generate(48, 5);
        let (_, ours) = measure_this_paper(&g, 2, 5, 50);
        let (_, tz) = measure_tz(&g, 2, 5, 50);
        let (_, lm) = measure_landmark(&g, 2, 5, 50, 6);
        for m in [&ours, &tz, &lm] {
            assert!(m.rounds > 0);
            assert!(m.max_table_words > 0);
            assert!(m.stretch.max_stretch >= 1.0);
            assert_eq!(m.stretch.failures, 0);
        }
    }
}
