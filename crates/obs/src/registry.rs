//! The [`MetricsRegistry`]: a process- or component-scoped collection of
//! named metrics, span aggregates, and a bounded event buffer.
//!
//! Registration is name-based and lazy — the first `counter("x")` creates
//! the counter, later calls return the same cell. Lookups take a short
//! read-lock on the name index; the returned `Arc` handles record
//! **lock-free** thereafter, so hot paths can pre-resolve handles while
//! occasional callers just record by name. Export order is deterministic
//! (names are kept sorted), so two dumps of the same state are
//! byte-identical.

use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::event::{Event, EventBuffer, FieldValue, Level};
use crate::metrics::{Counter, Gauge, Histogram};
use crate::Recorder;

/// Default bound of the in-memory event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

type NameMap<T> = RwLock<std::collections::BTreeMap<String, Arc<T>>>;

fn get_or_insert<T: Default>(map: &NameMap<T>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().expect("obs name index poisoned").get(name) {
        return Arc::clone(found);
    }
    let mut w = map.write().expect("obs name index poisoned");
    Arc::clone(
        w.entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default())),
    )
}

/// A registry of counters, gauges, histograms, span aggregates, and events.
///
/// Implements [`Recorder`], so an `Arc<MetricsRegistry>` can be installed
/// as the process-global sink ([`crate::install`]) or driven directly in
/// tests and harnesses.
#[derive(Debug)]
pub struct MetricsRegistry {
    start: Instant,
    counters: NameMap<Counter>,
    gauges: NameMap<Gauge>,
    histograms: NameMap<Histogram>,
    spans: NameMap<Histogram>,
    events: Mutex<EventBuffer>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry with the default event capacity.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An empty registry whose event ring holds at most `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        MetricsRegistry {
            start: Instant::now(),
            counters: RwLock::default(),
            gauges: RwLock::default(),
            histograms: RwLock::default(),
            spans: RwLock::default(),
            events: Mutex::new(EventBuffer::new(capacity)),
        }
    }

    /// Microseconds since the registry was created (monotonic).
    pub fn uptime_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// The span-duration histogram for span path `path` (nanosecond
    /// samples), created on first use.
    pub fn span_histogram(&self, path: &str) -> Arc<Histogram> {
        get_or_insert(&self.spans, path)
    }

    /// The value of counter `name`, `0` when it was never touched.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("obs name index poisoned")
            .get(name)
            .map_or(0, |c| c.value())
    }

    /// The value of gauge `name`, `0` when it was never touched.
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.gauges
            .read()
            .expect("obs name index poisoned")
            .get(name)
            .map_or(0, |g| g.value())
    }

    /// Records an event into the bounded ring.
    pub fn event(&self, level: Level, name: &str, fields: &[(&str, FieldValue)]) {
        let t_us = self.uptime_us();
        let owned: Vec<(String, FieldValue)> = fields
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect();
        self.events
            .lock()
            .expect("obs event ring poisoned")
            .push(t_us, level, name, owned);
    }

    /// A snapshot of the buffered events, oldest first.
    pub fn events_snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("obs event ring poisoned")
            .events()
            .cloned()
            .collect()
    }

    /// Events dropped because the ring was full.
    pub fn events_dropped(&self) -> u64 {
        self.events
            .lock()
            .expect("obs event ring poisoned")
            .dropped()
    }

    /// Events ever recorded (buffered or dropped).
    pub fn events_recorded(&self) -> u64 {
        self.events
            .lock()
            .expect("obs event ring poisoned")
            .recorded()
    }

    /// Visits every metric in deterministic (sorted-name) order; used by
    /// the exporters.
    pub(crate) fn visit(&self, v: &mut dyn RegistryVisitor) {
        for (name, c) in self
            .counters
            .read()
            .expect("obs name index poisoned")
            .iter()
        {
            v.counter(name, c);
        }
        for (name, g) in self.gauges.read().expect("obs name index poisoned").iter() {
            v.gauge(name, g);
        }
        for (name, h) in self
            .histograms
            .read()
            .expect("obs name index poisoned")
            .iter()
        {
            v.histogram(name, h, false);
        }
        for (name, h) in self.spans.read().expect("obs name index poisoned").iter() {
            v.histogram(name, h, true);
        }
    }
}

/// Exporter-side visitor over a registry's metrics (sorted by name within
/// each kind).
pub(crate) trait RegistryVisitor {
    fn counter(&mut self, name: &str, c: &Counter);
    fn gauge(&mut self, name: &str, g: &Gauge);
    fn histogram(&mut self, name: &str, h: &Histogram, is_span: bool);
}

impl Recorder for MetricsRegistry {
    fn counter_add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    fn gauge_set(&self, name: &str, value: u64) {
        self.gauge(name).set(value);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        self.gauge(name).set_max(value);
    }

    fn histogram_record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    fn span_record(&self, path: &str, dur_ns: u64) {
        self.span_histogram(path).record(dur_ns);
    }

    fn event(&self, level: Level, name: &str, fields: &[(&str, FieldValue)]) {
        MetricsRegistry::event(self, level, name, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_registration_is_idempotent_and_typed() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(reg.counter_value("x"), 5);
        assert_eq!(reg.counter_value("never"), 0);
        // Same name in different kinds are different cells.
        reg.gauge("x").set(100);
        assert_eq!(reg.gauge_value("x"), 100);
        assert_eq!(reg.counter_value("x"), 5);
    }

    #[test]
    fn recorder_impl_routes_to_cells() {
        let reg = MetricsRegistry::new();
        let r: &dyn Recorder = &reg;
        r.counter_add("c", 7);
        r.gauge_set("g", 9);
        r.gauge_max("g", 4);
        r.histogram_record("h", 8);
        r.span_record("a/b", 1000);
        r.event(Level::Info, "e", &[("k", 1u64.into())]);
        assert_eq!(reg.counter_value("c"), 7);
        assert_eq!(reg.gauge_value("g"), 9);
        assert_eq!(reg.histogram("h").count(), 1);
        assert_eq!(reg.span_histogram("a/b").count(), 1);
        let events = reg.events_snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "e");
        assert_eq!(events[0].level, Level::Info);
    }

    #[test]
    fn concurrent_by_name_recording_totals_exactly() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..500u64 {
                        reg.counter("hits").inc();
                        reg.histogram("lat").record(i);
                    }
                });
            }
        });
        assert_eq!(reg.counter_value("hits"), 4000);
        assert_eq!(reg.histogram("lat").count(), 4000);
        let seq_sum: u64 = (0..500u64).sum();
        assert_eq!(reg.histogram("lat").sum(), 8 * seq_sum);
    }
}
