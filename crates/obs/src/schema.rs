//! Mechanical validation of `en-obs/v1` JSON-lines dumps.
//!
//! CI's obs-smoke step runs the harness bins with `--obs-out` and feeds
//! the emitted files through [`validate_jsonl`] (via the `obs_check` bin in
//! `en_bench`), so a drift between what the exporter writes and what the
//! documented schema promises fails the build instead of surprising a
//! downstream consumer. The module carries its own minimal JSON parser —
//! the environment is offline and the workspace is zero-dependency, so no
//! `serde` — that parses numbers losslessly as raw text (values up to
//! `u64::MAX` round-trip exactly).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Numbers keep their raw text so 64-bit integers
/// survive without float rounding.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw (already syntax-checked) text.
    Num(String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (insertion order not preserved; keys sorted).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an unsigned integer, if it is a plain non-negative
    /// integer number that fits `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// A schema-validation failure: which line, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// 1-based line number of the offending line (0 = whole-file problem).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "schema error: {}", self.message)
        } else {
            write!(f, "schema error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SchemaError {}

/// Per-kind line counts of a validated dump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemaSummary {
    /// Total non-empty lines.
    pub lines: usize,
    /// Counter lines.
    pub counters: usize,
    /// Gauge lines.
    pub gauges: usize,
    /// Histogram lines.
    pub histograms: usize,
    /// Span-aggregate lines.
    pub spans: usize,
    /// Event lines.
    pub events: usize,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} (byte {})", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.take_digits();
        if int_digits == 0 {
            return Err(self.err("number needs integer digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.take_digits() == 0 {
                return Err(self.err("number needs fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.take_digits() == 0 {
                return Err(self.err("number needs exponent digits"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .to_string();
        Ok(Json::Num(raw))
    }

    fn take_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are passed through as the
                            // replacement character; the exporter never
                            // emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON value"));
    }
    Ok(v)
}

fn require<'a>(
    obj: &'a BTreeMap<String, Json>,
    key: &str,
    line: usize,
) -> Result<&'a Json, SchemaError> {
    obj.get(key).ok_or_else(|| SchemaError {
        line,
        message: format!("missing required field \"{key}\""),
    })
}

fn require_u64(obj: &BTreeMap<String, Json>, key: &str, line: usize) -> Result<u64, SchemaError> {
    require(obj, key, line)?
        .as_u64()
        .ok_or_else(|| SchemaError {
            line,
            message: format!("field \"{key}\" must be an unsigned integer"),
        })
}

fn require_name(obj: &BTreeMap<String, Json>, line: usize) -> Result<(), SchemaError> {
    let name = require(obj, "name", line)?
        .as_str()
        .ok_or_else(|| SchemaError {
            line,
            message: "field \"name\" must be a string".into(),
        })?;
    if name.is_empty() {
        return Err(SchemaError {
            line,
            message: "field \"name\" must be non-empty".into(),
        });
    }
    Ok(())
}

fn check_buckets(obj: &BTreeMap<String, Json>, line: usize) -> Result<(), SchemaError> {
    let buckets = require(obj, "buckets", line)?
        .as_array()
        .ok_or_else(|| SchemaError {
            line,
            message: "field \"buckets\" must be an array".into(),
        })?;
    let mut prev: Option<u64> = None;
    for b in buckets {
        let pair = b
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| SchemaError {
                line,
                message: "each bucket must be an [index, count] pair".into(),
            })?;
        let (idx, count) = (pair[0].as_u64(), pair[1].as_u64());
        let idx = idx.ok_or_else(|| SchemaError {
            line,
            message: "bucket index must be an unsigned integer".into(),
        })?;
        if idx > 64 {
            return Err(SchemaError {
                line,
                message: format!("bucket index {idx} out of range 0..=64"),
            });
        }
        if count.is_none() {
            return Err(SchemaError {
                line,
                message: "bucket count must be an unsigned integer".into(),
            });
        }
        if let Some(p) = prev {
            if idx <= p {
                return Err(SchemaError {
                    line,
                    message: format!("bucket indices must ascend ({p} then {idx})"),
                });
            }
        }
        prev = Some(idx);
    }
    Ok(())
}

/// Validates a full `en-obs/v1` JSON-lines dump (the format
/// [`crate::export::to_jsonl`] emits; schema in that module's docs) and
/// returns per-kind line counts.
///
/// # Errors
///
/// Returns the first [`SchemaError`] encountered: unparsable line, missing
/// or mistyped required field, unknown `kind`, bad bucket layout, bad
/// event level, or a missing/invalid leading meta line.
pub fn validate_jsonl(text: &str) -> Result<SchemaSummary, SchemaError> {
    let mut summary = SchemaSummary::default();
    let mut saw_meta = false;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        summary.lines += 1;
        let value = parse_json(raw).map_err(|message| SchemaError { line, message })?;
        let obj = value.as_object().ok_or_else(|| SchemaError {
            line,
            message: "every line must be a JSON object".into(),
        })?;
        let kind = require(obj, "kind", line)?
            .as_str()
            .ok_or_else(|| SchemaError {
                line,
                message: "field \"kind\" must be a string".into(),
            })?;
        if summary.lines == 1 {
            if kind != "meta" {
                return Err(SchemaError {
                    line,
                    message: format!("first line must be the meta record, found kind \"{kind}\""),
                });
            }
            let schema = require(obj, "schema", line)?.as_str();
            if schema != Some("en-obs/v1") {
                return Err(SchemaError {
                    line,
                    message: "meta line must declare \"schema\":\"en-obs/v1\"".into(),
                });
            }
            saw_meta = true;
        }
        match kind {
            "meta" => {
                if summary.lines != 1 {
                    return Err(SchemaError {
                        line,
                        message: "meta record must be the first line only".into(),
                    });
                }
                require_u64(obj, "uptime_us", line)?;
                require_u64(obj, "events_recorded", line)?;
                require_u64(obj, "events_dropped", line)?;
            }
            "counter" => {
                require_name(obj, line)?;
                require_u64(obj, "value", line)?;
                summary.counters += 1;
            }
            "gauge" => {
                require_name(obj, line)?;
                require_u64(obj, "value", line)?;
                summary.gauges += 1;
            }
            "histogram" => {
                require_name(obj, line)?;
                require_u64(obj, "count", line)?;
                require_u64(obj, "sum", line)?;
                check_buckets(obj, line)?;
                summary.histograms += 1;
            }
            "span" => {
                require_name(obj, line)?;
                require_u64(obj, "count", line)?;
                require_u64(obj, "total_ns", line)?;
                check_buckets(obj, line)?;
                summary.spans += 1;
            }
            "event" => {
                require_name(obj, line)?;
                require_u64(obj, "seq", line)?;
                require_u64(obj, "t_us", line)?;
                let level = require(obj, "level", line)?.as_str();
                if !matches!(level, Some("debug" | "info" | "warn" | "error")) {
                    return Err(SchemaError {
                        line,
                        message: "event level must be debug|info|warn|error".into(),
                    });
                }
                if require(obj, "fields", line)?.as_object().is_none() {
                    return Err(SchemaError {
                        line,
                        message: "event fields must be an object".into(),
                    });
                }
                summary.events += 1;
            }
            other => {
                return Err(SchemaError {
                    line,
                    message: format!("unknown kind \"{other}\""),
                });
            }
        }
    }
    if !saw_meta {
        return Err(SchemaError {
            line: 0,
            message: "dump has no meta line (is it empty?)".into(),
        });
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_core_json() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(
            parse_json("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(
            parse_json("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".into())
        );
        let v = parse_json("{\"a\":[1,2.5,-3,{}],\"b\":{\"c\":false}}").unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["a"].as_array().unwrap().len(), 4);
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1 2]").is_err());
        assert!(parse_json("01").is_ok(), "leading-zero digits still digits");
        assert!(parse_json("1e").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{} extra").is_err());
    }

    #[test]
    fn valid_dump_passes_with_counts() {
        let dump = "\
{\"schema\":\"en-obs/v1\",\"kind\":\"meta\",\"uptime_us\":10,\"events_recorded\":1,\"events_dropped\":0}
{\"kind\":\"counter\",\"name\":\"c\",\"value\":4}
{\"kind\":\"gauge\",\"name\":\"g\",\"value\":0}
{\"kind\":\"histogram\",\"name\":\"h\",\"count\":2,\"sum\":9,\"buckets\":[[0,1],[4,1]]}
{\"kind\":\"span\",\"name\":\"a/b\",\"count\":1,\"total_ns\":100,\"buckets\":[[7,1]]}
{\"kind\":\"event\",\"seq\":0,\"t_us\":5,\"level\":\"info\",\"name\":\"e\",\"fields\":{\"x\":1}}
";
        let s = validate_jsonl(dump).unwrap();
        assert_eq!(
            s,
            SchemaSummary {
                lines: 6,
                counters: 1,
                gauges: 1,
                histograms: 1,
                spans: 1,
                events: 1
            }
        );
    }

    #[test]
    fn schema_violations_are_pinpointed() {
        let no_meta = "{\"kind\":\"counter\",\"name\":\"c\",\"value\":4}\n";
        let e = validate_jsonl(no_meta).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("meta"), "{e}");

        let meta = "{\"schema\":\"en-obs/v1\",\"kind\":\"meta\",\"uptime_us\":1,\"events_recorded\":0,\"events_dropped\":0}\n";
        for (bad, needle) in [
            ("{\"kind\":\"counter\",\"value\":4}", "name"),
            ("{\"kind\":\"counter\",\"name\":\"c\",\"value\":-4}", "unsigned"),
            ("{\"kind\":\"nope\",\"name\":\"c\"}", "unknown kind"),
            (
                "{\"kind\":\"histogram\",\"name\":\"h\",\"count\":1,\"sum\":1,\"buckets\":[[65,1]]}",
                "out of range",
            ),
            (
                "{\"kind\":\"histogram\",\"name\":\"h\",\"count\":1,\"sum\":1,\"buckets\":[[4,1],[2,1]]}",
                "ascend",
            ),
            (
                "{\"kind\":\"event\",\"seq\":0,\"t_us\":0,\"level\":\"loud\",\"name\":\"e\",\"fields\":{}}",
                "level",
            ),
            ("not json at all", "expected"),
        ] {
            let text = format!("{meta}{bad}\n");
            let e = validate_jsonl(&text).unwrap_err();
            assert_eq!(e.line, 2, "{bad}");
            assert!(e.message.contains(needle), "{bad}: {e}");
        }

        assert!(validate_jsonl("").is_err());
        assert!(validate_jsonl("\n\n").is_err());
    }
}
