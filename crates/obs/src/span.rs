//! Lightweight span tracing: RAII guards, a thread-local span stack, and
//! monotonic timing.
//!
//! A [`Span`] measures the wall-clock of a scope and records the duration
//! (nanoseconds) into the installed [`crate::Recorder`] under the
//! "/"-joined path of all spans live on this thread — entering `"build"`
//! then `"theorem1"` records under `build/theorem1`. When no recorder is
//! installed the guard is fully inert: no clock read, no allocation, no
//! thread-local push — one relaxed atomic load and a branch.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII span guard: created by [`span`], records its duration on drop.
///
/// Spans use `&'static str` names so entering one never allocates; the
/// path string is only built on drop, when the measurement is already
/// over and off the hot path.
#[derive(Debug)]
pub struct Span {
    // None = observability disabled at enter; fully inert.
    start: Option<Instant>,
}

/// Enters a span named `name` on this thread; the returned guard records
/// the elapsed nanoseconds under the current "/"-joined span path when
/// dropped. Inert (and near-free) when no recorder is installed.
pub fn span(name: &'static str) -> Span {
    if !crate::active() {
        return Span { start: None };
    }
    SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
    Span {
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let dur_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        crate::with_recorder(|r| r.span_record(&path, dur_ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;
    use std::sync::Arc;

    #[test]
    fn spans_nest_into_slash_paths() {
        let _serial = crate::test_lock();
        let reg = Arc::new(MetricsRegistry::new());
        {
            let _guard = crate::install(reg.clone());
            let _outer = span("outer");
            {
                let _inner = span("inner");
                std::hint::black_box(());
            }
            let _sibling = span("sibling");
        }
        assert_eq!(reg.span_histogram("outer").count(), 1);
        assert_eq!(reg.span_histogram("outer/inner").count(), 1);
        assert_eq!(reg.span_histogram("outer/sibling").count(), 1);
        assert_eq!(reg.span_histogram("inner").count(), 0);
    }

    #[test]
    fn span_without_recorder_is_inert() {
        let _serial = crate::test_lock();
        // No recorder installed in this scope: nothing to record into, and
        // nothing should panic or leak stack entries.
        {
            let _s = span("ghost");
        }
        let reg = Arc::new(MetricsRegistry::new());
        {
            let _guard = crate::install(reg.clone());
            let _s = span("real");
        }
        // A leaked "ghost" frame would have turned this path into
        // "ghost/real".
        assert_eq!(reg.span_histogram("real").count(), 1);
    }
}
