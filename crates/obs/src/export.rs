//! Exporters: the `en-obs/v1` JSON-lines dump and a Prometheus-style text
//! exposition.
//!
//! # The `en-obs/v1` JSON-lines schema
//!
//! [`to_jsonl`] emits one JSON object per line. The **first** line is
//! always the meta record; every later line is one metric, span aggregate,
//! or event:
//!
//! ```text
//! {"schema":"en-obs/v1","kind":"meta","uptime_us":N,"events_recorded":N,"events_dropped":N}
//! {"kind":"counter","name":"...","value":N}
//! {"kind":"gauge","name":"...","value":N}
//! {"kind":"histogram","name":"...","count":N,"sum":N,"buckets":[[i,c],...]}
//! {"kind":"span","name":"path/leaf","count":N,"total_ns":N,"buckets":[[i,c],...]}
//! {"kind":"event","seq":N,"t_us":N,"level":"info|warn|...","name":"...","fields":{...}}
//! ```
//!
//! Histogram `buckets` are sparse `[bucket_index, count]` pairs in
//! ascending index order; bucket `0` holds the value `0` and bucket
//! `i ≥ 1` holds values in `[2^(i−1), 2^i − 1]`
//! ([`Histogram::bucket_le`](crate::Histogram::bucket_le) gives the
//! inclusive upper bound, `u64::MAX` for the top bucket `64`). Span lines
//! are histograms of nanosecond durations keyed by span path. Event
//! `fields` values are JSON numbers, strings, or booleans; non-finite
//! floats export as `null`. [`crate::schema::validate_jsonl`] checks all
//! of this mechanically.
//!
//! # Prometheus exposition
//!
//! [`to_prometheus`] renders the same registry in the Prometheus text
//! format (counters, gauges, and histograms with cumulative `le` buckets
//! plus `_sum`/`_count`). Metric names are sanitised to
//! `[a-zA-Z0-9_:]`; span aggregates appear as histograms named
//! `span:<sanitised path>` with `_ns` duration samples. Events have no
//! Prometheus form — use the JSONL dump for them.

use std::fmt::Write as _;

use crate::event::FieldValue;
use crate::metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
use crate::registry::{MetricsRegistry, RegistryVisitor};

/// Escapes a string for a JSON string literal (without the quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_field_value(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(n) => n.to_string(),
        FieldValue::F64(f) if f.is_finite() => {
            let mut s = format!("{f}");
            // `Display` of a round float omits the point; keep it a JSON
            // number either way (both forms are valid).
            if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                s.push_str(".0");
            }
            s
        }
        FieldValue::F64(_) => "null".to_string(),
        FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
        FieldValue::Bool(b) => b.to_string(),
    }
}

fn sparse_buckets(h: &Histogram) -> String {
    let counts = h.bucket_counts();
    let mut out = String::from("[");
    let mut first = true;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "[{i},{c}]");
    }
    out.push(']');
    out
}

struct JsonlVisitor {
    out: String,
}

impl RegistryVisitor for JsonlVisitor {
    fn counter(&mut self, name: &str, c: &Counter) {
        let _ = writeln!(
            self.out,
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            c.value()
        );
    }

    fn gauge(&mut self, name: &str, g: &Gauge) {
        let _ = writeln!(
            self.out,
            "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            g.value()
        );
    }

    fn histogram(&mut self, name: &str, h: &Histogram, is_span: bool) {
        let (kind, sum_key) = if is_span {
            ("span", "total_ns")
        } else {
            ("histogram", "sum")
        };
        let _ = writeln!(
            self.out,
            "{{\"kind\":\"{kind}\",\"name\":\"{}\",\"count\":{},\"{sum_key}\":{},\"buckets\":{}}}",
            json_escape(name),
            h.count(),
            h.sum(),
            sparse_buckets(h)
        );
    }
}

/// Renders the registry as an `en-obs/v1` JSON-lines dump (see the module
/// docs for the schema). The output is deterministic for a given registry
/// state: meta line, then counters, gauges, histograms, and spans in
/// sorted-name order, then events oldest-first.
pub fn to_jsonl(reg: &MetricsRegistry) -> String {
    let mut v = JsonlVisitor {
        out: String::with_capacity(4096),
    };
    let _ = writeln!(
        v.out,
        "{{\"schema\":\"en-obs/v1\",\"kind\":\"meta\",\"uptime_us\":{},\
         \"events_recorded\":{},\"events_dropped\":{}}}",
        reg.uptime_us(),
        reg.events_recorded(),
        reg.events_dropped()
    );
    reg.visit(&mut v);
    for e in reg.events_snapshot() {
        let mut fields = String::from("{");
        for (i, (k, val)) in e.fields.iter().enumerate() {
            if i > 0 {
                fields.push(',');
            }
            let _ = write!(fields, "\"{}\":{}", json_escape(k), json_field_value(val));
        }
        fields.push('}');
        let _ = writeln!(
            v.out,
            "{{\"kind\":\"event\",\"seq\":{},\"t_us\":{},\"level\":\"{}\",\
             \"name\":\"{}\",\"fields\":{fields}}}",
            e.seq,
            e.t_us,
            e.level.as_str(),
            json_escape(&e.name)
        );
    }
    v.out
}

/// Sanitises a metric name to the Prometheus charset `[a-zA-Z0-9_:]`
/// (other characters become `_`; a leading digit gets a `_` prefix).
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

struct PromVisitor {
    out: String,
}

impl PromVisitor {
    fn histogram_lines(&mut self, name: &str, h: &Histogram) {
        let _ = writeln!(self.out, "# TYPE {name} histogram");
        let counts = h.bucket_counts();
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate().take(HISTOGRAM_BUCKETS) {
            if c == 0 {
                continue;
            }
            cum = cum.saturating_add(c);
            let _ = writeln!(
                self.out,
                "{name}_bucket{{le=\"{}\"}} {cum}",
                Histogram::bucket_le(i)
            );
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(self.out, "{name}_sum {}", h.sum());
        let _ = writeln!(self.out, "{name}_count {}", h.count());
    }
}

impl RegistryVisitor for PromVisitor {
    fn counter(&mut self, name: &str, c: &Counter) {
        let name = prometheus_name(name);
        let _ = writeln!(self.out, "# TYPE {name} counter");
        let _ = writeln!(self.out, "{name} {}", c.value());
    }

    fn gauge(&mut self, name: &str, g: &Gauge) {
        let name = prometheus_name(name);
        let _ = writeln!(self.out, "# TYPE {name} gauge");
        let _ = writeln!(self.out, "{name} {}", g.value());
    }

    fn histogram(&mut self, name: &str, h: &Histogram, is_span: bool) {
        let name = if is_span {
            format!("span:{}", prometheus_name(name))
        } else {
            prometheus_name(name)
        };
        self.histogram_lines(&name, h);
    }
}

/// Renders the registry in the Prometheus text exposition format (see the
/// module docs; events are JSONL-only).
pub fn to_prometheus(reg: &MetricsRegistry) -> String {
    let mut v = PromVisitor {
        out: String::with_capacity(4096),
    };
    reg.visit(&mut v);
    v.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;
    use crate::schema::validate_jsonl;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("routes_delivered_total").add(12);
        reg.gauge("current_epoch").set(3);
        reg.histogram("route_hops").record(0);
        reg.histogram("route_hops").record(5);
        reg.histogram("route_hops").record(u64::MAX);
        reg.span_histogram("build/theorem1").record(1_000_000);
        reg.event(
            Level::Warn,
            "cache.cap_invalid",
            &[
                ("value", "ten".into()),
                ("fallback", 0u64.into()),
                ("ratio", 0.5f64.into()),
                ("mapped", true.into()),
            ],
        );
        reg
    }

    #[test]
    fn jsonl_dump_validates_against_own_schema() {
        let reg = sample_registry();
        let dump = to_jsonl(&reg);
        let summary = validate_jsonl(&dump).expect("self-emitted dump validates");
        assert_eq!(summary.counters, 1);
        assert_eq!(summary.gauges, 1);
        assert_eq!(summary.histograms, 1);
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.events, 1);
    }

    #[test]
    fn jsonl_contains_expected_lines() {
        let dump = to_jsonl(&sample_registry());
        let mut lines = dump.lines();
        let meta = lines.next().unwrap();
        assert!(meta.contains("\"schema\":\"en-obs/v1\""));
        assert!(meta.contains("\"kind\":\"meta\""));
        assert!(
            dump.contains("\"kind\":\"counter\",\"name\":\"routes_delivered_total\",\"value\":12")
        );
        assert!(dump.contains("\"kind\":\"gauge\",\"name\":\"current_epoch\",\"value\":3"));
        // Sparse buckets: 0 → bucket 0, 5 → bucket 3, MAX → bucket 64.
        assert!(dump.contains("\"buckets\":[[0,1],[3,1],[64,1]]"));
        assert!(dump.contains("\"kind\":\"span\",\"name\":\"build/theorem1\""));
        assert!(dump.contains("\"level\":\"warn\""));
        assert!(dump.contains("\"value\":\"ten\""));
        assert!(dump.contains("\"mapped\":true"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = to_prometheus(&sample_registry());
        assert!(text.contains("# TYPE routes_delivered_total counter"));
        assert!(text.contains("routes_delivered_total 12"));
        assert!(text.contains("# TYPE current_epoch gauge"));
        assert!(text.contains("# TYPE route_hops histogram"));
        // Cumulative buckets end at +Inf = count.
        assert!(text.contains("route_hops_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("route_hops_count 3"));
        // Span paths are sanitised; '/' is not a Prometheus name char.
        assert!(text.contains("span:build_theorem1_count 1"));
        assert!(!text.contains("build/theorem1"));
    }

    #[test]
    fn name_sanitisation() {
        assert_eq!(prometheus_name("a/b-c.d"), "a_b_c_d");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("ok_name:x"), "ok_name:x");
        assert_eq!(prometheus_name(""), "_");
    }

    #[test]
    fn json_escaping_and_floats() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_field_value(&FieldValue::F64(f64::NAN)), "null");
        assert_eq!(json_field_value(&FieldValue::F64(2.0)), "2.0");
        assert_eq!(json_field_value(&FieldValue::F64(1.25)), "1.25");
    }
}
