//! `en_obs` — std-only observability for the Elkin–Neiman routing stack.
//!
//! The crate provides three things, with zero dependencies (the
//! environment is offline, so no `tracing`/`prometheus`):
//!
//! 1. **Metrics** — a [`MetricsRegistry`] of lock-free, saturating
//!    [`Counter`]s, [`Gauge`]s, and fixed-bucket log2 [`Histogram`]s that
//!    merge exactly across threads.
//! 2. **Spans** — RAII [`Span`] guards ([`span`]) with a thread-local span
//!    stack and monotonic timing, aggregated as nanosecond histograms per
//!    "/"-joined path.
//! 3. **Exporters** — [`to_jsonl`] (the `en-obs/v1` JSON-lines schema,
//!    mechanically checkable with [`validate_jsonl`]) and
//!    [`to_prometheus`] (Prometheus text exposition).
//!
//! # The recorder seam
//!
//! Instrumented crates never talk to a registry directly; they call the
//! free functions here ([`counter_add`], [`gauge_set`], [`histogram_record`],
//! [`event`], [`span`]), which forward to the process-global [`Recorder`]
//! — if one is [`install`]ed. When none is (the default), every call is a
//! single relaxed atomic load and a predictable branch: no clock reads, no
//! allocation, no locks. That is what keeps the uninstrumented serving
//! path within the ≤2% overhead bound recorded in `BENCH_queries.json`.
//!
//! ```
//! use std::sync::Arc;
//!
//! let registry = Arc::new(en_obs::MetricsRegistry::new());
//! {
//!     let _guard = en_obs::install(registry.clone());
//!     en_obs::counter_add("demo.hits", 3);
//!     let _span = en_obs::span("demo_phase");
//! } // guard drop restores the previous recorder
//! assert_eq!(registry.counter_value("demo.hits"), 3);
//! let dump = en_obs::to_jsonl(&registry);
//! en_obs::validate_jsonl(&dump).expect("schema-clean");
//! ```

mod event;
mod export;
mod metrics;
mod registry;
mod schema;
mod span;

pub use event::{Event, EventBuffer, FieldValue, Level};
pub use export::{to_jsonl, to_prometheus};
pub use metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use registry::{MetricsRegistry, DEFAULT_EVENT_CAPACITY};
pub use schema::{parse_json, validate_jsonl, Json, SchemaError, SchemaSummary};
pub use span::{span, Span};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Sink for observability signals.
///
/// Every method has a no-op default, so a custom recorder only overrides
/// what it cares about. [`MetricsRegistry`] implements the full trait.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to counter `name`.
    fn counter_add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets gauge `name` to `value`.
    fn gauge_set(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Raises gauge `name` to `value` if larger.
    fn gauge_max(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Records `value` into histogram `name`.
    fn histogram_record(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Records a completed span at "/"-joined `path` lasting `dur_ns`.
    fn span_record(&self, path: &str, dur_ns: u64) {
        let _ = (path, dur_ns);
    }

    /// Records a structured event.
    fn event(&self, level: Level, name: &str, fields: &[(&str, FieldValue)]) {
        let _ = (level, name, fields);
    }
}

/// Fast gate: `true` iff a recorder is installed. Checked (relaxed) before
/// any other observability work, so the uninstalled path never takes the
/// `RwLock`.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// `true` iff a recorder is currently installed. One relaxed atomic load —
/// hot paths may hoist this out of loops.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs `recorder` as the process-global sink and returns a guard that
/// restores the previous recorder (usually none) when dropped.
///
/// Installations nest: dropping the guard reinstates whatever was active
/// before, so scoped instrumentation (a bench run, a test) cannot leak
/// into the rest of the process.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub fn install(recorder: Arc<dyn Recorder>) -> InstallGuard {
    let mut slot = RECORDER.write().expect("obs recorder slot poisoned");
    let previous = slot.replace(recorder);
    ACTIVE.store(true, Ordering::Relaxed);
    InstallGuard { previous }
}

/// Guard returned by [`install`]; restores the previously installed
/// recorder (or none) on drop.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub struct InstallGuard {
    previous: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for InstallGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstallGuard")
            .field("restores_previous", &self.previous.is_some())
            .finish()
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let mut slot = RECORDER.write().expect("obs recorder slot poisoned");
        *slot = self.previous.take();
        ACTIVE.store(slot.is_some(), Ordering::Relaxed);
    }
}

/// Runs `f` with the installed recorder, if any. The [`active`] fast gate
/// is checked first, so the uninstalled path is one load and a branch.
#[inline]
pub fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if !active() {
        return;
    }
    if let Some(r) = RECORDER
        .read()
        .expect("obs recorder slot poisoned")
        .as_deref()
    {
        f(r);
    }
}

/// Adds `delta` to counter `name` on the installed recorder, if any.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    with_recorder(|r| r.counter_add(name, delta));
}

/// Sets gauge `name` on the installed recorder, if any.
#[inline]
pub fn gauge_set(name: &str, value: u64) {
    with_recorder(|r| r.gauge_set(name, value));
}

/// Raises gauge `name` to `value` (if larger) on the installed recorder.
#[inline]
pub fn gauge_max(name: &str, value: u64) {
    with_recorder(|r| r.gauge_max(name, value));
}

/// Records `value` into histogram `name` on the installed recorder.
#[inline]
pub fn histogram_record(name: &str, value: u64) {
    with_recorder(|r| r.histogram_record(name, value));
}

/// Records a structured event on the installed recorder, if any.
#[inline]
pub fn event(level: Level, name: &str, fields: &[(&str, FieldValue)]) {
    with_recorder(|r| r.event(level, name, fields));
}

/// Serializes tests that install a global recorder (they share one
/// process-wide slot).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_noops_without_recorder() {
        let _serial = test_lock();
        assert!(!active());
        // None of these should panic, allocate into anything, or install.
        counter_add("c", 1);
        gauge_set("g", 2);
        gauge_max("g", 3);
        histogram_record("h", 4);
        event(Level::Info, "e", &[("k", FieldValue::U64(1))]);
        assert!(!active());
    }

    #[test]
    fn install_guard_nests_and_restores() {
        let _serial = test_lock();
        let outer = Arc::new(MetricsRegistry::new());
        let inner = Arc::new(MetricsRegistry::new());
        {
            let _g1 = install(outer.clone());
            counter_add("hits", 1);
            {
                let _g2 = install(inner.clone());
                counter_add("hits", 10);
            }
            // Inner guard dropped: outer recorder is back.
            counter_add("hits", 2);
            assert!(active());
        }
        assert!(!active());
        counter_add("hits", 100); // into the void
        assert_eq!(outer.counter_value("hits"), 3);
        assert_eq!(inner.counter_value("hits"), 10);
    }

    #[test]
    fn custom_recorder_defaults_are_noops() {
        let _serial = test_lock();
        struct OnlyCounters(Counter);
        impl Recorder for OnlyCounters {
            fn counter_add(&self, _name: &str, delta: u64) {
                self.0.add(delta);
            }
        }
        let rec = Arc::new(OnlyCounters(Counter::new()));
        {
            let _g = install(rec.clone());
            counter_add("a", 5);
            // Defaulted methods: must be callable and do nothing.
            gauge_set("g", 1);
            histogram_record("h", 2);
            event(Level::Warn, "e", &[]);
            let _span = span("s");
        }
        assert_eq!(rec.0.value(), 5);
    }
}
