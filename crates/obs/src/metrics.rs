//! Lock-free metric primitives: counters, gauges, and fixed-bucket log2
//! histograms.
//!
//! Every primitive is a thin wrapper over `AtomicU64`s, so recording from
//! any number of threads needs no lock and no allocation. All arithmetic
//! **saturates instead of panicking or wrapping** — a metric that has been
//! incremented past `u64::MAX` pins there, which keeps the observability
//! plane safe under `-C overflow-checks` and under adversarial inputs
//! alike. Histograms (and whole primitives) are merge-able: merging the
//! per-thread instances of a sharded phase yields exactly the counts a
//! sequential accumulation would have produced (`tests` and
//! `tests/property_obs.rs` prove it).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one for the value `0` plus one per bit
/// width `1..=64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Saturating atomic add: the cell pins at `u64::MAX` instead of wrapping.
fn saturating_fetch_add(cell: &AtomicU64, delta: u64) {
    if delta == 0 {
        return;
    }
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(delta);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `delta`, saturating at `u64::MAX`.
    pub fn add(&self, delta: u64) {
        saturating_fetch_add(&self.value, delta);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Folds another counter's value in (saturating) — the sequential
    /// equivalence of concurrent accumulation.
    pub fn merge_from(&self, other: &Counter) {
        self.add(other.value());
    }
}

/// A last-write-wins gauge (also supports a running maximum).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is larger than the current value.
    pub fn set_max(&self, value: u64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket base-2 logarithmic histogram of `u64` samples.
///
/// Bucket `0` counts the value `0` exactly; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i − 1]` (so its inclusive upper bound is `2^i − 1`, and the
/// top bucket `64` ends at `u64::MAX`). The layout is fixed, so two
/// histograms recorded on different threads merge bucket-by-bucket into
/// exactly what a single sequential histogram would hold. `count` and `sum`
/// saturate rather than panic or wrap.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index a sample lands in: `0` for the value `0`, else the
    /// sample's bit width (`64 − leading_zeros`).
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive upper bound of bucket `i` (`0` for bucket 0, `2^i − 1`
    /// otherwise, saturating to `u64::MAX` for the top bucket).
    pub fn bucket_le(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.count, 1);
        saturating_fetch_add(&self.sum, value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A snapshot of the per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Folds another histogram in bucket-by-bucket (saturating): merging
    /// per-thread histograms equals sequential accumulation exactly.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            saturating_fetch_add(mine, theirs.load(Ordering::Relaxed));
        }
        saturating_fetch_add(&self.count, other.count());
        saturating_fetch_add(&self.sum, other.sum());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_land_exactly() {
        // The satellite bar: 0, 1, every power of two, u64::MAX.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        for bit in 1..64usize {
            let pow = 1u64 << bit;
            // 2^bit opens bucket bit+1; 2^bit − 1 closes bucket bit.
            assert_eq!(Histogram::bucket_index(pow), bit + 1, "2^{bit}");
            assert_eq!(Histogram::bucket_index(pow - 1), bit, "2^{bit}-1");
            assert_eq!(Histogram::bucket_le(bit), pow - 1);
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_le(0), 0);
        assert_eq!(Histogram::bucket_le(64), u64::MAX);
        assert_eq!(Histogram::bucket_le(65), u64::MAX);
        // Every value's bucket upper bound actually bounds it.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_le(i), "{v} in bucket {i}");
            if i > 0 {
                assert!(
                    v > Histogram::bucket_le(i - 1),
                    "{v} above bucket {}",
                    i - 1
                );
            }
        }
    }

    #[test]
    fn histogram_records_and_merges() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 2, 16, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let b = h.bucket_counts();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 2);
        assert_eq!(b[2], 1);
        assert_eq!(b[5], 1);
        assert_eq!(b[64], 1);

        let other = Histogram::new();
        other.record(1);
        other.record(u64::MAX);
        h.merge_from(&other);
        assert_eq!(h.count(), 8);
        assert_eq!(h.bucket_counts()[1], 3);
        assert_eq!(h.bucket_counts()[64], 2);
        // Sum saturates: two u64::MAX samples pin it at the ceiling.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn counter_and_gauge_saturate() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.inc();
        c.inc();
        assert_eq!(c.value(), u64::MAX, "counter saturates, never wraps");
        let d = Counter::new();
        d.add(5);
        d.merge_from(&c);
        assert_eq!(d.value(), u64::MAX);

        let g = Gauge::new();
        g.set(7);
        g.set_max(3);
        assert_eq!(g.value(), 7);
        g.set_max(9);
        assert_eq!(g.value(), 9);
        g.set(2);
        assert_eq!(g.value(), 2);
    }

    #[test]
    fn concurrent_counter_adds_equal_sequential_sum() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..1000u64 {
                        c.add(i % 3);
                    }
                });
            }
        });
        let per_thread: u64 = (0..1000u64).map(|i| i % 3).sum();
        assert_eq!(c.value(), 8 * per_thread);
    }
}
