//! Structured events with a bounded in-memory buffer.
//!
//! Events are the discrete, timestamped half of the plane (publishes,
//! rejections, warnings, drill progress); metrics are the aggregated half.
//! The buffer is a fixed-capacity ring: when full, the **oldest** event is
//! dropped and a drop counter is bumped, so a chatty subsystem can never
//! make the registry grow without bound or lose the most recent context.

use std::collections::VecDeque;
use std::fmt;

/// Severity of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic detail.
    Debug,
    /// Normal operational signal.
    Info,
    /// Something degraded but handled (e.g. a malformed env var).
    Warn,
    /// Something failed.
    Error,
}

impl Level {
    /// The lowercase name used by the `en-obs/v1` schema.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One typed field value of an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A float (exported with `{:.6}` trimming).
    F64(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (assigned at record time, never reused;
    /// gaps reveal drops).
    pub seq: u64,
    /// Microseconds since the registry was created (monotonic clock).
    pub t_us: u64,
    /// Severity.
    pub level: Level,
    /// Event name (dot/underscore style, e.g. `store.publish`).
    pub name: String,
    /// Typed key/value payload.
    pub fields: Vec<(String, FieldValue)>,
}

/// The bounded ring the registry stores events in (callers use
/// [`crate::MetricsRegistry::event`], not this directly).
#[derive(Debug)]
pub struct EventBuffer {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    ring: VecDeque<Event>,
}

impl EventBuffer {
    /// A buffer holding at most `capacity` events (`0` keeps sequence and
    /// drop accounting but stores nothing).
    pub fn new(capacity: usize) -> Self {
        EventBuffer {
            capacity,
            next_seq: 0,
            dropped: 0,
            ring: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Appends an event, dropping the oldest when full. Returns the
    /// assigned sequence number.
    pub fn push(
        &mut self,
        t_us: u64,
        level: Level,
        name: &str,
        fields: Vec<(String, FieldValue)>,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return seq;
        }
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Event {
            seq,
            t_us,
            level,
            name: name.to_string(),
            fields,
        });
        seq
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events ever recorded (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_keeps_sequence() {
        let mut buf = EventBuffer::new(2);
        for i in 0..5u64 {
            let seq = buf.push(i, Level::Info, "e", vec![("i".into(), i.into())]);
            assert_eq!(seq, i);
        }
        assert_eq!(buf.dropped(), 3);
        assert_eq!(buf.recorded(), 5);
        let seqs: Vec<u64> = buf.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4], "newest survive, oldest drop");
    }

    #[test]
    fn zero_capacity_counts_but_stores_nothing() {
        let mut buf = EventBuffer::new(0);
        buf.push(0, Level::Warn, "x", Vec::new());
        assert_eq!(buf.recorded(), 1);
        assert_eq!(buf.dropped(), 1);
        assert_eq!(buf.events().count(), 0);
    }

    #[test]
    fn levels_render_for_the_schema() {
        assert_eq!(Level::Debug.as_str(), "debug");
        assert_eq!(Level::Info.to_string(), "info");
        assert_eq!(Level::Warn.as_str(), "warn");
        assert_eq!(Level::Error.as_str(), "error");
        assert!(Level::Warn > Level::Info);
    }
}
