//! The storage-generic forwarding kernel: one `Find-tree` + one hop loop
//! shared by every representation of a routing scheme.
//!
//! The paper's forwarding decision is a pure function of `from`'s table and
//! `to`'s label, whatever those are stored in. [`next_hop_view`] already
//! makes the *per-hop step* storage-generic; this module does the same for
//! the *query*: [`RouteAccess`] abstracts the handful of lookups a query
//! needs (the `4k−5` own-cluster refinement, the destination's level-ordered
//! label entries, tree membership, and per-tree table resolution), and
//! [`find_tree_via`] / [`forward_via`] run Algorithm 1 and the forwarding
//! loop over any implementation.
//!
//! Three accessors instantiate the kernel: the in-memory
//! [`RoutingScheme`](crate::scheme::RoutingScheme) (via `&RoutingScheme`),
//! and — in `en_wire` — the flat snapshot's fast (panics on poisoned bytes)
//! and checked (returns structured errors) accessor pairs. Because all three
//! share this single loop, their outcomes are bit-identical by construction,
//! not by convention.
//!
//! # The hot-route cache
//!
//! Skewed traffic (the Zipf workloads the serving benches model) resolves
//! the same `(source, destination)` `Find-tree` decision over and over, and
//! that decision — scan the destination's level-ordered label entries,
//! checking tree membership per level — is the expensive prefix of every
//! query. [`RouteCache`] memoises the *decision* (own-label refinement hit,
//! or which label entry won), not the lookup's result views: a cache hit
//! replays the decision through the same accessor ([`find_tree_via_cached`]),
//! re-reading the label from storage, so cached and uncached outcomes are
//! bit-identical by construction on any immutable storage — the cache can
//! change only *how fast* the answer arrives, never the answer.

use en_graph::{NodeId, Path};
use en_tree_routing::{next_hop_view, scheme::TreeRoutingError, LabelView, TableView};

use crate::error::RoutingError;

/// Storage-generic access to one routing scheme, as consumed by the
/// forwarding kernel.
///
/// Implementors are cheap `Copy` handles. Every method returns
/// `Result` so hardened storages (checked snapshot accessors) can surface
/// corruption as [`RoutingError`]s; infallible storages simply never return
/// `Err`.
pub trait RouteAccess: Copy {
    /// The packet-header label view forwarding consumes.
    type Label: LabelView;
    /// The per-vertex table view forwarding consumes.
    type Table: TableView;
    /// A resolved handle to one cluster tree.
    type Tree: Copy;

    /// Number of host vertices.
    fn n(&self) -> usize;

    /// The `4k−5` refinement lookup: `member`'s label in `center`'s own
    /// cluster, if `center` is a level-0 centre storing it.
    fn own_label(
        &self,
        center: NodeId,
        member: NodeId,
    ) -> Result<Option<Self::Label>, RoutingError>;

    /// Number of label entries `to` carries (its per-level pivots).
    fn label_entry_count(&self, to: NodeId) -> Result<usize, RoutingError>;

    /// `to`'s `i`-th label entry, in ascending level order: the pivot, and
    /// `to`'s tree label in the pivot's tree when `to` belongs to it.
    fn label_entry(
        &self,
        to: NodeId,
        i: usize,
    ) -> Result<(NodeId, Option<Self::Label>), RoutingError>;

    /// Whether `v` belongs to the cluster tree rooted at `root` (answered
    /// from `v`'s own table, as a real node would).
    fn in_tree(&self, v: NodeId, root: NodeId) -> Result<bool, RoutingError>;

    /// Resolves the cluster tree rooted at `root`, with its hierarchy level.
    fn tree(&self, root: NodeId) -> Result<Option<(Self::Tree, usize)>, RoutingError>;

    /// The routing table of `v` inside `tree`, if `v` is a member.
    fn table(&self, tree: &Self::Tree, v: NodeId) -> Result<Option<Self::Table>, RoutingError>;

    /// Validates a next-hop vertex id before the kernel steps to it.
    ///
    /// The default accepts everything (a validated storage cannot emit a bad
    /// hop); checked storages override it to bound `next` by `n`.
    fn check_hop(&self, next: NodeId) -> Result<(), RoutingError> {
        let _ = next;
        Ok(())
    }
}

fn check_node(n: usize, v: NodeId) -> Result<(), RoutingError> {
    if v < n {
        Ok(())
    } else {
        Err(RoutingError::NodeOutOfRange { node: v, n })
    }
}

/// The decision code memoised per `(from, to)`: the `4k−5` own-label
/// refinement fired, or the index of the winning label entry.
const DECISION_OWN_LABEL: u32 = u32::MAX;

/// Hit/miss/eviction counters of one [`RouteCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered by replaying a memoised decision.
    pub hits: u64,
    /// Lookups that ran the full `Find-tree` scan (including every lookup
    /// of a disabled, capacity-0 cache).
    pub misses: u64,
    /// Occupied slots overwritten by a different key on insert.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over total lookups, `0.0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// A fixed-capacity, direct-mapped memo of `Find-tree` decisions, keyed on
/// `(from, to)`.
///
/// Capacity is rounded up to a power of two; `0` disables the cache (every
/// lookup is a miss and nothing is stored). The cache holds decision codes
/// only — a hit is replayed through the live accessor, so outcomes stay
/// bit-identical to the uncached scan (see the module docs). One cache must
/// serve one immutable storage; callers that shard batches across threads
/// give each shard its own cache instead of synchronising.
#[derive(Debug, Clone)]
pub struct RouteCache {
    /// Packed `(from << 32) | to` keys; `u64::MAX` marks an empty slot.
    keys: Box<[u64]>,
    /// Decision codes, slot-aligned with `keys`.
    decisions: Box<[u32]>,
    mask: usize,
    stats: CacheStats,
}

/// Sentinel marking an empty cache slot (no valid packed key is all-ones:
/// keys with `from == u32::MAX` are never inserted).
const EMPTY_KEY: u64 = u64::MAX;

impl RouteCache {
    /// Creates a cache with `capacity` rounded up to the next power of two
    /// (`0` stays `0` and disables caching).
    pub fn new(capacity: usize) -> Self {
        let cap = if capacity == 0 {
            0
        } else {
            capacity.next_power_of_two()
        };
        RouteCache {
            keys: vec![EMPTY_KEY; cap].into_boxed_slice(),
            decisions: vec![0u32; cap].into_boxed_slice(),
            mask: cap.wrapping_sub(1),
            stats: CacheStats::default(),
        }
    }

    /// The slot count (a power of two, or `0` when disabled).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Packs a pair into a cache key, or `None` when an endpoint does not
    /// fit 32 bits (such pairs bypass the cache entirely).
    #[inline]
    fn key_of(from: NodeId, to: NodeId) -> Option<u64> {
        if from >= u32::MAX as usize || to >= u32::MAX as usize {
            return None;
        }
        Some(((from as u64) << 32) | to as u64)
    }

    /// Fibonacci-hashed direct-mapped slot of `key`.
    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // The multiplicative hash mixes both halves of the key; taking the
        // high half keeps small capacities (including 1) well distributed
        // without a capacity-dependent shift.
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & self.mask
    }

    #[inline]
    fn lookup(&mut self, key: u64) -> Option<u32> {
        if self.keys.is_empty() {
            return None;
        }
        let slot = self.slot_of(key);
        (self.keys[slot] == key).then(|| self.decisions[slot])
    }

    #[inline]
    fn insert(&mut self, key: u64, decision: u32) {
        if self.keys.is_empty() {
            return;
        }
        let slot = self.slot_of(key);
        if self.keys[slot] != EMPTY_KEY && self.keys[slot] != key {
            self.stats.evictions += 1;
        }
        self.keys[slot] = key;
        self.decisions[slot] = decision;
    }
}

/// Algorithm 1 (`Find-tree`) plus the \[TZ01\] `4k−5` refinement, over any
/// [`RouteAccess`]: the centre of the tree a packet from `from` to `to` will
/// use, and the destination's tree label there.
///
/// # Errors
///
/// Out-of-range vertices, the (low-probability) no-common-tree case, and
/// whatever corruption a checked accessor reports.
pub fn find_tree_via<A: RouteAccess>(
    access: &A,
    from: NodeId,
    to: NodeId,
) -> Result<(NodeId, A::Label), RoutingError> {
    find_tree_decided(access, from, to).map(|(_, root, label)| (root, label))
}

/// The full `Find-tree` scan, additionally reporting *which* decision won
/// (the replayable code [`find_tree_via_cached`] memoises).
fn find_tree_decided<A: RouteAccess>(
    access: &A,
    from: NodeId,
    to: NodeId,
) -> Result<(u32, NodeId, A::Label), RoutingError> {
    check_node(access.n(), from)?;
    check_node(access.n(), to)?;
    // The 4k−5 refinement: `from` is a level-0 centre storing `to`'s label
    // in its own-cluster table.
    if let Some(label) = access.own_label(from, to)? {
        return Ok((DECISION_OWN_LABEL, from, label));
    }
    // Level scan: entries are stored in ascending level order.
    for i in 0..access.label_entry_count(to)? {
        let (pivot, tree_label) = access.label_entry(to, i)?;
        let Some(tree_label) = tree_label else {
            continue; // `to` itself is not in this pivot's tree.
        };
        if access.in_tree(from, pivot)? {
            // Entry indices are per-level pivots, far below the sentinel.
            return Ok((i as u32, pivot, tree_label));
        }
    }
    Err(RoutingError::NoCommonTree { from, to })
}

/// Replays a memoised decision against the live storage: the same one or
/// two reads the decision named when it was recorded. Returns `Ok(None)`
/// when the decision no longer resolves (impossible on the immutable
/// storage it was recorded from; the caller then falls back to the full
/// scan).
fn replay_decision<A: RouteAccess>(
    access: &A,
    from: NodeId,
    to: NodeId,
    decision: u32,
) -> Result<Option<(NodeId, A::Label)>, RoutingError> {
    if decision == DECISION_OWN_LABEL {
        return Ok(access.own_label(from, to)?.map(|label| (from, label)));
    }
    let i = decision as usize;
    if i >= access.label_entry_count(to)? {
        return Ok(None);
    }
    let (pivot, tree_label) = access.label_entry(to, i)?;
    Ok(tree_label.map(|label| (pivot, label)))
}

/// [`find_tree_via`] fronted by a [`RouteCache`]: a hit replays the
/// memoised decision through `access` (bit-identical by construction), a
/// miss runs the full scan and memoises the winning decision. Errors
/// (out-of-range vertices, no common tree, storage corruption) are never
/// cached.
///
/// # Errors
///
/// Exactly what [`find_tree_via`] reports.
pub fn find_tree_via_cached<A: RouteAccess>(
    access: &A,
    cache: &mut RouteCache,
    from: NodeId,
    to: NodeId,
) -> Result<(NodeId, A::Label), RoutingError> {
    let Some(key) = RouteCache::key_of(from, to) else {
        // Endpoints beyond 32 bits bypass the cache (and its counters).
        return find_tree_via(access, from, to);
    };
    if let Some(decision) = cache.lookup(key) {
        if let Some((root, label)) = replay_decision(access, from, to, decision)? {
            cache.stats.hits += 1;
            return Ok((root, label));
        }
    }
    cache.stats.misses += 1;
    let (decision, root, label) = find_tree_decided(access, from, to)?;
    cache.insert(key, decision);
    Ok((root, label))
}

/// THE forwarding loop: [`find_tree_via`], then hop-by-hop
/// [`next_hop_view`] steps through the chosen tree until arrival, bounded
/// by `n + 1` hops. Returns the tree root, its level, and the traversed
/// path.
///
/// # Errors
///
/// Everything [`find_tree_via`] reports, a vertex falling out of the tree
/// mid-route, a hop budget overrun (both impossible on a consistent
/// scheme), and whatever corruption a checked accessor reports.
pub fn forward_via<A: RouteAccess>(
    access: &A,
    from: NodeId,
    to: NodeId,
) -> Result<(NodeId, usize, Path), RoutingError> {
    let (root, header_label) = find_tree_via(access, from, to)?;
    forward_in_tree(access, from, to, root, header_label)
}

/// [`forward_via`] with its `Find-tree` fronted by a [`RouteCache`]
/// ([`find_tree_via_cached`]); the hop loop itself still walks the stored
/// tables, so a cached route traverses exactly the path the uncached one
/// does.
///
/// # Errors
///
/// Exactly what [`forward_via`] reports.
pub fn forward_via_cached<A: RouteAccess>(
    access: &A,
    cache: &mut RouteCache,
    from: NodeId,
    to: NodeId,
) -> Result<(NodeId, usize, Path), RoutingError> {
    let (root, header_label) = find_tree_via_cached(access, cache, from, to)?;
    forward_in_tree(access, from, to, root, header_label)
}

/// The shared hop loop after a `Find-tree` decision (cached or not).
fn forward_in_tree<A: RouteAccess>(
    access: &A,
    from: NodeId,
    to: NodeId,
    root: NodeId,
    header_label: A::Label,
) -> Result<(NodeId, usize, Path), RoutingError> {
    let (tree, level) = access
        .tree(root)?
        .ok_or_else(|| RoutingError::TreeRouting(format!("no cluster for centre {root}")))?;
    // Tree routes are short (≤ 2·depth of a cluster tree); reserve enough
    // that typical routes never reallocate mid-loop.
    let mut path = Path::trivial_with_capacity(from, 16);
    let mut current = from;
    for _ in 0..=access.n() {
        let table = access
            .table(&tree, current)?
            .ok_or(TreeRoutingError::NotInTree { vertex: current })?;
        match next_hop_view(table, header_label)? {
            None => return Ok((root, level, path)),
            Some(next) => {
                access.check_hop(next)?;
                path.push(next);
                current = next;
            }
        }
    }
    Err(RoutingError::TreeRouting(format!(
        "forwarding from {from} to {to} through tree {root} did not terminate"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_cluster_family;
    use crate::hierarchy::Hierarchy;
    use crate::params::SchemeParams;
    use crate::scheme::RoutingScheme;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    fn scheme(n: usize, k: usize, seed: u64) -> RoutingScheme {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 30), 0.1);
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        RoutingScheme::assemble(&family, seed)
    }

    #[test]
    fn cache_capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(RouteCache::new(0).capacity(), 0);
        assert_eq!(RouteCache::new(1).capacity(), 1);
        assert_eq!(RouteCache::new(3).capacity(), 4);
        assert_eq!(RouteCache::new(64).capacity(), 64);
        assert_eq!(RouteCache::new(100).capacity(), 128);
    }

    #[test]
    fn cached_routing_is_bit_identical_at_every_capacity() {
        let s = scheme(40, 2, 9);
        let access = &s;
        for capacity in [0usize, 1, 64, 4096] {
            let mut cache = RouteCache::new(capacity);
            // Two passes: the second replays cached decisions on cap > 0.
            for _pass in 0..2 {
                for from in 0..s.n() as NodeId {
                    for to in 0..s.n() as NodeId {
                        if from == to {
                            continue;
                        }
                        let plain = forward_via(&access, from, to).unwrap();
                        let cached = forward_via_cached(&access, &mut cache, from, to).unwrap();
                        assert_eq!(plain, cached, "cap {capacity}: {from}->{to}");
                    }
                }
            }
            let stats = cache.stats();
            let pairs = (s.n() * (s.n() - 1)) as u64;
            assert_eq!(stats.hits + stats.misses, 2 * pairs);
            if capacity == 0 {
                assert_eq!(stats.hits, 0, "a disabled cache never hits");
            } else if capacity as u64 >= pairs {
                // Smaller capacities legitimately never hit here: a strict
                // sweep over all pairs cycles more keys through every slot
                // than the slot can hold, so each revisit finds a later key.
                assert!(stats.hits > 0, "cap {capacity} should replay some pairs");
            }
            assert!(stats.evictions <= stats.misses);
        }
    }

    #[test]
    fn a_one_slot_cache_counts_evictions_and_hits() {
        let s = scheme(30, 2, 4);
        let access = &s;
        let mut cache = RouteCache::new(1);
        // Same pair back-to-back: miss then hit.
        forward_via_cached(&access, &mut cache, 0, 5).unwrap();
        forward_via_cached(&access, &mut cache, 0, 5).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        // A different pair lands in the only slot and evicts.
        forward_via_cached(&access, &mut cache, 1, 7).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        // The evicted pair misses again.
        forward_via_cached(&access, &mut cache, 0, 5).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 3);
        let rate = cache.stats().hit_rate();
        assert!((rate - 0.25).abs() < 1e-12, "hit rate {rate}");
    }

    #[test]
    fn merged_stats_add_fieldwise() {
        let mut a = CacheStats {
            hits: 3,
            misses: 5,
            evictions: 1,
        };
        let b = CacheStats {
            hits: 7,
            misses: 11,
            evictions: 2,
        };
        a.merge(&b);
        assert_eq!(
            a,
            CacheStats {
                hits: 10,
                misses: 16,
                evictions: 3,
            }
        );
    }
}
