//! The storage-generic forwarding kernel: one `Find-tree` + one hop loop
//! shared by every representation of a routing scheme.
//!
//! The paper's forwarding decision is a pure function of `from`'s table and
//! `to`'s label, whatever those are stored in. [`next_hop_view`] already
//! makes the *per-hop step* storage-generic; this module does the same for
//! the *query*: [`RouteAccess`] abstracts the handful of lookups a query
//! needs (the `4k−5` own-cluster refinement, the destination's level-ordered
//! label entries, tree membership, and per-tree table resolution), and
//! [`find_tree_via`] / [`forward_via`] run Algorithm 1 and the forwarding
//! loop over any implementation.
//!
//! Three accessors instantiate the kernel: the in-memory
//! [`RoutingScheme`](crate::scheme::RoutingScheme) (via `&RoutingScheme`),
//! and — in `en_wire` — the flat snapshot's fast (panics on poisoned bytes)
//! and checked (returns structured errors) accessor pairs. Because all three
//! share this single loop, their outcomes are bit-identical by construction,
//! not by convention.

use en_graph::{NodeId, Path};
use en_tree_routing::{next_hop_view, scheme::TreeRoutingError, LabelView, TableView};

use crate::error::RoutingError;

/// Storage-generic access to one routing scheme, as consumed by the
/// forwarding kernel.
///
/// Implementors are cheap `Copy` handles. Every method returns
/// `Result` so hardened storages (checked snapshot accessors) can surface
/// corruption as [`RoutingError`]s; infallible storages simply never return
/// `Err`.
pub trait RouteAccess: Copy {
    /// The packet-header label view forwarding consumes.
    type Label: LabelView;
    /// The per-vertex table view forwarding consumes.
    type Table: TableView;
    /// A resolved handle to one cluster tree.
    type Tree: Copy;

    /// Number of host vertices.
    fn n(&self) -> usize;

    /// The `4k−5` refinement lookup: `member`'s label in `center`'s own
    /// cluster, if `center` is a level-0 centre storing it.
    fn own_label(
        &self,
        center: NodeId,
        member: NodeId,
    ) -> Result<Option<Self::Label>, RoutingError>;

    /// Number of label entries `to` carries (its per-level pivots).
    fn label_entry_count(&self, to: NodeId) -> Result<usize, RoutingError>;

    /// `to`'s `i`-th label entry, in ascending level order: the pivot, and
    /// `to`'s tree label in the pivot's tree when `to` belongs to it.
    fn label_entry(
        &self,
        to: NodeId,
        i: usize,
    ) -> Result<(NodeId, Option<Self::Label>), RoutingError>;

    /// Whether `v` belongs to the cluster tree rooted at `root` (answered
    /// from `v`'s own table, as a real node would).
    fn in_tree(&self, v: NodeId, root: NodeId) -> Result<bool, RoutingError>;

    /// Resolves the cluster tree rooted at `root`, with its hierarchy level.
    fn tree(&self, root: NodeId) -> Result<Option<(Self::Tree, usize)>, RoutingError>;

    /// The routing table of `v` inside `tree`, if `v` is a member.
    fn table(&self, tree: &Self::Tree, v: NodeId) -> Result<Option<Self::Table>, RoutingError>;

    /// Validates a next-hop vertex id before the kernel steps to it.
    ///
    /// The default accepts everything (a validated storage cannot emit a bad
    /// hop); checked storages override it to bound `next` by `n`.
    fn check_hop(&self, next: NodeId) -> Result<(), RoutingError> {
        let _ = next;
        Ok(())
    }
}

fn check_node(n: usize, v: NodeId) -> Result<(), RoutingError> {
    if v < n {
        Ok(())
    } else {
        Err(RoutingError::NodeOutOfRange { node: v, n })
    }
}

/// Algorithm 1 (`Find-tree`) plus the \[TZ01\] `4k−5` refinement, over any
/// [`RouteAccess`]: the centre of the tree a packet from `from` to `to` will
/// use, and the destination's tree label there.
///
/// # Errors
///
/// Out-of-range vertices, the (low-probability) no-common-tree case, and
/// whatever corruption a checked accessor reports.
pub fn find_tree_via<A: RouteAccess>(
    access: &A,
    from: NodeId,
    to: NodeId,
) -> Result<(NodeId, A::Label), RoutingError> {
    check_node(access.n(), from)?;
    check_node(access.n(), to)?;
    // The 4k−5 refinement: `from` is a level-0 centre storing `to`'s label
    // in its own-cluster table.
    if let Some(label) = access.own_label(from, to)? {
        return Ok((from, label));
    }
    // Level scan: entries are stored in ascending level order.
    for i in 0..access.label_entry_count(to)? {
        let (pivot, tree_label) = access.label_entry(to, i)?;
        let Some(tree_label) = tree_label else {
            continue; // `to` itself is not in this pivot's tree.
        };
        if access.in_tree(from, pivot)? {
            return Ok((pivot, tree_label));
        }
    }
    Err(RoutingError::NoCommonTree { from, to })
}

/// THE forwarding loop: [`find_tree_via`], then hop-by-hop
/// [`next_hop_view`] steps through the chosen tree until arrival, bounded
/// by `n + 1` hops. Returns the tree root, its level, and the traversed
/// path.
///
/// # Errors
///
/// Everything [`find_tree_via`] reports, a vertex falling out of the tree
/// mid-route, a hop budget overrun (both impossible on a consistent
/// scheme), and whatever corruption a checked accessor reports.
pub fn forward_via<A: RouteAccess>(
    access: &A,
    from: NodeId,
    to: NodeId,
) -> Result<(NodeId, usize, Path), RoutingError> {
    let (root, header_label) = find_tree_via(access, from, to)?;
    let (tree, level) = access
        .tree(root)?
        .ok_or_else(|| RoutingError::TreeRouting(format!("no cluster for centre {root}")))?;
    // Tree routes are short (≤ 2·depth of a cluster tree); reserve enough
    // that typical routes never reallocate mid-loop.
    let mut path = Path::trivial_with_capacity(from, 16);
    let mut current = from;
    for _ in 0..=access.n() {
        let table = access
            .table(&tree, current)?
            .ok_or(TreeRoutingError::NotInTree { vertex: current })?;
        match next_hop_view(table, header_label)? {
            None => return Ok((root, level, path)),
            Some(next) => {
                access.check_hop(next)?;
                path.push(next);
                current = next;
            }
        }
    }
    Err(RoutingError::TreeRouting(format!(
        "forwarding from {from} to {to} through tree {root} did not terminate"
    )))
}
