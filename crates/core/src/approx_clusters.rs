//! Approximate clusters (Section 3 of the paper).
//!
//! For a centre `u ∈ A_i \ A_{i+1}` the *approximate cluster* `C̃(u)` is any
//! set with `C_{6ε}(u) ⊆ C̃(u) ⊆ C(u)` (inequality (9)), stored as a tree
//! rooted at `u` whose root distances satisfy
//! `d_G(u,v) ≤ d_{C̃(u)}(u,v) ≤ (1+ε)⁴ d_G(u,v)` (inequality (10)).
//!
//! Three constructions are used depending on the level:
//!
//! * **Small scales** `i < ⌈k/2⌉` (§3.2): exact clusters by depth-bounded
//!   Bellman–Ford with join condition `b_v(u) < d_G(v, A_{i+1})`.
//! * **Middle level** `i = (k−1)/2` for odd `k` (§3.2): Theorem 1 from the
//!   centres with `B = 4 n^{(i+1)/k} ln n`, join condition
//!   `b_v(u) < d_G(v, A_{i+1})`, parents from Remark 1.
//! * **Large scales** `i ≥ ⌈k/2⌉` (§3.3): three phases on the virtual graph:
//!   Phase 1 runs `β` iterations of depth-bounded Bellman–Ford on
//!   `G'' = G' ∪ F` with join condition (14); Phase 1.5 pulls the realising
//!   path of every used hopset edge into the virtual tree so that every
//!   member's virtual parent is a `G'` edge; Phase 2 extends the virtual tree
//!   to all of `V` via the Theorem-1 values with join condition (15), and
//!   real parents come from Remark 1.

use std::collections::HashMap;

use en_congest::broadcast::lemma1_rounds;
use en_congest::RoundLedger;
use en_congest_algos::theorem1::multi_source_hop_bounded_opts;
use en_graph::forest::{ClusterForest, ClusterForestBuilder, ForestMember};
use en_graph::restricted::restricted_multi_source_csr_opts;
use en_graph::{
    is_finite, BuildOptions, BuildStats, Dist, NodeId, NodeMap, Weight, WeightedGraph, INFINITY,
};

use crate::exact::{grow_exact_clusters_batched_with_pivots_into_opts, membership_thresholds};
use crate::hierarchy::Hierarchy;
use crate::params::SchemeParams;
use crate::preprocess::Preprocessing;

/// Diagnostics of the approximate-cluster construction.
#[derive(Debug, Clone, Default)]
pub struct ClusterDiagnostics {
    /// Number of members whose recorded parent was not itself a member and had
    /// to be repaired (a low-probability event; see DESIGN.md).
    pub parent_fixups: usize,
    /// Number of cluster trees built per level.
    pub clusters_per_level: HashMap<usize, usize>,
    /// Number of simulated CONGEST runs that were cut off by the simulator's
    /// round limit before quiescence (should be 0; the harness bins warn when
    /// it is not, because the reported round counts would be truncated).
    pub round_limit_hits: usize,
}

/// Output of the approximate-cluster construction for a set of levels.
#[derive(Debug, Clone)]
pub struct ApproxClusters {
    /// The clusters, one per centre of the covered levels, in the compact
    /// arena representation (construction absorbs the per-phase forests into
    /// the family's shared arena).
    pub forest: ClusterForest,
    /// Round charges.
    pub ledger: RoundLedger,
    /// Diagnostics.
    pub diagnostics: ClusterDiagnostics,
}

/// Builds the small-scale clusters (levels `i < ⌈k/2⌉`, excluding the odd-`k`
/// middle level, which has its own routine): every level is grown by one
/// batched restricted multi-source pass over a shared CSR view (all centres
/// of the level share the threshold vector `d̂_{i+1}(·)`), replacing the old
/// one-heap-Dijkstra-per-centre loop.
pub fn small_scale_clusters(
    g: &WeightedGraph,
    hierarchy: &Hierarchy,
    params: &SchemeParams,
    pivots: &[Vec<Option<(NodeId, Dist)>>],
) -> ApproxClusters {
    let mut builder = ClusterForestBuilder::new(g.num_nodes());
    let (ledger, diagnostics) =
        small_scale_clusters_into(g, hierarchy, params, pivots, &mut builder);
    ApproxClusters {
        forest: builder.finish(),
        ledger,
        diagnostics,
    }
}

/// [`small_scale_clusters`] appending into a caller-owned builder, so the
/// end-to-end construction pays for the membership CSR once at the family's
/// final `finish()` instead of once per phase.
pub fn small_scale_clusters_into(
    g: &WeightedGraph,
    hierarchy: &Hierarchy,
    params: &SchemeParams,
    pivots: &[Vec<Option<(NodeId, Dist)>>],
    builder: &mut ClusterForestBuilder,
) -> (RoundLedger, ClusterDiagnostics) {
    let mut stats = BuildStats::default();
    small_scale_clusters_into_opts(
        g,
        hierarchy,
        params,
        pivots,
        builder,
        &BuildOptions::sequential(),
        &mut stats,
    )
}

/// [`small_scale_clusters_into`] with a thread-count knob: every level's
/// batched restricted sweep and forest pushes run sharded (bit-identically
/// to the sequential path); per-thread work accounting is absorbed into
/// `stats`.
pub fn small_scale_clusters_into_opts(
    g: &WeightedGraph,
    hierarchy: &Hierarchy,
    params: &SchemeParams,
    pivots: &[Vec<Option<(NodeId, Dist)>>],
    builder: &mut ClusterForestBuilder,
    opts: &BuildOptions,
    stats: &mut BuildStats,
) -> (RoundLedger, ClusterDiagnostics) {
    let mut ledger = RoundLedger::new();
    let mut diagnostics = ClusterDiagnostics::default();
    let half = params.half_k();
    let middle = params.middle_level();
    let csr = en_graph::CsrGraph::from_graph(g);
    for i in 0..half.min(params.k) {
        if Some(i) == middle {
            continue;
        }
        let centers = hierarchy.centers_at(i);
        if centers.is_empty() {
            continue;
        }
        let threshold = membership_thresholds(pivots, i);
        let (pushed, level_stats) = grow_exact_clusters_batched_with_pivots_into_opts(
            &csr, &centers, i, &threshold, pivots, builder, opts,
        );
        stats.absorb(&level_stats);
        let mut level_overlap = vec![0usize; g.num_nodes()];
        for id in pushed {
            for &v in builder.members_of(id) {
                level_overlap[v as usize] += 1;
            }
        }
        diagnostics.clusters_per_level.insert(i, centers.len());
        let congestion = level_overlap.into_iter().max().unwrap_or(1).max(1);
        let iterations = params.exploration_depth(i + 1);
        ledger.charge(
            format!("small-scale clusters, level {i}: depth-bounded Bellman-Ford"),
            iterations * congestion,
            format!(
                "4 n^{{({i}+1)/{k}}} ln n = {iterations} iterations x measured congestion {congestion} (Claim 2 bounds it by O~(n^{{1/{k}}}))",
                k = params.k
            ),
        );
    }
    (ledger, diagnostics)
}

/// Builds the odd-`k` middle-level clusters via Theorem 1 (§3.2, "The middle level").
pub fn middle_level_clusters(
    g: &WeightedGraph,
    hierarchy: &Hierarchy,
    params: &SchemeParams,
    pivots: &[Vec<Option<(NodeId, Dist)>>],
    hop_diameter: usize,
) -> ApproxClusters {
    let mut builder = ClusterForestBuilder::new(g.num_nodes());
    let (ledger, diagnostics) =
        middle_level_clusters_into(g, hierarchy, params, pivots, hop_diameter, &mut builder);
    ApproxClusters {
        forest: builder.finish(),
        ledger,
        diagnostics,
    }
}

/// [`middle_level_clusters`] appending into a caller-owned builder.
pub fn middle_level_clusters_into(
    g: &WeightedGraph,
    hierarchy: &Hierarchy,
    params: &SchemeParams,
    pivots: &[Vec<Option<(NodeId, Dist)>>],
    hop_diameter: usize,
    builder: &mut ClusterForestBuilder,
) -> (RoundLedger, ClusterDiagnostics) {
    let mut stats = BuildStats::default();
    middle_level_clusters_into_opts(
        g,
        hierarchy,
        params,
        pivots,
        hop_diameter,
        builder,
        &BuildOptions::sequential(),
        &mut stats,
    )
}

/// [`middle_level_clusters_into`] with a thread-count knob: the Theorem-1
/// sweep from the middle-level centres runs sharded; per-thread work
/// accounting is absorbed into `stats`.
#[allow(clippy::too_many_arguments)]
pub fn middle_level_clusters_into_opts(
    g: &WeightedGraph,
    hierarchy: &Hierarchy,
    params: &SchemeParams,
    pivots: &[Vec<Option<(NodeId, Dist)>>],
    hop_diameter: usize,
    builder: &mut ClusterForestBuilder,
    opts: &BuildOptions,
    stats: &mut BuildStats,
) -> (RoundLedger, ClusterDiagnostics) {
    let mut ledger = RoundLedger::new();
    let mut diagnostics = ClusterDiagnostics::default();
    let Some(i) = params.middle_level() else {
        return (ledger, diagnostics);
    };
    let centers = hierarchy.centers_at(i);
    if centers.is_empty() {
        return (ledger, diagnostics);
    }
    let b = params.exploration_depth(i + 1);
    let eps = params.epsilon();
    let (t1, t1_stats) =
        multi_source_hop_bounded_opts(g, &centers, b, eps.max(1e-9), hop_diameter, opts);
    stats.absorb(&t1_stats);
    ledger.absorb(t1.ledger.clone());
    let threshold = membership_thresholds(pivots, i);
    for (ci, &center) in centers.iter().enumerate() {
        let mut estimate: NodeMap<Dist> = NodeMap::default();
        let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
        estimate.insert(center, 0);
        let dist_row = t1.dist_row(ci);
        let parent_row = t1.parent_row(ci);
        for v in g.nodes() {
            if v == center {
                continue;
            }
            let bv = dist_row[v];
            if is_finite(bv) && bv < threshold[v] {
                estimate.insert(v, bv);
                if let Some(p) = parent_row[v] {
                    parent.insert(v, p);
                }
            }
        }
        diagnostics.parent_fixups +=
            assemble_cluster_tree_into(builder, g, center, i, estimate, parent);
    }
    diagnostics.clusters_per_level.insert(i, centers.len());
    (ledger, diagnostics)
}

/// Builds the large-scale clusters (levels `i ≥ ⌈k/2⌉`) with the three-phase
/// virtual-graph construction of §3.3.2.
pub fn large_scale_clusters(
    g: &WeightedGraph,
    hierarchy: &Hierarchy,
    params: &SchemeParams,
    pivots: &[Vec<Option<(NodeId, Dist)>>],
    pre: &Preprocessing,
    hop_diameter: usize,
) -> ApproxClusters {
    let mut builder = ClusterForestBuilder::new(g.num_nodes());
    let (ledger, diagnostics) = large_scale_clusters_into(
        g,
        hierarchy,
        params,
        pivots,
        pre,
        hop_diameter,
        &mut builder,
    );
    ApproxClusters {
        forest: builder.finish(),
        ledger,
        diagnostics,
    }
}

/// [`large_scale_clusters`] appending into a caller-owned builder.
#[allow(clippy::too_many_arguments)]
pub fn large_scale_clusters_into(
    g: &WeightedGraph,
    hierarchy: &Hierarchy,
    params: &SchemeParams,
    pivots: &[Vec<Option<(NodeId, Dist)>>],
    pre: &Preprocessing,
    hop_diameter: usize,
    builder: &mut ClusterForestBuilder,
) -> (RoundLedger, ClusterDiagnostics) {
    let mut stats = BuildStats::default();
    large_scale_clusters_into_opts(
        g,
        hierarchy,
        params,
        pivots,
        pre,
        hop_diameter,
        builder,
        &BuildOptions::sequential(),
        &mut stats,
    )
}

/// [`large_scale_clusters_into`] with a thread-count knob: each level's
/// Phase-1 depth-bounded exploration on `G''` runs sharded over the level's
/// centres (the per-centre Phase 1.5 / Phase 2 passes stay sequential —
/// they are reads of the batched results); per-thread work accounting is
/// absorbed into `stats`.
#[allow(clippy::too_many_arguments)]
pub fn large_scale_clusters_into_opts(
    g: &WeightedGraph,
    hierarchy: &Hierarchy,
    params: &SchemeParams,
    pivots: &[Vec<Option<(NodeId, Dist)>>],
    pre: &Preprocessing,
    hop_diameter: usize,
    builder: &mut ClusterForestBuilder,
    opts: &BuildOptions,
    stats: &mut BuildStats,
) -> (RoundLedger, ClusterDiagnostics) {
    let mut ledger = RoundLedger::new();
    let mut diagnostics = ClusterDiagnostics::default();
    let eps = params.epsilon();
    let half = params.half_k();
    let m = pre.m();
    let one_plus_eps = 1.0 + eps;

    // Precompute, for every hopset edge, the prefix distances along its
    // realising path in G' (needed by Phase 1.5).
    let hopset_paths: Vec<(Vec<usize>, Vec<Dist>)> = pre
        .hopset
        .edges()
        .iter()
        .map(|e| {
            let nodes: Vec<usize> = e.path.nodes().to_vec();
            let mut prefix = vec![0; nodes.len()];
            for idx in 1..nodes.len() {
                let w = pre
                    .gprime
                    .edge_weight(nodes[idx - 1], nodes[idx])
                    .expect("realising path uses G' edges");
                prefix[idx] = prefix[idx - 1] + w;
            }
            (nodes, prefix)
        })
        .collect();

    // The restricted kernel runs on a plain CSR view of G''; edge provenance
    // (original vs hopset) is recovered per recovered parent arc, which is
    // unambiguous because G'' holds no parallel edges.
    let aug_csr = pre.augmented.to_csr();
    let mut total_virtual_members = 0usize;
    for i in half..params.k {
        let centers = hierarchy.centers_at(i);
        if centers.is_empty() {
            continue;
        }
        let threshold = membership_thresholds(pivots, i);
        // ---- Phase 1: β iterations of depth-bounded Bellman-Ford on G'',
        // ---- batched over every centre of the level at once. The join test
        // ---- (14), `b_v(u) < d̂_{i+1}(v) / (1+ε)^3`, is integerised into the
        // ---- kernel's strict threshold: an integer b satisfies `b < T` for
        // ---- real `T = thr / (1+ε)^3` iff `b < ⌈T⌉`.
        let vthreshold: Vec<Dist> = (0..m)
            .map(|xi| {
                let thr = threshold[pre.original(xi)];
                if thr == INFINITY {
                    INFINITY
                } else {
                    (thr as f64 / one_plus_eps.powi(3)).ceil() as Dist
                }
            })
            .collect();
        let cus: Vec<usize> = centers
            .iter()
            .map(|&c| {
                pre.virtual_index(c)
                    .expect("large-scale centre is in A_i ⊆ A_{⌈k/2⌉} = V'")
            })
            .collect();
        let (phase1, phase1_stats) =
            restricted_multi_source_csr_opts(&aug_csr, &cus, &vthreshold, Some(pre.beta), opts);
        stats.absorb(&phase1_stats);
        for (s, &center) in centers.iter().enumerate() {
            let cu = cus[s];
            // Per-centre Phase-1 state, read off the batched result: levelled
            // β-sweep distances, the joined set, and virtual parents with
            // hopset provenance for Phase 1.5.
            let mut vdist: Vec<Dist> = phase1.dist_row(s);
            let mut vparent: Vec<Option<(usize, Option<usize>)>> = vec![None; m];
            let mut joined = vec![false; m];
            for y in phase1.members_of(s) {
                joined[y] = true;
                if y == cu {
                    continue;
                }
                if let Some((x, _)) = phase1.parent_of(s, y) {
                    vparent[y] = Some((x, pre.augmented.provenance(x, y)));
                }
            }

            // ---- Phase 1.5: pull realising paths of used hopset edges. ----
            for y in 0..m {
                if !joined[y] {
                    continue;
                }
                let Some((x, Some(hidx))) = vparent[y] else {
                    continue;
                };
                let (nodes, prefix) = &hopset_paths[hidx];
                // Orient the path from x to y.
                let forward = nodes.first() == Some(&x);
                let len = nodes.len();
                for (pos_raw, &z) in nodes.iter().enumerate() {
                    let (pos_from_x, neighbor_towards_x) = if forward {
                        (
                            pos_raw,
                            if pos_raw > 0 {
                                Some(nodes[pos_raw - 1])
                            } else {
                                None
                            },
                        )
                    } else {
                        (
                            len - 1 - pos_raw,
                            if pos_raw + 1 < len {
                                Some(nodes[pos_raw + 1])
                            } else {
                                None
                            },
                        )
                    };
                    if z == x {
                        continue;
                    }
                    let d_xz = if forward {
                        prefix[pos_raw]
                    } else {
                        prefix[len - 1] - prefix[pos_raw]
                    };
                    debug_assert_eq!(d_xz, {
                        let _ = pos_from_x;
                        d_xz
                    });
                    let cand = vdist[x].saturating_add(d_xz).min(INFINITY);
                    // Paper uses "at least" (>=) so that even the endpoint y
                    // re-parents onto a G' edge along the path.
                    if is_finite(cand) && vdist[z] >= cand {
                        vdist[z] = cand;
                        joined[z] = true;
                        if let Some(towards_x) = neighbor_towards_x {
                            vparent[z] = Some((towards_x, None));
                        }
                    }
                }
            }

            // ---- Real parents for the virtual members (Remark 1). ----
            let mut estimate: NodeMap<Dist> = NodeMap::default();
            let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
            estimate.insert(center, 0);
            let mut virtual_members = Vec::new();
            for v in 0..m {
                if !joined[v] || v == cu {
                    continue;
                }
                virtual_members.push(v);
                let orig = pre.original(v);
                estimate.insert(orig, vdist[v]);
                if let Some((vp, _)) = vparent[v] {
                    let vp_orig = pre.original(vp);
                    if let Some(p) = pre.parent_towards(orig, vp_orig) {
                        parent.insert(orig, p);
                    }
                }
            }
            total_virtual_members += virtual_members.len() + 1;

            // ---- Phase 2: extend to all of V through the Theorem-1 values,
            // ---- reading each virtual member's flat distance row once. ----
            let centre_row = pre.theorem1.dist_row(cu);
            let member_rows: Vec<(&[Dist], Dist, NodeId)> = virtual_members
                .iter()
                .map(|&v| (pre.theorem1.dist_row(v), vdist[v], pre.original(v)))
                .collect();
            for y in g.nodes() {
                if estimate.contains_key(&y) {
                    continue;
                }
                let mut best: Option<(Dist, NodeId)> = None;
                // The centre itself broadcasts b_u(u) = 0 as well.
                let centre_d = centre_row[y];
                if is_finite(centre_d) {
                    best = Some((centre_d, center));
                }
                for &(row, dv, x) in &member_rows {
                    let dyx = row[y];
                    if !is_finite(dyx) {
                        continue;
                    }
                    let cand = dyx.saturating_add(dv).min(INFINITY);
                    if best.is_none_or(|(bd, _)| cand < bd) {
                        best = Some((cand, x));
                    }
                }
                if let Some((val, via)) = best {
                    let thr = threshold[y];
                    let joins = thr == INFINITY || (val as f64) < thr as f64 / one_plus_eps;
                    if joins {
                        estimate.insert(y, val);
                        if let Some(p) = pre.parent_towards(y, via) {
                            parent.insert(y, p);
                        }
                    }
                }
            }

            diagnostics.parent_fixups +=
                assemble_cluster_tree_into(builder, g, center, i, estimate, parent);
        }
        diagnostics.clusters_per_level.insert(i, centers.len());
    }

    // Round charges: β Bellman-Ford iterations on G'' where every virtual
    // vertex announces at most Õ(n^{1/k}) estimates per iteration (Claim 2),
    // collected and re-broadcast over a BFS tree (Lemma 1), plus one broadcast
    // each for Phases 1.5 and 2.
    let per_iteration_messages = total_virtual_members.max(1);
    ledger.charge(
        "large-scale clusters, phase 1",
        pre.beta * lemma1_rounds(per_iteration_messages, hop_diameter),
        format!(
            "beta = {} iterations x Lemma 1 with M = sum_u |C~'(u)| = {}",
            pre.beta, per_iteration_messages
        ),
    );
    ledger.charge(
        "large-scale clusters, phases 1.5 + 2",
        2 * lemma1_rounds(per_iteration_messages, hop_diameter),
        format!("2 broadcasts of {per_iteration_messages} estimates (Lemma 1)"),
    );

    (ledger, diagnostics)
}

/// Turns a membership/estimate/parent assignment into a cluster of the forest
/// arena, repairing the (low-probability) cases where a member's recorded
/// parent is missing or would create an inconsistency. Works entirely on the
/// member set — no host-sized tree is materialised. Returns the number of
/// repairs.
fn assemble_cluster_tree_into(
    builder: &mut ClusterForestBuilder,
    g: &WeightedGraph,
    center: NodeId,
    level: usize,
    mut estimate: NodeMap<Dist>,
    parent: HashMap<NodeId, NodeId>,
) -> usize {
    // `attached[v] = (parent, weight)` is the final tree arc of `v`; the
    // centre is attached implicitly.
    let mut attached: NodeMap<(NodeId, Weight)> = NodeMap::default();
    let mut fixups = 0;
    // Attach members whose parent is already attached, in rounds; this mirrors
    // the fact that b-values strictly decrease towards the root.
    let mut pending: Vec<NodeId> = estimate.keys().copied().filter(|&v| v != center).collect();
    pending.sort_by_key(|&v| (estimate[&v], v));
    loop {
        let mut progressed = false;
        let mut still_pending = Vec::new();
        for &v in &pending {
            match parent.get(&v) {
                Some(&p) if p == center || attached.contains_key(&p) => {
                    let w = g
                        .edge_weight(v, p)
                        .expect("recorded parent must be a graph neighbour");
                    attached.insert(v, (p, w));
                    progressed = true;
                }
                _ => still_pending.push(v),
            }
        }
        pending = still_pending;
        if pending.is_empty() {
            break;
        }
        if !progressed {
            // Repair: attach each remaining member through its best neighbour
            // that is already in the tree (there is always one with positive
            // probability of never needing this; count it either way).
            let mut repaired_any = false;
            let snapshot = pending.clone();
            for &v in &snapshot {
                let best = g
                    .neighbors(v)
                    .iter()
                    .filter(|nb| nb.node == center || attached.contains_key(&nb.node))
                    .min_by_key(|nb| {
                        estimate
                            .get(&nb.node)
                            .copied()
                            .unwrap_or(INFINITY)
                            .saturating_add(nb.weight)
                    });
                if let Some(nb) = best {
                    let via = estimate.get(&nb.node).copied().unwrap_or(INFINITY);
                    attached.insert(v, (nb.node, nb.weight));
                    let repaired_estimate = via.saturating_add(nb.weight).min(INFINITY);
                    let e = estimate.get_mut(&v).expect("v is a member");
                    if *e < repaired_estimate {
                        *e = repaired_estimate;
                    }
                    fixups += 1;
                    repaired_any = true;
                    pending.retain(|&x| x != v);
                }
            }
            if !repaired_any {
                // The remaining members are not connected to the tree through
                // members at all; drop them (they cannot be routed through this
                // tree). This preserves C̃(u) ⊆ C(u).
                for v in pending.drain(..) {
                    estimate.remove(&v);
                    fixups += 1;
                }
            }
        }
    }
    let mut members: Vec<NodeId> = attached.keys().copied().collect();
    members.sort_unstable();
    builder.push_cluster(
        center,
        level,
        members.iter().map(|&v| {
            let (p, w) = attached[&v];
            ForestMember {
                v,
                parent: p,
                weight: w,
                root_dist: estimate[&v],
            }
        }),
    );
    fixups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_cluster_family;
    use crate::pivots::compute_pivots;
    use en_graph::dijkstra::dijkstra;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    struct Setup {
        g: WeightedGraph,
        hierarchy: Hierarchy,
        params: SchemeParams,
        pivots: Vec<Vec<Option<(NodeId, Dist)>>>,
        pre: Option<Preprocessing>,
    }

    fn setup(n: usize, k: usize, seed: u64) -> Setup {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 25), 0.1);
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        let pre = Preprocessing::run(&g, &hierarchy, &params, 6);
        let table = compute_pivots(&g, &hierarchy, &params, pre.as_ref(), 6);
        Setup {
            g,
            hierarchy,
            params,
            pivots: table.pivots,
            pre,
        }
    }

    fn check_contained_in_exact(s: &Setup, built: &ApproxClusters) {
        let exact = exact_cluster_family(&s.g, &s.hierarchy);
        for cluster in built.forest.clusters() {
            let center = cluster.center();
            let exact_cluster = exact.cluster(center).expect("centre has an exact cluster");
            for v in cluster.members() {
                assert!(
                    exact_cluster.contains(v),
                    "centre {center}: vertex {v} in C~ but not in C"
                );
            }
        }
    }

    fn check_root_estimates(s: &Setup, built: &ApproxClusters, slack: f64) {
        for cluster in built.forest.clusters() {
            let sp = dijkstra(&s.g, cluster.center());
            for (v, &est) in cluster.members().zip(cluster.root_dists()) {
                assert!(est >= sp.dist[v], "estimate undercuts the true distance");
                assert!(
                    (est as f64) <= slack * sp.dist[v] as f64 + 1e-6,
                    "centre {} vertex {v}: {est} vs {}",
                    cluster.center(),
                    sp.dist[v]
                );
            }
        }
    }

    #[test]
    fn small_scale_clusters_are_exact_clusters() {
        let s = setup(60, 4, 1);
        let built = small_scale_clusters(&s.g, &s.hierarchy, &s.params, &s.pivots);
        check_contained_in_exact(&s, &built);
        check_root_estimates(&s, &built, 1.0);
        assert!(built.ledger.total_rounds() > 0);
        assert_eq!(built.diagnostics.parent_fixups, 0);
        // Small scales cover levels 0 and 1 for k = 4.
        assert!(built.forest.clusters().all(|c| c.level() < 2));
    }

    #[test]
    fn middle_level_clusters_for_odd_k() {
        let s = setup(60, 3, 2);
        let built = middle_level_clusters(&s.g, &s.hierarchy, &s.params, &s.pivots, 6);
        // Middle level of k = 3 is level 1.
        assert!(built.forest.clusters().all(|c| c.level() == 1));
        check_contained_in_exact(&s, &built);
        check_root_estimates(&s, &built, 1.0 + s.params.epsilon());
        for c in built.forest.clusters() {
            assert!(c.tree().is_subgraph_of(&s.g));
        }
    }

    #[test]
    fn middle_level_empty_for_even_k() {
        let s = setup(40, 4, 3);
        let built = middle_level_clusters(&s.g, &s.hierarchy, &s.params, &s.pivots, 6);
        assert!(built.forest.is_empty());
    }

    #[test]
    fn large_scale_clusters_are_valid_trees_with_good_estimates() {
        let s = setup(80, 3, 4);
        let Some(pre) = &s.pre else {
            return;
        };
        let built = large_scale_clusters(&s.g, &s.hierarchy, &s.params, &s.pivots, pre, 6);
        let eps = s.params.epsilon();
        for c in built.forest.clusters() {
            assert!(c.tree().is_subgraph_of(&s.g), "centre {}", c.center());
            assert!(c.level() >= s.params.half_k());
        }
        check_root_estimates(&s, &built, (1.0 + eps).powi(4));
        check_contained_in_exact(&s, &built);
        assert!(built.ledger.total_rounds() > 0);
    }

    #[test]
    fn large_scale_top_level_clusters_cover_every_vertex() {
        let s = setup(70, 2, 5);
        let Some(pre) = &s.pre else {
            return;
        };
        let built = large_scale_clusters(&s.g, &s.hierarchy, &s.params, &s.pivots, pre, 6);
        // For k = 2 the only large level is 1 = k-1, whose threshold is ∞, so
        // every cluster contains every vertex (this is what guarantees that
        // Find-tree always terminates).
        for c in built.forest.clusters() {
            assert_eq!(c.len(), s.g.num_nodes(), "centre {}", c.center());
        }
    }

    #[test]
    fn large_scale_contains_c6eps_superset_property() {
        // C_{6eps}(u) ⊆ C̃(u): every vertex far from the boundary must be a member.
        let s = setup(60, 2, 7);
        let Some(pre) = &s.pre else {
            return;
        };
        let built = large_scale_clusters(&s.g, &s.hierarchy, &s.params, &s.pivots, pre, 6);
        let eps = s.params.epsilon();
        for cluster in built.forest.clusters() {
            let center = cluster.center();
            let sp = dijkstra(&s.g, center);
            let i = cluster.level();
            for v in s.g.nodes() {
                let thr = if i + 1 < s.params.k {
                    s.pivots[v][i + 1].map_or(INFINITY, |(_, d)| d)
                } else {
                    INFINITY
                };
                let in_c6eps =
                    thr == INFINITY || (sp.dist[v] as f64) < thr as f64 / (1.0 + 6.0 * eps);
                if in_c6eps {
                    assert!(
                        cluster.contains(v),
                        "centre {center}: vertex {v} in C_6eps but excluded from C~"
                    );
                }
            }
        }
    }

    /// Exercises Phase 1.5 explicitly: at the small sizes the end-to-end tests
    /// run at, the hop bound `B` caps at `n`, the virtual graph is complete and
    /// the hopset is empty, so the realising-path logic never fires naturally.
    /// Here a preprocessing object is hand-crafted with a sparse virtual graph
    /// and a genuine hopset edge, so the Phase 1 exploration must cross that
    /// edge and Phase 1.5 must pull its realising path into the virtual tree
    /// and re-parent its endpoint onto a `G'` edge.
    #[test]
    fn phase_1_5_pulls_hopset_paths_into_the_tree() {
        use en_congest::RoundLedger;
        use en_congest_algos::theorem1::multi_source_hop_bounded;
        use en_graph::Path;
        use en_hopset::{AugmentedGraph, Hopset, HopsetEdge};
        use std::collections::HashMap as Map;

        // Path graph 0-1-2-3-4-5, unit weights; k = 2, A_1 = {0, 2, 5}.
        let g = WeightedGraph::from_edges(6, (0..5).map(|i| (i, i + 1, 1))).unwrap();
        let params = SchemeParams::new(2, 6, 0);
        let hierarchy = Hierarchy::from_levels(6, vec![(0..6).collect(), vec![0, 2, 5]]);
        let pivot_table = compute_pivots(&g, &hierarchy, &params, None, 5);

        // Virtual graph on {0, 2, 5} (virtual indices 0, 1, 2) WITHOUT the
        // direct 0-5 edge, plus a hopset edge realising it via vertex 2.
        let vprime = vec![0, 2, 5];
        let mut gprime = WeightedGraph::new(3);
        gprime.add_edge(0, 1, 2).unwrap(); // d(0,2) = 2
        gprime.add_edge(1, 2, 3).unwrap(); // d(2,5) = 3
        let hopset = Hopset::new(
            vec![HopsetEdge {
                u: 0,
                v: 2,
                weight: 5,
                path: Path::new(vec![0, 1, 2]),
            }],
            2,
            0.0,
        );
        let augmented = AugmentedGraph::new(&gprime, &hopset);
        let theorem1 = multi_source_hop_bounded(&g, &vprime, 6, 0.01, 5);
        let pre = Preprocessing {
            index_of: vprime
                .iter()
                .copied()
                .enumerate()
                .map(|(i, v)| (v, i))
                .collect::<Map<_, _>>(),
            vprime,
            theorem1,
            gprime,
            hopset,
            beta: 2,
            augmented,
            hop_bound: 6,
            ledger: RoundLedger::new(),
        };

        let built = large_scale_clusters(&g, &hierarchy, &params, &pivot_table.pivots, &pre, 5);
        // Level 1 is the top level (k = 2), so every centre's cluster spans V.
        for &center in &[0usize, 2, 5] {
            let cluster = built.forest.cluster_by_center(center).unwrap();
            assert_eq!(cluster.len(), 6, "centre {center} must span the whole path");
            assert!(cluster.tree().is_subgraph_of(&g));
            let sp = dijkstra(&g, center);
            for (v, &est) in cluster.members().zip(cluster.root_dists()) {
                assert!(est >= sp.dist[v]);
                assert!(est as f64 <= (1.0 + params.epsilon()).powi(4) * sp.dist[v] as f64 + 1e-6);
            }
        }
        // The far endpoint 5 must have been reached from centre 0 through the
        // hopset edge and still be attached through real graph edges.
        let c0 = built.forest.cluster_by_center(0).unwrap();
        assert_eq!(c0.root_dist(5), Some(5));
        assert_eq!(built.diagnostics.parent_fixups, 0);
    }

    #[test]
    fn assemble_tree_repairs_missing_parents() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let estimate = NodeMap::from_iter([(0, 0), (1, 1), (3, 3)]);
        // Vertex 3's parent (2) is not a member: the repair path must attach 3
        // through a member neighbour or drop it.
        let parent = HashMap::from([(1, 0), (3, 2)]);
        let mut builder = ClusterForestBuilder::new(4);
        let fixups = assemble_cluster_tree_into(&mut builder, &g, 0, 0, estimate, parent);
        let forest = builder.finish();
        assert!(fixups > 0);
        let cluster = forest.cluster(0);
        assert!(cluster.tree().is_subgraph_of(&g));
        assert!(cluster.contains(1));
    }
}
