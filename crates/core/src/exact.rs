//! Exact Thorup–Zwick pivots and clusters (sequential construction).
//!
//! This is the `[TZ01]/[TZ05]` baseline of Table 1 *and* the ground truth the
//! approximate construction is validated against: the paper requires
//! `C_{6ε}(u) ⊆ C̃(u) ⊆ C(u)` (inequality (9)), where `C(u)` is the exact
//! cluster defined by
//!
//! ```text
//! C(u) = { v ∈ V : d_G(u, v) < d_G(v, A_{i+1}) }        (u ∈ A_i \ A_{i+1})
//! ```
//!
//! Note the *strict* inequality: a vertex whose distance from the centre ties
//! its threshold `d_G(v, A_{i+1})` is **not** a member (and, by the
//! containment argument of Section 3.2, genuine thresholds make everything
//! behind such a vertex unreachable for the centre too). Both the per-centre
//! growth and the batched kernel implement the tie case this way; see the
//! `tie_with_threshold_is_excluded` regression test.
//!
//! The whole family is grown by the batched restricted multi-source kernel
//! ([`en_graph::restricted`]): all centres of a level share one threshold
//! vector `d_G(·, A_{i+1})`, so one vertex-major batched pass grows every
//! cluster of the level at once over a single shared [`CsrGraph`] — and the
//! kernel's compact member records are appended *directly* to the family's
//! [`ClusterForest`] arena, with no intermediate per-cluster
//! host-sized tree. The per-centre restricted Dijkstra
//! ([`grow_exact_cluster_csr`]) is retained as the oracle the property tests
//! validate the batched kernel against; it still materialises the dense
//! [`Cluster`] representation the comparisons need.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use en_graph::dijkstra::multi_source_dijkstra_csr;
use en_graph::forest::{ClusterForest, ClusterForestBuilder, ClusterId, ForestMember};
use en_graph::restricted::{
    restricted_multi_source_csr, restricted_multi_source_csr_grouped_opts, RestrictedMultiSource,
};
use en_graph::tree::RootedTree;
use en_graph::{
    dist_add, is_finite, shard_spans, BuildOptions, BuildStats, CsrGraph, Dist, NodeId, NodeMap,
    Weight, WeightedGraph, INFINITY,
};

use crate::family::{Cluster, ClusterFamily};
use crate::hierarchy::Hierarchy;

/// Computes the exact pivots `z_i(v)` and distances `d_G(v, A_i)` for every
/// vertex and every level `0 ≤ i < k`.
///
/// `pivots[v][i]` is `None` when `A_i` is empty or unreachable from `v`.
///
/// Convenience wrapper over [`exact_pivots_csr`] for callers without a
/// prebuilt CSR view; [`exact_cluster_family`] threads one shared
/// [`CsrGraph`] through the pivot and cluster computations instead.
pub fn exact_pivots(g: &WeightedGraph, hierarchy: &Hierarchy) -> Vec<Vec<Option<(NodeId, Dist)>>> {
    exact_pivots_csr(&CsrGraph::from_graph(g), hierarchy)
}

/// [`exact_pivots`] over a prebuilt [`CsrGraph`] view of the graph.
pub fn exact_pivots_csr(csr: &CsrGraph, hierarchy: &Hierarchy) -> Vec<Vec<Option<(NodeId, Dist)>>> {
    let n = csr.num_nodes();
    let k = hierarchy.k();
    let mut pivots = vec![vec![None; k]; n];
    for i in 0..k {
        let level = hierarchy.level(i);
        if level.is_empty() {
            continue;
        }
        let (dist, nearest) = multi_source_dijkstra_csr(csr, level);
        for v in 0..n {
            if let (true, Some(z)) = (is_finite(dist[v]), nearest[v]) {
                pivots[v][i] = Some((z, dist[v]));
            }
        }
    }
    pivots
}

/// The exact distance from every vertex to `A_{i+1}` (the cluster-membership
/// threshold at level `i`); [`INFINITY`] when `A_{i+1}` is empty.
pub fn membership_thresholds(pivots: &[Vec<Option<(NodeId, Dist)>>], level: usize) -> Vec<Dist> {
    pivots
        .iter()
        .map(|per_v| {
            if level + 1 < per_v.len() {
                per_v[level + 1].map_or(INFINITY, |(_, d)| d)
            } else {
                INFINITY
            }
        })
        .collect()
}

/// Grows one exact cluster by restricted Dijkstra over a prebuilt
/// [`CsrGraph`] view: a search from `center` that only admits (and only
/// relaxes through) vertices satisfying `d(center, v) < threshold[v]`.
///
/// Because every vertex on a shortest path from the centre to a cluster member
/// is itself a member (the containment argument of Section 3.2), restricting
/// the search this way still yields exact distances for every member.
///
/// This is the retained per-centre oracle for the batched kernel
/// ([`grow_exact_clusters_batched`]): the property suite asserts the two
/// produce identical member sets, distances and valid trees. The relaxed arc
/// weight is recorded alongside each parent during the search, so the tree is
/// assembled without any adjacency re-lookup (and without the possibility of
/// disagreeing with the relaxed arc).
pub fn grow_exact_cluster_csr(
    csr: &CsrGraph,
    center: NodeId,
    level: usize,
    threshold: &[Dist],
) -> Cluster {
    let n = csr.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut parent: Vec<Option<(NodeId, Weight)>> = vec![None; n];
    let mut joined = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
    dist[center] = 0;
    heap.push(Reverse((0, center)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v] || joined[v] {
            continue;
        }
        // Membership test: strict inequality per definition (6); a tie
        // d(center, v) == threshold[v] excludes v. The centre itself is
        // exempt.
        if v != center && d >= threshold[v] {
            continue;
        }
        joined[v] = true;
        let (targets, weights) = csr.arcs(v);
        for (&t, &w) in targets.iter().zip(weights) {
            let nd = dist_add(d, w);
            if nd < dist[t] {
                dist[t] = nd;
                parent[t] = Some((v, w));
                heap.push(Reverse((nd, t)));
            }
        }
    }
    let mut tree = RootedTree::new(n, center);
    let mut root_estimate = NodeMap::default();
    root_estimate.insert(center, 0);
    // Attach members in order of distance so parents are always attached first.
    let mut order: Vec<NodeId> = (0..n).filter(|&v| joined[v] && v != center).collect();
    order.sort_by_key(|&v| (dist[v], v));
    for v in order {
        let (p, w) = parent[v].expect("non-centre member has a Dijkstra parent");
        tree.attach(v, p, w);
        root_estimate.insert(v, dist[v]);
    }
    Cluster {
        center,
        level,
        tree,
        root_estimate,
    }
}

/// Grows the exact clusters of *every* centre of one level in a single
/// batched restricted multi-source pass — the tentpole kernel. All centres
/// share the level's threshold vector `d_G(·, A_{i+1})`, so the per-centre
/// heap searches collapse into chunked vertex-major relaxation sweeps
/// (see [`en_graph::restricted`]). Returns a forest holding the clusters in
/// `centers` order.
pub fn grow_exact_clusters_batched(
    csr: &CsrGraph,
    centers: &[NodeId],
    level: usize,
    threshold: &[Dist],
) -> ClusterForest {
    let mut builder = ClusterForestBuilder::new(csr.num_nodes());
    grow_exact_clusters_batched_into(csr, centers, level, threshold, &mut builder);
    builder.finish()
}

/// [`grow_exact_clusters_batched`] appending into a caller-owned builder
/// (whole-family construction pushes every level into one shared arena).
/// Returns the range of [`ClusterId`]s pushed.
pub fn grow_exact_clusters_batched_into(
    csr: &CsrGraph,
    centers: &[NodeId],
    level: usize,
    threshold: &[Dist],
    builder: &mut ClusterForestBuilder,
) -> std::ops::Range<ClusterId> {
    let res = restricted_multi_source_csr(csr, centers, threshold, None);
    push_restricted_clusters(builder, &res, level)
}

/// [`grow_exact_clusters_batched`] for callers that already hold the pivot
/// table: each centre's level-`i+1` pivot is its Voronoi cell around
/// `A_{i+1}` — exactly the locality grouping the kernel wants — so the
/// kernel's own grouping Dijkstra is skipped.
pub fn grow_exact_clusters_batched_with_pivots(
    csr: &CsrGraph,
    centers: &[NodeId],
    level: usize,
    threshold: &[Dist],
    pivots: &[Vec<Option<(NodeId, Dist)>>],
) -> ClusterForest {
    let mut builder = ClusterForestBuilder::new(csr.num_nodes());
    grow_exact_clusters_batched_with_pivots_into(
        csr,
        centers,
        level,
        threshold,
        pivots,
        &mut builder,
    );
    builder.finish()
}

/// [`grow_exact_clusters_batched_with_pivots`] appending into a caller-owned
/// builder. Returns the range of [`ClusterId`]s pushed.
pub fn grow_exact_clusters_batched_with_pivots_into(
    csr: &CsrGraph,
    centers: &[NodeId],
    level: usize,
    threshold: &[Dist],
    pivots: &[Vec<Option<(NodeId, Dist)>>],
    builder: &mut ClusterForestBuilder,
) -> std::ops::Range<ClusterId> {
    grow_exact_clusters_batched_with_pivots_into_opts(
        csr,
        centers,
        level,
        threshold,
        pivots,
        builder,
        &BuildOptions::sequential(),
    )
    .0
}

/// [`grow_exact_clusters_batched_with_pivots_into`] with a thread-count
/// knob: the restricted sweep shards its source chunks and the forest pushes
/// shard the resulting clusters across scoped workers whose private builders
/// are absorbed in shard order — the merged forest is bit-identical to the
/// sequential one. Returns the pushed id range and the combined per-thread
/// work accounting of both phases.
#[allow(clippy::too_many_arguments)]
pub fn grow_exact_clusters_batched_with_pivots_into_opts(
    csr: &CsrGraph,
    centers: &[NodeId],
    level: usize,
    threshold: &[Dist],
    pivots: &[Vec<Option<(NodeId, Dist)>>],
    builder: &mut ClusterForestBuilder,
    opts: &BuildOptions,
) -> (std::ops::Range<ClusterId>, BuildStats) {
    let groups: Vec<(NodeId, Dist)> = centers
        .iter()
        .map(|&c| {
            if level + 1 < pivots[c].len() {
                pivots[c][level + 1].unwrap_or((usize::MAX, INFINITY))
            } else {
                (usize::MAX, INFINITY)
            }
        })
        .collect();
    let (res, mut stats) =
        restricted_multi_source_csr_grouped_opts(csr, centers, threshold, None, &groups, opts);
    let (range, push_stats) = push_restricted_clusters_opts(builder, &res, level, opts);
    stats.absorb(&push_stats);
    (range, stats)
}

/// Appends every source's cluster of a converged restricted multi-source
/// result to `builder`, straight off the kernel's compact member records:
/// ascending member ids, recorded parents, relaxed arc weights, and exact
/// distances map one-to-one onto the forest arena's columns — no
/// intermediate host-sized tree, no per-centre hash map. Returns the range
/// of [`ClusterId`]s pushed (one per source, in source order).
pub fn push_restricted_clusters(
    builder: &mut ClusterForestBuilder,
    res: &RestrictedMultiSource,
    level: usize,
) -> std::ops::Range<ClusterId> {
    push_restricted_clusters_opts(builder, res, level, &BuildOptions::sequential()).0
}

/// [`push_restricted_clusters`] with a thread-count knob: the sources are
/// sharded into contiguous spans, each span's clusters are pushed into a
/// private per-worker [`ClusterForestBuilder`], and the workers' builders
/// are absorbed into `builder` **in shard order** — cluster ids come out
/// exactly as the sequential loop assigns them (see
/// [`ClusterForestBuilder::absorb`] for why the order matters). Also returns
/// per-thread work accounting (clusters pushed; forest members appended).
pub fn push_restricted_clusters_opts(
    builder: &mut ClusterForestBuilder,
    res: &RestrictedMultiSource,
    level: usize,
    opts: &BuildOptions,
) -> (std::ops::Range<ClusterId>, BuildStats) {
    let start = builder.num_clusters();
    let spans = shard_spans(res.sources().len(), opts.threads, 1);
    if spans.len() <= 1 {
        let before = builder.total_members();
        for s in 0..res.sources().len() {
            push_one_restricted_cluster(builder, res, s, level);
        }
        let stats = BuildStats::single(res.sources().len(), builder.total_members() - before);
        return (start..builder.num_clusters(), stats);
    }
    let shards: Vec<ClusterForestBuilder> = std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .iter()
            .map(|span| {
                let span = span.clone();
                scope.spawn(move || {
                    let mut local = ClusterForestBuilder::new(res.num_vertices());
                    for s in span {
                        push_one_restricted_cluster(&mut local, res, s, level);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("forest push worker panicked"))
            .collect()
    });
    let mut stats = BuildStats::default();
    for (span, local) in spans.iter().zip(shards) {
        stats.record(span.len(), local.total_members());
        builder.absorb(local);
    }
    (start..builder.num_clusters(), stats)
}

/// Pushes source `s`'s cluster off the kernel's compact member records.
fn push_one_restricted_cluster(
    builder: &mut ClusterForestBuilder,
    res: &RestrictedMultiSource,
    s: usize,
    level: usize,
) {
    builder.push_cluster(
        res.sources()[s],
        level,
        res.member_cells(s).iter().map(|c| {
            let (parent, weight) = c
                .tree_arc()
                .expect("non-centre member has a recorded parent");
            ForestMember {
                v: c.v as NodeId,
                parent,
                weight,
                root_dist: c.dist,
            }
        }),
    );
}

/// Builds the complete exact cluster family (all centres, all levels) plus the
/// exact pivot table, over one shared [`CsrGraph`] view: the pivot
/// multi-source Dijkstras and every level's batched cluster growth all reuse
/// the same flat adjacency, and every level appends into one shared forest
/// arena.
pub fn exact_cluster_family(g: &WeightedGraph, hierarchy: &Hierarchy) -> ClusterFamily {
    let csr = CsrGraph::from_graph(g);
    let pivots = exact_pivots_csr(&csr, hierarchy);
    let mut builder = ClusterForestBuilder::new(g.num_nodes());
    for i in 0..hierarchy.k() {
        let threshold = membership_thresholds(&pivots, i);
        let centers = hierarchy.centers_at(i);
        grow_exact_clusters_batched_with_pivots_into(
            &csr,
            &centers,
            i,
            &threshold,
            &pivots,
            &mut builder,
        );
    }
    ClusterFamily::new(hierarchy.clone(), builder.finish(), pivots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SchemeParams;
    use en_graph::dijkstra::{dijkstra, multi_source_dijkstra};
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    fn setup(n: usize, k: usize, seed: u64) -> (WeightedGraph, Hierarchy, ClusterFamily) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 30), 0.1);
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        (g, hierarchy, family)
    }

    #[test]
    fn pivots_are_nearest_level_vertices() {
        let (g, hierarchy, family) = setup(60, 3, 1);
        for v in g.nodes() {
            for i in 0..3 {
                match family.pivots[v][i] {
                    Some((z, d)) => {
                        assert!(hierarchy.level(i).contains(&z));
                        let (dist, _) = multi_source_dijkstra(&g, hierarchy.level(i));
                        assert_eq!(d, dist[v]);
                        assert_eq!(d, dijkstra(&g, z).dist[v]);
                    }
                    None => assert!(hierarchy.level(i).is_empty()),
                }
            }
            assert_eq!(family.pivots[v][0], Some((v, 0)));
        }
    }

    #[test]
    fn cluster_membership_matches_definition_6() {
        let (g, hierarchy, family) = setup(50, 3, 2);
        let pivots = &family.pivots;
        for cluster in family.clusters() {
            let sp = dijkstra(&g, cluster.center());
            let i = cluster.level();
            for v in g.nodes() {
                let threshold = if i + 1 < hierarchy.k() {
                    pivots[v][i + 1].map_or(INFINITY, |(_, d)| d)
                } else {
                    INFINITY
                };
                let should_be_member = sp.dist[v] < threshold || v == cluster.center();
                assert_eq!(
                    cluster.contains(v),
                    should_be_member,
                    "center {} level {} vertex {}",
                    cluster.center(),
                    i,
                    v
                );
            }
        }
    }

    #[test]
    fn cluster_trees_are_shortest_path_trees() {
        let (g, _, family) = setup(50, 3, 3);
        assert!(family.trees_are_valid_in(&g));
        assert!(family.root_estimates_within(&g, 1.0));
    }

    #[test]
    fn top_level_clusters_cover_everything() {
        let (g, hierarchy, family) = setup(40, 2, 4);
        // Centres at the last non-empty level have threshold ∞, so their
        // clusters contain every vertex.
        let last = hierarchy.k() - 1;
        if !hierarchy.level(last).is_empty() {
            let c = hierarchy.centers_at(last)[0];
            assert_eq!(family.cluster(c).unwrap().len(), g.num_nodes());
        }
    }

    #[test]
    fn overlap_respects_claim_2_bound() {
        let (_, _, family) = setup(80, 3, 5);
        let params = SchemeParams::new(3, 80, 5);
        assert!(
            family.max_overlap() <= params.overlap_bound(),
            "{} > {}",
            family.max_overlap(),
            params.overlap_bound()
        );
    }

    #[test]
    fn k_equals_one_gives_spanning_clusters_for_every_vertex() {
        let (g, _, family) = setup(25, 1, 6);
        assert_eq!(family.num_clusters(), 25);
        for c in family.clusters() {
            assert_eq!(c.len(), g.num_nodes());
        }
    }

    #[test]
    fn thresholds_helper_handles_top_level() {
        let (_, _, family) = setup(30, 2, 7);
        let t = membership_thresholds(&family.pivots, 1);
        assert!(t.iter().all(|&x| x == INFINITY));
        let t0 = membership_thresholds(&family.pivots, 0);
        assert!(t0.iter().any(|&x| x < INFINITY));
    }

    #[test]
    fn batched_family_matches_per_centre_oracle() {
        let (g, hierarchy, family) = setup(70, 3, 8);
        let csr = CsrGraph::from_graph(&g);
        for i in 0..hierarchy.k() {
            let threshold = membership_thresholds(&family.pivots, i);
            for center in hierarchy.centers_at(i) {
                let oracle = grow_exact_cluster_csr(&csr, center, i, &threshold);
                let batched = family.cluster(center).expect("centre has a cluster");
                assert_eq!(
                    batched.members().collect::<Vec<_>>(),
                    oracle.members(),
                    "centre {center}"
                );
                for v in batched.members() {
                    assert_eq!(
                        batched.root_dist(v),
                        oracle.root_estimate.get(&v).copied(),
                        "centre {center} vertex {v}"
                    );
                }
                assert!(batched.tree().is_subgraph_of(&g));
            }
        }
    }

    /// Regression for the definition-(6) tie case: `d(center, v) ==
    /// threshold[v]` excludes `v` — the inequality is strict — and with
    /// genuine thresholds everything whose shortest path runs through the
    /// tied vertex is excluded with it. Verdict of the audit: the per-centre
    /// oracle's `v != center && d >= threshold[v]` test was already correct,
    /// and the batched kernel's strict `dist < threshold` mask agrees.
    #[test]
    fn tie_with_threshold_is_excluded() {
        // Path 0 -2- 1 -2- 2 with A_1 = {2}: thresholds d(·, A_1) are
        // [4, 2, 0] and d(0, 1) = 2 ties threshold[1].
        let g = WeightedGraph::from_edges(3, [(0, 1, 2), (1, 2, 2)]).unwrap();
        let hierarchy = Hierarchy::from_levels(3, vec![vec![0, 1, 2], vec![2]]);
        let family = exact_cluster_family(&g, &hierarchy);
        let c0 = family.cluster(0).unwrap();
        assert_eq!(
            c0.members().collect::<Vec<_>>(),
            vec![0],
            "tied vertex 1 must be excluded"
        );
        // The oracle agrees on the same threshold vector.
        let csr = CsrGraph::from_graph(&g);
        let threshold = membership_thresholds(&family.pivots, 0);
        assert_eq!(threshold, vec![4, 2, 0]);
        let oracle = grow_exact_cluster_csr(&csr, 0, 0, &threshold);
        assert_eq!(oracle.members(), vec![0]);
        // Breaking the tie by one admits vertex 1 in both implementations.
        let relaxed = vec![4, 3, 0];
        let oracle = grow_exact_cluster_csr(&csr, 0, 0, &relaxed);
        let forest = grow_exact_clusters_batched(&csr, &[0], 0, &relaxed);
        let batched = forest.cluster(0);
        assert_eq!(oracle.members(), vec![0, 1]);
        assert_eq!(batched.members().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(batched.root_dist(1), Some(2)); // d(0, 1), exact
    }
}
