//! Exact Thorup–Zwick pivots and clusters (sequential construction).
//!
//! This is the `[TZ01]/[TZ05]` baseline of Table 1 *and* the ground truth the
//! approximate construction is validated against: the paper requires
//! `C_{6ε}(u) ⊆ C̃(u) ⊆ C(u)` (inequality (9)), where `C(u)` is the exact
//! cluster defined by
//!
//! ```text
//! C(u) = { v ∈ V : d_G(u, v) < d_G(v, A_{i+1}) }        (u ∈ A_i \ A_{i+1})
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use en_graph::dijkstra::multi_source_dijkstra_csr;
use en_graph::tree::RootedTree;
use en_graph::{dist_add, is_finite, CsrGraph, Dist, NodeId, WeightedGraph, INFINITY};

use crate::family::{Cluster, ClusterFamily};
use crate::hierarchy::Hierarchy;

/// Computes the exact pivots `z_i(v)` and distances `d_G(v, A_i)` for every
/// vertex and every level `0 ≤ i < k`.
///
/// `pivots[v][i]` is `None` when `A_i` is empty or unreachable from `v`.
pub fn exact_pivots(g: &WeightedGraph, hierarchy: &Hierarchy) -> Vec<Vec<Option<(NodeId, Dist)>>> {
    let n = g.num_nodes();
    let k = hierarchy.k();
    let csr = CsrGraph::from_graph(g);
    let mut pivots = vec![vec![None; k]; n];
    for i in 0..k {
        let level = hierarchy.level(i);
        if level.is_empty() {
            continue;
        }
        let (dist, nearest) = multi_source_dijkstra_csr(&csr, level);
        for v in 0..n {
            if let (true, Some(z)) = (is_finite(dist[v]), nearest[v]) {
                pivots[v][i] = Some((z, dist[v]));
            }
        }
    }
    pivots
}

/// The exact distance from every vertex to `A_{i+1}` (the cluster-membership
/// threshold at level `i`); [`INFINITY`] when `A_{i+1}` is empty.
pub fn membership_thresholds(pivots: &[Vec<Option<(NodeId, Dist)>>], level: usize) -> Vec<Dist> {
    pivots
        .iter()
        .map(|per_v| {
            if level + 1 < per_v.len() {
                per_v[level + 1].map_or(INFINITY, |(_, d)| d)
            } else {
                INFINITY
            }
        })
        .collect()
}

/// Grows the exact cluster of `center` (at level `i`) as a shortest-path tree:
/// a restricted Dijkstra from `center` that only admits (and only relaxes
/// through) vertices satisfying `d(center, v) < threshold[v]`.
///
/// Because every vertex on a shortest path from the centre to a cluster member
/// is itself a member (the containment argument of Section 3.2), restricting
/// the search this way still yields exact distances for every member.
pub fn grow_exact_cluster(
    g: &WeightedGraph,
    center: NodeId,
    level: usize,
    threshold: &[Dist],
) -> Cluster {
    grow_exact_cluster_csr(g, &CsrGraph::from_graph(g), center, level, threshold)
}

/// [`grow_exact_cluster`] over a prebuilt [`CsrGraph`] view of the same graph,
/// so callers growing many clusters (one per centre) pay the CSR construction
/// once.
pub fn grow_exact_cluster_csr(
    g: &WeightedGraph,
    csr: &CsrGraph,
    center: NodeId,
    level: usize,
    threshold: &[Dist],
) -> Cluster {
    let n = g.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut joined = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
    dist[center] = 0;
    heap.push(Reverse((0, center)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v] || joined[v] {
            continue;
        }
        // Membership test: strict inequality per definition (6).
        if v != center && d >= threshold[v] {
            continue;
        }
        joined[v] = true;
        let (targets, weights) = csr.arcs(v);
        for (&t, &w) in targets.iter().zip(weights) {
            let nd = dist_add(d, w);
            if nd < dist[t] {
                dist[t] = nd;
                parent[t] = Some(v);
                heap.push(Reverse((nd, t)));
            }
        }
    }
    let mut tree = RootedTree::new(n, center);
    let mut root_estimate = HashMap::new();
    root_estimate.insert(center, 0);
    // Attach members in order of distance so parents are always attached first.
    let mut order: Vec<NodeId> = (0..n).filter(|&v| joined[v] && v != center).collect();
    order.sort_by_key(|&v| (dist[v], v));
    for v in order {
        let p = parent[v].expect("non-centre member has a Dijkstra parent");
        let w = g.edge_weight(v, p).expect("parent is a neighbour");
        tree.attach(v, p, w);
        root_estimate.insert(v, dist[v]);
    }
    Cluster {
        center,
        level,
        tree,
        root_estimate,
    }
}

/// Builds the complete exact cluster family (all centres, all levels) plus the
/// exact pivot table.
pub fn exact_cluster_family(g: &WeightedGraph, hierarchy: &Hierarchy) -> ClusterFamily {
    let pivots = exact_pivots(g, hierarchy);
    let csr = CsrGraph::from_graph(g);
    let mut clusters = HashMap::new();
    for i in 0..hierarchy.k() {
        let threshold = membership_thresholds(&pivots, i);
        for center in hierarchy.centers_at(i) {
            let cluster = grow_exact_cluster_csr(g, &csr, center, i, &threshold);
            clusters.insert(center, cluster);
        }
    }
    ClusterFamily {
        hierarchy: hierarchy.clone(),
        clusters,
        pivots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SchemeParams;
    use en_graph::dijkstra::{dijkstra, multi_source_dijkstra};
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    fn setup(n: usize, k: usize, seed: u64) -> (WeightedGraph, Hierarchy, ClusterFamily) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 30), 0.1);
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        (g, hierarchy, family)
    }

    #[test]
    fn pivots_are_nearest_level_vertices() {
        let (g, hierarchy, family) = setup(60, 3, 1);
        for v in g.nodes() {
            for i in 0..3 {
                match family.pivots[v][i] {
                    Some((z, d)) => {
                        assert!(hierarchy.level(i).contains(&z));
                        let (dist, _) = multi_source_dijkstra(&g, hierarchy.level(i));
                        assert_eq!(d, dist[v]);
                        assert_eq!(d, dijkstra(&g, z).dist[v]);
                    }
                    None => assert!(hierarchy.level(i).is_empty()),
                }
            }
            assert_eq!(family.pivots[v][0], Some((v, 0)));
        }
    }

    #[test]
    fn cluster_membership_matches_definition_6() {
        let (g, hierarchy, family) = setup(50, 3, 2);
        let pivots = &family.pivots;
        for cluster in family.clusters.values() {
            let sp = dijkstra(&g, cluster.center);
            let i = cluster.level;
            for v in g.nodes() {
                let threshold = if i + 1 < hierarchy.k() {
                    pivots[v][i + 1].map_or(INFINITY, |(_, d)| d)
                } else {
                    INFINITY
                };
                let should_be_member = sp.dist[v] < threshold || v == cluster.center;
                assert_eq!(
                    cluster.contains(v),
                    should_be_member,
                    "center {} level {} vertex {}",
                    cluster.center,
                    i,
                    v
                );
            }
        }
    }

    #[test]
    fn cluster_trees_are_shortest_path_trees() {
        let (g, _, family) = setup(50, 3, 3);
        assert!(family.trees_are_valid_in(&g));
        assert!(family.root_estimates_within(&g, 1.0));
    }

    #[test]
    fn top_level_clusters_cover_everything() {
        let (g, hierarchy, family) = setup(40, 2, 4);
        // Centres at the last non-empty level have threshold ∞, so their
        // clusters contain every vertex.
        let last = hierarchy.k() - 1;
        if !hierarchy.level(last).is_empty() {
            let c = hierarchy.centers_at(last)[0];
            assert_eq!(family.clusters[&c].size(), g.num_nodes());
        }
    }

    #[test]
    fn overlap_respects_claim_2_bound() {
        let (_, _, family) = setup(80, 3, 5);
        let params = SchemeParams::new(3, 80, 5);
        assert!(
            family.max_overlap() <= params.overlap_bound(),
            "{} > {}",
            family.max_overlap(),
            params.overlap_bound()
        );
    }

    #[test]
    fn k_equals_one_gives_spanning_clusters_for_every_vertex() {
        let (g, _, family) = setup(25, 1, 6);
        assert_eq!(family.clusters.len(), 25);
        for c in family.clusters.values() {
            assert_eq!(c.size(), g.num_nodes());
        }
    }

    #[test]
    fn thresholds_helper_handles_top_level() {
        let (_, _, family) = setup(30, 2, 7);
        let t = membership_thresholds(&family.pivots, 1);
        assert!(t.iter().all(|&x| x == INFINITY));
        let t0 = membership_thresholds(&family.pivots, 0);
        assert!(t0.iter().any(|&x| x < INFINITY));
    }
}
