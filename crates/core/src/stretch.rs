//! Stretch measurement utilities shared by tests, examples and the benchmark
//! harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use en_graph::dijkstra::dijkstra;
use en_graph::{NodeId, WeightedGraph};

use crate::error::RoutingError;
use crate::scheme::RoutingScheme;

/// Aggregate stretch statistics over a set of routed pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchReport {
    /// Number of (ordered) pairs measured.
    pub pairs: usize,
    /// Number of pairs that failed to route (should be 0).
    pub failures: usize,
    /// Maximum observed stretch.
    pub max_stretch: f64,
    /// Mean observed stretch.
    pub avg_stretch: f64,
    /// Median observed stretch.
    pub median_stretch: f64,
    /// 95th-percentile observed stretch.
    pub p95_stretch: f64,
}

impl StretchReport {
    fn from_samples(stretches: &mut [f64], failures: usize) -> Self {
        stretches.sort_by(|a, b| a.partial_cmp(b).expect("stretches are finite"));
        let pairs = stretches.len();
        let max_stretch = stretches.last().copied().unwrap_or(1.0);
        let avg_stretch = if pairs == 0 {
            1.0
        } else {
            stretches.iter().sum::<f64>() / pairs as f64
        };
        let median_stretch = percentile(stretches, 0.5);
        let p95_stretch = percentile(stretches, 0.95);
        StretchReport {
            pairs,
            failures,
            max_stretch,
            avg_stretch,
            median_stretch,
            p95_stretch,
        }
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 1.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Measures the stretch of a routing scheme over `num_pairs` random ordered
/// pairs of distinct vertices (with a fixed seed for reproducibility).
pub fn measure_stretch_sampled(
    g: &WeightedGraph,
    scheme: &RoutingScheme,
    num_pairs: usize,
    seed: u64,
) -> StretchReport {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stretches = Vec::with_capacity(num_pairs);
    let mut failures = 0;
    if n < 2 {
        return StretchReport::from_samples(&mut stretches, 0);
    }
    // Group queries by source so one Dijkstra serves many destinations.
    let mut by_source: std::collections::HashMap<NodeId, Vec<NodeId>> =
        std::collections::HashMap::new();
    for _ in 0..num_pairs {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        while v == u {
            v = rng.gen_range(0..n);
        }
        by_source.entry(u).or_default().push(v);
    }
    for (u, targets) in by_source {
        let sp = dijkstra(g, u);
        for v in targets {
            match scheme.route_with_exact(g, u, v, sp.dist[v]) {
                Ok(out) => stretches.push(out.stretch),
                Err(RoutingError::NoCommonTree { .. }) => failures += 1,
                Err(_) => failures += 1,
            }
        }
    }
    StretchReport::from_samples(&mut stretches, failures)
}

/// Measures the stretch of a routing scheme over *all* ordered pairs
/// (quadratic: intended for test-sized graphs).
pub fn measure_stretch_all_pairs(g: &WeightedGraph, scheme: &RoutingScheme) -> StretchReport {
    let n = g.num_nodes();
    let mut stretches = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)));
    let mut failures = 0;
    for u in g.nodes() {
        let sp = dijkstra(g, u);
        for v in g.nodes() {
            if u == v {
                continue;
            }
            match scheme.route_with_exact(g, u, v, sp.dist[v]) {
                Ok(out) => stretches.push(out.stretch),
                Err(_) => failures += 1,
            }
        }
    }
    StretchReport::from_samples(&mut stretches, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_cluster_family;
    use crate::hierarchy::Hierarchy;
    use crate::params::SchemeParams;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    fn scheme(n: usize, k: usize, seed: u64) -> (WeightedGraph, RoutingScheme, SchemeParams) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 30), 0.1);
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        (g, RoutingScheme::assemble(&family, seed), params)
    }

    #[test]
    fn all_pairs_report_is_within_the_bound() {
        let (g, s, params) = scheme(40, 2, 1);
        let report = measure_stretch_all_pairs(&g, &s);
        assert_eq!(report.failures, 0);
        assert_eq!(report.pairs, 40 * 39);
        assert!(report.max_stretch <= params.stretch_bound() + 1e-9);
        assert!(report.avg_stretch >= 1.0);
        assert!(report.median_stretch <= report.p95_stretch);
        assert!(report.p95_stretch <= report.max_stretch);
    }

    #[test]
    fn sampled_report_is_reproducible() {
        let (g, s, _) = scheme(50, 3, 2);
        let a = measure_stretch_sampled(&g, &s, 200, 7);
        let b = measure_stretch_sampled(&g, &s, 200, 7);
        assert_eq!(a, b);
        assert_eq!(a.pairs + a.failures, 200);
    }

    #[test]
    fn sampled_max_below_all_pairs_max() {
        let (g, s, _) = scheme(40, 2, 3);
        let sampled = measure_stretch_sampled(&g, &s, 100, 1);
        let all = measure_stretch_all_pairs(&g, &s);
        assert!(sampled.max_stretch <= all.max_stretch + 1e-12);
    }

    #[test]
    fn degenerate_graphs() {
        let g = WeightedGraph::from_edges(1, []).unwrap();
        let params = SchemeParams::new(1, 1, 0);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        let s = RoutingScheme::assemble(&family, 0);
        let report = measure_stretch_sampled(&g, &s, 10, 0);
        assert_eq!(report.pairs, 0);
    }
}
