//! The [`ClusterFamily`]: the common output format of the exact and
//! approximate cluster constructions.
//!
//! Both the sequential Thorup–Zwick construction (exact clusters, used as the
//! Table 1 baseline) and the paper's distributed construction (approximate
//! clusters, Section 3) produce the same kind of object: one rooted tree per
//! cluster centre, a per-member estimate of the distance to the centre, and a
//! pivot table. Section 4 turns any such family into a routing scheme, so the
//! assembly code is shared.
//!
//! The clusters live in an arena-backed [`ClusterForest`] — shared flat
//! arrays, `O(Σ|C|)` memory total (Claim 2 bounds this by
//! `O(n^{1+1/k} log n)`) instead of the `O(n · #clusters)` the old one
//! host-sized-tree-per-centre representation cost — plus a dense
//! centre → cluster index. The forest's inverted membership CSR answers
//! overlap queries in `O(1)` and drives the Section-4 assembly sweep. The
//! per-member root-distance estimates `b_v(u)` are folded into the forest's
//! `member_root_dist` column, so no per-centre hash map exists any more; the
//! owned [`Cluster`] remains as the materialised per-centre representation
//! the per-centre oracle emits and the property suites compare against.

use en_graph::forest::{ClusterForest, ClusterId, ClusterView};
use en_graph::tree::RootedTree;
use en_graph::{Dist, NodeId, NodeMap, WeightedGraph};

use crate::hierarchy::Hierarchy;

/// One materialised cluster: a tree rooted at its centre spanning the cluster
/// members, plus the per-member root-distance estimates.
///
/// This is the dense per-centre representation — the per-centre oracle
/// ([`crate::exact::grow_exact_cluster_csr`]) produces it, and equivalence
/// suites compare forest slices against it via [`ClusterView::tree`]. The
/// family itself stores its clusters compactly in a [`ClusterForest`].
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The cluster centre `u` (the root of the tree).
    pub center: NodeId,
    /// The level `i` such that `u ∈ A_i \ A_{i+1}`.
    pub level: usize,
    /// The cluster tree (every edge is a real edge of the input graph).
    pub tree: RootedTree,
    /// `root_estimate[v] = b_v(u)`: the construction's estimate of
    /// `d_G(u, v)`, satisfying `d_G(u,v) ≤ b_v(u) ≤ (1+ε)⁴ d_G(u,v)` for the
    /// approximate construction and equality for the exact one.
    pub root_estimate: NodeMap<Dist>,
}

impl Cluster {
    /// The members of the cluster.
    pub fn members(&self) -> Vec<NodeId> {
        self.tree.members()
    }

    /// Number of members (including the centre).
    pub fn size(&self) -> usize {
        self.tree.len()
    }

    /// Whether `v` belongs to the cluster.
    pub fn contains(&self, v: NodeId) -> bool {
        self.tree.contains(v)
    }
}

/// A family of clusters plus the pivot table, covering all levels `0..k`.
#[derive(Debug, Clone)]
pub struct ClusterFamily {
    /// The sampled hierarchy the family was built from.
    pub hierarchy: Hierarchy,
    /// The clusters, stored compactly in shared arrays.
    pub forest: ClusterForest,
    /// `pivots[v][i] = Some((ẑ_i(v), d̂_i(v)))`: the (approximate) `i`-pivot of
    /// `v` and the (approximate) distance to it; `None` when `A_i` is empty or
    /// unreachable. `pivots[v][0]` is always `(v, 0)`.
    pub pivots: Vec<Vec<Option<(NodeId, Dist)>>>,
    /// Centre → cluster-id index (every centre roots exactly one cluster).
    center_index: NodeMap<ClusterId>,
}

impl ClusterFamily {
    /// Assembles a family from its parts, building the centre index.
    ///
    /// # Panics
    ///
    /// Panics if two clusters share a centre (each centre `u ∈ A_i \ A_{i+1}`
    /// grows exactly one cluster).
    pub fn new(
        hierarchy: Hierarchy,
        forest: ClusterForest,
        pivots: Vec<Vec<Option<(NodeId, Dist)>>>,
    ) -> Self {
        let mut center_index = NodeMap::default();
        center_index.reserve(forest.num_clusters());
        for c in forest.clusters() {
            let prev = center_index.insert(c.center(), c.id());
            assert!(prev.is_none(), "duplicate cluster centre {}", c.center());
        }
        ClusterFamily {
            hierarchy,
            forest,
            pivots,
            center_index,
        }
    }

    /// The parameter `k`.
    pub fn k(&self) -> usize {
        self.hierarchy.k()
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.hierarchy.n()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.forest.num_clusters()
    }

    /// The cluster centred at `center`, if any.
    pub fn cluster(&self, center: NodeId) -> Option<ClusterView<'_>> {
        self.center_index
            .get(&center)
            .map(|&id| self.forest.cluster(id))
    }

    /// Iterates over all clusters in dense id order.
    pub fn clusters(&self) -> impl Iterator<Item = ClusterView<'_>> {
        self.forest.clusters()
    }

    /// The number of clusters containing `v`, answered in `O(1)` from the
    /// forest's membership CSR.
    pub fn overlap_of(&self, v: NodeId) -> usize {
        self.forest.overlap_of(v)
    }

    /// The maximum, over all vertices, of the number of clusters containing it
    /// (Claim 2 bounds this by `4 n^{1/k} log n` w.h.p. because every
    /// approximate cluster is a subset of the corresponding exact cluster).
    pub fn max_overlap(&self) -> usize {
        self.forest.max_overlap()
    }

    /// The maximum overlap restricted to clusters at a given level (this is
    /// the per-level congestion the small-scale Bellman–Ford analysis charges).
    pub fn max_overlap_at_level(&self, level: usize) -> usize {
        let mut count = vec![0usize; self.n()];
        for cluster in self.clusters().filter(|c| c.level() == level) {
            for v in cluster.members() {
                count[v] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// Sum of all cluster sizes (the total storage the cluster trees induce).
    pub fn total_cluster_size(&self) -> usize {
        self.forest.total_members()
    }

    /// Bytes occupied by the family's cluster storage (the perf harness's
    /// footprint gauge).
    pub fn cluster_bytes(&self) -> usize {
        self.forest.memory_bytes()
    }

    /// Checks that every cluster tree is a subgraph of `g` and is rooted at
    /// its centre — the structural invariants routing depends on: the centre
    /// is a member and is the unique parentless vertex (every other member
    /// hangs off a parent arc), and every arc is a real edge of `g` with the
    /// recorded weight.
    pub fn trees_are_valid_in(&self, g: &WeightedGraph) -> bool {
        self.clusters().all(|c| {
            c.contains(c.center())
                && c.parent(c.center()).is_none()
                && c.parent_arcs().count() == c.len() - 1
                && c.parent_arcs().all(|(v, p, w)| {
                    v < g.num_nodes() && p < g.num_nodes() && g.edge_weight(v, p) == Some(w)
                })
        })
    }

    /// Checks the root-estimate sandwich
    /// `d_G(center, v) ≤ b_v(center) ≤ slack · d_G(center, v)` for every
    /// member of every cluster (Lemma 5 with `slack = (1+ε)⁴`, or `slack = 1`
    /// for the exact family). Quadratic-ish; used by tests and benches.
    pub fn root_estimates_within(&self, g: &WeightedGraph, slack: f64) -> bool {
        use en_graph::dijkstra::dijkstra;
        self.clusters().all(|c| {
            let sp = dijkstra(g, c.center());
            c.members().zip(c.root_dists()).all(|(v, &est)| {
                let exact = sp.dist[v];
                est >= exact && (est as f64) <= slack * exact as f64 + 1e-9
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SchemeParams;
    use en_graph::forest::{ClusterForestBuilder, ForestMember};
    use en_graph::WeightedGraph;

    fn member(v: NodeId, parent: NodeId, weight: u64, root_dist: u64) -> ForestMember {
        ForestMember {
            v,
            parent,
            weight,
            root_dist,
        }
    }

    fn tiny_family() -> (WeightedGraph, ClusterFamily) {
        // Path 0 - 1 - 2 with unit weights; two clusters.
        let g = WeightedGraph::from_edges(3, [(0, 1, 1), (1, 2, 1)]).unwrap();
        let hierarchy = Hierarchy::from_levels(3, vec![vec![0, 1, 2], vec![1]]);
        let mut b = ClusterForestBuilder::new(3);
        b.push_cluster(1, 1, [member(0, 1, 1, 1), member(2, 1, 1, 1)]);
        b.push_cluster(0, 0, [member(1, 0, 1, 1)]);
        let pivots = vec![
            vec![Some((0, 0)), Some((1, 1))],
            vec![Some((1, 0)), Some((1, 0))],
            vec![Some((2, 0)), Some((1, 1))],
        ];
        (g, ClusterFamily::new(hierarchy, b.finish(), pivots))
    }

    #[test]
    fn overlap_counts() {
        let (_, fam) = tiny_family();
        assert_eq!(fam.overlap_of(1), 2);
        assert_eq!(fam.overlap_of(2), 1);
        assert_eq!(fam.max_overlap(), 2);
        assert_eq!(fam.max_overlap_at_level(0), 1);
        assert_eq!(fam.total_cluster_size(), 5);
        assert_eq!(fam.num_clusters(), 2);
        assert!(fam.cluster_bytes() > 0);
    }

    #[test]
    fn validity_checks_pass_on_well_formed_family() {
        let (g, fam) = tiny_family();
        assert!(fam.trees_are_valid_in(&g));
        assert!(fam.root_estimates_within(&g, 1.0));
        assert_eq!(fam.k(), 2);
        assert_eq!(fam.n(), 3);
    }

    #[test]
    fn validity_checks_catch_bad_estimates() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1), (1, 2, 1)]).unwrap();
        let hierarchy = Hierarchy::from_levels(3, vec![vec![0, 1, 2], vec![1]]);
        let mut b = ClusterForestBuilder::new(3);
        // Centre 1's estimate for vertex 2 overshoots the true distance 1.
        b.push_cluster(1, 1, [member(0, 1, 1, 1), member(2, 1, 1, 5)]);
        let pivots = vec![vec![None; 2]; 3];
        let fam = ClusterFamily::new(hierarchy, b.finish(), pivots);
        assert!(!fam.root_estimates_within(&g, 1.0));
        // But a generous slack accepts it.
        assert!(fam.root_estimates_within(&g, 5.0));
    }

    #[test]
    fn cluster_accessors() {
        let (_, fam) = tiny_family();
        let c = fam.cluster(1).expect("centre 1 has a cluster");
        assert_eq!(c.len(), 3);
        assert!(c.contains(0));
        assert!(!c.contains(3));
        assert_eq!(c.members().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(c.level(), 1);
        assert!(fam.cluster(2).is_none());
    }

    #[test]
    fn materialised_cluster_matches_the_view() {
        let (g, fam) = tiny_family();
        let view = fam.cluster(1).unwrap();
        let tree = view.tree();
        assert!(tree.is_subgraph_of(&g));
        assert_eq!(tree.members(), view.members().collect::<Vec<_>>());
        assert_eq!(tree.parent(0), Some((1, 1)));
    }

    #[test]
    fn params_overlap_bound_exceeds_observed_overlap_here() {
        let (_, fam) = tiny_family();
        let params = SchemeParams::new(2, 3, 0);
        assert!(params.overlap_bound() >= fam.max_overlap());
    }
}
