//! The [`ClusterFamily`]: the common output format of the exact and
//! approximate cluster constructions.
//!
//! Both the sequential Thorup–Zwick construction (exact clusters, used as the
//! Table 1 baseline) and the paper's distributed construction (approximate
//! clusters, Section 3) produce the same kind of object: one rooted tree per
//! cluster centre, a per-member estimate of the distance to the centre, and a
//! pivot table. Section 4 turns any such family into a routing scheme, so the
//! assembly code is shared.

use std::collections::HashMap;

use en_graph::tree::RootedTree;
use en_graph::{Dist, NodeId, NodeMap, WeightedGraph};

use crate::hierarchy::Hierarchy;

/// One cluster: a tree rooted at its centre, spanning the cluster members.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The cluster centre `u` (the root of the tree).
    pub center: NodeId,
    /// The level `i` such that `u ∈ A_i \ A_{i+1}`.
    pub level: usize,
    /// The cluster tree (every edge is a real edge of the input graph).
    pub tree: RootedTree,
    /// `root_estimate[v] = b_v(u)`: the construction's estimate of
    /// `d_G(u, v)`, satisfying `d_G(u,v) ≤ b_v(u) ≤ (1+ε)⁴ d_G(u,v)` for the
    /// approximate construction and equality for the exact one. Stored in a
    /// [`NodeMap`] (fast vertex-id hashing): one of these maps is built per
    /// centre, squarely on the construction hot path.
    pub root_estimate: NodeMap<Dist>,
}

impl Cluster {
    /// The members of the cluster.
    pub fn members(&self) -> Vec<NodeId> {
        self.tree.members()
    }

    /// Number of members (including the centre).
    pub fn size(&self) -> usize {
        self.tree.len()
    }

    /// Whether `v` belongs to the cluster.
    pub fn contains(&self, v: NodeId) -> bool {
        self.tree.contains(v)
    }
}

/// A family of clusters plus the pivot table, covering all levels `0..k`.
#[derive(Debug, Clone)]
pub struct ClusterFamily {
    /// The sampled hierarchy the family was built from.
    pub hierarchy: Hierarchy,
    /// The clusters, keyed by centre.
    pub clusters: HashMap<NodeId, Cluster>,
    /// `pivots[v][i] = Some((ẑ_i(v), d̂_i(v)))`: the (approximate) `i`-pivot of
    /// `v` and the (approximate) distance to it; `None` when `A_i` is empty or
    /// unreachable. `pivots[v][0]` is always `(v, 0)`.
    pub pivots: Vec<Vec<Option<(NodeId, Dist)>>>,
}

impl ClusterFamily {
    /// The parameter `k`.
    pub fn k(&self) -> usize {
        self.hierarchy.k()
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.hierarchy.n()
    }

    /// The number of clusters containing `v`.
    pub fn overlap_of(&self, v: NodeId) -> usize {
        self.clusters.values().filter(|c| c.contains(v)).count()
    }

    /// The maximum, over all vertices, of the number of clusters containing it
    /// (Claim 2 bounds this by `4 n^{1/k} log n` w.h.p. because every
    /// approximate cluster is a subset of the corresponding exact cluster).
    pub fn max_overlap(&self) -> usize {
        let mut count = vec![0usize; self.n()];
        for cluster in self.clusters.values() {
            for v in cluster.members() {
                count[v] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// The maximum overlap restricted to clusters at a given level (this is
    /// the per-level congestion the small-scale Bellman–Ford analysis charges).
    pub fn max_overlap_at_level(&self, level: usize) -> usize {
        let mut count = vec![0usize; self.n()];
        for cluster in self.clusters.values().filter(|c| c.level == level) {
            for v in cluster.members() {
                count[v] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// Sum of all cluster sizes (the total storage the cluster trees induce).
    pub fn total_cluster_size(&self) -> usize {
        self.clusters.values().map(Cluster::size).sum()
    }

    /// Checks that every cluster tree is a subgraph of `g` and is rooted at
    /// its centre — the structural invariants routing depends on.
    pub fn trees_are_valid_in(&self, g: &WeightedGraph) -> bool {
        self.clusters.values().all(|c| {
            c.tree.root() == c.center
                && c.tree.is_subgraph_of(g)
                && c.members()
                    .iter()
                    .all(|&v| c.root_estimate.contains_key(&v))
        })
    }

    /// Checks the root-estimate sandwich
    /// `d_G(center, v) ≤ b_v(center) ≤ slack · d_G(center, v)` for every
    /// member of every cluster (Lemma 5 with `slack = (1+ε)⁴`, or `slack = 1`
    /// for the exact family). Quadratic-ish; used by tests and benches.
    pub fn root_estimates_within(&self, g: &WeightedGraph, slack: f64) -> bool {
        use en_graph::dijkstra::dijkstra;
        self.clusters.values().all(|c| {
            let sp = dijkstra(g, c.center);
            c.root_estimate.iter().all(|(&v, &est)| {
                let exact = sp.dist[v];
                est >= exact && (est as f64) <= slack * exact as f64 + 1e-9
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SchemeParams;
    use en_graph::WeightedGraph;

    fn tiny_family() -> (WeightedGraph, ClusterFamily) {
        // Path 0 - 1 - 2 with unit weights; two clusters.
        let g = WeightedGraph::from_edges(3, [(0, 1, 1), (1, 2, 1)]).unwrap();
        let hierarchy = Hierarchy::from_levels(3, vec![vec![0, 1, 2], vec![1]]);
        let mut t1 = RootedTree::new(3, 1);
        t1.attach(0, 1, 1);
        t1.attach(2, 1, 1);
        let c1 = Cluster {
            center: 1,
            level: 1,
            tree: t1,
            root_estimate: NodeMap::from_iter([(1, 0), (0, 1), (2, 1)]),
        };
        let mut t0 = RootedTree::new(3, 0);
        t0.attach(1, 0, 1);
        let c0 = Cluster {
            center: 0,
            level: 0,
            tree: t0,
            root_estimate: NodeMap::from_iter([(0, 0), (1, 1)]),
        };
        let clusters = HashMap::from([(1, c1), (0, c0)]);
        let pivots = vec![
            vec![Some((0, 0)), Some((1, 1))],
            vec![Some((1, 0)), Some((1, 0))],
            vec![Some((2, 0)), Some((1, 1))],
        ];
        (
            g,
            ClusterFamily {
                hierarchy,
                clusters,
                pivots,
            },
        )
    }

    #[test]
    fn overlap_counts() {
        let (_, fam) = tiny_family();
        assert_eq!(fam.overlap_of(1), 2);
        assert_eq!(fam.overlap_of(2), 1);
        assert_eq!(fam.max_overlap(), 2);
        assert_eq!(fam.max_overlap_at_level(0), 1);
        assert_eq!(fam.total_cluster_size(), 5);
    }

    #[test]
    fn validity_checks_pass_on_well_formed_family() {
        let (g, fam) = tiny_family();
        assert!(fam.trees_are_valid_in(&g));
        assert!(fam.root_estimates_within(&g, 1.0));
        assert_eq!(fam.k(), 2);
        assert_eq!(fam.n(), 3);
    }

    #[test]
    fn validity_checks_catch_bad_estimates() {
        let (g, mut fam) = tiny_family();
        fam.clusters.get_mut(&1).unwrap().root_estimate.insert(2, 5);
        assert!(!fam.root_estimates_within(&g, 1.0));
        // But a generous slack accepts it.
        assert!(fam.root_estimates_within(&g, 5.0));
    }

    #[test]
    fn cluster_accessors() {
        let (_, fam) = tiny_family();
        let c = &fam.clusters[&1];
        assert_eq!(c.size(), 3);
        assert!(c.contains(0));
        assert!(!c.contains(3));
        let mut m = c.members();
        m.sort_unstable();
        assert_eq!(m, vec![0, 1, 2]);
    }

    #[test]
    fn params_overlap_bound_exceeds_observed_overlap_here() {
        let (_, fam) = tiny_family();
        let params = SchemeParams::new(2, 3, 0);
        assert!(params.overlap_bound() >= fam.max_overlap());
    }
}
