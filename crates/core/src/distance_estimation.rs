//! Distance estimation (Section 5, Theorem 6).
//!
//! Every vertex `v` gets a *sketch* containing, for every centre `u` with
//! `v ∈ C̃(u)`, the pair `(u, b_v(u))`, plus for every level `i` the pair
//! `(ẑ_i(v), d̂_i(v))`. By Claim 2 the sketch has `O(n^{1/k} log n)` entries.
//! Given the sketches of `u` and `v` alone, Algorithm 2 (`Dist`) returns a
//! distance estimate with stretch `2k − 1 + o(1)` in `O(k)` time.

use std::collections::HashMap;

use en_graph::{Dist, NodeId, INFINITY};

use crate::error::RoutingError;
use crate::family::ClusterFamily;

/// The distance-estimation sketch of a single vertex.
#[derive(Debug, Clone)]
pub struct Sketch {
    /// The sketched vertex.
    pub vertex: NodeId,
    /// `(centre u, b_v(u))` for every cluster containing the vertex.
    pub cluster_entries: HashMap<NodeId, Dist>,
    /// `(ẑ_i(v), d̂_i(v))` per level `i` (missing levels are `None`).
    pub pivot_entries: Vec<Option<(NodeId, Dist)>>,
}

impl Sketch {
    /// Size of the sketch in `O(log n)` words.
    pub fn words(&self) -> usize {
        1 + 2 * self.cluster_entries.len() + 2 * self.pivot_entries.len()
    }

    /// The estimate `b_v(u)` if this vertex belongs to `C̃(u)`.
    pub fn estimate_to_center(&self, u: NodeId) -> Option<Dist> {
        self.cluster_entries.get(&u).copied()
    }
}

/// The full distance-estimation scheme: one sketch per vertex.
#[derive(Debug, Clone)]
pub struct DistanceEstimation {
    k: usize,
    sketches: Vec<Sketch>,
}

/// The result of one `Dist(u, v)` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceEstimate {
    /// The returned estimate `d̂(u, v)`.
    pub estimate: Dist,
    /// The number of while-loop iterations Algorithm 2 performed (at most `k`,
    /// demonstrating the `O(k)` query time).
    pub iterations: usize,
}

impl DistanceEstimation {
    /// Builds all sketches from a cluster family, reading each vertex's
    /// `(centre, b_v(u))` pairs straight off the forest's membership CSR —
    /// one pre-sized map per vertex, no per-cluster scatter pass.
    pub fn build(family: &ClusterFamily) -> Self {
        let n = family.n();
        let k = family.k();
        let forest = &family.forest;
        let sketches = (0..n)
            .map(|v| {
                let mut cluster_entries = HashMap::with_capacity(forest.overlap_of(v));
                for (id, pos) in forest.membership(v) {
                    let cluster = forest.cluster(id);
                    cluster_entries.insert(cluster.center(), cluster.root_dists()[pos]);
                }
                Sketch {
                    vertex: v,
                    cluster_entries,
                    pivot_entries: family.pivots[v].clone(),
                }
            })
            .collect();
        DistanceEstimation { k, sketches }
    }

    /// The parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.sketches.len()
    }

    /// The sketch of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn sketch(&self, v: NodeId) -> &Sketch {
        &self.sketches[v]
    }

    /// Maximum sketch size in words.
    pub fn max_sketch_words(&self) -> usize {
        self.sketches.iter().map(Sketch::words).max().unwrap_or(0)
    }

    /// Average sketch size in words.
    pub fn avg_sketch_words(&self) -> f64 {
        if self.sketches.is_empty() {
            return 0.0;
        }
        self.sketches.iter().map(Sketch::words).sum::<usize>() as f64 / self.sketches.len() as f64
    }

    /// Algorithm 2 (`Dist`): estimates `d_G(u, v)` from the two sketches alone.
    ///
    /// # Errors
    ///
    /// Returns an error if a vertex is out of range, or
    /// [`RoutingError::NoCommonTree`] if the loop exhausts all levels (a
    /// low-probability sampling failure).
    pub fn query(&self, u: NodeId, v: NodeId) -> Result<DistanceEstimate, RoutingError> {
        let n = self.sketches.len();
        if u >= n {
            return Err(RoutingError::NodeOutOfRange { node: u, n });
        }
        if v >= n {
            return Err(RoutingError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Ok(DistanceEstimate {
                estimate: 0,
                iterations: 0,
            });
        }
        // Algorithm 2: w = u; while v not in C~(w): i += 1; swap(u, v); w = ẑ_i(u).
        let mut a = u;
        let mut b = v;
        let mut w = a;
        let mut i = 0;
        let mut iterations = 0;
        loop {
            if let Some(bv) = self.sketches[b].estimate_to_center(w) {
                // d̂_i(a) + b_b(w): the distance from `a` to its i-pivot plus the
                // estimate from `b` to that pivot stored in b's sketch.
                let da = if i == 0 {
                    0
                } else {
                    self.sketches[a].pivot_entries[i]
                        .map(|(_, d)| d)
                        .unwrap_or(INFINITY)
                };
                return Ok(DistanceEstimate {
                    estimate: da.saturating_add(bv).min(INFINITY),
                    iterations,
                });
            }
            i += 1;
            iterations += 1;
            if i >= self.k {
                return Err(RoutingError::NoCommonTree { from: u, to: v });
            }
            std::mem::swap(&mut a, &mut b);
            match self.sketches[a].pivot_entries[i] {
                Some((z, _)) => w = z,
                None => return Err(RoutingError::NoCommonTree { from: u, to: v }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_cluster_family;
    use crate::hierarchy::Hierarchy;
    use crate::params::SchemeParams;
    use en_graph::dijkstra::all_pairs_dijkstra;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
    use en_graph::WeightedGraph;

    fn build(n: usize, k: usize, seed: u64) -> (WeightedGraph, DistanceEstimation, SchemeParams) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 30), 0.1);
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        (g, DistanceEstimation::build(&family), params)
    }

    #[test]
    fn estimates_never_undercut_and_respect_stretch_bound() {
        let (g, oracle, params) = build(60, 3, 1);
        let truth = all_pairs_dijkstra(&g);
        let bound = params.sketch_stretch_bound();
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let est = oracle.query(u, v).unwrap();
                assert!(est.estimate >= truth[u][v], "{u}->{v} undercuts");
                assert!(
                    est.estimate as f64 <= bound * truth[u][v] as f64 + 1e-9,
                    "{u}->{v}: {} vs {} (bound {bound})",
                    est.estimate,
                    truth[u][v]
                );
                assert!(est.iterations < 3);
            }
        }
    }

    #[test]
    fn query_is_symmetric_enough_for_bounds() {
        // Algorithm 2 is not symmetric in general, but both directions must
        // respect the stretch bound.
        let (g, oracle, params) = build(40, 2, 2);
        let truth = all_pairs_dijkstra(&g);
        let bound = params.sketch_stretch_bound();
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let a = oracle.query(u, v).unwrap().estimate;
                let b = oracle.query(v, u).unwrap().estimate;
                assert!(a as f64 <= bound * truth[u][v] as f64 + 1e-9);
                assert!(b as f64 <= bound * truth[u][v] as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn identical_vertices_have_zero_distance() {
        let (_, oracle, _) = build(20, 2, 3);
        let est = oracle.query(5, 5).unwrap();
        assert_eq!(est.estimate, 0);
        assert_eq!(est.iterations, 0);
    }

    #[test]
    fn sketch_sizes_obey_claim_2() {
        let (_, oracle, params) = build(100, 3, 4);
        // Each sketch has at most overlap_bound cluster entries plus k pivots.
        let bound = 2 * params.overlap_bound() + 2 * params.k + 1;
        assert!(
            oracle.max_sketch_words() <= bound,
            "{} > {}",
            oracle.max_sketch_words(),
            bound
        );
        assert!(oracle.avg_sketch_words() > 0.0);
    }

    #[test]
    fn k_equals_one_is_exact() {
        let (g, oracle, _) = build(30, 1, 5);
        let truth = all_pairs_dijkstra(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                let est = oracle.query(u, v).unwrap();
                assert_eq!(est.estimate, truth[u][v]);
            }
        }
    }

    #[test]
    fn out_of_range_is_rejected() {
        let (_, oracle, _) = build(10, 2, 6);
        assert!(oracle.query(0, 99).is_err());
        assert!(oracle.query(99, 0).is_err());
    }

    #[test]
    fn query_time_is_bounded_by_k() {
        let (g, oracle, params) = build(80, 4, 7);
        for u in g.nodes().step_by(3) {
            for v in g.nodes().step_by(5) {
                if u == v {
                    continue;
                }
                let est = oracle.query(u, v).unwrap();
                assert!(est.iterations < params.k);
            }
        }
    }
}
