//! The sequential Thorup–Zwick baseline \[TZ01, TZ05\].
//!
//! Exact pivots, exact clusters, the same tree-routing machinery, Algorithm 1
//! with the `4k−5` refinement, and the `2k−1` distance oracle. The only thing
//! that differs from the paper's scheme is *how* the clusters are computed
//! (sequentially and exactly, versus distributively and approximately), which
//! is precisely the comparison Table 1 makes.

use en_congest::RoundLedger;
use en_graph::bfs::is_connected;
use en_graph::WeightedGraph;

use crate::distance_estimation::DistanceEstimation;
use crate::error::RoutingError;
use crate::exact::exact_cluster_family;
use crate::family::ClusterFamily;
use crate::hierarchy::Hierarchy;
use crate::params::SchemeParams;
use crate::scheme::RoutingScheme;

/// The output of the Thorup–Zwick baseline construction.
#[derive(Debug, Clone)]
pub struct TzBaseline {
    /// The parameters used.
    pub params: SchemeParams,
    /// The exact cluster family.
    pub family: ClusterFamily,
    /// The assembled routing scheme.
    pub scheme: RoutingScheme,
    /// The exact distance oracle (stretch `2k − 1`).
    pub oracle: DistanceEstimation,
    /// The round charge of the natural distributed implementation of the
    /// sequential algorithm (`O(m)` rounds: every vertex must learn enough of
    /// the graph to run the global computation, cf. Table 1's `O(m)` row).
    pub ledger: RoundLedger,
}

/// Builds the Thorup–Zwick baseline.
///
/// # Errors
///
/// Returns an error if `k == 0`, the graph is empty or disconnected.
pub fn build_tz_baseline(
    g: &WeightedGraph,
    k: usize,
    seed: u64,
) -> Result<TzBaseline, RoutingError> {
    if k == 0 {
        return Err(RoutingError::InvalidK { k });
    }
    if g.num_nodes() == 0 {
        return Err(RoutingError::EmptyGraph);
    }
    if !is_connected(g) {
        return Err(RoutingError::DisconnectedGraph);
    }
    let params = SchemeParams::new(k, g.num_nodes(), seed);
    let hierarchy = Hierarchy::sample(&params);
    let family = exact_cluster_family(g, &hierarchy);
    let scheme = RoutingScheme::assemble(&family, seed ^ 0xBA5E_11AE);
    let oracle = DistanceEstimation::build(&family);
    let mut ledger = RoundLedger::new();
    ledger.charge(
        "sequential Thorup-Zwick construction, run centrally",
        g.num_edges(),
        "Table 1 charges O(m) rounds: gathering the whole topology at one vertex costs Omega(m) in CONGEST",
    );
    Ok(TzBaseline {
        params,
        family,
        scheme,
        oracle,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stretch::measure_stretch_all_pairs;
    use en_graph::dijkstra::all_pairs_dijkstra;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    #[test]
    fn tz_baseline_routes_with_4k_minus_5_stretch() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(50, 3).with_weights(1, 25), 0.1);
        let baseline = build_tz_baseline(&g, 3, 3).unwrap();
        let report = measure_stretch_all_pairs(&g, &baseline.scheme);
        assert_eq!(report.failures, 0);
        assert!(report.max_stretch <= baseline.params.stretch_bound() + 1e-9);
    }

    #[test]
    fn tz_oracle_respects_2k_minus_1() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(45, 5).with_weights(1, 25), 0.1);
        let baseline = build_tz_baseline(&g, 2, 5).unwrap();
        let truth = all_pairs_dijkstra(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let est = baseline.oracle.query(u, v).unwrap().estimate;
                assert!(est >= truth[u][v]);
                assert!(est as f64 <= 3.0 * truth[u][v] as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn tz_round_charge_is_m() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(40, 7), 0.15);
        let baseline = build_tz_baseline(&g, 2, 7).unwrap();
        assert_eq!(baseline.ledger.total_rounds(), g.num_edges());
    }

    #[test]
    fn tz_rejects_bad_inputs() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(10, 1), 0.3);
        assert!(build_tz_baseline(&g, 0, 1).is_err());
        assert!(build_tz_baseline(&WeightedGraph::new(0), 2, 1).is_err());
    }
}
