//! A Lenzen–Patt-Shamir-style landmark baseline (stand-in for \[LP13a\]).
//!
//! \[LP13a\] obtains a nearly optimal `Õ(n^{1/2+1/k} + D)` construction time,
//! but its routing tables have `Ω(√n)` words for *every* `k`, because every
//! vertex must know the routing information of a `Θ(√n)`-size landmark
//! sample. That is the deficiency the paper fixes, and the axis Table 1
//! compares. This module reproduces exactly that structure:
//!
//! * sample a landmark set `L` of expected size `√n`;
//! * every vertex stores a tree-routing table for the shortest-path tree of
//!   *every* landmark (Θ(√n) tables), plus the tree of its own local cluster
//!   `C_L(u) = {v : d(u,v) < d(v, L)}`;
//! * the label of `v` is its home landmark, the distance to it, and `v`'s
//!   tree label in the home landmark's tree;
//! * a packet to `v` is routed in `u`'s own cluster tree when `v` is a local
//!   neighbour, and in the home landmark's tree otherwise, giving stretch ≤ 3.
//!
//! (Our stand-in has *better* stretch than \[LP13a\]'s `O(k log k)` — see
//! EXPERIMENTS.md; the comparison axis it reproduces is table size and
//! construction time, which is what Table 1 contrasts.)
//!
//! Structurally this is the Thorup–Zwick scheme with `k = 2`, which is exactly
//! why its tables cannot shrink below `Θ(√n)`; the implementation reuses the
//! exact-cluster machinery with an explicit two-level hierarchy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use en_congest::RoundLedger;
use en_graph::bfs::is_connected;
use en_graph::{NodeId, WeightedGraph};

use crate::error::RoutingError;
use crate::exact::exact_cluster_family;
use crate::family::ClusterFamily;
use crate::hierarchy::Hierarchy;
use crate::scheme::RoutingScheme;

/// The landmark baseline.
#[derive(Debug, Clone)]
pub struct LandmarkBaseline {
    /// The sampled landmark set `L`.
    pub landmarks: Vec<NodeId>,
    /// The underlying (two-level) cluster family.
    pub family: ClusterFamily,
    /// The assembled routing scheme (tables are `Θ(√n)` words).
    pub scheme: RoutingScheme,
    /// The round charge of the construction, per \[LP13a\]:
    /// `Õ(n^{1/2+1/k} + D)` — evaluated at the `k` the *comparison* uses so
    /// the harness can put it side by side with the paper's construction.
    pub ledger: RoundLedger,
}

/// Builds the landmark baseline. `k_for_charge` only affects the reported
/// round charge (the structure itself does not depend on `k` — that is its
/// defining deficiency).
///
/// # Errors
///
/// Returns an error if the graph is empty or disconnected.
pub fn build_landmark_baseline(
    g: &WeightedGraph,
    k_for_charge: usize,
    seed: u64,
    hop_diameter: usize,
) -> Result<LandmarkBaseline, RoutingError> {
    if g.num_nodes() == 0 {
        return Err(RoutingError::EmptyGraph);
    }
    if !is_connected(g) {
        return Err(RoutingError::DisconnectedGraph);
    }
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1A4D_0001);
    let p = (n as f64).powf(-0.5).min(1.0);
    let mut landmarks: Vec<NodeId> = (0..n).filter(|_| rng.gen_bool(p)).collect();
    if landmarks.is_empty() {
        landmarks.push(rng.gen_range(0..n));
    }
    let hierarchy = Hierarchy::from_levels(n, vec![(0..n).collect(), landmarks.clone()]);
    let family = exact_cluster_family(g, &hierarchy);
    let scheme = RoutingScheme::assemble(&family, seed ^ 0x1A4D_0002);
    let mut ledger = RoundLedger::new();
    let k = k_for_charge.max(1) as f64;
    let rounds = ((n as f64).powf(0.5 + 1.0 / k) + hop_diameter as f64) * (n as f64).ln().max(1.0);
    ledger.charge(
        "LP13-style landmark construction",
        rounds.ceil() as usize,
        format!("O~(n^(1/2+1/{k_for_charge}) + D) per [LP13a]"),
    );
    Ok(LandmarkBaseline {
        landmarks,
        family,
        scheme,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stretch::measure_stretch_all_pairs;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    #[test]
    fn landmark_scheme_has_stretch_at_most_three() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(60, 2).with_weights(1, 30), 0.08);
        let baseline = build_landmark_baseline(&g, 4, 2, 6).unwrap();
        let report = measure_stretch_all_pairs(&g, &baseline.scheme);
        assert_eq!(report.failures, 0);
        assert!(
            report.max_stretch <= 3.0 + 1e-9,
            "stretch {}",
            report.max_stretch
        );
    }

    #[test]
    fn landmark_tables_do_not_shrink_with_k() {
        // The charge parameter k has no effect on the structure: tables stay Θ(√n).
        let g = erdos_renyi_connected(&GeneratorConfig::new(80, 3).with_weights(1, 30), 0.08);
        let b2 = build_landmark_baseline(&g, 2, 3, 6).unwrap();
        let b6 = build_landmark_baseline(&g, 6, 3, 6).unwrap();
        assert_eq!(b2.scheme.max_table_words(), b6.scheme.max_table_words());
        // And they are at least |L| words (one table entry per landmark tree).
        assert!(b2.scheme.max_table_words() >= b2.landmarks.len());
    }

    #[test]
    fn round_charge_decreases_with_k() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(50, 5), 0.1);
        let b2 = build_landmark_baseline(&g, 2, 5, 6).unwrap();
        let b8 = build_landmark_baseline(&g, 8, 5, 6).unwrap();
        assert!(b8.ledger.total_rounds() <= b2.ledger.total_rounds());
    }

    #[test]
    fn rejects_disconnected_graphs() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(build_landmark_baseline(&g, 3, 1, 2).is_err());
    }
}
