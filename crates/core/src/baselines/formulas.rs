//! Closed-form round counts for every row of Table 1.
//!
//! The harness prints, next to each measured quantity, the formula the
//! corresponding paper proves; these helpers evaluate those formulas (with
//! `Õ(·)` instantiated as `· ln n`, and `n^{o(1)}` instantiated through the
//! measured hopset hopbound `β`) so the *shape* of the comparison — who needs
//! fewer rounds, how the crossover moves with `D` — can be read off directly.

/// `ln n`, clamped below at 1.
fn ln_n(n: usize) -> f64 {
    (n.max(2) as f64).ln().max(1.0)
}

/// \[TZ01, Che13\]: the sequential construction, `O(m)` rounds when run
/// centrally in CONGEST.
pub fn tz01_rounds(m: usize) -> f64 {
    m as f64
}

/// \[LP15\], first variant: `Õ(S + n^{1/k})` rounds (parameterised by the
/// shortest-path diameter `S`, which may be `Ω(n)`).
pub fn lp15_spd_rounds(n: usize, k: usize, s: usize) -> f64 {
    (s as f64 + (n as f64).powf(1.0 / k as f64)) * ln_n(n)
}

/// \[LP13a, LP15\]: `Õ(n^{1/2 + 1/(4k)} + D)` rounds (the variant with
/// `Õ(n^{1/2+1/(4k)})`-size tables and stretch `6k − 1 + o(1)`).
pub fn lp13_rounds(n: usize, k: usize, d: usize) -> f64 {
    ((n as f64).powf(0.5 + 1.0 / (4.0 * k as f64)) + d as f64) * ln_n(n)
}

/// \[LP15\], small-table variant:
/// `Õ(min{ (nD)^{1/2} n^{1/k}, n^{2/3 + 2/(3k)} + D })` rounds.
pub fn lp15_small_table_rounds(n: usize, k: usize, d: usize) -> f64 {
    let nf = n as f64;
    let kf = k as f64;
    let a = (nf * d.max(1) as f64).sqrt() * nf.powf(1.0 / kf);
    let b = nf.powf(2.0 / 3.0 + 2.0 / (3.0 * kf)) + d as f64;
    a.min(b) * ln_n(n)
}

/// This paper, even `k`: `(n^{1/2 + 1/k} + D) · min{(log n)^{O(k)}, 2^{Õ(√log n)}}`;
/// the `n^{o(1)}` factor is instantiated with the measured hopset hopbound `β`.
pub fn this_paper_even_rounds(n: usize, k: usize, d: usize, beta: usize) -> f64 {
    ((n as f64).powf(0.5 + 1.0 / k as f64) + d as f64) * beta.max(1) as f64
}

/// This paper, odd `k`: `(n^{1/2 + 1/(2k)} + D) · min{(log n)^{O(k)}, 2^{Õ(√log n)}}`.
pub fn this_paper_odd_rounds(n: usize, k: usize, d: usize, beta: usize) -> f64 {
    ((n as f64).powf(0.5 + 1.0 / (2.0 * k as f64)) + d as f64) * beta.max(1) as f64
}

/// The paper's round formula dispatched on the parity of `k`.
pub fn this_paper_rounds(n: usize, k: usize, d: usize, beta: usize) -> f64 {
    if k % 2 == 0 {
        this_paper_even_rounds(n, k, d, beta)
    } else {
        this_paper_odd_rounds(n, k, d, beta)
    }
}

/// The lower bound `Ω̃(√n + D)` of \[SHK+12\] that any polynomial-stretch
/// scheme must pay (the yardstick "near optimal" refers to).
pub fn lower_bound_rounds(n: usize, d: usize) -> f64 {
    (n as f64).sqrt() + d as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn this_paper_beats_lp15_small_table_for_large_diameter() {
        // The abstract's claim: substantially better than [LP15] whenever D ≥ n^Ω(1)
        // (the advantage kicks in once the polynomial gap beats the n^{o(1)} factor).
        let n = 1 << 20;
        let k = 8;
        let d = (n as f64).sqrt() as usize;
        let ours = this_paper_even_rounds(n, k, d, 16);
        let lp15 = lp15_small_table_rounds(n, k, d);
        assert!(ours < lp15, "ours {ours} vs lp15 {lp15}");
    }

    #[test]
    fn odd_k_is_cheaper_than_even_k_formula() {
        let n = 1 << 18;
        assert!(this_paper_odd_rounds(n, 5, 100, 32) < this_paper_even_rounds(n, 5, 100, 32));
        assert!(this_paper_rounds(n, 5, 100, 32) == this_paper_odd_rounds(n, 5, 100, 32));
        assert!(this_paper_rounds(n, 4, 100, 32) == this_paper_even_rounds(n, 4, 100, 32));
    }

    #[test]
    fn everything_dominates_the_lower_bound() {
        let n = 1 << 16;
        let d = 50;
        let lb = lower_bound_rounds(n, d);
        assert!(lp13_rounds(n, 3, d) >= lb);
        assert!(lp15_small_table_rounds(n, 3, d) >= lb);
        assert!(this_paper_rounds(n, 3, d, 16) >= lb);
        assert!(tz01_rounds(8 * n) >= lb);
    }

    #[test]
    fn lp15_spd_variant_blows_up_with_s() {
        let n = 10_000;
        assert!(lp15_spd_rounds(n, 4, n) > lp15_spd_rounds(n, 4, 100) * 10.0);
    }
}
