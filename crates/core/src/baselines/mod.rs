//! Baseline schemes for the Table 1 comparison.
//!
//! * [`tz`] — the sequential Thorup–Zwick construction \[TZ01, TZ05\]: exact
//!   pivots and clusters, same table/label shape, stretch `4k − 5`. This is
//!   the "centralized" row of Table 1: identical space/stretch trade-off, but
//!   its natural distributed implementation needs `Ω(S)` or `O(m)` rounds.
//! * [`landmark`] — a Lenzen–Patt-Shamir-style landmark scheme standing in for
//!   \[LP13a\]: near-optimal construction time but routing tables of
//!   `Ω(√n)` words *regardless of `k`* (the deficiency the paper fixes).
//! * [`formulas`] — the closed-form round counts of the other Table 1 rows
//!   (\[LP15\] variants), which are reported analytically.

pub mod formulas;
pub mod landmark;
pub mod tz;
