//! Error type for the routing-scheme construction and queries.

use std::error::Error;
use std::fmt;

use en_graph::NodeId;

/// Errors produced while constructing or querying a routing scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RoutingError {
    /// The parameter `k` must be at least 1.
    InvalidK {
        /// The rejected value.
        k: usize,
    },
    /// The input graph must be connected (a routing scheme cannot deliver
    /// across components).
    DisconnectedGraph,
    /// The input graph has no vertices.
    EmptyGraph,
    /// A queried vertex id is out of range.
    NodeOutOfRange {
        /// The offending vertex.
        node: NodeId,
        /// The number of vertices.
        n: usize,
    },
    /// `Find-tree` exhausted all levels without finding a tree containing both
    /// endpoints. With high probability this cannot happen; it indicates that
    /// a low-probability sampling event failed (rerun with a different seed).
    NoCommonTree {
        /// The packet source.
        from: NodeId,
        /// The packet destination.
        to: NodeId,
    },
    /// Forwarding inside a cluster tree failed.
    TreeRouting(String),
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::InvalidK { k } => write!(f, "parameter k must be at least 1, got {k}"),
            RoutingError::DisconnectedGraph => write!(f, "input graph is not connected"),
            RoutingError::EmptyGraph => write!(f, "input graph has no vertices"),
            RoutingError::NodeOutOfRange { node, n } => {
                write!(f, "vertex {node} out of range for graph with {n} vertices")
            }
            RoutingError::NoCommonTree { from, to } => write!(
                f,
                "no cluster tree contains both {from} and {to}; a low-probability sampling event failed"
            ),
            RoutingError::TreeRouting(msg) => write!(f, "tree routing failed: {msg}"),
        }
    }
}

impl Error for RoutingError {}

impl From<en_tree_routing::scheme::TreeRoutingError> for RoutingError {
    fn from(e: en_tree_routing::scheme::TreeRoutingError) -> Self {
        RoutingError::TreeRouting(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RoutingError::InvalidK { k: 0 }.to_string().contains("k"));
        assert!(RoutingError::DisconnectedGraph
            .to_string()
            .contains("connected"));
        assert!(RoutingError::EmptyGraph.to_string().contains("no vertices"));
        assert!(RoutingError::NodeOutOfRange { node: 7, n: 3 }
            .to_string()
            .contains('7'));
        assert!(RoutingError::NoCommonTree { from: 1, to: 2 }
            .to_string()
            .contains("cluster tree"));
        assert!(RoutingError::TreeRouting("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<RoutingError>();
    }
}
