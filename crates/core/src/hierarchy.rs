//! The sampled vertex hierarchy `V = A_0 ⊇ A_1 ⊇ … ⊇ A_{k−1} ⊇ A_k = ∅`.
//!
//! Each vertex of `A_{i−1}` is promoted to `A_i` independently with
//! probability `n^{-1/k}` (Section 3 of the paper / \[TZ05\]). The *level* of
//! a vertex `u` is the largest `i` with `u ∈ A_i`; cluster centres at level
//! `i` are exactly the vertices of `A_i \ A_{i+1}`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use en_graph::NodeId;

use crate::params::SchemeParams;

/// The sampled hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    k: usize,
    /// `levels[i]` is the sorted vertex list of `A_i`, for `i = 0..k` (so
    /// `levels[0]` is all of `V` and the virtual `A_k = ∅` is *not* stored).
    levels: Vec<Vec<NodeId>>,
    /// `level_of[v]` is the largest `i` with `v ∈ A_i`.
    level_of: Vec<usize>,
}

impl Hierarchy {
    /// Samples a hierarchy for the given parameters.
    pub fn sample(params: &SchemeParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let n = params.n;
        let p = params.sampling_probability();
        let mut levels: Vec<Vec<NodeId>> = Vec::with_capacity(params.k);
        levels.push((0..n).collect());
        for i in 1..params.k {
            let prev = &levels[i - 1];
            let next: Vec<NodeId> = prev.iter().copied().filter(|_| rng.gen_bool(p)).collect();
            levels.push(next);
        }
        let mut level_of = vec![0; n];
        for (i, level) in levels.iter().enumerate() {
            for &v in level {
                level_of[v] = i;
            }
        }
        Hierarchy {
            k: params.k,
            levels,
            level_of,
        }
    }

    /// Builds a hierarchy from explicit levels (used by tests and by the exact
    /// baseline when reproducing a specific sampling outcome).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, `levels[0]` is not `0..n`, or the levels
    /// are not nested.
    pub fn from_levels(n: usize, levels: Vec<Vec<NodeId>>) -> Self {
        assert!(!levels.is_empty(), "at least level A_0 is required");
        assert_eq!(
            levels[0],
            (0..n).collect::<Vec<_>>(),
            "A_0 must be all of V"
        );
        for i in 1..levels.len() {
            for &v in &levels[i] {
                assert!(
                    levels[i - 1].contains(&v),
                    "levels must be nested: {v} in A_{i} but not A_{}",
                    i - 1
                );
            }
        }
        let k = levels.len();
        let mut level_of = vec![0; n];
        for (i, level) in levels.iter().enumerate() {
            for &v in level {
                level_of[v] = i;
            }
        }
        Hierarchy {
            k,
            levels,
            level_of,
        }
    }

    /// The parameter `k` (number of levels including `A_0`, excluding `A_k = ∅`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.level_of.len()
    }

    /// The vertex set `A_i`. For `i >= k` returns the empty set (`A_k = ∅`).
    pub fn level(&self, i: usize) -> &[NodeId] {
        if i < self.levels.len() {
            &self.levels[i]
        } else {
            &[]
        }
    }

    /// The largest `i` such that `v ∈ A_i`.
    pub fn level_of(&self, v: NodeId) -> usize {
        self.level_of[v]
    }

    /// The cluster centres at level `i`: `A_i \ A_{i+1}`.
    pub fn centers_at(&self, i: usize) -> Vec<NodeId> {
        self.level(i)
            .iter()
            .copied()
            .filter(|&v| self.level_of[v] == i)
            .collect()
    }

    /// The first level that is empty (if any level `< k` is); the construction
    /// effectively stops there because `d(·, A_i) = ∞` from then on.
    pub fn first_empty_level(&self) -> Option<usize> {
        (1..self.k).find(|&i| self.levels[i].is_empty())
    }

    /// Checks the size bound of Claim 3(1): `|A_i| ≤ 4 n^{1−i/k} ln n`.
    pub fn satisfies_size_bounds(&self) -> bool {
        let n = self.n() as f64;
        (0..self.k).all(|i| {
            let bound = 4.0 * n.powf(1.0 - i as f64 / self.k as f64) * n.ln().max(1.0);
            (self.levels[i].len() as f64) <= bound
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, k: usize, seed: u64) -> SchemeParams {
        SchemeParams::new(k, n, seed)
    }

    #[test]
    fn levels_are_nested_and_a0_is_everything() {
        let h = Hierarchy::sample(&params(200, 4, 3));
        assert_eq!(h.level(0).len(), 200);
        for i in 1..4 {
            for &v in h.level(i) {
                assert!(h.level(i - 1).contains(&v));
            }
        }
        assert_eq!(h.level(4), &[] as &[NodeId]);
        assert_eq!(h.level(9), &[] as &[NodeId]);
    }

    #[test]
    fn level_of_is_consistent_with_levels() {
        let h = Hierarchy::sample(&params(150, 3, 9));
        for v in 0..150 {
            let l = h.level_of(v);
            assert!(h.level(l).contains(&v));
            if l + 1 < 3 {
                assert!(!h.level(l + 1).contains(&v));
            }
        }
    }

    #[test]
    fn centers_partition_vertices() {
        let h = Hierarchy::sample(&params(120, 3, 5));
        let mut seen = [false; 120];
        for i in 0..3 {
            for v in h.centers_at(i) {
                assert!(!seen[v], "vertex {v} appears as a centre twice");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = Hierarchy::sample(&params(100, 3, 7));
        let b = Hierarchy::sample(&params(100, 3, 7));
        let c = Hierarchy::sample(&params(100, 3, 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn k_equals_one_gives_single_level() {
        let h = Hierarchy::sample(&params(50, 1, 1));
        assert_eq!(h.k(), 1);
        assert_eq!(h.centers_at(0).len(), 50);
        assert_eq!(h.first_empty_level(), None);
    }

    #[test]
    fn expected_level_sizes_roughly_geometric() {
        // With n = 4096 and k = 2 the expected |A_1| is 64; allow generous slack.
        let h = Hierarchy::sample(&params(4096, 2, 11));
        let a1 = h.level(1).len();
        assert!(a1 > 20 && a1 < 160, "|A_1| = {a1}");
        assert!(h.satisfies_size_bounds());
    }

    #[test]
    fn from_levels_roundtrip_and_validation() {
        let h = Hierarchy::from_levels(4, vec![vec![0, 1, 2, 3], vec![1, 3]]);
        assert_eq!(h.level_of(1), 1);
        assert_eq!(h.level_of(0), 0);
        assert_eq!(h.centers_at(1), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "nested")]
    fn from_levels_rejects_non_nested() {
        let _ = Hierarchy::from_levels(3, vec![vec![0, 1, 2], vec![0], vec![1]]);
    }
}
