//! The Section 3.3.1 preprocessing for the large scales.
//!
//! Let `V' = A_{⌈k/2⌉}` and `B = 4 (n / E[|V'|]) ln n`. The preprocessing
//!
//! 1. runs Theorem 1 on `G` with source set `V'`, hop bound `B`, and accuracy
//!    `ε/2`, giving every vertex `u` a value `d_{uv}` and a parent `p_v(u)`
//!    for every `v ∈ V'`;
//! 2. forms the *virtual graph* `G' = (V', E', w')` with an edge between two
//!    sampled vertices whenever their Theorem-1 value is finite, weighted by
//!    that value;
//! 3. builds a path-reporting `(β, ε/3)`-hopset `F` for `G'`
//!    (Theorem 2, with `ρ = max(1/k, log log n / √log n)`);
//! 4. forms the augmented graph `G'' = (V', E' ∪ F)`, in which `β`-hop
//!    distances `(1+ε)`-approximate true distances (inequality (13)).
//!
//! Both the approximate pivots for large levels (Theorem 3) and the
//! large-scale cluster construction (Section 3.3.2) run on this object.

use std::collections::HashMap;

use en_congest::broadcast::lemma1_rounds;
use en_congest::RoundLedger;
use en_congest_algos::theorem1::{multi_source_hop_bounded_opts, MultiSourceHopBounded};
use en_graph::{is_finite, BuildOptions, BuildStats, Dist, NodeId, WeightedGraph};
use en_hopset::{build_hopset, AugmentedGraph, Hopset, HopsetConfig};

use crate::hierarchy::Hierarchy;
use crate::params::SchemeParams;

/// The output of the Section 3.3.1 preprocessing.
#[derive(Debug, Clone)]
pub struct Preprocessing {
    /// The sampled set `V' = A_{⌈k/2⌉}`, in index order (virtual index `i`
    /// corresponds to original vertex `vprime[i]`).
    pub vprime: Vec<NodeId>,
    /// Maps an original vertex id to its virtual index, if it is in `V'`.
    pub index_of: HashMap<NodeId, usize>,
    /// The Theorem 1 output (`d_{uv}` values and parents `p_v(u)`).
    pub theorem1: MultiSourceHopBounded,
    /// The virtual graph `G'` over virtual indices.
    pub gprime: WeightedGraph,
    /// The path-reporting hopset `F` for `G'` (over virtual indices).
    pub hopset: Hopset,
    /// The hopbound `β` of the hopset.
    pub beta: usize,
    /// The augmented graph `G'' = (V', E' ∪ F)` over virtual indices.
    pub augmented: AugmentedGraph,
    /// The hop bound `B` used for Theorem 1.
    pub hop_bound: usize,
    /// Round charges of the preprocessing.
    pub ledger: RoundLedger,
}

impl Preprocessing {
    /// Runs the preprocessing. Returns `None` when `V' = A_{⌈k/2⌉}` is empty
    /// (then there are no large scales at all, e.g. for `k = 1` or when the
    /// sampling left the level empty).
    pub fn run(
        g: &WeightedGraph,
        hierarchy: &Hierarchy,
        params: &SchemeParams,
        hop_diameter: usize,
    ) -> Option<Self> {
        Self::run_with(
            g,
            hierarchy,
            params,
            hop_diameter,
            &BuildOptions::sequential(),
        )
        .map(|(pre, _)| pre)
    }

    /// [`Self::run`] with a thread-count knob: the Theorem-1 sweep from `V'`
    /// — the dominant cost of preprocessing — runs sharded, bit-identically
    /// to the sequential sweep. Also returns its per-thread work accounting.
    pub fn run_with(
        g: &WeightedGraph,
        hierarchy: &Hierarchy,
        params: &SchemeParams,
        hop_diameter: usize,
        opts: &BuildOptions,
    ) -> Option<(Self, BuildStats)> {
        let half = params.half_k();
        let vprime: Vec<NodeId> = hierarchy.level(half).to_vec();
        if vprime.is_empty() {
            return None;
        }
        let mut ledger = RoundLedger::new();
        let hop_bound = params.large_scale_hop_bound();
        let eps = params.epsilon();
        // Step 1: Theorem 1 with accuracy ε/2.
        let (theorem1, stats) = multi_source_hop_bounded_opts(
            g,
            &vprime,
            hop_bound,
            (eps / 2.0).max(1e-9),
            hop_diameter,
            opts,
        );
        ledger.absorb(theorem1.ledger.clone());
        // Step 2: the virtual graph G'.
        let index_of: HashMap<NodeId, usize> = vprime
            .iter()
            .copied()
            .enumerate()
            .map(|(i, v)| (v, i))
            .collect();
        let m = vprime.len();
        let mut gprime = WeightedGraph::new(m);
        for i in 0..m {
            // Row access into the flat source-major Theorem-1 output: one
            // slice per virtual vertex instead of a hash lookup per pair.
            let row = theorem1.dist_row(i);
            for j in (i + 1)..m {
                let d = row[vprime[j]];
                if is_finite(d) && d > 0 {
                    gprime
                        .add_edge(i, j, d)
                        .expect("virtual edge endpoints are in range and weights positive");
                }
            }
        }
        // Step 3: the hopset on G' (Theorem 2).
        let rho = params.hopset_rho();
        let hopset_cfg = HopsetConfig::new(rho, eps / 3.0, params.seed ^ 0x00C0_FFEE);
        let hopset = build_hopset(&gprime, &hopset_cfg);
        let beta = hopset.beta();
        ledger.charge(
            format!("Theorem 2: path-reporting hopset on |V'| = {m} virtual vertices"),
            hopset_cfg.construction_rounds(m, hop_diameter),
            format!("O(m^(1+rho) + D) * beta^2, rho = {rho:.3}, beta = {beta}"),
        );
        // Every vertex of V' must learn the hopset edges incident to it; the
        // paper's construction does this as part of Theorem 2, we charge the
        // broadcast explicitly for transparency.
        ledger.charge(
            "broadcast hopset edges to V'",
            lemma1_rounds(hopset.len(), hop_diameter),
            format!("Lemma 1 with M = |F| = {}", hopset.len()),
        );
        // Step 4: the augmented graph G''.
        let augmented = AugmentedGraph::new(&gprime, &hopset);
        let pre = Preprocessing {
            vprime,
            index_of,
            theorem1,
            gprime,
            hopset,
            beta,
            augmented,
            hop_bound,
            ledger,
        };
        Some((pre, stats))
    }

    /// Number of virtual vertices `|V'|`.
    pub fn m(&self) -> usize {
        self.vprime.len()
    }

    /// The Theorem-1 value `d_{uv}` between an arbitrary vertex `u` and a
    /// sampled vertex `v ∈ V'` ([`en_graph::INFINITY`] if `v ∉ V'` or out of range).
    pub fn value(&self, u: NodeId, v: NodeId) -> Dist {
        self.theorem1.value(u, v)
    }

    /// The Theorem-1 parent `p_v(u)`: the neighbour of `u` on its hop-bounded
    /// path towards `v ∈ V'`.
    pub fn parent_towards(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        self.theorem1.parent_towards(u, v)
    }

    /// The original vertex behind virtual index `i`.
    pub fn original(&self, i: usize) -> NodeId {
        self.vprime[i]
    }

    /// The virtual index of original vertex `v`, if `v ∈ V'`.
    pub fn virtual_index(&self, v: NodeId) -> Option<usize> {
        self.index_of.get(&v).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::dijkstra::all_pairs_dijkstra;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    fn setup(n: usize, k: usize, seed: u64) -> (WeightedGraph, Hierarchy, SchemeParams) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 20), 0.1);
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        (g, hierarchy, params)
    }

    #[test]
    fn preprocessing_exists_iff_vprime_nonempty() {
        let (g, hierarchy, params) = setup(80, 3, 1);
        let pre = Preprocessing::run(&g, &hierarchy, &params, 6);
        assert_eq!(pre.is_some(), !hierarchy.level(params.half_k()).is_empty());
        // k = 1 never has large scales.
        let (g1, h1, p1) = setup(40, 1, 2);
        assert!(Preprocessing::run(&g1, &h1, &p1, 6).is_none());
    }

    #[test]
    fn virtual_graph_weights_dominate_true_distances() {
        let (g, hierarchy, params) = setup(70, 2, 3);
        if let Some(pre) = Preprocessing::run(&g, &hierarchy, &params, 6) {
            let truth = all_pairs_dijkstra(&g);
            for e in pre.gprime.edges() {
                let (a, b) = (pre.original(e.u), pre.original(e.v));
                // Inequality (12): d_G <= w' <= (1+eps/2) d_G; with the exact
                // Theorem-1 reproduction the upper slack is 1 when B hops
                // suffice, and never below the true distance.
                assert!(e.weight >= truth[a][b], "w'({a},{b}) undercuts d_G");
            }
        }
    }

    #[test]
    fn beta_hop_distances_on_augmented_graph_respect_inequality_13() {
        let (g, hierarchy, params) = setup(60, 2, 5);
        if let Some(pre) = Preprocessing::run(&g, &hierarchy, &params, 5) {
            let truth = all_pairs_dijkstra(&g);
            let eps = params.epsilon();
            for i in 0..pre.m() {
                let (dist, _) = pre.augmented.hop_bounded_from(i, pre.beta);
                for j in 0..pre.m() {
                    if i == j {
                        continue;
                    }
                    let (a, b) = (pre.original(i), pre.original(j));
                    if !is_finite(dist[j]) {
                        continue;
                    }
                    assert!(dist[j] >= truth[a][b]);
                    assert!(
                        dist[j] as f64 <= (1.0 + eps) * truth[a][b] as f64 + 1e-6,
                        "pair ({a},{b}): {} vs {}",
                        dist[j],
                        truth[a][b]
                    );
                }
            }
        }
    }

    #[test]
    fn index_maps_are_inverse() {
        let (g, hierarchy, params) = setup(60, 3, 7);
        if let Some(pre) = Preprocessing::run(&g, &hierarchy, &params, 5) {
            for i in 0..pre.m() {
                assert_eq!(pre.virtual_index(pre.original(i)), Some(i));
            }
            assert!(pre.ledger.total_rounds() > 0);
        }
    }

    #[test]
    fn hopset_is_path_reporting_on_gprime() {
        let (g, hierarchy, params) = setup(90, 2, 9);
        if let Some(pre) = Preprocessing::run(&g, &hierarchy, &params, 5) {
            assert!(pre.hopset.is_path_reporting_in(&pre.gprime));
        }
    }
}
