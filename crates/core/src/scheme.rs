//! The compact routing scheme (Section 4).
//!
//! Given a [`ClusterFamily`] (exact or approximate), every cluster tree gets a
//! tree-routing scheme (Theorem 7). The routing table of a vertex `v` is the
//! collection of its tree tables for every tree containing it; the label of
//! `v` consists of, for every level `i`, its (approximate) `i`-pivot
//! `ẑ_i(v)`, the (approximate) distance to it, and — when `v` belongs to the
//! tree `C̃(ẑ_i(v))` — `v`'s tree label in that tree.
//!
//! To route from `u` to `v`, Algorithm 1 (`Find-tree`) scans the levels
//! `i = 0, 1, …` until it finds a tree `C̃(ẑ_i(v))` containing **both**
//! endpoints (decidable from `u`'s table plus `v`'s label alone); the packet
//! then carries `(root, tree label of v)` in its header and is forwarded by
//! the tree scheme, consulting only each intermediate vertex's local table.
//!
//! The `4k−5` refinement of \[TZ01\] is implemented as well: every centre
//! `u ∈ A_0 \ A_1` stores the tree labels of all members of its own cluster,
//! so packets *from* `u` to a member of `C̃(u)` are routed directly in `C̃(u)`.

use std::ops::Range;
use std::sync::Arc;

use en_graph::dijkstra::dijkstra;
use en_graph::{shard_spans, BuildOptions, BuildStats, Dist, NodeId, NodeMap, Path, WeightedGraph};
use en_tree_routing::{
    TableSlots, TreeLabel, TreeLabelRef, TreeRoutingConfig, TreeRoutingScheme, TreeTable,
};

use crate::access::{self, RouteAccess};
use crate::error::RoutingError;
use crate::family::ClusterFamily;

/// One entry of a vertex label: the pivot at some level and, if the vertex
/// belongs to that pivot's cluster tree, its tree label there.
///
/// The tree label is the *same allocation* the per-tree scheme built (and,
/// for level-0 members, the same one the centre's own-cluster table holds):
/// labels are `Arc`-pooled, so assembling a scheme never deep-copies an
/// exception vector.
#[derive(Debug, Clone)]
pub struct LabelEntry {
    /// The level `i`.
    pub level: usize,
    /// The (approximate) `i`-pivot `ẑ_i(v)`.
    pub pivot: NodeId,
    /// The (approximate) distance `d̂_i(v)`.
    pub dist: Dist,
    /// The tree label of `v` in `C̃(ẑ_i(v))`, if `v` belongs to it.
    pub tree_label: Option<Arc<TreeLabel>>,
}

impl LabelEntry {
    /// Size in `O(log n)` words.
    pub fn words(&self) -> usize {
        3 + self.tree_label.as_ref().map_or(0, |l| l.words())
    }
}

/// The complete label of a vertex: one entry per level (missing levels — empty
/// `A_i` — are skipped).
#[derive(Debug, Clone)]
pub struct NodeLabel {
    /// The labelled vertex.
    pub vertex: NodeId,
    /// Entries for the levels `0 ≤ i < k` that have a pivot.
    pub entries: Vec<LabelEntry>,
}

impl NodeLabel {
    /// The entry for level `i`, if present.
    pub fn entry(&self, level: usize) -> Option<&LabelEntry> {
        self.entries.iter().find(|e| e.level == level)
    }

    /// Size in `O(log n)` words.
    pub fn words(&self) -> usize {
        1 + self.entries.iter().map(LabelEntry::words).sum::<usize>()
    }
}

/// The routing table of a vertex.
#[derive(Debug, Clone, Default)]
pub struct NodeTable {
    /// Tree tables for every cluster tree containing this vertex, keyed by the
    /// tree's centre. (The word size is measured through the underlying
    /// [`TreeRoutingScheme`]; only membership is recorded here.)
    pub trees: Vec<NodeId>,
    /// The \[TZ01\] `4k−5` refinement: if this vertex is a level-0 centre, the
    /// tree labels of every member of its own cluster (shared, via `Arc`,
    /// with the members' [`LabelEntry::tree_label`]s and the tree scheme).
    pub own_cluster_labels: NodeMap<Arc<TreeLabel>>,
}

/// The assembled routing scheme.
#[derive(Debug, Clone)]
pub struct RoutingScheme {
    k: usize,
    n: usize,
    /// Per-centre tree routing schemes.
    tree_schemes: NodeMap<TreeRoutingScheme>,
    /// Per-vertex tables.
    tables: Vec<NodeTable>,
    /// Per-vertex labels.
    labels: Vec<NodeLabel>,
    /// The level of each centre (used for reporting).
    center_level: NodeMap<usize>,
}

/// Runs one independent closure per span, on scoped worker threads when
/// there is more than one span, and returns the results in span order — the
/// fixed merge order that keeps the parallel assembly bit-identical to the
/// sequential one (see [`en_graph::parallel`]).
fn run_sharded<T: Send>(spans: &[Range<usize>], work: impl Fn(Range<usize>) -> T + Sync) -> Vec<T> {
    if spans.len() <= 1 {
        return spans.iter().map(|span| work(span.clone())).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .iter()
            .map(|span| {
                let span = span.clone();
                let work = &work;
                scope.spawn(move || work(span))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scheme assembly worker panicked"))
            .collect()
    })
}

/// The outcome of routing one packet.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// The tree (centre) the packet was routed through.
    pub tree_root: NodeId,
    /// The level of that tree's centre.
    pub level: usize,
    /// The traversed path (starts at the source, ends at the destination).
    pub path: Path,
    /// Weighted length of the traversed path.
    pub length: Dist,
    /// Exact shortest-path distance between the endpoints.
    pub exact: Dist,
    /// `length / exact` (1.0 when the endpoints coincide).
    pub stretch: f64,
}

impl RoutingScheme {
    /// Assembles the routing scheme from a cluster family.
    ///
    /// `tree_seed` seeds the portal sampling of the per-tree schemes.
    ///
    /// The per-tree schemes are built zero-copy from the family's forest
    /// slices (each costs `O(|C|)` working memory, not `O(n)`), and the
    /// per-vertex tables — including the \[TZ01\] `4k−5` refinement's member
    /// labels at level-0 centres — are filled in a single sweep of the
    /// forest's inverted membership CSR instead of one `members()` loop per
    /// cluster.
    pub fn assemble(family: &ClusterFamily, tree_seed: u64) -> Self {
        Self::assemble_opts(family, tree_seed, &BuildOptions::sequential()).0
    }

    /// [`Self::assemble`] with a thread-count knob, also returning the
    /// per-thread work accounting.
    ///
    /// Two phases shard over `std::thread::scope` workers: the per-tree
    /// scheme builds (contiguous cluster-id spans — each tree's portal
    /// sampling is seeded from its own centre, so the processing order is
    /// immaterial) and the per-vertex table/label sweep (contiguous vertex
    /// spans). Per-worker outputs are concatenated in span order, so the
    /// assembled scheme is bit-identical to the sequential one for every
    /// thread count.
    pub fn assemble_opts(
        family: &ClusterFamily,
        tree_seed: u64,
        opts: &BuildOptions,
    ) -> (Self, BuildStats) {
        let n = family.n();
        let k = family.k();
        let forest = &family.forest;
        let num_clusters = forest.num_clusters();
        let mut stats = BuildStats::default();
        // Phase A: per-tree schemes, sharded over contiguous cluster-id
        // spans and concatenated back in span (= dense id) order.
        let build_trees = |span: Range<usize>| -> (Vec<TreeRoutingScheme>, usize) {
            let mut members = 0usize;
            let schemes = span
                .map(|id| {
                    let cluster = forest.cluster(id);
                    members += cluster.len();
                    let config = TreeRoutingConfig::new(
                        tree_seed ^ (cluster.center() as u64).wrapping_mul(0x9E37_79B9),
                    );
                    TreeRoutingScheme::build(&cluster, &config)
                })
                .collect();
            (schemes, members)
        };
        let tree_spans = shard_spans(num_clusters, opts.threads, 1);
        let mut schemes_by_id = Vec::with_capacity(num_clusters);
        let mut tree_stats = BuildStats::default();
        for (span, (schemes, members)) in
            tree_spans.iter().zip(run_sharded(&tree_spans, build_trees))
        {
            tree_stats.record(span.len(), members);
            schemes_by_id.extend(schemes);
        }
        stats.absorb(&tree_stats);
        // Per-cluster data addressable by dense id during the sweeps below.
        let mut center_level = NodeMap::default();
        center_level.reserve(num_clusters);
        let mut centers = Vec::with_capacity(num_clusters);
        let mut is_level0 = Vec::with_capacity(num_clusters);
        for cluster in forest.clusters() {
            centers.push(cluster.center());
            is_level0.push(cluster.level() == 0);
            center_level.insert(cluster.center(), cluster.level());
        }
        // Centre-keyed scheme lookup for the label sweep (the map itself is
        // only moved into the result after `schemes_by_id` is done serving
        // the own-cluster fill, so the sweep reads through dense ids).
        let mut id_of_center = NodeMap::default();
        id_of_center.reserve(num_clusters);
        for (id, &center) in centers.iter().enumerate() {
            id_of_center.insert(center, id);
        }
        // Phase B: the per-vertex sweep — tree memberships (sorted by
        // centre) and pivot label entries — sharded over contiguous vertex
        // spans. Workers only read the forest CSR and the finished schemes;
        // outputs land at fixed per-vertex slots.
        let schemes_ref = &schemes_by_id;
        let centers_ref = &centers;
        let id_of_center_ref = &id_of_center;
        let sweep = |span: Range<usize>| -> (Vec<(Vec<NodeId>, NodeLabel)>, usize) {
            let mut produced = 0usize;
            let rows = span
                .map(|v| {
                    let mut trees = Vec::with_capacity(forest.overlap_of(v));
                    for (id, _) in forest.membership(v) {
                        trees.push(centers_ref[id]);
                    }
                    trees.sort_unstable();
                    let mut entries = Vec::new();
                    for i in 0..k {
                        if let Some((pivot, dist)) = family.pivots[v][i] {
                            let tree_label = id_of_center_ref
                                .get(&pivot)
                                .and_then(|&id| schemes_ref[id].label_arc(v))
                                .cloned();
                            entries.push(LabelEntry {
                                level: i,
                                pivot,
                                dist,
                                tree_label,
                            });
                        }
                    }
                    produced += trees.len() + entries.len();
                    (trees, NodeLabel { vertex: v, entries })
                })
                .collect();
            (rows, produced)
        };
        let vertex_spans = shard_spans(n, opts.threads, 1);
        let mut tables: Vec<NodeTable> = (0..n).map(|_| NodeTable::default()).collect();
        let mut labels: Vec<NodeLabel> = Vec::with_capacity(n);
        let mut sweep_stats = BuildStats::default();
        for (span, (rows, produced)) in vertex_spans.iter().zip(run_sharded(&vertex_spans, sweep)) {
            sweep_stats.record(span.len(), produced);
            for (j, (trees, label)) in rows.into_iter().enumerate() {
                tables[span.start + j].trees = trees;
                labels.push(label);
            }
        }
        stats.absorb(&sweep_stats);
        // The [TZ01] 4k−5 refinement: every level-0 centre stores the tree
        // labels of its own cluster's members. The fill walks the member
        // slice, whose positions index the scheme's labels directly; each
        // insert shares the scheme's allocation (Arc bump).
        for (id, scheme) in schemes_by_id.iter().enumerate() {
            if !is_level0[id] {
                continue;
            }
            let cluster = forest.cluster(id);
            let own = &mut tables[centers[id]].own_cluster_labels;
            own.reserve(cluster.len());
            for (pos, v) in cluster.members().enumerate() {
                let label = scheme
                    .label_arc_by_index(pos)
                    .expect("member position is within the tree scheme");
                debug_assert_eq!(label.vertex, v);
                own.insert(v, Arc::clone(label));
            }
        }
        let mut tree_schemes = NodeMap::default();
        tree_schemes.reserve(num_clusters);
        for (center, scheme) in centers.iter().zip(schemes_by_id) {
            tree_schemes.insert(*center, scheme);
        }
        let scheme = RoutingScheme {
            k,
            n,
            tree_schemes,
            tables,
            labels,
            center_level,
        };
        (scheme, stats)
    }

    /// The pre-forest reference assembly, retained as the oracle the property
    /// suite compares [`Self::assemble`] against (the same pattern as the
    /// per-centre cluster-growth oracle): every cluster is first materialised
    /// as a dense host-sized [`RootedTree`](en_graph::tree::RootedTree) via
    /// [`en_graph::forest::ClusterView::tree`], per-tree schemes are built
    /// from those trees, and tables are filled by one `members()` loop per
    /// cluster. Same inputs must yield bit-identical routing behaviour.
    pub fn assemble_reference(family: &ClusterFamily, tree_seed: u64) -> Self {
        let n = family.n();
        let k = family.k();
        let mut tree_schemes = NodeMap::default();
        tree_schemes.reserve(family.num_clusters());
        let mut center_level = NodeMap::default();
        center_level.reserve(family.num_clusters());
        for cluster in family.clusters() {
            let center = cluster.center();
            let config =
                TreeRoutingConfig::new(tree_seed ^ (center as u64).wrapping_mul(0x9E37_79B9));
            let tree = cluster.tree();
            tree_schemes.insert(center, TreeRoutingScheme::build(&tree, &config));
            center_level.insert(center, cluster.level());
        }
        // Tables: which trees contain each vertex.
        let mut tables: Vec<NodeTable> = (0..n).map(|_| NodeTable::default()).collect();
        for (&center, scheme) in &tree_schemes {
            for v in scheme.members() {
                tables[v].trees.push(center);
            }
        }
        for table in &mut tables {
            table.trees.sort_unstable();
        }
        // Labels: pivot entries per level.
        let mut labels: Vec<NodeLabel> = Vec::with_capacity(n);
        for v in 0..n {
            let mut entries = Vec::new();
            for i in 0..k {
                if let Some((pivot, dist)) = family.pivots[v][i] {
                    let tree_label = tree_schemes
                        .get(&pivot)
                        .and_then(|s| s.label_arc(v))
                        .cloned();
                    entries.push(LabelEntry {
                        level: i,
                        pivot,
                        dist,
                        tree_label,
                    });
                }
            }
            labels.push(NodeLabel { vertex: v, entries });
        }
        // The 4k−5 refinement: level-0 centres store their members' labels.
        for cluster in family.clusters() {
            if cluster.level() != 0 {
                continue;
            }
            let center = cluster.center();
            let scheme = &tree_schemes[&center];
            let mut own = NodeMap::default();
            for v in scheme.members() {
                if let Some(label) = scheme.label_arc(v) {
                    own.insert(v, Arc::clone(label));
                }
            }
            tables[center].own_cluster_labels = own;
        }
        RoutingScheme {
            k,
            n,
            tree_schemes,
            tables,
            labels,
            center_level,
        }
    }

    /// The parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The label of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: NodeId) -> &NodeLabel {
        &self.labels[v]
    }

    /// The routing table of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn table(&self, v: NodeId) -> &NodeTable {
        &self.tables[v]
    }

    /// The number of cluster trees containing `v`.
    pub fn trees_containing(&self, v: NodeId) -> usize {
        self.tables[v].trees.len()
    }

    /// All cluster centres with a tree scheme, in ascending id order (the
    /// deterministic cluster order of the wire snapshot).
    pub fn centers(&self) -> Vec<NodeId> {
        let mut centers: Vec<NodeId> = self.tree_schemes.keys().copied().collect();
        centers.sort_unstable();
        centers
    }

    /// The per-tree routing scheme rooted at `center`, if any.
    pub fn tree_scheme(&self, center: NodeId) -> Option<&TreeRoutingScheme> {
        self.tree_schemes.get(&center)
    }

    /// The hierarchy level of `center`, if it roots a cluster tree.
    pub fn center_level(&self, center: NodeId) -> Option<usize> {
        self.center_level.get(&center).copied()
    }

    /// Size of `v`'s routing table in `O(log n)` words: the sum of its tree
    /// tables plus (for level-0 centres) the stored member labels.
    pub fn table_words(&self, v: NodeId) -> usize {
        let tree_words: usize = self.tables[v]
            .trees
            .iter()
            .map(|center| self.tree_schemes[center].table_words(v))
            .sum();
        let own_words: usize = self.tables[v]
            .own_cluster_labels
            .values()
            .map(|l| 1 + l.words())
            .sum();
        tree_words + own_words
    }

    /// Size of `v`'s label in `O(log n)` words.
    pub fn label_words(&self, v: NodeId) -> usize {
        self.labels[v].words()
    }

    /// Maximum table size over all vertices, in words.
    pub fn max_table_words(&self) -> usize {
        (0..self.n).map(|v| self.table_words(v)).max().unwrap_or(0)
    }

    /// Average table size over all vertices, in words.
    pub fn avg_table_words(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (0..self.n).map(|v| self.table_words(v)).sum::<usize>() as f64 / self.n as f64
    }

    /// Maximum label size over all vertices, in words.
    pub fn max_label_words(&self) -> usize {
        (0..self.n).map(|v| self.label_words(v)).max().unwrap_or(0)
    }

    /// Average label size over all vertices, in words.
    pub fn avg_label_words(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (0..self.n).map(|v| self.label_words(v)).sum::<usize>() as f64 / self.n as f64
    }

    /// Algorithm 1 (`Find-tree`) plus the \[TZ01\] `4k−5` refinement: returns
    /// the centre of the tree the packet from `from` to `to` will use, and the
    /// destination's tree label there — using only `from`'s table and `to`'s
    /// label, exactly as a real node would.
    ///
    /// The scan itself is the storage-generic
    /// [`find_tree_via`](crate::access::find_tree_via) kernel; this wrapper
    /// only re-resolves the chosen label as a shared handle into the
    /// scheme's pooled label storage (an `Arc` bump, not a deep copy of the
    /// exception vectors).
    pub fn find_tree(
        &self,
        from: NodeId,
        to: NodeId,
    ) -> Result<(NodeId, Arc<TreeLabel>), RoutingError> {
        let (root, _) = access::find_tree_via(&self, from, to)?;
        // The kernel checks the own-cluster refinement first, so when the
        // entry exists it is exactly the hit the kernel returned.
        if let Some(label) = self.tables[from].own_cluster_labels.get(&to) {
            return Ok((from, Arc::clone(label)));
        }
        let label = self.labels[to]
            .entries
            .iter()
            .find(|e| e.pivot == root && e.tree_label.is_some())
            .and_then(|e| e.tree_label.as_ref())
            .expect("the kernel's pivot comes from one of to's label entries");
        Ok((root, Arc::clone(label)))
    }

    /// Routes a packet from `from` to `to`, forwarding hop by hop through the
    /// chosen cluster tree (the shared
    /// [`forward_via`](crate::access::forward_via) kernel), and measures the
    /// stretch against the exact shortest-path distance in `g`.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is invalid, no common tree exists
    /// (a low-probability sampling failure), or forwarding fails.
    pub fn route(
        &self,
        g: &WeightedGraph,
        from: NodeId,
        to: NodeId,
    ) -> Result<RouteOutcome, RoutingError> {
        let (root, level, path) = access::forward_via(&self, from, to)?;
        let exact = dijkstra(g, from).dist[to];
        Ok(Self::outcome(g, root, level, path, exact))
    }

    /// Routes between the endpoints using a precomputed all-pairs distance
    /// matrix for the stretch denominator (used by the benchmark harness to
    /// avoid re-running Dijkstra per query).
    pub fn route_with_exact(
        &self,
        g: &WeightedGraph,
        from: NodeId,
        to: NodeId,
        exact: Dist,
    ) -> Result<RouteOutcome, RoutingError> {
        let (root, level, path) = access::forward_via(&self, from, to)?;
        Ok(Self::outcome(g, root, level, path, exact))
    }

    fn outcome(
        g: &WeightedGraph,
        root: NodeId,
        level: usize,
        path: Path,
        exact: Dist,
    ) -> RouteOutcome {
        let length = path.length_in(g).unwrap_or(0);
        let stretch = if exact == 0 {
            1.0
        } else {
            length as f64 / exact as f64
        };
        RouteOutcome {
            tree_root: root,
            level,
            path,
            length,
            exact,
            stretch,
        }
    }
}

/// The in-memory instantiation of the forwarding kernel: lookups go through
/// the owned tables, labels, and per-centre tree schemes; none of them can
/// fail beyond the kernel's own range checks.
impl<'a> RouteAccess for &'a RoutingScheme {
    type Label = TreeLabelRef<'a>;
    type Table = &'a TreeTable;
    type Tree = &'a TreeRoutingScheme;

    #[inline]
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn own_label(
        &self,
        center: NodeId,
        member: NodeId,
    ) -> Result<Option<TreeLabelRef<'a>>, RoutingError> {
        let this: &'a RoutingScheme = self;
        Ok(this.tables[center]
            .own_cluster_labels
            .get(&member)
            .map(|l| l.as_view()))
    }

    #[inline]
    fn label_entry_count(&self, to: NodeId) -> Result<usize, RoutingError> {
        Ok(self.labels[to].entries.len())
    }

    #[inline]
    fn label_entry(
        &self,
        to: NodeId,
        i: usize,
    ) -> Result<(NodeId, Option<TreeLabelRef<'a>>), RoutingError> {
        let this: &'a RoutingScheme = self;
        let entry = &this.labels[to].entries[i];
        Ok((entry.pivot, entry.tree_label.as_ref().map(|l| l.as_view())))
    }

    #[inline]
    fn in_tree(&self, v: NodeId, root: NodeId) -> Result<bool, RoutingError> {
        Ok(self.tables[v].trees.binary_search(&root).is_ok())
    }

    #[inline]
    fn tree(&self, root: NodeId) -> Result<Option<(&'a TreeRoutingScheme, usize)>, RoutingError> {
        let this: &'a RoutingScheme = self;
        Ok(this
            .tree_schemes
            .get(&root)
            .map(|ts| (ts, this.center_level.get(&root).copied().unwrap_or(0))))
    }

    #[inline]
    fn table(
        &self,
        tree: &&'a TreeRoutingScheme,
        v: NodeId,
    ) -> Result<Option<&'a TreeTable>, RoutingError> {
        Ok(tree.table_of(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_cluster_family;
    use crate::hierarchy::Hierarchy;
    use crate::params::SchemeParams;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    fn exact_scheme(n: usize, k: usize, seed: u64) -> (WeightedGraph, RoutingScheme, SchemeParams) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 30), 0.1);
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        let family = exact_cluster_family(&g, &hierarchy);
        let scheme = RoutingScheme::assemble(&family, seed);
        (g, scheme, params)
    }

    #[test]
    fn every_pair_is_routable_with_bounded_stretch() {
        let (g, scheme, params) = exact_scheme(50, 3, 1);
        let bound = params.stretch_bound();
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let out = scheme
                    .route(&g, u, v)
                    .unwrap_or_else(|e| panic!("{u}->{v}: {e}"));
                assert_eq!(out.path.nodes().first(), Some(&u));
                assert_eq!(out.path.nodes().last(), Some(&v));
                assert!(out.path.is_valid_in(&g));
                assert!(
                    out.stretch <= bound + 1e-9,
                    "stretch {} exceeds bound {} for {u}->{v}",
                    out.stretch,
                    bound
                );
            }
        }
    }

    #[test]
    fn k_equals_one_routes_with_stretch_one() {
        let (g, scheme, _) = exact_scheme(30, 1, 2);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let out = scheme.route(&g, u, v).unwrap();
                assert!(
                    (out.stretch - 1.0).abs() < 1e-9,
                    "k=1 must route on shortest paths, got {}",
                    out.stretch
                );
            }
        }
    }

    #[test]
    fn find_tree_uses_local_information_consistently() {
        let (g, scheme, _) = exact_scheme(40, 2, 3);
        for u in g.nodes().step_by(5) {
            for v in g.nodes().step_by(7) {
                if u == v {
                    continue;
                }
                let (root, label) = scheme.find_tree(u, v).unwrap();
                // The chosen tree really does contain both endpoints.
                assert!(scheme.tables[u].trees.binary_search(&root).is_ok() || root == u);
                assert_eq!(label.vertex, v);
            }
        }
    }

    #[test]
    fn label_sizes_are_o_k_polylog() {
        let (g, scheme, _) = exact_scheme(100, 4, 4);
        let n = g.num_nodes() as f64;
        let bound = 4.0 * 4.0 * n.log2() * n.log2() + 64.0;
        assert!(
            (scheme.max_label_words() as f64) <= bound,
            "label {} exceeds O(k log^2 n) = {}",
            scheme.max_label_words(),
            bound
        );
    }

    #[test]
    fn table_sizes_shrink_as_k_grows() {
        // Larger k means fewer clusters per vertex (Õ(n^{1/k})): compare k=1 vs k=3
        // average tree-table contributions (excluding the level-0 member labels,
        // which are the 4k−5 refinement's extra storage).
        let (_, s1, _) = exact_scheme(80, 1, 5);
        let (_, s3, _) = exact_scheme(80, 3, 5);
        let avg_trees_1: f64 = (0..80).map(|v| s1.trees_containing(v)).sum::<usize>() as f64 / 80.0;
        let avg_trees_3: f64 = (0..80).map(|v| s3.trees_containing(v)).sum::<usize>() as f64 / 80.0;
        assert!(
            avg_trees_3 < avg_trees_1,
            "k=3 should store fewer trees per vertex ({avg_trees_3} vs {avg_trees_1})"
        );
    }

    #[test]
    fn out_of_range_vertices_are_rejected() {
        let (g, scheme, _) = exact_scheme(20, 2, 6);
        assert!(matches!(
            scheme.route(&g, 0, 99),
            Err(RoutingError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            scheme.find_tree(99, 0),
            Err(RoutingError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn route_with_exact_matches_route() {
        let (g, scheme, _) = exact_scheme(30, 2, 7);
        let exact = dijkstra(&g, 3).dist[17];
        let a = scheme.route(&g, 3, 17).unwrap();
        let b = scheme.route_with_exact(&g, 3, 17, exact).unwrap();
        assert_eq!(a.length, b.length);
        assert_eq!(a.path, b.path);
        assert!((a.stretch - b.stretch).abs() < 1e-12);
    }

    #[test]
    fn size_accessors_are_consistent() {
        let (_, scheme, _) = exact_scheme(40, 2, 8);
        assert!(scheme.max_table_words() >= scheme.avg_table_words() as usize);
        assert!(scheme.max_label_words() >= scheme.avg_label_words() as usize);
        assert!(scheme.avg_table_words() > 0.0);
        assert!(scheme.avg_label_words() > 0.0);
        assert_eq!(scheme.k(), 2);
        assert_eq!(scheme.n(), 40);
    }
}
