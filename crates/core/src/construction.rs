//! The end-to-end distributed construction (Theorems 4 and 5).
//!
//! [`build_routing_scheme`] glues together the whole pipeline:
//!
//! 1. sample the hierarchy `A_0 ⊇ … ⊇ A_{k−1}`;
//! 2. run the Section 3.3.1 preprocessing (Theorem 1 + hopset) if there are
//!    large scales;
//! 3. compute exact (small-scale) and approximate (large-scale) pivots;
//! 4. build the cluster trees: small scales, the odd-`k` middle level, and the
//!    three-phase large scales;
//! 5. build the per-tree routing schemes and assemble tables and labels
//!    (Section 4), charging Remark 3 for the parallel tree-routing
//!    construction;
//! 6. build the distance-estimation sketches (Section 5).
//!
//! Every phase contributes to a [`RoundLedger`] so the harness can report the
//! number of CONGEST rounds the construction would take, phase by phase.

use en_congest::RoundLedger;
use en_graph::bfs::{hop_diameter_estimate, is_connected};
use en_graph::{BuildOptions, BuildStats, WeightedGraph};
use en_tree_routing::remark3_rounds;

use crate::approx_clusters::{
    large_scale_clusters_into_opts, middle_level_clusters_into_opts,
    small_scale_clusters_into_opts, ClusterDiagnostics,
};
use crate::distance_estimation::DistanceEstimation;
use crate::error::RoutingError;
use crate::family::ClusterFamily;
use crate::hierarchy::Hierarchy;
use crate::params::SchemeParams;
use crate::pivots::compute_pivots;
use crate::preprocess::Preprocessing;
use crate::scheme::RoutingScheme;

/// Configuration of the end-to-end construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstructionConfig {
    /// The trade-off parameter `k ≥ 1`.
    pub k: usize,
    /// Seed for all randomness (hierarchy, hopset, tree-routing portals).
    pub seed: u64,
    /// Optional explicit hop-diameter; when `None` it is estimated with a
    /// double BFS sweep (the estimate only affects round *charges*, never
    /// correctness).
    pub hop_diameter: Option<usize>,
}

impl ConstructionConfig {
    /// A configuration with the given `k` and seed.
    pub fn new(k: usize, seed: u64) -> Self {
        ConstructionConfig {
            k,
            seed,
            hop_diameter: None,
        }
    }

    /// Overrides the hop-diameter used for round charges.
    pub fn with_hop_diameter(mut self, d: usize) -> Self {
        self.hop_diameter = Some(d);
        self
    }
}

/// Everything the construction produces.
#[derive(Debug, Clone)]
pub struct BuiltScheme {
    /// The parameters used.
    pub params: SchemeParams,
    /// The cluster family (hierarchy, clusters, pivots).
    pub family: ClusterFamily,
    /// The assembled routing scheme (tables, labels, per-tree schemes).
    pub scheme: RoutingScheme,
    /// The distance-estimation sketches.
    pub sketches: DistanceEstimation,
    /// Phase-by-phase round charges of the distributed construction.
    pub ledger: RoundLedger,
    /// Construction diagnostics (whp-failure repairs etc.).
    pub diagnostics: ClusterDiagnostics,
    /// The hop-diameter used for round charges.
    pub hop_diameter: usize,
    /// The hopbound `β` of the hopset built by the preprocessing (`None` when
    /// there were no large scales). This is the concrete value behind the
    /// paper's `n^{o(1)}` factor on this instance.
    pub hopset_beta: Option<usize>,
    /// Per-thread work accounting of the parallel construction phases (the
    /// totals are invariant across thread counts — the determinism suite
    /// asserts they match the sequential build exactly).
    pub build_stats: BuildStats,
}

impl BuiltScheme {
    /// Total CONGEST rounds charged for the construction.
    pub fn total_rounds(&self) -> usize {
        self.ledger.total_rounds()
    }
}

/// Runs the full distributed construction on `g`.
///
/// Uses the host's available parallelism ([`BuildOptions::default`]); the
/// parallel build is bit-identical to the sequential one, so the thread
/// count never changes the produced scheme (see
/// [`en_graph::parallel`] and `tests/property_parallel_build.rs`).
///
/// # Errors
///
/// Returns an error if `k == 0`, the graph is empty, or the graph is not
/// connected.
pub fn build_routing_scheme(
    g: &WeightedGraph,
    config: &ConstructionConfig,
) -> Result<BuiltScheme, RoutingError> {
    build_routing_scheme_with(g, config, &BuildOptions::default())
}

/// [`build_routing_scheme`] with an explicit thread-count knob.
///
/// `opts.threads = 1` runs the exact sequential pipeline — the oracle the
/// determinism suite compares every other thread count against.
///
/// # Errors
///
/// Returns an error if `k == 0`, the graph is empty, or the graph is not
/// connected.
pub fn build_routing_scheme_with(
    g: &WeightedGraph,
    config: &ConstructionConfig,
    opts: &BuildOptions,
) -> Result<BuiltScheme, RoutingError> {
    if config.k == 0 {
        return Err(RoutingError::InvalidK { k: config.k });
    }
    if g.num_nodes() == 0 {
        return Err(RoutingError::EmptyGraph);
    }
    if !is_connected(g) {
        return Err(RoutingError::DisconnectedGraph);
    }
    let params = SchemeParams::new(config.k, g.num_nodes(), config.seed);
    let hop_diameter = config
        .hop_diameter
        .unwrap_or_else(|| hop_diameter_estimate(g));
    let mut ledger = RoundLedger::new();
    let mut build_stats = BuildStats::default();
    let _build_span = en_obs::span("build");

    // 1. Hierarchy (local coin flips: 0 rounds).
    let hierarchy = {
        let _s = en_obs::span("hierarchy");
        Hierarchy::sample(&params)
    };

    // 2. Preprocessing for the large scales.
    let pre = {
        let _s = en_obs::span("preprocess");
        Preprocessing::run_with(g, &hierarchy, &params, hop_diameter, opts).map(
            |(pre, pre_stats)| {
                build_stats.absorb(&pre_stats);
                pre
            },
        )
    };
    let hopset_beta = pre.as_ref().map(|p| p.beta);
    if let Some(pre) = &pre {
        ledger.absorb(pre.ledger.clone());
    }

    // 3. Pivots.
    let pivot_table = {
        let _s = en_obs::span("pivots");
        compute_pivots(g, &hierarchy, &params, pre.as_ref(), hop_diameter)
    };
    ledger.absorb(pivot_table.ledger.clone());

    // 4. Clusters: every phase appends into one shared forest builder, so
    // the inverted membership CSR is built exactly once, at the family's
    // final finish().
    let mut diagnostics = ClusterDiagnostics::default();
    diagnostics.round_limit_hits += pivot_table.round_limit_hits;
    let mut builder = en_graph::forest::ClusterForestBuilder::new(g.num_nodes());
    {
        let _s = en_obs::span("clusters_small");
        let (small_ledger, small_diag) = small_scale_clusters_into_opts(
            g,
            &hierarchy,
            &params,
            &pivot_table.pivots,
            &mut builder,
            opts,
            &mut build_stats,
        );
        ledger.absorb(small_ledger);
        merge_diagnostics(&mut diagnostics, small_diag);
    }
    {
        let _s = en_obs::span("clusters_middle");
        let (middle_ledger, middle_diag) = middle_level_clusters_into_opts(
            g,
            &hierarchy,
            &params,
            &pivot_table.pivots,
            hop_diameter,
            &mut builder,
            opts,
            &mut build_stats,
        );
        ledger.absorb(middle_ledger);
        merge_diagnostics(&mut diagnostics, middle_diag);
    }
    if let Some(pre) = &pre {
        let _s = en_obs::span("clusters_large");
        let (large_ledger, large_diag) = large_scale_clusters_into_opts(
            g,
            &hierarchy,
            &params,
            &pivot_table.pivots,
            pre,
            hop_diameter,
            &mut builder,
            opts,
            &mut build_stats,
        );
        ledger.absorb(large_ledger);
        merge_diagnostics(&mut diagnostics, large_diag);
    }

    let family = {
        let _s = en_obs::span("forest_finish");
        ClusterFamily::new(hierarchy, builder.finish(), pivot_table.pivots)
    };

    // 5. Tree-routing schemes for every cluster tree, in parallel (Remark 3).
    let overlap = family.max_overlap().max(1);
    ledger.charge(
        "tree-routing schemes for all cluster trees (Theorem 7 / Remark 3)",
        remark3_rounds(g.num_nodes(), overlap, hop_diameter),
        format!(
            "O~(sqrt(n * s) + D) with measured overlap s = {overlap} (Claim 2 bounds it by O~(n^{{1/{}}}))",
            params.k
        ),
    );
    let (scheme, assemble_stats) = {
        let _s = en_obs::span("assemble");
        RoutingScheme::assemble_opts(&family, config.seed ^ 0x7EE5_0FF1CE, opts)
    };
    build_stats.absorb(&assemble_stats);

    // 6. Distance-estimation sketches (assembled from information every vertex
    // already holds: 0 extra rounds).
    let sketches = {
        let _s = en_obs::span("sketches");
        DistanceEstimation::build(&family)
    };

    // Republish the build's work accounting and round charges into the
    // observability plane (no-ops unless a recorder is installed). The
    // counters mirror `BuildStats` exactly — `tests/integration_obs.rs`
    // reconciles them at several thread counts.
    en_obs::counter_add("build.sources_total", build_stats.total_sources() as u64);
    en_obs::counter_add("build.members_total", build_stats.total_members() as u64);
    en_obs::gauge_set("build.threads_used", build_stats.threads_used() as u64);
    ledger.publish_rounds_gauge();
    if en_obs::active() {
        en_obs::event(
            en_obs::Level::Info,
            "build.complete",
            &[
                ("n", g.num_nodes().into()),
                ("k", config.k.into()),
                ("rounds", ledger.total_rounds().into()),
                ("hop_diameter", hop_diameter.into()),
                ("threads", build_stats.threads_used().into()),
            ],
        );
    }

    Ok(BuiltScheme {
        params,
        family,
        scheme,
        sketches,
        ledger,
        diagnostics,
        hop_diameter,
        hopset_beta,
        build_stats,
    })
}

fn merge_diagnostics(into: &mut ClusterDiagnostics, from: ClusterDiagnostics) {
    into.parent_fixups += from.parent_fixups;
    into.round_limit_hits += from.round_limit_hits;
    for (level, count) in from.clusters_per_level {
        *into.clusters_per_level.entry(level).or_insert(0) += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::generators::{
        erdos_renyi_connected, random_geometric_connected, GeneratorConfig,
    };

    #[test]
    fn construction_succeeds_and_routes_on_random_graphs() {
        for (k, seed) in [(2usize, 1u64), (3, 2), (4, 3)] {
            let g =
                erdos_renyi_connected(&GeneratorConfig::new(70, seed).with_weights(1, 40), 0.09);
            let built = build_routing_scheme(&g, &ConstructionConfig::new(k, seed)).unwrap();
            let bound = built.params.stretch_bound();
            for u in (0..70).step_by(7) {
                for v in (0..70).step_by(5) {
                    if u == v {
                        continue;
                    }
                    let out = built
                        .scheme
                        .route(&g, u, v)
                        .unwrap_or_else(|e| panic!("k={k} seed={seed} route {u}->{v} failed: {e}"));
                    assert!(
                        out.stretch <= bound + 1e-9,
                        "k={k} stretch {} exceeds {bound} for {u}->{v}",
                        out.stretch
                    );
                }
            }
            assert!(built.total_rounds() > 0);
        }
    }

    #[test]
    fn construction_on_geometric_graph_with_odd_k() {
        let g = random_geometric_connected(&GeneratorConfig::new(60, 11), 0.22);
        let built = build_routing_scheme(&g, &ConstructionConfig::new(3, 11)).unwrap();
        // The approximate clusters are subsets of the exact clusters, so the
        // overlap bound of Claim 2 applies.
        assert!(built.family.max_overlap() <= built.params.overlap_bound());
        assert!(built.family.trees_are_valid_in(&g));
        // Root estimates respect Lemma 5's (1+eps)^4 sandwich.
        let slack = (1.0 + built.params.epsilon()).powi(4);
        assert!(built.family.root_estimates_within(&g, slack));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(20, 1), 0.2);
        assert!(matches!(
            build_routing_scheme(&g, &ConstructionConfig::new(0, 1)),
            Err(RoutingError::InvalidK { .. })
        ));
        let empty = WeightedGraph::new(0);
        assert!(matches!(
            build_routing_scheme(&empty, &ConstructionConfig::new(2, 1)),
            Err(RoutingError::EmptyGraph)
        ));
        let disconnected = WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(matches!(
            build_routing_scheme(&disconnected, &ConstructionConfig::new(2, 1)),
            Err(RoutingError::DisconnectedGraph)
        ));
    }

    #[test]
    fn ledger_reports_all_major_phases() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(80, 5).with_weights(1, 30), 0.08);
        let built = build_routing_scheme(&g, &ConstructionConfig::new(4, 5)).unwrap();
        let text = built.ledger.to_string();
        assert!(text.contains("Theorem 1"));
        assert!(text.contains("hopset"));
        assert!(text.contains("pivots"));
        assert!(text.contains("tree-routing"));
        assert!(built.hop_diameter > 0);
    }

    #[test]
    fn explicit_hop_diameter_is_respected() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(30, 7), 0.15);
        let built = build_routing_scheme(&g, &ConstructionConfig::new(2, 7).with_hop_diameter(123))
            .unwrap();
        assert_eq!(built.hop_diameter, 123);
    }

    #[test]
    fn sketches_are_produced_and_answer_queries() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(50, 9).with_weights(1, 20), 0.1);
        let built = build_routing_scheme(&g, &ConstructionConfig::new(3, 9)).unwrap();
        let est = built.sketches.query(3, 40).unwrap();
        let exact = en_graph::dijkstra::dijkstra(&g, 3).dist[40];
        assert!(est.estimate >= exact);
        assert!(est.estimate as f64 <= built.params.sketch_stretch_bound() * exact as f64 + 1e-9);
    }
}
