//! Scheme parameters and the formulas of Section 3.
//!
//! Everything that is "a function of `n` and `k`" in the paper lives here so
//! the rest of the code reads like the paper: sampling probability `n^{-1/k}`,
//! accuracy `ε = 1/(48 k⁴)`, exploration depths `4 n^{i/k} ln n`, the
//! large-scale hop bound `B`, and the hopset trade-off parameter `ρ`.

/// Parameters of the routing-scheme construction.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeParams {
    /// The trade-off parameter `k ≥ 1` (stretch `4k − 5 + o(1)`).
    pub k: usize,
    /// Number of vertices `n` of the input graph.
    pub n: usize,
    /// Random seed from which all sampling randomness is derived.
    pub seed: u64,
}

impl SchemeParams {
    /// Creates the parameter set.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `n == 0` (callers validate and return errors
    /// before reaching this constructor).
    pub fn new(k: usize, n: usize, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(n >= 1, "n must be at least 1");
        SchemeParams { k, n, seed }
    }

    /// The accuracy parameter `ε = 1/(48 k⁴)` of Section 3.1.
    pub fn epsilon(&self) -> f64 {
        1.0 / (48.0 * (self.k as f64).powi(4))
    }

    /// The per-level sampling probability `n^{-1/k}`.
    pub fn sampling_probability(&self) -> f64 {
        (self.n as f64).powf(-1.0 / self.k as f64)
    }

    /// `⌈k/2⌉`, the first "large" scale.
    pub fn half_k(&self) -> usize {
        self.k.div_ceil(2)
    }

    /// Whether the level `i` is handled by the small-scale construction
    /// (`i < ⌈k/2⌉`), not counting the odd-`k` middle level refinement.
    pub fn is_small_scale(&self, i: usize) -> bool {
        i < self.half_k()
    }

    /// The odd-`k` middle level `(k−1)/2`, if `k` is odd and `k ≥ 3`.
    pub fn middle_level(&self) -> Option<usize> {
        if self.k % 2 == 1 && self.k >= 3 {
            Some((self.k - 1) / 2)
        } else {
            None
        }
    }

    /// The exploration depth `4 n^{i/k} ln n` of Claim 3, capped at `n`
    /// (running longer than `n` iterations is never useful).
    pub fn exploration_depth(&self, i: usize) -> usize {
        let nf = self.n as f64;
        let raw = 4.0 * nf.powf(i as f64 / self.k as f64) * nf.ln().max(1.0);
        (raw.ceil() as usize).clamp(1, self.n)
    }

    /// The large-scale hop bound `B = 4 (n / E[|V'|]) ln n` of Section 3.3.1:
    /// `4 n^{1/2} ln n` for even `k` and `4 n^{1/2 + 1/(2k)} ln n` for odd `k`,
    /// capped at `n`.
    pub fn large_scale_hop_bound(&self) -> usize {
        let nf = self.n as f64;
        let exponent = if self.k % 2 == 0 {
            0.5
        } else {
            0.5 + 1.0 / (2.0 * self.k as f64)
        };
        let raw = 4.0 * nf.powf(exponent) * nf.ln().max(1.0);
        (raw.ceil() as usize).clamp(1, self.n)
    }

    /// The hopset trade-off parameter
    /// `ρ = max(1/k, log log n / √(log n))` of Section 3.3.1, clamped to the
    /// `(0, 1/2]` range the hopset construction accepts.
    pub fn hopset_rho(&self) -> f64 {
        let log_n = (self.n.max(4) as f64).log2();
        let candidate = (1.0 / self.k as f64).max(log_n.log2() / log_n.sqrt());
        candidate.clamp(0.05, 0.5)
    }

    /// The expected routing-table size bound `4 n^{1/k} ln n` of Claim 2
    /// (number of clusters containing a fixed vertex, w.h.p.).
    pub fn overlap_bound(&self) -> usize {
        let nf = self.n as f64;
        (4.0 * nf.powf(1.0 / self.k as f64) * nf.ln().max(1.0)).ceil() as usize
    }

    /// The paper's stretch bound `4k − 5 + o(1)` (reported as a float with the
    /// explicit `o(1)` term evaluated from the analysis of Section 4, using
    /// the slack `(1 + 5ε)(4 + 26ε)/(4k²)` rounded up generously).
    pub fn stretch_bound(&self) -> f64 {
        let k = self.k as f64;
        let eps = self.epsilon();
        let base = if self.k == 1 { 1.0 } else { 4.0 * k - 5.0 };
        // The o(1) term from the analysis in Section 4 (inequality chain ending
        // at (4k - 3 + o(1)) before the last-trick improvement); a conservative
        // closed form keeps the bound sound for every k ≥ 1.
        let slack = (1.0 + 5.0 * eps) * (4.0 + 26.0 * eps) * (1.0 / (4.0 * k * k)) + 30.0 * eps * k;
        base + slack
    }

    /// The distance-estimation stretch bound `2k − 1 + o(1)` of Theorem 6.
    pub fn sketch_stretch_bound(&self) -> f64 {
        let k = self.k as f64;
        let eps = self.epsilon();
        2.0 * k - 1.0 + 30.0 * eps * k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_formula() {
        let p = SchemeParams::new(2, 100, 0);
        assert!((p.epsilon() - 1.0 / (48.0 * 16.0)).abs() < 1e-12);
        let p = SchemeParams::new(4, 100, 0);
        assert!(p.epsilon() < 1e-3);
    }

    #[test]
    fn half_k_and_middle_level() {
        assert_eq!(SchemeParams::new(4, 10, 0).half_k(), 2);
        assert_eq!(SchemeParams::new(5, 10, 0).half_k(), 3);
        assert_eq!(SchemeParams::new(4, 10, 0).middle_level(), None);
        assert_eq!(SchemeParams::new(5, 10, 0).middle_level(), Some(2));
        assert_eq!(SchemeParams::new(1, 10, 0).middle_level(), None);
        assert_eq!(SchemeParams::new(3, 10, 0).middle_level(), Some(1));
    }

    #[test]
    fn exploration_depth_grows_with_level_and_caps_at_n() {
        let p = SchemeParams::new(4, 4096, 0);
        assert!(p.exploration_depth(1) < p.exploration_depth(2));
        assert!(p.exploration_depth(3) <= 4096);
        let tiny = SchemeParams::new(4, 10, 0);
        assert!(tiny.exploration_depth(3) <= 10);
    }

    #[test]
    fn hop_bound_larger_for_odd_k() {
        let even = SchemeParams::new(4, 4096, 0);
        let odd = SchemeParams::new(5, 4096, 0);
        assert!(odd.large_scale_hop_bound() >= even.large_scale_hop_bound());
    }

    #[test]
    fn sampling_probability_and_overlap() {
        let p = SchemeParams::new(2, 10_000, 0);
        assert!((p.sampling_probability() - 0.01).abs() < 1e-9);
        assert!(p.overlap_bound() > 100);
    }

    #[test]
    fn stretch_bounds_close_to_headline_values() {
        let p = SchemeParams::new(3, 1000, 0);
        assert!(p.stretch_bound() >= 7.0);
        assert!(p.stretch_bound() < 7.5);
        assert!(p.sketch_stretch_bound() >= 5.0);
        assert!(p.sketch_stretch_bound() < 5.5);
        let p1 = SchemeParams::new(1, 1000, 0);
        assert!(p1.stretch_bound() >= 1.0);
    }

    #[test]
    fn rho_in_valid_range() {
        for k in 1..=8 {
            for &n in &[16usize, 256, 4096, 1 << 20] {
                let p = SchemeParams::new(k, n, 0);
                let rho = p.hopset_rho();
                assert!(rho > 0.0 && rho <= 0.5, "k={k} n={n} rho={rho}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let _ = SchemeParams::new(0, 10, 0);
    }
}
