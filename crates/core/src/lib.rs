//! Distributed construction of near-optimal compact routing schemes
//! (Elkin & Neiman, PODC 2016).
//!
//! Given a weighted graph `G` on `n` vertices with hop-diameter `D` and a
//! parameter `k ≥ 1`, this crate builds a compact routing scheme with routing
//! tables of `O(n^{1/k} log² n)` words, labels of `O(k log² n)` words, and
//! stretch `4k − 5 + o(1)`, whose *distributed* construction runs in
//! `(n^{1/2+1/k} + D) · n^{o(1)}` CONGEST rounds (for odd `k`:
//! `(n^{1/2+1/(2k)} + D) · n^{o(1)}`). As a corollary it also produces
//! distance-estimation sketches of `O(n^{1/k} log n)` words with stretch
//! `2k − 1 + o(1)`.
//!
//! The crate is organised around the paper's structure:
//!
//! * [`params`] — the scheme parameter `k`, the accuracy `ε = 1/(48k⁴)`, and
//!   the exploration-depth / sample-size formulas used throughout.
//! * [`hierarchy`] — the sampled vertex hierarchy `V = A_0 ⊇ A_1 ⊇ … ⊇ A_k = ∅`.
//! * [`exact`] — exact Thorup–Zwick pivots and clusters (the sequential
//!   baseline of \[TZ01\], and the ground truth the approximate construction
//!   is validated against).
//! * [`pivots`] — exact pivots for small scales via distributed Bellman–Ford
//!   exploration and approximate pivots for large scales via the virtual
//!   graph + hopset (Theorem 3).
//! * [`preprocess`] — the Section 3.3.1 preprocessing: Theorem 1 on
//!   `V' = A_{⌈k/2⌉}`, the virtual graph `G'`, the path-reporting hopset `F`,
//!   and the augmented graph `G''`.
//! * [`approx_clusters`] — Section 3: small-scale cluster trees, the odd-`k`
//!   middle level, and the three-phase large-scale construction.
//! * [`family`] — the [`ClusterFamily`] abstraction
//!   shared by the exact and approximate constructions.
//! * [`scheme`] — Section 4: assembling per-vertex routing tables and labels,
//!   Algorithm 1 (`Find-tree`), and hop-by-hop packet forwarding.
//! * [`access`] — the storage-generic forwarding kernel: one `Find-tree` +
//!   one hop loop shared by the in-memory scheme and the flat snapshot's
//!   fast/checked accessors (in `en_wire`), bit-identical by construction.
//! * [`distance_estimation`] — Section 5: sketches and Algorithm 2 (`Dist`).
//! * [`construction`] — the end-to-end distributed construction with its
//!   round ledger (Theorems 4 and 5).
//! * [`baselines`] — the comparison rows of Table 1: centralized
//!   Thorup–Zwick, and a Lenzen–Patt-Shamir-style landmark scheme whose
//!   routing tables are `Ω(√n)` regardless of `k`.
//! * [`stretch`] — stretch measurement utilities used by tests and benches.
//!
//! # Quickstart
//!
//! ```
//! use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
//! use en_routing::construction::{build_routing_scheme, ConstructionConfig};
//!
//! let g = erdos_renyi_connected(&GeneratorConfig::new(96, 7), 0.08);
//! let cfg = ConstructionConfig::new(3, 42);
//! let built = build_routing_scheme(&g, &cfg).expect("construction succeeds");
//! let route = built.scheme.route(&g, 5, 60).expect("delivery succeeds");
//! assert_eq!(route.path.nodes().last(), Some(&60));
//! println!("stretch = {:.3}", route.stretch);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod approx_clusters;
pub mod baselines;
pub mod construction;
pub mod distance_estimation;
pub mod error;
pub mod exact;
pub mod family;
pub mod hierarchy;
pub mod params;
pub mod pivots;
pub mod preprocess;
pub mod scheme;
pub mod stretch;

pub use construction::{
    build_routing_scheme, build_routing_scheme_with, BuiltScheme, ConstructionConfig,
};
pub use en_graph::{BuildOptions, BuildStats};
pub use error::RoutingError;
pub use family::{Cluster, ClusterFamily};
pub use hierarchy::Hierarchy;
pub use params::SchemeParams;
pub use scheme::{RouteOutcome, RoutingScheme};
