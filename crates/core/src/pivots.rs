//! Pivot computation (Section 3.1, "Computing Pivots").
//!
//! * Levels `1 ≤ i ≤ ⌈k/2⌉`: *exact* pivots, by `4 n^{i/k} ln n` iterations of
//!   Bellman–Ford rooted at `A_i`, executed as a real message-passing
//!   exploration on the CONGEST simulator.
//! * Levels `⌈k/2⌉ < i ≤ k−1`: *approximate* pivots (inequality (7)), by a
//!   `(1+ε)`-approximate SPT rooted at `A_i` (Theorem 3): `β` iterations of
//!   Bellman–Ford on the augmented virtual graph `G''`, then extension to all
//!   of `V` through the Theorem-1 values.
//!
//! If a low-probability sampling event leaves some vertex without a pivot
//! (its exploration did not reach `A_i`), the implementation falls back to the
//! exact value for that vertex and records how often that happened.

use en_congest::broadcast::lemma1_rounds;
use en_congest::RoundLedger;
use en_congest_algos::explore::distributed_exploration;
use en_graph::dijkstra::multi_source_dijkstra;
use en_graph::{is_finite, Dist, NodeId, WeightedGraph, INFINITY};
use en_hopset::AugmentedGraph;

use crate::hierarchy::Hierarchy;
use crate::params::SchemeParams;
use crate::preprocess::Preprocessing;

/// The pivot table plus construction diagnostics.
#[derive(Debug, Clone)]
pub struct PivotTable {
    /// `pivots[v][i] = Some((ẑ_i(v), d̂_i(v)))`, `None` if `A_i` is empty or unreachable.
    pub pivots: Vec<Vec<Option<(NodeId, Dist)>>>,
    /// Round charges.
    pub ledger: RoundLedger,
    /// Number of (vertex, level) entries where the whp guarantee failed and the
    /// exact fallback value was used instead.
    pub fallbacks: usize,
    /// Number of simulated explorations that were cut off by the simulator's
    /// round limit before reaching quiescence (should be 0; surfaced so the
    /// harness can warn instead of silently reporting truncated rounds).
    pub round_limit_hits: usize,
}

/// Multi-source hop-bounded Bellman–Ford on the augmented virtual graph,
/// returning for every virtual vertex its distance to the nearest source and
/// that source's identity (both in virtual-index space).
pub fn multi_source_on_augmented(
    aug: &AugmentedGraph,
    sources: &[usize],
    beta: usize,
) -> (Vec<Dist>, Vec<Option<usize>>) {
    let m = aug.num_nodes();
    let mut dist = vec![INFINITY; m];
    let mut origin: Vec<Option<usize>> = vec![None; m];
    // Frontier-based levelled Bellman-Ford over the CSR adjacency of G'':
    // each sweep relaxes only the vertices whose value changed in the
    // previous sweep, carrying the (value, origin) pair each one had at the
    // start of the sweep — no per-sweep snapshot clones.
    let mut frontier: Vec<(usize, Dist, Option<usize>)> = Vec::with_capacity(sources.len());
    for &s in sources {
        dist[s] = 0;
        origin[s] = Some(s);
        frontier.push((s, 0, Some(s)));
    }
    let mut touched: Vec<usize> = Vec::new();
    let mut in_touched = vec![false; m];
    for _ in 0..beta {
        if frontier.is_empty() {
            break;
        }
        for &(x, dx, ox) in &frontier {
            for nb in aug.neighbors(x) {
                let cand = dx.saturating_add(nb.weight).min(INFINITY);
                if cand < dist[nb.node] {
                    dist[nb.node] = cand;
                    origin[nb.node] = ox;
                    if !in_touched[nb.node] {
                        in_touched[nb.node] = true;
                        touched.push(nb.node);
                    }
                }
            }
        }
        frontier.clear();
        for &v in &touched {
            in_touched[v] = false;
            frontier.push((v, dist[v], origin[v]));
        }
        touched.clear();
    }
    (dist, origin)
}

/// Computes the full pivot table for every vertex and every level `0..k`.
pub fn compute_pivots(
    g: &WeightedGraph,
    hierarchy: &Hierarchy,
    params: &SchemeParams,
    pre: Option<&Preprocessing>,
    hop_diameter: usize,
) -> PivotTable {
    let n = g.num_nodes();
    let k = params.k;
    let half = params.half_k();
    let mut pivots: Vec<Vec<Option<(NodeId, Dist)>>> = vec![vec![None; k]; n];
    let mut ledger = RoundLedger::new();
    let mut fallbacks = 0;
    let mut round_limit_hits = 0;

    // Level 0: every vertex is its own pivot at distance 0.
    for v in 0..n {
        pivots[v][0] = Some((v, 0));
    }

    // Exact levels 1..=min(half, k-1): distributed Bellman-Ford exploration.
    for i in 1..k.min(half + 1) {
        let level = hierarchy.level(i);
        if level.is_empty() {
            continue;
        }
        let depth = params.exploration_depth(i);
        let res = distributed_exploration(g, level, depth);
        if res.stats.hit_round_limit {
            round_limit_hits += 1;
        }
        ledger.charge(
            format!("exact pivots, level {i}: Bellman-Ford rooted at A_{i}"),
            res.stats.rounds,
            format!("4 n^{{{i}/{k}}} ln n = {depth} iterations (simulated rounds reported)"),
        );
        // Fallback for the (whp impossible) case that the bounded exploration
        // missed some vertex.
        let fallback = if res.dist.iter().any(|&d| !is_finite(d)) {
            Some(multi_source_dijkstra(g, level))
        } else {
            None
        };
        for v in 0..n {
            if is_finite(res.dist[v]) {
                pivots[v][i] = res.pivot[v].map(|z| (z, res.dist[v]));
            } else if let Some((dist, nearest)) = &fallback {
                if is_finite(dist[v]) {
                    pivots[v][i] = nearest[v].map(|z| (z, dist[v]));
                    fallbacks += 1;
                }
            }
        }
    }

    // Approximate levels half+1..k-1 (only exist when a preprocessing exists).
    if let Some(pre) = pre {
        for i in (half + 1)..k {
            let level = hierarchy.level(i);
            if level.is_empty() {
                continue;
            }
            let sources: Vec<usize> = level.iter().filter_map(|&v| pre.virtual_index(v)).collect();
            if sources.is_empty() {
                continue;
            }
            let (vdist, vorigin) = multi_source_on_augmented(&pre.augmented, &sources, pre.beta);
            ledger.charge(
                format!(
                    "approximate pivots, level {i}: {} Bellman-Ford iterations on G''",
                    pre.beta
                ),
                pre.beta * lemma1_rounds(pre.m(), hop_diameter) / pre.beta.max(1)
                    + lemma1_rounds(pre.m() * pre.beta, hop_diameter),
                format!(
                    "Theorem 3: broadcast |V'| = {} values for beta = {} iterations (Lemma 1)",
                    pre.m(),
                    pre.beta
                ),
            );
            // Extend from V' to all of V through the Theorem-1 values,
            // reading each virtual vertex's flat distance row once.
            let reachable: Vec<(usize, Dist, NodeId)> = (0..pre.m())
                .filter(|&xi| is_finite(vdist[xi]))
                .filter_map(|xi| vorigin[xi].map(|o| (xi, vdist[xi], pre.original(o))))
                .collect();
            let mut fallback: Option<(Vec<Dist>, Vec<Option<NodeId>>)> = None;
            for u in 0..n {
                let mut best: Option<(Dist, NodeId)> = None;
                for &(xi, dxv, z) in &reachable {
                    let dux = pre.theorem1.dist_row(xi)[u];
                    if !is_finite(dux) {
                        continue;
                    }
                    let cand = dux.saturating_add(dxv);
                    if best.is_none_or(|(bd, _)| cand < bd) {
                        best = Some((cand, z));
                    }
                }
                match best {
                    Some((d, z)) => pivots[u][i] = Some((z, d)),
                    None => {
                        // Exact fallback for this level (computed lazily, once).
                        if fallback.is_none() {
                            fallback = Some(multi_source_dijkstra(g, level));
                        }
                        let (dist, nearest) = fallback.as_ref().expect("just set");
                        if is_finite(dist[u]) {
                            pivots[u][i] = nearest[u].map(|z| (z, dist[u]));
                            fallbacks += 1;
                        }
                    }
                }
            }
        }
    }

    PivotTable {
        pivots,
        ledger,
        fallbacks,
        round_limit_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    fn setup(n: usize, k: usize, seed: u64) -> (WeightedGraph, Hierarchy, SchemeParams, usize) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 25), 0.1);
        let params = SchemeParams::new(k, n, seed);
        let hierarchy = Hierarchy::sample(&params);
        (g, hierarchy, params, 6)
    }

    fn exact_reference(
        g: &WeightedGraph,
        hierarchy: &Hierarchy,
    ) -> Vec<Vec<Option<(NodeId, Dist)>>> {
        crate::exact::exact_pivots(g, hierarchy)
    }

    #[test]
    fn level_zero_pivot_is_self() {
        let (g, hierarchy, params, d) = setup(40, 3, 1);
        let pre = Preprocessing::run(&g, &hierarchy, &params, d);
        let table = compute_pivots(&g, &hierarchy, &params, pre.as_ref(), d);
        for v in g.nodes() {
            assert_eq!(table.pivots[v][0], Some((v, 0)));
        }
    }

    #[test]
    fn exact_levels_match_reference_distances() {
        let (g, hierarchy, params, d) = setup(60, 4, 2);
        let pre = Preprocessing::run(&g, &hierarchy, &params, d);
        let table = compute_pivots(&g, &hierarchy, &params, pre.as_ref(), d);
        let exact = exact_reference(&g, &hierarchy);
        let half = params.half_k();
        for v in g.nodes() {
            for i in 1..=half.min(3) {
                match (table.pivots[v][i], exact[v][i]) {
                    (Some((_, d_approx)), Some((_, d_exact))) => {
                        assert_eq!(d_approx, d_exact, "vertex {v} level {i}")
                    }
                    (None, None) => {}
                    other => panic!("vertex {v} level {i}: mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn approximate_levels_satisfy_inequality_7() {
        let (g, hierarchy, params, d) = setup(80, 4, 3);
        let pre = Preprocessing::run(&g, &hierarchy, &params, d);
        let table = compute_pivots(&g, &hierarchy, &params, pre.as_ref(), d);
        let exact = exact_reference(&g, &hierarchy);
        let eps = params.epsilon();
        let half = params.half_k();
        for v in g.nodes() {
            for i in (half + 1)..4 {
                match (table.pivots[v][i], exact[v][i]) {
                    (Some((z, d_approx)), Some((_, d_exact))) => {
                        assert!(hierarchy.level(i).contains(&z));
                        assert!(d_approx >= d_exact, "vertex {v} level {i}");
                        assert!(
                            d_approx as f64 <= (1.0 + eps) * d_exact as f64 + 1e-6,
                            "vertex {v} level {i}: {d_approx} vs {d_exact}"
                        );
                    }
                    (None, None) => {}
                    (Some(_), None) => panic!("vertex {v} level {i}: pivot where none exists"),
                    (None, Some(_)) => panic!("vertex {v} level {i}: missing pivot"),
                }
            }
        }
    }

    #[test]
    fn empty_levels_have_no_pivots() {
        // With n = 20 and k = 6, the deep levels are essentially always empty.
        let (g, hierarchy, params, d) = setup(20, 6, 4);
        let pre = Preprocessing::run(&g, &hierarchy, &params, d);
        let table = compute_pivots(&g, &hierarchy, &params, pre.as_ref(), d);
        for i in 1..6 {
            if hierarchy.level(i).is_empty() {
                assert!(g.nodes().all(|v| table.pivots[v][i].is_none()));
            }
        }
    }

    #[test]
    fn ledger_has_a_charge_per_nonempty_level() {
        let (g, hierarchy, params, d) = setup(60, 3, 5);
        let pre = Preprocessing::run(&g, &hierarchy, &params, d);
        let table = compute_pivots(&g, &hierarchy, &params, pre.as_ref(), d);
        let nonempty = (1..3).filter(|&i| !hierarchy.level(i).is_empty()).count();
        assert!(table.ledger.len() >= nonempty);
        assert!(table.ledger.total_rounds() > 0);
    }

    #[test]
    fn multi_source_on_augmented_with_no_sources() {
        let (g, hierarchy, params, d) = setup(40, 2, 6);
        if let Some(pre) = Preprocessing::run(&g, &hierarchy, &params, d) {
            let (dist, origin) = multi_source_on_augmented(&pre.augmented, &[], 5);
            assert!(dist.iter().all(|&x| x == INFINITY));
            assert!(origin.iter().all(Option::is_none));
        }
    }
}
