//! The augmented graph `G'' = (V, E ∪ F)`.
//!
//! Section 3.3.1 of the paper forms `G''` by adding the hopset edges to the
//! virtual graph; where a hopset edge parallels an original edge, the hopset
//! weight wins. Explorations over `G''` need to know, for every traversed
//! edge, whether it is an original edge or a hopset edge (and in the latter
//! case which one), because Phase 1.5 treats the two differently.

use std::collections::HashMap;

use en_graph::{CsrGraph, Dist, NodeId, WeightedGraph, INFINITY};

use crate::edge::Hopset;

/// One adjacency entry of the augmented graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AugNeighbor {
    /// The neighbouring vertex.
    pub node: NodeId,
    /// The weight under `w''` (hopset weight wins on conflicts).
    pub weight: Dist,
    /// `Some(i)` if this adjacency comes from hopset edge `i`, `None` if it is
    /// an original edge of the base graph.
    pub hopset_index: Option<usize>,
}

/// Predecessor entry produced by [`AugmentedGraph::hop_bounded_from`]: the
/// predecessor vertex plus, if the final edge is a hopset edge, its index in
/// the hopset (`None` for an original edge of the base graph).
pub type HopBoundedParent = Option<(NodeId, Option<usize>)>;

/// The graph `G'' = (V, E ∪ F)` with per-edge provenance.
///
/// The adjacency is stored in CSR form — one flat [`AugNeighbor`] array plus
/// per-vertex offsets — so the `β`-hop Bellman–Ford explorations of Phases 1
/// and 3.3.2 walk memory linearly; [`AugmentedGraph::neighbors`] is a slice
/// view into it.
#[derive(Debug, Clone)]
pub struct AugmentedGraph {
    n: usize,
    /// `offsets[v]..offsets[v + 1]` indexes `arcs` for vertex `v`.
    offsets: Vec<usize>,
    /// Flat adjacency entries, vertex-major, sorted by neighbour id.
    arcs: Vec<AugNeighbor>,
    num_hopset_edges: usize,
}

impl AugmentedGraph {
    /// Builds `G''` from a base graph and a hopset over the same vertex set.
    ///
    /// Where the hopset contains an edge parallel to a base edge, the hopset
    /// weight replaces the base weight (the paper's conflict rule).
    ///
    /// # Panics
    ///
    /// Panics if a hopset edge references a vertex outside the base graph.
    pub fn new(base: &WeightedGraph, hopset: &Hopset) -> Self {
        let n = base.num_nodes();
        // Undirected adjacency map keyed by (min, max) endpoint pair.
        let mut best: HashMap<(NodeId, NodeId), (Dist, Option<usize>)> = HashMap::new();
        for e in base.edges() {
            best.insert((e.u, e.v), (e.weight, None));
        }
        for (i, he) in hopset.edges().iter().enumerate() {
            assert!(he.u < n && he.v < n, "hopset edge endpoint out of range");
            let key = (he.u.min(he.v), he.u.max(he.v));
            // Conflict rule: the hopset weight wins.
            best.insert(key, (he.weight, Some(i)));
        }
        let mut adj = vec![Vec::new(); n];
        let mut num_hopset_edges = 0;
        for (&(u, v), &(w, idx)) in &best {
            adj[u].push(AugNeighbor {
                node: v,
                weight: w,
                hopset_index: idx,
            });
            adj[v].push(AugNeighbor {
                node: u,
                weight: w,
                hopset_index: idx,
            });
            if idx.is_some() {
                num_hopset_edges += 1;
            }
        }
        // Flatten into CSR, each vertex's entries sorted by neighbour id.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut arcs = Vec::with_capacity(2 * best.len());
        offsets.push(0);
        for list in &mut adj {
            list.sort_by_key(|nb| nb.node);
            arcs.extend_from_slice(list);
            offsets.push(arcs.len());
        }
        AugmentedGraph {
            n,
            offsets,
            arcs,
            num_hopset_edges,
        }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected edges whose weight/provenance comes from the hopset.
    pub fn num_hopset_edges(&self) -> usize {
        self.num_hopset_edges
    }

    /// The adjacency list of `u` — a slice view into the flat CSR array.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[AugNeighbor] {
        &self.arcs[self.offsets[u]..self.offsets[u + 1]]
    }

    /// A plain [`CsrGraph`] view of `G''` (weights under `w''`, provenance
    /// dropped), in the same per-vertex arc order as
    /// [`AugmentedGraph::neighbors`] — the shape the batched restricted
    /// kernel (`en_graph::restricted`) consumes. Provenance of a recovered
    /// parent arc can be looked up afterwards with
    /// [`AugmentedGraph::provenance`], because `G''` never holds parallel
    /// edges (the conflict rule collapses them).
    pub fn to_csr(&self) -> CsrGraph {
        let targets = self.arcs.iter().map(|nb| nb.node).collect();
        let weights = self.arcs.iter().map(|nb| nb.weight).collect();
        CsrGraph::from_parts(self.offsets.clone(), targets, weights)
    }

    /// The hopset index of the unique `G''` edge `(u, v)` (`None` when the
    /// edge is an original edge of the base graph).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range or `(u, v)` is not an edge of `G''`.
    pub fn provenance(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let arcs = self.neighbors(u);
        // Arcs are sorted by neighbour id, so a binary search finds the edge.
        let pos = arcs
            .binary_search_by_key(&v, |nb| nb.node)
            .unwrap_or_else(|_| panic!("({u}, {v}) is not an edge of G''"));
        arcs[pos].hopset_index
    }

    /// Hop-bounded single-source distances `d^{(β)}_{G''}(source, ·)`, with the
    /// predecessor (and its provenance) on the best `≤ β`-hop path.
    ///
    /// Returns `(dist, parent)` where `parent[v]` is `(predecessor, hopset
    /// index of the final edge if it is a hopset edge)`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn hop_bounded_from(
        &self,
        source: NodeId,
        beta: usize,
    ) -> (Vec<Dist>, Vec<HopBoundedParent>) {
        assert!(source < self.n, "source {source} out of range");
        let mut dist = vec![INFINITY; self.n];
        let mut parent = vec![None; self.n];
        dist[source] = 0;
        // Frontier-based levelled Bellman-Ford: each sweep relaxes only the
        // vertices whose value changed in the previous sweep, reading the
        // value they had at the start of the sweep — no per-sweep snapshot.
        let mut frontier: Vec<(NodeId, Dist)> = vec![(source, 0)];
        let mut changed: Vec<NodeId> = Vec::new();
        let mut in_changed = vec![false; self.n];
        for _ in 0..beta {
            if frontier.is_empty() {
                break;
            }
            for &(u, du) in &frontier {
                for nb in self.neighbors(u) {
                    let cand = du.saturating_add(nb.weight).min(INFINITY);
                    if cand < dist[nb.node] {
                        dist[nb.node] = cand;
                        parent[nb.node] = Some((u, nb.hopset_index));
                        if !in_changed[nb.node] {
                            in_changed[nb.node] = true;
                            changed.push(nb.node);
                        }
                    }
                }
            }
            frontier.clear();
            for &v in &changed {
                in_changed[v] = false;
                frontier.push((v, dist[v]));
            }
            changed.clear();
        }
        (dist, parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_hopset, HopsetConfig};
    use crate::edge::HopsetEdge;
    use en_graph::dijkstra::dijkstra;
    use en_graph::generators::{path, GeneratorConfig};
    use en_graph::Path;

    #[test]
    fn augmenting_with_empty_hopset_reproduces_base() {
        let g = path(&GeneratorConfig::new(5, 1));
        let aug = AugmentedGraph::new(&g, &Hopset::empty(2));
        assert_eq!(aug.num_nodes(), 5);
        assert_eq!(aug.num_hopset_edges(), 0);
        let (dist, _) = aug.hop_bounded_from(0, 10);
        let sp = dijkstra(&g, 0);
        assert_eq!(dist, sp.dist);
    }

    #[test]
    fn hopset_weight_wins_on_conflict() {
        let g =
            en_graph::WeightedGraph::from_edges(3, [(0, 1, 5), (1, 2, 5), (0, 2, 100)]).unwrap();
        let hopset = Hopset::new(
            vec![HopsetEdge {
                u: 0,
                v: 2,
                weight: 10,
                path: Path::new(vec![0, 1, 2]),
            }],
            2,
            0.0,
        );
        let aug = AugmentedGraph::new(&g, &hopset);
        let direct = aug
            .neighbors(0)
            .iter()
            .find(|nb| nb.node == 2)
            .expect("edge (0,2) exists");
        assert_eq!(direct.weight, 10);
        assert_eq!(direct.hopset_index, Some(0));
        assert_eq!(aug.num_hopset_edges(), 1);
    }

    #[test]
    fn hop_bounded_distances_shrink_with_hopset() {
        let g = path(&GeneratorConfig::new(20, 4).unweighted());
        let hopset = build_hopset(&g, &HopsetConfig::new(0.3, 0.0, 4));
        let aug = AugmentedGraph::new(&g, &hopset);
        let (with_hopset, _) = aug.hop_bounded_from(0, 4);
        let plain = en_graph::bellman_ford::hop_bounded_distances(&g, 0, 4);
        // With shortcuts, at least one far vertex becomes reachable in 4 hops
        // at its exact distance.
        let improved = (0..20).any(|v| with_hopset[v] < plain.dist[v]);
        assert!(improved, "hopset should shorten some 4-hop distance");
        // And never makes anything worse or below the true distance.
        let sp = dijkstra(&g, 0);
        for v in 0..20 {
            assert!(with_hopset[v] <= plain.dist[v]);
            assert!(with_hopset[v] >= sp.dist[v]);
        }
    }

    #[test]
    fn parent_provenance_distinguishes_hopset_edges() {
        let g = path(&GeneratorConfig::new(10, 6).unweighted());
        let hopset = build_hopset(&g, &HopsetConfig::new(0.3, 0.0, 6));
        let aug = AugmentedGraph::new(&g, &hopset);
        let (_, parent) = aug.hop_bounded_from(0, 2);
        // Any vertex reached through a shortcut must record its hopset index.
        for v in 0..10 {
            if let Some((p, Some(idx))) = parent[v] {
                let edge = &hopset.edges()[idx];
                assert!(
                    (edge.u == p && edge.v == v) || (edge.u == v && edge.v == p),
                    "provenance points at the wrong hopset edge"
                );
            }
        }
    }

    #[test]
    fn csr_view_matches_adjacency_and_provenance() {
        let g =
            en_graph::WeightedGraph::from_edges(3, [(0, 1, 5), (1, 2, 5), (0, 2, 100)]).unwrap();
        let hopset = Hopset::new(
            vec![HopsetEdge {
                u: 0,
                v: 2,
                weight: 10,
                path: Path::new(vec![0, 1, 2]),
            }],
            2,
            0.0,
        );
        let aug = AugmentedGraph::new(&g, &hopset);
        let csr = aug.to_csr();
        assert_eq!(csr.num_nodes(), 3);
        for v in 0..3 {
            let (targets, weights) = csr.arcs(v);
            for (i, nb) in aug.neighbors(v).iter().enumerate() {
                assert_eq!(targets[i], nb.node);
                assert_eq!(weights[i], nb.weight);
                assert_eq!(aug.provenance(v, nb.node), nb.hopset_index);
            }
        }
        assert_eq!(aug.provenance(0, 2), Some(0));
        assert_eq!(aug.provenance(0, 1), None);
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn provenance_rejects_non_edges() {
        let g = path(&GeneratorConfig::new(4, 1));
        let aug = AugmentedGraph::new(&g, &Hopset::empty(4));
        let _ = aug.provenance(0, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hopset_edge_out_of_range_panics() {
        let g = path(&GeneratorConfig::new(3, 1));
        let hopset = Hopset::new(
            vec![HopsetEdge {
                u: 0,
                v: 9,
                weight: 1,
                path: Path::new(vec![0, 9]),
            }],
            2,
            0.0,
        );
        let _ = AugmentedGraph::new(&g, &hopset);
    }
}
