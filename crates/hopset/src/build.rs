//! Hopset construction.
//!
//! Sampled-shortcut construction (see the crate-level documentation for why
//! this is a faithful stand-in for the \[EN16a\] construction the paper cites):
//!
//! 1. sample a pivot set `S ⊆ V`, each vertex independently with probability
//!    `min(1, m^{-ρ} · c)` (at least one pivot is always forced so small
//!    graphs are covered);
//! 2. from every pivot run exact Dijkstra and add a shortcut edge to every
//!    reachable vertex, weighted by the exact distance and carrying the
//!    shortest path as its realising path.
//!
//! With high probability every shortest path with more than
//! `β₀ = 4 m^ρ ln m` hops contains a pivot, in which case two shortcut edges
//! reproduce the exact distance; shorter paths need no shortcut at all. The
//! result is a path-reporting `(β, 0)`-hopset with `β = max(β₀, 2)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use en_graph::dijkstra::dijkstra_csr;
use en_graph::{CsrGraph, NodeId, WeightedGraph};

use crate::edge::{Hopset, HopsetEdge};

/// Parameters of the hopset construction.
#[derive(Debug, Clone, PartialEq)]
pub struct HopsetConfig {
    /// The `ρ ∈ (0, 1/2]` trade-off parameter: larger `ρ` means fewer pivots,
    /// a larger hopbound, and fewer rounds — mirroring Theorem 2's trade-off.
    pub rho: f64,
    /// The stretch slack `ε` the caller budgets for. The sampled-shortcut
    /// construction actually achieves `ε = 0`, but the value is recorded so
    /// downstream round charges use the caller's budget consistently.
    pub epsilon: f64,
    /// Random seed for pivot sampling.
    pub seed: u64,
}

impl HopsetConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not in `(0, 0.5]` or `epsilon` is negative.
    pub fn new(rho: f64, epsilon: f64, seed: u64) -> Self {
        assert!(rho > 0.0 && rho <= 0.5, "rho must be in (0, 0.5]");
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        HopsetConfig { rho, epsilon, seed }
    }

    /// The hopbound `β` this configuration guarantees on a graph with `m` vertices.
    pub fn beta_for(&self, m: usize) -> usize {
        if m <= 1 {
            return 2;
        }
        let mf = m as f64;
        let beta0 = 4.0 * mf.powf(self.rho) * mf.ln();
        (beta0.ceil() as usize).clamp(2, m.max(2))
    }

    /// The pivot sampling probability on a graph with `m` vertices.
    pub fn pivot_probability(&self, m: usize) -> f64 {
        if m == 0 {
            return 0.0;
        }
        (m as f64).powf(-self.rho).min(1.0)
    }

    /// Round charge of the construction per Theorem 2:
    /// `Õ(m^{1+ρ} + D) · β²`.
    pub fn construction_rounds(&self, m: usize, hop_diameter: usize) -> usize {
        let beta = self.beta_for(m) as f64;
        let mf = (m.max(1)) as f64;
        let base = mf.powf(1.0 + self.rho) + hop_diameter as f64;
        (base * beta * beta).ceil() as usize
    }
}

/// Builds a path-reporting hopset for `g` with the given configuration.
pub fn build_hopset(g: &WeightedGraph, config: &HopsetConfig) -> Hopset {
    let _span = en_obs::span("hopset_build");
    let m = g.num_nodes();
    let beta = config.beta_for(m);
    if m == 0 {
        return Hopset::empty(beta);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let p = config.pivot_probability(m);
    let mut pivots: Vec<NodeId> = g.nodes().filter(|_| rng.gen_bool(p)).collect();
    if pivots.is_empty() {
        // Always keep at least one pivot so the guarantee degrades gracefully
        // on tiny graphs.
        pivots.push(rng.gen_range(0..m));
    }
    let mut edges = Vec::new();
    let csr = CsrGraph::from_graph(g);
    for &s in &pivots {
        let sp = dijkstra_csr(&csr, s);
        for v in g.nodes() {
            if v == s {
                continue;
            }
            if let Some(path) = sp.path_to(v) {
                // Skip shortcuts that coincide with an existing edge of equal
                // weight: they add nothing.
                if path.hops() == 1 {
                    continue;
                }
                edges.push(HopsetEdge {
                    u: s,
                    v,
                    weight: sp.dist[v],
                    path,
                });
            }
        }
    }
    en_obs::counter_add("hopset.shortcut_edges", edges.len() as u64);
    Hopset::new(edges, beta, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::generators::{erdos_renyi_connected, path, GeneratorConfig};

    #[test]
    fn config_validation() {
        let c = HopsetConfig::new(0.5, 0.1, 1);
        assert!(c.beta_for(100) >= 2);
        assert!(c.pivot_probability(100) <= 1.0);
        assert!(c.construction_rounds(100, 5) > 0);
        assert_eq!(c.beta_for(1), 2);
        assert_eq!(c.pivot_probability(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn rejects_bad_rho() {
        let _ = HopsetConfig::new(0.9, 0.1, 1);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_negative_epsilon() {
        let _ = HopsetConfig::new(0.3, -0.1, 1);
    }

    #[test]
    fn construction_is_deterministic_and_path_reporting() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(50, 3), 0.08);
        let cfg = HopsetConfig::new(0.4, 0.05, 11);
        let a = build_hopset(&g, &cfg);
        let b = build_hopset(&g, &cfg);
        assert_eq!(a, b);
        assert!(a.is_path_reporting_in(&g));
    }

    #[test]
    fn hopset_weights_are_exact_distances() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(40, 5).with_weights(1, 20), 0.1);
        let cfg = HopsetConfig::new(0.5, 0.0, 2);
        let h = build_hopset(&g, &cfg);
        for e in h.edges() {
            let sp = en_graph::dijkstra::dijkstra(&g, e.u);
            assert_eq!(sp.dist[e.v], e.weight);
        }
    }

    #[test]
    fn empty_graph_gives_empty_hopset() {
        let g = WeightedGraph::new(0);
        let h = build_hopset(&g, &HopsetConfig::new(0.5, 0.1, 1));
        assert!(h.is_empty());
    }

    #[test]
    fn path_graph_gets_long_shortcuts() {
        let g = path(&GeneratorConfig::new(30, 9));
        let h = build_hopset(&g, &HopsetConfig::new(0.3, 0.1, 9));
        // Every produced shortcut skips at least one intermediate vertex.
        assert!(h.edges().iter().all(|e| e.path.hops() >= 2));
        assert!(!h.is_empty());
    }
}
