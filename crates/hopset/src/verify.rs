//! Empirical verification of the hopset property (Definition 1).
//!
//! Because the reproduction uses a hopset construction different from the
//! (unpublished-as-code) \[EN16a\] one, every benchmark and several tests
//! *check* Definition 1 on the actual instance rather than assuming it:
//! for all pairs `u, v`,
//! `d_G(u, v) ≤ d^{(β)}_{G ∪ F}(u, v) ≤ (1 + ε) d_G(u, v)`.

use en_graph::dijkstra::all_pairs_dijkstra;
use en_graph::{is_finite, NodeId, WeightedGraph};

use crate::augment::AugmentedGraph;
use crate::edge::Hopset;

/// The outcome of verifying Definition 1 on a concrete graph + hopset.
#[derive(Debug, Clone, PartialEq)]
pub struct HopsetReport {
    /// Number of (ordered) reachable pairs checked.
    pub pairs_checked: usize,
    /// Number of pairs where the hop-bounded augmented distance fell *below*
    /// the true distance (must be 0 for a correct hopset: shortcuts never
    /// undercut real distances).
    pub lower_violations: usize,
    /// The maximum over all pairs of `d^{(β)}_{G∪F}(u,v) / d_G(u,v)`.
    pub max_ratio: f64,
    /// A pair attaining `max_ratio`.
    pub worst_pair: Option<(NodeId, NodeId)>,
    /// The hopbound β that was used for the check.
    pub beta: usize,
}

impl HopsetReport {
    /// Whether the report certifies a `(beta, epsilon)`-hopset (for the β the
    /// check was run with).
    pub fn satisfies(&self, beta: usize, epsilon: f64) -> bool {
        self.beta <= beta && self.lower_violations == 0 && self.max_ratio <= 1.0 + epsilon + 1e-9
    }
}

/// Verifies Definition 1 for `hopset` on `g`, using the hopset's own claimed β.
pub fn verify_hopset(g: &WeightedGraph, hopset: &Hopset) -> HopsetReport {
    verify_hopset_with_beta(g, hopset, hopset.beta())
}

/// Verifies Definition 1 for `hopset` on `g` with an explicit hopbound `beta`.
pub fn verify_hopset_with_beta(g: &WeightedGraph, hopset: &Hopset, beta: usize) -> HopsetReport {
    let truth = all_pairs_dijkstra(g);
    let aug = AugmentedGraph::new(g, hopset);
    let mut pairs_checked = 0;
    let mut lower_violations = 0;
    let mut max_ratio: f64 = 1.0;
    let mut worst_pair = None;
    for u in g.nodes() {
        let (hop_dist, _) = aug.hop_bounded_from(u, beta);
        for v in g.nodes() {
            if u == v || !is_finite(truth[u][v]) {
                continue;
            }
            pairs_checked += 1;
            if hop_dist[v] < truth[u][v] {
                lower_violations += 1;
            }
            let ratio = if is_finite(hop_dist[v]) {
                hop_dist[v] as f64 / truth[u][v] as f64
            } else {
                f64::INFINITY
            };
            if ratio > max_ratio {
                max_ratio = ratio;
                worst_pair = Some((u, v));
            }
        }
    }
    HopsetReport {
        pairs_checked,
        lower_violations,
        max_ratio,
        worst_pair,
        beta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_hopset, HopsetConfig};
    use crate::edge::HopsetEdge;
    use en_graph::generators::{
        erdos_renyi_connected, path, random_geometric_connected, GeneratorConfig,
    };
    use en_graph::Path;

    #[test]
    fn built_hopsets_satisfy_definition_1_on_random_graphs() {
        for seed in 0..3u64 {
            let g =
                erdos_renyi_connected(&GeneratorConfig::new(45, seed).with_weights(1, 40), 0.08);
            let cfg = HopsetConfig::new(0.4, 0.1, seed);
            let h = build_hopset(&g, &cfg);
            let report = verify_hopset(&g, &h);
            assert!(
                report.satisfies(h.beta(), 0.0),
                "seed {seed}: ratio {} violations {}",
                report.max_ratio,
                report.lower_violations
            );
        }
    }

    #[test]
    fn built_hopsets_satisfy_definition_1_on_geometric_graphs() {
        let g = random_geometric_connected(&GeneratorConfig::new(40, 8), 0.25);
        let h = build_hopset(&g, &HopsetConfig::new(0.5, 0.1, 8));
        let report = verify_hopset(&g, &h);
        assert!(report.satisfies(h.beta(), 0.0));
        assert!(report.pairs_checked > 0);
    }

    #[test]
    fn empty_hopset_needs_full_hop_budget() {
        // On a path, without hopset edges a hop bound of 2 cannot reach far
        // vertices, so the report must flag a huge ratio.
        let g = path(&GeneratorConfig::new(12, 2).unweighted());
        let report = verify_hopset_with_beta(&g, &Hopset::empty(2), 2);
        assert!(!report.satisfies(2, 0.5));
        assert!(report.max_ratio.is_infinite());
        // With the full budget the empty hopset is fine (β = n is always enough).
        let report = verify_hopset_with_beta(&g, &Hopset::empty(12), 12);
        assert!(report.satisfies(12, 0.0));
    }

    #[test]
    fn undercutting_edge_is_reported_as_lower_violation() {
        let g = en_graph::WeightedGraph::from_edges(3, [(0, 1, 10), (1, 2, 10)]).unwrap();
        // A bogus "hopset" edge claiming distance 1 between 0 and 2 undercuts
        // the true distance 20.
        let bogus = Hopset::new(
            vec![HopsetEdge {
                u: 0,
                v: 2,
                weight: 1,
                path: Path::new(vec![0, 1, 2]),
            }],
            3,
            0.0,
        );
        let report = verify_hopset(&g, &bogus);
        assert!(report.lower_violations > 0);
        assert!(!report.satisfies(3, 0.0));
    }
}
