//! Path-reporting `(β, ε)`-hopsets (Theorem 2 of the paper).
//!
//! A set of weighted edges `F` is a `(β, ε)`-hopset for a graph `G = (V, E)`
//! if in `H = (V, E ∪ F)` every pair `u, v` satisfies
//!
//! ```text
//! d_G(u, v) ≤ d_H(u, v) ≤ d^{(β)}_H(u, v) ≤ (1 + ε) d_G(u, v)       (4)
//! ```
//!
//! The routing construction additionally needs the hopset to be
//! *path-reporting* (Property 1): every hopset edge `(u, v)` of weight `b`
//! corresponds to a path `P` in `G` of length `b`, and every vertex on `P`
//! knows its position on it. Phase 1.5 of the large-scale cluster
//! construction walks these paths to set real parents.
//!
//! Reproduction note (see DESIGN.md): the paper takes the hopset construction
//! of \[EN16a\] (a separate FOCS'16 paper) as a black box with
//! `β = (log m / (ε ρ))^{O(1/ρ)}`. We implement a simpler sampled-shortcut
//! construction with the *same interface and guarantees*: sample a set `S` of
//! pivots (each vertex independently with probability `m^{-ρ}`), and add a
//! shortcut edge from every pivot to every vertex carrying the exact shortest
//! distance, realised by the shortest path (so the hopset is path-reporting
//! and in fact has ε = 0). With high probability every shortest path with more
//! than `O(m^ρ ln m)` hops contains a pivot, so the hopbound is
//! `β = O(m^ρ ln m)`, and for pairs beyond that bound two hopset edges
//! suffice. The downstream construction only consumes the hopset through (4)
//! and Property 1, which this construction satisfies (and
//! [`verify::verify_hopset`] checks empirically).
//!
//! # Example
//!
//! ```
//! use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
//! use en_hopset::{build_hopset, HopsetConfig, verify::verify_hopset};
//!
//! let g = erdos_renyi_connected(&GeneratorConfig::new(40, 2), 0.1);
//! let hopset = build_hopset(&g, &HopsetConfig::new(0.5, 0.1, 7));
//! let report = verify_hopset(&g, &hopset);
//! assert!(report.satisfies(hopset.beta(), 0.1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod build;
pub mod edge;
pub mod verify;

pub use augment::AugmentedGraph;
pub use build::{build_hopset, HopsetConfig};
pub use edge::{Hopset, HopsetEdge};
