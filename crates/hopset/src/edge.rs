//! The [`Hopset`] and [`HopsetEdge`] types.

use en_graph::{Dist, NodeId, Path, WeightedGraph};

/// A single hopset edge together with the path in the underlying graph that
/// realises it (Property 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopsetEdge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// The edge weight `b`.
    pub weight: Dist,
    /// The realising path `P` from `u` to `v` in the underlying graph, of
    /// length exactly `weight`.
    pub path: Path,
}

impl HopsetEdge {
    /// Checks the path-reporting property against `g`: the path runs from `u`
    /// to `v`, uses only edges of `g`, and has length exactly `weight`.
    pub fn is_path_reporting_in(&self, g: &WeightedGraph) -> bool {
        self.path.source() == Some(self.u)
            && self.path.target() == Some(self.v)
            && self.path.is_valid_in(g)
            && self.path.length_in(g) == Some(self.weight)
    }
}

/// A collection of hopset edges for a specific underlying graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Hopset {
    edges: Vec<HopsetEdge>,
    /// The hopbound `β` the construction guarantees (with high probability).
    beta: usize,
    /// The stretch slack `ε` the construction guarantees.
    epsilon: f64,
}

impl Hopset {
    /// Creates a hopset from its edges and the guarantees the construction claims.
    pub fn new(edges: Vec<HopsetEdge>, beta: usize, epsilon: f64) -> Self {
        Hopset {
            edges,
            beta,
            epsilon,
        }
    }

    /// An empty hopset (useful as the identity element: `G ∪ ∅ = G`), with a
    /// caller-specified hopbound claim.
    pub fn empty(beta: usize) -> Self {
        Hopset {
            edges: Vec::new(),
            beta,
            epsilon: 0.0,
        }
    }

    /// The hopset edges.
    pub fn edges(&self) -> &[HopsetEdge] {
        &self.edges
    }

    /// Number of hopset edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the hopset has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The hopbound `β` the construction guarantees.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// The stretch slack `ε` the construction guarantees.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Looks up the hopset edge between `u` and `v` (in either orientation).
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<&HopsetEdge> {
        self.edges
            .iter()
            .find(|e| (e.u == u && e.v == v) || (e.u == v && e.v == u))
    }

    /// Checks Property 1 (path reporting) for every edge against `g`.
    pub fn is_path_reporting_in(&self, g: &WeightedGraph) -> bool {
        self.edges.iter().all(|e| e.is_path_reporting_in(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::Path;

    fn host() -> WeightedGraph {
        WeightedGraph::from_edges(4, [(0, 1, 2), (1, 2, 3), (2, 3, 4)]).unwrap()
    }

    fn good_edge() -> HopsetEdge {
        HopsetEdge {
            u: 0,
            v: 2,
            weight: 5,
            path: Path::new(vec![0, 1, 2]),
        }
    }

    #[test]
    fn path_reporting_check_accepts_correct_edge() {
        assert!(good_edge().is_path_reporting_in(&host()));
    }

    #[test]
    fn path_reporting_check_rejects_wrong_weight_or_endpoints() {
        let g = host();
        let mut e = good_edge();
        e.weight = 6;
        assert!(!e.is_path_reporting_in(&g));
        let mut e = good_edge();
        e.v = 3;
        assert!(!e.is_path_reporting_in(&g));
        let mut e = good_edge();
        e.path = Path::new(vec![0, 2]);
        assert!(!e.is_path_reporting_in(&g));
    }

    #[test]
    fn hopset_lookup_is_orientation_agnostic() {
        let h = Hopset::new(vec![good_edge()], 4, 0.0);
        assert!(h.edge_between(0, 2).is_some());
        assert!(h.edge_between(2, 0).is_some());
        assert!(h.edge_between(0, 3).is_none());
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
        assert_eq!(h.beta(), 4);
        assert_eq!(h.epsilon(), 0.0);
    }

    #[test]
    fn empty_hopset() {
        let h = Hopset::empty(7);
        assert!(h.is_empty());
        assert!(h.is_path_reporting_in(&host()));
        assert_eq!(h.beta(), 7);
    }
}
