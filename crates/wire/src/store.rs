//! Epoch-based hot swap of validated snapshots under live traffic.
//!
//! [`SchemeStore`] owns the serving snapshot behind an `Arc` epoch:
//! [`SchemeStore::publish`] **validates first** (the full
//! [`FlatScheme::from_bytes`] pass — checksums and structure), and only an
//! accepted buffer is atomically swapped in as the next epoch. Readers pin
//! an epoch with [`SchemeStore::current`] and keep routing on it for as
//! long as they hold the `Arc` — a publish mid-batch never tears a reader's
//! view, and the old epoch's memory is freed when its last reader drops it.
//!
//! **Rollback is the default**: a publish whose bytes fail validation
//! returns the error, bumps the rejected counter, and leaves the current
//! epoch serving untouched. This is the epoch/swap half of the delta-
//! snapshot roadmap item — producers can hand the store candidate buffers
//! as fast as they like; traffic only ever sees complete, validated
//! schemes.
//!
//! ```
//! use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
//! use en_routing::construction::{build_routing_scheme, ConstructionConfig};
//! use en_wire::{QueryEngine, SchemeStore};
//!
//! let g = erdos_renyi_connected(&GeneratorConfig::new(48, 9), 0.15);
//! let built = build_routing_scheme(&g, &ConstructionConfig::new(2, 9)).unwrap();
//! let store = SchemeStore::new(en_wire::serialize(&built.scheme)).unwrap();
//!
//! // A reader pins the current epoch and serves off it.
//! let epoch = store.current();
//! let engine = QueryEngine::new(epoch.scheme(), &g).unwrap();
//! assert!(engine.route(0, 47).is_ok());
//!
//! // Garbage never makes it in; the pinned epoch keeps serving.
//! assert!(store.publish(vec![0u8; 64]).is_err());
//! assert_eq!(store.rejected(), 1);
//! assert!(engine.route(0, 47).is_ok());
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::error::WireError;
use crate::flat::FlatScheme;

/// One validated, immutable snapshot generation.
///
/// The bytes were fully validated when the epoch was published, so
/// [`Self::scheme`] re-opens them with the cheap shape-only pass — readers
/// pay O(header), not O(snapshot), to borrow a [`FlatScheme`].
#[derive(Debug)]
pub struct SnapshotEpoch {
    id: u64,
    bytes: Box<[u8]>,
}

impl SnapshotEpoch {
    /// The epoch id: 0 for the store's initial snapshot, then one per
    /// accepted publish, strictly increasing.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The raw snapshot bytes (already validated).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Borrows the epoch's scheme for zero-copy serving.
    pub fn scheme(&self) -> FlatScheme<'_> {
        FlatScheme::from_bytes_unvalidated(&self.bytes)
            .expect("epoch bytes were validated at publish time")
    }
}

/// Counters describing a store's publish history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// The id of the epoch currently serving.
    pub current_epoch: u64,
    /// Accepted publishes (excluding the initial snapshot).
    pub published: u64,
    /// Rejected publishes (validation failures; the prior epoch kept
    /// serving through every one of them).
    pub rejected: u64,
}

/// The epoch hot-swap store: validate-then-swap snapshot publication with
/// readers pinned to whole epochs. See the module docs.
#[derive(Debug)]
pub struct SchemeStore {
    current: RwLock<Arc<SnapshotEpoch>>,
    published: AtomicU64,
    rejected: AtomicU64,
}

impl SchemeStore {
    /// Creates a store serving `bytes` as epoch 0.
    ///
    /// # Errors
    ///
    /// Returns the validation error when `bytes` is not a valid snapshot —
    /// a store never exists in an unserviceable state.
    pub fn new(bytes: Vec<u8>) -> Result<Self, WireError> {
        FlatScheme::from_bytes(&bytes)?;
        Ok(SchemeStore {
            current: RwLock::new(Arc::new(SnapshotEpoch {
                id: 0,
                bytes: bytes.into_boxed_slice(),
            })),
            published: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// Validates `bytes` and, on success, atomically swaps it in as the
    /// new current epoch, returning the new epoch id. In-flight readers
    /// holding an older epoch keep serving it unchanged.
    ///
    /// # Errors
    ///
    /// On validation failure the candidate is dropped, the rejected
    /// counter is bumped, and the current epoch is left serving — rollback
    /// by default; there is no partially-applied state to undo.
    pub fn publish(&self, bytes: Vec<u8>) -> Result<u64, WireError> {
        if let Err(e) = FlatScheme::from_bytes(&bytes) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let mut guard = self.current.write().expect("store lock poisoned");
        let id = guard.id + 1;
        *guard = Arc::new(SnapshotEpoch {
            id,
            bytes: bytes.into_boxed_slice(),
        });
        self.published.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Pins and returns the current epoch. The returned `Arc` keeps that
    /// whole snapshot generation alive until dropped, so a reader's view
    /// can never change (or be freed) mid-batch.
    pub fn current(&self) -> Arc<SnapshotEpoch> {
        Arc::clone(&self.current.read().expect("store lock poisoned"))
    }

    /// The id of the epoch currently serving.
    pub fn current_id(&self) -> u64 {
        self.current.read().expect("store lock poisoned").id
    }

    /// Rejected publishes so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Publish counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            current_epoch: self.current_id(),
            published: self.published.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
    use en_routing::construction::{build_routing_scheme, ConstructionConfig};

    fn snapshot(seed: u64) -> Vec<u8> {
        let g = erdos_renyi_connected(&GeneratorConfig::new(40, seed).with_weights(1, 9), 0.15);
        let built = build_routing_scheme(&g, &ConstructionConfig::new(2, seed)).unwrap();
        serialize(&built.scheme)
    }

    #[test]
    fn new_rejects_garbage() {
        assert!(SchemeStore::new(vec![0u8; 128]).is_err());
        assert!(SchemeStore::new(Vec::new()).is_err());
    }

    #[test]
    fn publish_swaps_epochs_and_readers_keep_pins() {
        let a = snapshot(1);
        let b = snapshot(2);
        let store = SchemeStore::new(a.clone()).unwrap();
        assert_eq!(store.current_id(), 0);

        let pinned = store.current();
        assert_eq!(pinned.id(), 0);
        assert_eq!(pinned.bytes(), &a[..]);

        let id = store.publish(b.clone()).unwrap();
        assert_eq!(id, 1);
        assert_eq!(store.current_id(), 1);
        // The pinned epoch is untouched by the swap.
        assert_eq!(pinned.id(), 0);
        assert_eq!(pinned.bytes(), &a[..]);
        assert_eq!(store.current().bytes(), &b[..]);
        assert_eq!(
            store.stats(),
            StoreStats {
                current_epoch: 1,
                published: 1,
                rejected: 0
            }
        );
    }

    #[test]
    fn failed_publish_rolls_back_by_default() {
        let a = snapshot(3);
        let store = SchemeStore::new(a.clone()).unwrap();

        // Corrupt candidate: flip one byte mid-buffer.
        let mut bad = a.clone();
        let at = bad.len() / 2;
        bad[at] ^= 0x40;
        assert!(store.publish(bad).is_err());

        // Truncated candidate.
        assert!(store.publish(a[..a.len() - 8].to_vec()).is_err());

        assert_eq!(store.current_id(), 0, "failed publishes must not swap");
        assert_eq!(store.rejected(), 2);
        assert_eq!(store.current().bytes(), &a[..]);
        // And the epoch still opens.
        assert_eq!(store.current().scheme().n(), 40);

        // A good publish still works afterwards.
        assert_eq!(store.publish(snapshot(4)).unwrap(), 1);
    }

    #[test]
    fn epoch_scheme_reopens_cheaply_and_correctly() {
        let a = snapshot(5);
        let store = SchemeStore::new(a.clone()).unwrap();
        let epoch = store.current();
        let direct = FlatScheme::from_bytes(&a).unwrap();
        let reopened = epoch.scheme();
        assert_eq!(reopened.n(), direct.n());
        assert_eq!(reopened.k(), direct.k());
        assert_eq!(reopened.num_clusters(), direct.num_clusters());
        assert_eq!(reopened.manifest(), direct.manifest());
    }
}
