//! Epoch-based hot swap of validated snapshots under live traffic.
//!
//! [`SchemeStore`] owns the serving snapshot behind an `Arc` epoch:
//! [`SchemeStore::publish`] **validates first** (the full
//! [`FlatScheme::from_bytes`] pass — checksums and structure), and only an
//! accepted buffer is atomically swapped in as the next epoch. Readers pin
//! an epoch with [`SchemeStore::current`] and keep routing on it for as
//! long as they hold the `Arc` — a publish mid-batch never tears a reader's
//! view, and the old epoch's memory is freed when its last reader drops it.
//!
//! **Rollback is the default**: a publish whose bytes fail validation
//! returns the error, bumps the rejected counter, and leaves the current
//! epoch serving untouched. This is the epoch/swap half of the delta-
//! snapshot roadmap item — producers can hand the store candidate buffers
//! as fast as they like; traffic only ever sees complete, validated
//! schemes.
//!
//! ```
//! use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
//! use en_routing::construction::{build_routing_scheme, ConstructionConfig};
//! use en_wire::{QueryEngine, SchemeStore};
//!
//! let g = erdos_renyi_connected(&GeneratorConfig::new(48, 9), 0.15);
//! let built = build_routing_scheme(&g, &ConstructionConfig::new(2, 9)).unwrap();
//! let store = SchemeStore::new(en_wire::serialize(&built.scheme)).unwrap();
//!
//! // A reader pins the current epoch and serves off it.
//! let epoch = store.current();
//! let engine = QueryEngine::new(epoch.scheme(), &g).unwrap();
//! assert!(engine.route(0, 47).is_ok());
//!
//! // Garbage never makes it in; the pinned epoch keeps serving.
//! assert!(store.publish(vec![0u8; 64]).is_err());
//! assert_eq!(store.rejected(), 1);
//! assert!(engine.route(0, 47).is_ok());
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::error::WireError;
use crate::flat::FlatScheme;
use crate::mmap::MappedSnapshot;

/// Where an epoch's snapshot bytes live: an owned heap buffer, or a
/// page-cache-backed [`MappedSnapshot`].
///
/// Publish, pin, and rollback are storage-agnostic: the store validates
/// [`Self::bytes`] the same way for both variants, readers borrow the same
/// `&[u8]`, and dropping the last pin frees the heap buffer or unmaps the
/// file respectively.
#[derive(Debug)]
pub enum SnapshotSource {
    /// An owned in-memory snapshot buffer.
    Owned(Box<[u8]>),
    /// A snapshot served straight from the kernel page cache.
    Mapped(MappedSnapshot),
}

impl SnapshotSource {
    /// The snapshot bytes, whatever the storage.
    pub fn bytes(&self) -> &[u8] {
        match self {
            SnapshotSource::Owned(bytes) => bytes,
            SnapshotSource::Mapped(mapped) => mapped.bytes(),
        }
    }

    /// Whether the bytes are memory-mapped rather than owned.
    pub fn is_mapped(&self) -> bool {
        matches!(self, SnapshotSource::Mapped(m) if m.is_mapped())
    }
}

impl From<Vec<u8>> for SnapshotSource {
    fn from(bytes: Vec<u8>) -> Self {
        SnapshotSource::Owned(bytes.into_boxed_slice())
    }
}

impl From<MappedSnapshot> for SnapshotSource {
    fn from(mapped: MappedSnapshot) -> Self {
        SnapshotSource::Mapped(mapped)
    }
}

/// One validated, immutable snapshot generation.
///
/// The bytes were fully validated when the epoch was published, so
/// [`Self::scheme`] re-opens them with the cheap shape-only pass — readers
/// pay O(header), not O(snapshot), to borrow a [`FlatScheme`].
#[derive(Debug)]
pub struct SnapshotEpoch {
    id: u64,
    source: SnapshotSource,
}

impl SnapshotEpoch {
    /// The epoch id: 0 for the store's initial snapshot, then one per
    /// accepted publish, strictly increasing.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The raw snapshot bytes (already validated).
    pub fn bytes(&self) -> &[u8] {
        self.source.bytes()
    }

    /// The storage backing this epoch.
    pub fn source(&self) -> &SnapshotSource {
        &self.source
    }

    /// Borrows the epoch's scheme for zero-copy serving.
    pub fn scheme(&self) -> FlatScheme<'_> {
        FlatScheme::from_bytes_unvalidated(self.bytes())
            .expect("epoch bytes were validated at publish time")
    }
}

/// Counters describing a store's publish history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// The id of the epoch currently serving.
    pub current_epoch: u64,
    /// Accepted publishes (excluding the initial snapshot).
    pub published: u64,
    /// Rejected publishes (validation failures; the prior epoch kept
    /// serving through every one of them).
    pub rejected: u64,
}

/// The epoch hot-swap store: validate-then-swap snapshot publication with
/// readers pinned to whole epochs. See the module docs.
#[derive(Debug)]
pub struct SchemeStore {
    current: RwLock<Arc<SnapshotEpoch>>,
    published: AtomicU64,
    rejected: AtomicU64,
}

impl SchemeStore {
    /// Creates a store serving `bytes` as epoch 0.
    ///
    /// # Errors
    ///
    /// Returns the validation error when `bytes` is not a valid snapshot —
    /// a store never exists in an unserviceable state.
    pub fn new(bytes: Vec<u8>) -> Result<Self, WireError> {
        Self::new_source(bytes.into())
    }

    /// [`Self::new`] over any [`SnapshotSource`] — the mapped equivalent
    /// of the owned constructor (pair with [`MappedSnapshot::open`]).
    ///
    /// # Errors
    ///
    /// As [`Self::new`]: the source's bytes must validate in full.
    pub fn new_source(source: SnapshotSource) -> Result<Self, WireError> {
        FlatScheme::from_bytes(source.bytes())?;
        Ok(SchemeStore {
            current: RwLock::new(Arc::new(SnapshotEpoch { id: 0, source })),
            published: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// Validates `bytes` and, on success, atomically swaps it in as the
    /// new current epoch, returning the new epoch id. In-flight readers
    /// holding an older epoch keep serving it unchanged.
    ///
    /// # Errors
    ///
    /// On validation failure the candidate is dropped, the rejected
    /// counter is bumped, and the current epoch is left serving — rollback
    /// by default; there is no partially-applied state to undo.
    pub fn publish(&self, bytes: Vec<u8>) -> Result<u64, WireError> {
        self.publish_source(bytes.into())
    }

    /// [`Self::publish`] over any [`SnapshotSource`]: a mapped candidate
    /// is validated through its mapping (one page-cache-warm read instead
    /// of a buffer copy plus a read) and swapped in under the identical
    /// rollback-by-default contract — readers cannot tell the storages
    /// apart.
    ///
    /// # Errors
    ///
    /// As [`Self::publish`].
    pub fn publish_source(&self, source: SnapshotSource) -> Result<u64, WireError> {
        if let Err(e) = FlatScheme::from_bytes(source.bytes()) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            en_obs::counter_add("store.rejected", 1);
            if en_obs::active() {
                en_obs::event(
                    en_obs::Level::Warn,
                    "store.publish_rejected",
                    &[
                        ("epoch_serving", self.current_id().into()),
                        ("error", e.to_string().into()),
                    ],
                );
            }
            return Err(e);
        }
        let mapped = source.is_mapped();
        let mut guard = self.current.write().expect("store lock poisoned");
        let id = guard.id + 1;
        *guard = Arc::new(SnapshotEpoch { id, source });
        drop(guard);
        self.published.fetch_add(1, Ordering::Relaxed);
        en_obs::counter_add("store.published", 1);
        en_obs::gauge_set("store.current_epoch", id);
        if en_obs::active() {
            en_obs::event(
                en_obs::Level::Info,
                "store.epoch_swapped",
                &[("epoch", id.into()), ("mapped", mapped.into())],
            );
        }
        Ok(id)
    }

    /// Pins and returns the current epoch. The returned `Arc` keeps that
    /// whole snapshot generation alive until dropped, so a reader's view
    /// can never change (or be freed) mid-batch.
    pub fn current(&self) -> Arc<SnapshotEpoch> {
        Arc::clone(&self.current.read().expect("store lock poisoned"))
    }

    /// The id of the epoch currently serving.
    pub fn current_id(&self) -> u64 {
        self.current.read().expect("store lock poisoned").id
    }

    /// Rejected publishes so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Publish counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            current_epoch: self.current_id(),
            published: self.published.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
    use en_routing::construction::{build_routing_scheme, ConstructionConfig};

    fn snapshot(seed: u64) -> Vec<u8> {
        let g = erdos_renyi_connected(&GeneratorConfig::new(40, seed).with_weights(1, 9), 0.15);
        let built = build_routing_scheme(&g, &ConstructionConfig::new(2, seed)).unwrap();
        serialize(&built.scheme)
    }

    #[test]
    fn new_rejects_garbage() {
        assert!(SchemeStore::new(vec![0u8; 128]).is_err());
        assert!(SchemeStore::new(Vec::new()).is_err());
    }

    #[test]
    fn publish_swaps_epochs_and_readers_keep_pins() {
        let a = snapshot(1);
        let b = snapshot(2);
        let store = SchemeStore::new(a.clone()).unwrap();
        assert_eq!(store.current_id(), 0);

        let pinned = store.current();
        assert_eq!(pinned.id(), 0);
        assert_eq!(pinned.bytes(), &a[..]);

        let id = store.publish(b.clone()).unwrap();
        assert_eq!(id, 1);
        assert_eq!(store.current_id(), 1);
        // The pinned epoch is untouched by the swap.
        assert_eq!(pinned.id(), 0);
        assert_eq!(pinned.bytes(), &a[..]);
        assert_eq!(store.current().bytes(), &b[..]);
        assert_eq!(
            store.stats(),
            StoreStats {
                current_epoch: 1,
                published: 1,
                rejected: 0
            }
        );
    }

    #[test]
    fn failed_publish_rolls_back_by_default() {
        let a = snapshot(3);
        let store = SchemeStore::new(a.clone()).unwrap();

        // Corrupt candidate: flip one byte mid-buffer.
        let mut bad = a.clone();
        let at = bad.len() / 2;
        bad[at] ^= 0x40;
        assert!(store.publish(bad).is_err());

        // Truncated candidate.
        assert!(store.publish(a[..a.len() - 8].to_vec()).is_err());

        assert_eq!(store.current_id(), 0, "failed publishes must not swap");
        assert_eq!(store.rejected(), 2);
        assert_eq!(store.current().bytes(), &a[..]);
        // And the epoch still opens.
        assert_eq!(store.current().scheme().n(), 40);

        // A good publish still works afterwards.
        assert_eq!(store.publish(snapshot(4)).unwrap(), 1);
    }

    #[test]
    fn mapped_and_owned_sources_serve_identically() {
        let a = snapshot(6);
        let b = snapshot(7);
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp");
        std::fs::create_dir_all(&dir).unwrap();
        let path_a = dir.join("store_epoch_a.enwire");
        let path_b = dir.join("store_epoch_b.enwire");
        std::fs::write(&path_a, &a).unwrap();
        std::fs::write(&path_b, &b).unwrap();

        // Epoch 0 mapped, epoch 1 owned, epoch 2 mapped again: pins,
        // swaps, and rollback are storage-agnostic.
        let mapped_a = crate::mmap::MappedSnapshot::open(&path_a).unwrap();
        let store = SchemeStore::new_source(mapped_a.into()).unwrap();
        let pinned = store.current();
        assert_eq!(pinned.bytes(), &a[..]);
        assert_eq!(
            pinned.source().is_mapped(),
            cfg!(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))
        );
        assert_eq!(pinned.scheme().n(), 40);

        assert_eq!(store.publish(b.clone()).unwrap(), 1);
        let mapped_b = crate::mmap::MappedSnapshot::open(&path_b).unwrap();
        assert_eq!(store.publish_source(mapped_b.into()).unwrap(), 2);
        assert_eq!(store.current().bytes(), &b[..]);

        // A corrupt mapped candidate is rejected like a corrupt owned one.
        let mut junk = a.clone();
        junk[a.len() / 2] ^= 0x20;
        let path_junk = dir.join("store_epoch_junk.enwire");
        std::fs::write(&path_junk, &junk).unwrap();
        let mapped_junk = crate::mmap::MappedSnapshot::open(&path_junk).unwrap();
        assert!(store.publish_source(mapped_junk.into()).is_err());
        assert_eq!(store.current_id(), 2, "failed publish must not swap");
        assert_eq!(store.rejected(), 1);

        // The mapped epoch-0 pin outlived both swaps.
        assert_eq!(pinned.bytes(), &a[..]);
        for p in [path_a, path_b, path_junk] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn epoch_scheme_reopens_cheaply_and_correctly() {
        let a = snapshot(5);
        let store = SchemeStore::new(a.clone()).unwrap();
        let epoch = store.current();
        let direct = FlatScheme::from_bytes(&a).unwrap();
        let reopened = epoch.scheme();
        assert_eq!(reopened.n(), direct.n());
        assert_eq!(reopened.k(), direct.k());
        assert_eq!(reopened.num_clusters(), direct.num_clusters());
        assert_eq!(reopened.manifest(), direct.manifest());
    }
}
