//! Error type for snapshot loading.

use std::error::Error;
use std::fmt;

/// Why a byte buffer was rejected as a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer length is not a multiple of the 8-byte word size.
    Misaligned {
        /// The offending length.
        len: usize,
    },
    /// The buffer is shorter than its header claims (or than a header at all).
    Truncated {
        /// Bytes the buffer should hold.
        expected: usize,
        /// Bytes it actually holds.
        actual: usize,
    },
    /// The first word is not the snapshot magic.
    BadMagic {
        /// The word found instead.
        found: u64,
    },
    /// The format version is not one this reader understands.
    UnsupportedVersion {
        /// The version found.
        found: u64,
    },
    /// A stored checksum does not match the bytes it covers: the buffer was
    /// corrupted in transit (bit rot, torn write, truncated-then-padded).
    ChecksumMismatch {
        /// Which covered range failed (`"header"` or a section name).
        region: &'static str,
        /// The checksum the header claims.
        expected: u64,
        /// The checksum the bytes actually hash to.
        actual: u64,
    },
    /// A structural invariant does not hold (offsets, CSRs, record bounds).
    Corrupt {
        /// Which invariant failed.
        what: &'static str,
    },
    /// The snapshot was built for a different graph size.
    GraphMismatch {
        /// Vertices in the supplied graph.
        graph_n: usize,
        /// Vertices the snapshot was built for.
        snapshot_n: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Misaligned { len } => {
                write!(f, "snapshot length {len} is not a multiple of 8 bytes")
            }
            WireError::Truncated { expected, actual } => {
                write!(
                    f,
                    "snapshot truncated: expected {expected} bytes, got {actual}"
                )
            }
            WireError::BadMagic { found } => {
                write!(f, "not a routing-scheme snapshot (magic {found:#018x})")
            }
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot format version {found}")
            }
            WireError::ChecksumMismatch {
                region,
                expected,
                actual,
            } => write!(
                f,
                "snapshot {region} checksum mismatch: header claims {expected:#018x}, \
                 bytes hash to {actual:#018x}"
            ),
            WireError::Corrupt { what } => write!(f, "corrupt snapshot: {what}"),
            WireError::GraphMismatch {
                graph_n,
                snapshot_n,
            } => write!(
                f,
                "snapshot built for {snapshot_n} vertices, graph has {graph_n}"
            ),
        }
    }
}

impl Error for WireError {}

/// Snapshot corruption surfacing mid-query degrades into a routing error —
/// the single conversion the checked accessor paths lean on (via `?`), so
/// every corruption message carries the same `corrupt snapshot:` prefix.
impl From<WireError> for en_routing::error::RoutingError {
    fn from(e: WireError) -> Self {
        en_routing::error::RoutingError::TreeRouting(format!("corrupt snapshot: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(WireError::Misaligned { len: 7 }.to_string().contains('7'));
        assert!(WireError::Truncated {
            expected: 100,
            actual: 10
        }
        .to_string()
        .contains("100"));
        assert!(WireError::BadMagic { found: 0 }
            .to_string()
            .contains("magic"));
        assert!(WireError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains('9'));
        assert!(WireError::ChecksumMismatch {
            region: "label_pool",
            expected: 1,
            actual: 2
        }
        .to_string()
        .contains("label_pool"));
        assert!(WireError::Corrupt { what: "x" }.to_string().contains('x'));
        assert!(WireError::GraphMismatch {
            graph_n: 3,
            snapshot_n: 4
        }
        .to_string()
        .contains('4'));
    }
}
