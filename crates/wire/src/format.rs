//! The on-the-wire layout shared by the serializer and the zero-copy reader.
//!
//! A snapshot is a single relocatable little-endian byte buffer made of
//! 8-byte words; every column starts at a word boundary, so the whole buffer
//! is 8-byte aligned internally and can be memory-mapped or embedded at any
//! aligned offset. Layout, in word offsets:
//!
//! ```text
//! header (HEADER_WORDS words)
//!   0  magic "ENWIRE01"
//!   1  format version (3)
//!   2  n                      (host vertices)
//!   3  k                      (levels)
//!   4  number of clusters
//!   5  total buffer size in words (truncation check)
//!   6  total cluster members
//!   7  max routing-table size in words   (Table-1 accounting, from the
//!   8  total routing-table words          in-memory scheme's own word
//!   9  max label size in words            counters)
//!   10 total label words
//!   11..=23  the 13 section offsets below, in words from buffer start
//!            (together with word 5 this is the byte-budget manifest:
//!            every section's word span is pinned by the header before a
//!            single section word is trusted)
//!   24..=36  per-section checksums: word-wise FNV-1a over each section's
//!            words (see the `checksum` module)
//!   37..=46  reserved (0)
//!   47 header checksum: word-wise FNV-1a over header words 0..=46 — the
//!      last header word, so every other header bit is covered
//! sections, contiguous and in this order
//!   CENTER_INDEX        n words: vertex -> cluster id, NULL if not a centre
//!   CLUSTERS            4 words per cluster: centre, level, members start,
//!                       member count (members start indexes MEMBER_IDS)
//!   MEMBER_IDS          member vertex ids, ascending within each cluster
//!   MEMBER_TABLE_OFFS   per member: word offset of its table record,
//!                       relative to TABLE_POOL
//!   TABLE_POOL          variable-length table records (layout below)
//!   VTREES_OFF          n+1 CSR offsets into VTREES_VALS
//!   VTREES_VALS         per vertex: ascending centre ids of its trees
//!   MEMBER_SLOTS        aligned with VTREES_VALS: for the vertex's i-th
//!                       tree, its rank (slot) in that cluster's member
//!                       column — the v3 rank index that turns the hot-path
//!                       member binary search into one word read
//!   OWN_OFF             n+1 CSR offsets into OWN_ENTRIES (in entries)
//!   OWN_ENTRIES         2 words per entry: member vertex (ascending per
//!                       centre), label record offset into LABEL_POOL
//!   LABEL_ENTRIES_OFF   n+1 CSR offsets into LABEL_ENTRIES (in entries)
//!   LABEL_ENTRIES       4 words per entry: level, pivot, distance,
//!                       label record offset into LABEL_POOL or NULL
//!   LABEL_POOL          variable-length tree-label records (layout below)
//! ```
//!
//! **Table record** (vertex and tree root are implicit — the member column
//! and the cluster centre): subtree root, parent or NULL, heavy child or
//! NULL, `a_local`, `b_local`, `a_global`, `b_global`, global-heavy child
//! subtree or NULL; when present, the global-heavy entry continues with
//! portal, portal-label DFS time, exception count, and that many `(x, x')`
//! word pairs.
//!
//! **Label record**: vertex, subtree root, `a_global`, local DFS time, local
//! exception count, the `(x, x')` pairs, global exception count, then per
//! global exception: parent subtree, child subtree, portal, portal-label DFS
//! time, portal exception count, and its `(x, x')` pairs.
//!
//! Tree labels referenced from more than one place (a level-0 member's label
//! appears in its own node label *and* in the centre's own-cluster table —
//! the same `Arc` after the assemble-path pooling) are written to LABEL_POOL
//! once and shared by offset.

/// First header word: `"ENWIRE01"` as a little-endian `u64`.
pub const MAGIC: u64 = u64::from_le_bytes(*b"ENWIRE01");

/// Current format version. Version 2 added the integrity layer: per-section
/// checksums and the trailing header checksum (readers reject version-1
/// snapshots, which carried no checksums at all). Version 3 added the
/// [`Section::MemberSlots`] rank index (vertex → local member slot per
/// tree), growing the header to 48 words; v2 snapshots are rejected with a
/// structured unsupported-version error, never a checksum mismatch.
pub const VERSION: u64 = 3;

/// Sentinel standing for "absent" (`None` parents, missing global-heavy
/// entries, label entries whose vertex is outside the pivot's tree).
pub const NULL: u64 = u64::MAX;

/// Number of header words before the first section (40 in v2, 48 since v3 —
/// one more section offset and checksum, re-padded to a power-of-two size).
pub const HEADER_WORDS: usize = 48;

/// Word index of `n` in the header.
pub const H_N: usize = 2;
/// Word index of `k`.
pub const H_K: usize = 3;
/// Word index of the cluster count.
pub const H_NUM_CLUSTERS: usize = 4;
/// Word index of the total buffer size in words.
pub const H_TOTAL_WORDS: usize = 5;
/// Word index of the total member count.
pub const H_TOTAL_MEMBERS: usize = 6;
/// Word index of the maximum routing-table size in words.
pub const H_MAX_TABLE_WORDS: usize = 7;
/// Word index of the summed routing-table sizes in words.
pub const H_TOTAL_TABLE_WORDS: usize = 8;
/// Word index of the maximum label size in words.
pub const H_MAX_LABEL_WORDS: usize = 9;
/// Word index of the summed label sizes in words.
pub const H_TOTAL_LABEL_WORDS: usize = 10;
/// Word index of the first section offset.
pub const H_SECTIONS: usize = 11;
/// Word index of the first per-section checksum.
pub const H_SECTION_SUMS: usize = 24;
/// Word index of the header checksum (the last header word, so it covers
/// every other header bit).
pub const H_HEADER_SUM: usize = HEADER_WORDS - 1;

/// Number of sections.
pub const NUM_SECTIONS: usize = 13;

/// Section ids, in buffer order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Section {
    /// Vertex → cluster id (or [`NULL`]).
    CenterIndex = 0,
    /// Fixed 4-word cluster descriptors.
    Clusters = 1,
    /// Concatenated per-cluster member vertex ids.
    MemberIds = 2,
    /// Per-member table-record offsets (relative to [`Section::TablePool`]).
    MemberTableOffs = 3,
    /// Variable-length table records.
    TablePool = 4,
    /// CSR offsets of [`Section::VtreesVals`].
    VtreesOff = 5,
    /// Per-vertex ascending centre ids.
    VtreesVals = 6,
    /// The v3 rank index, aligned word-for-word with
    /// [`Section::VtreesVals`]: the vertex's slot in that cluster's member
    /// column.
    MemberSlots = 7,
    /// CSR offsets of [`Section::OwnEntries`] (counted in entries).
    OwnOff = 8,
    /// Own-cluster label entries (2 words each).
    OwnEntries = 9,
    /// CSR offsets of [`Section::LabelEntries`] (counted in entries).
    LabelEntriesOff = 10,
    /// Node-label entries (4 words each).
    LabelEntries = 11,
    /// Variable-length tree-label records.
    LabelPool = 12,
}

impl Section {
    /// All sections, in buffer order.
    pub const ALL: [Section; NUM_SECTIONS] = [
        Section::CenterIndex,
        Section::Clusters,
        Section::MemberIds,
        Section::MemberTableOffs,
        Section::TablePool,
        Section::VtreesOff,
        Section::VtreesVals,
        Section::MemberSlots,
        Section::OwnOff,
        Section::OwnEntries,
        Section::LabelEntriesOff,
        Section::LabelEntries,
        Section::LabelPool,
    ];

    /// Stable lower-case name, for error messages and fault reports.
    pub fn name(self) -> &'static str {
        match self {
            Section::CenterIndex => "center_index",
            Section::Clusters => "clusters",
            Section::MemberIds => "member_ids",
            Section::MemberTableOffs => "member_table_offs",
            Section::TablePool => "table_pool",
            Section::VtreesOff => "vtrees_off",
            Section::VtreesVals => "vtrees_vals",
            Section::MemberSlots => "member_slots",
            Section::OwnOff => "own_off",
            Section::OwnEntries => "own_entries",
            Section::LabelEntriesOff => "label_entries_off",
            Section::LabelEntries => "label_entries",
            Section::LabelPool => "label_pool",
        }
    }
}

/// Words per [`Section::Clusters`] record.
pub const CLUSTER_RECORD_WORDS: usize = 4;
/// Words per [`Section::OwnEntries`] record.
pub const OWN_ENTRY_WORDS: usize = 2;
/// Words per [`Section::LabelEntries`] record.
pub const LABEL_ENTRY_WORDS: usize = 4;
/// Fixed words of a table record before the optional global-heavy tail.
pub const TABLE_FIXED_WORDS: usize = 8;

/// A borrowed little-endian word array over a byte buffer.
///
/// Every read decodes one `u64` with `from_le_bytes` — no allocation, no
/// alignment requirement on the underlying bytes, and the compiler lowers it
/// to a single unaligned load.
#[derive(Debug, Clone, Copy)]
pub struct Words<'a> {
    bytes: &'a [u8],
}

impl<'a> Words<'a> {
    /// Wraps a byte buffer. The length must be a multiple of 8 (checked by
    /// the snapshot validator before any `Words` is handed out).
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        debug_assert_eq!(bytes.len() % 8, 0);
        Words { bytes }
    }

    /// Number of whole words.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    /// Whether the buffer holds no words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reads word `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds — the snapshot validator guarantees
    /// in-bounds access for every offset it accepted. (Accessors that may
    /// run over *unvalidated* bytes use [`Self::try_get`] instead.)
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        let b = &self.bytes[i * 8..i * 8 + 8];
        u64::from_le_bytes(b.try_into().expect("8-byte slice"))
    }

    /// Reads word `i`, or `None` when `i` is out of bounds — the checked
    /// read the hardened accessor paths build on.
    #[inline]
    pub fn try_get(&self, i: usize) -> Option<u64> {
        let at = i.checked_mul(8)?;
        let b = self.bytes.get(at..at.checked_add(8)?)?;
        Some(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// The raw underlying bytes.
    #[inline]
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }
}

/// Appends one word to a byte buffer being serialized.
#[inline]
pub(crate) fn push_word(out: &mut Vec<u8>, w: u64) {
    out.extend_from_slice(&w.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_roundtrip() {
        let mut buf = Vec::new();
        for w in [0u64, 1, MAGIC, NULL, 0x0123_4567_89AB_CDEF] {
            push_word(&mut buf, w);
        }
        let words = Words::new(&buf);
        assert_eq!(words.len(), 5);
        assert!(!words.is_empty());
        assert_eq!(words.get(2), MAGIC);
        assert_eq!(words.get(3), NULL);
        assert_eq!(words.get(4), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn magic_is_ascii_tag() {
        assert_eq!(&MAGIC.to_le_bytes(), b"ENWIRE01");
    }

    #[test]
    fn try_get_checks_bounds() {
        let mut buf = Vec::new();
        push_word(&mut buf, 11);
        push_word(&mut buf, 22);
        let words = Words::new(&buf);
        assert_eq!(words.try_get(0), Some(11));
        assert_eq!(words.try_get(1), Some(22));
        assert_eq!(words.try_get(2), None);
        assert_eq!(words.try_get(usize::MAX), None);
        assert_eq!(words.try_get(usize::MAX / 8 + 1), None);
    }

    #[test]
    fn section_names_are_distinct_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        for (i, s) in Section::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i, "Section::ALL must be in buffer order");
            assert!(seen.insert(s.name()), "duplicate section name {}", s.name());
        }
    }

    #[test]
    fn header_checksum_is_the_last_header_word() {
        assert_eq!(H_HEADER_SUM, HEADER_WORDS - 1);
        // The section checksums (and any reserved padding) must fit strictly
        // before the header checksum word.
        const { assert!(H_SECTION_SUMS + NUM_SECTIONS <= H_HEADER_SUM) }
    }
}
