//! Serving subsystem: flat zero-copy routing-scheme snapshots and a
//! multi-threaded batched query engine.
//!
//! The paper's whole point is that *after* preprocessing, routing decisions
//! are made from compact local tables and `o(n)`-size labels (Table 1,
//! Theorem 7, the `4k−5` refinement of \[TZ01\]). This crate gives that
//! serving side a production shape:
//!
//! * [`snapshot::serialize`] flattens a complete
//!   [`RoutingScheme`](en_routing::scheme::RoutingScheme) — per-vertex
//!   tables, node labels, pivots, and the `4k−5` own-cluster labels — into
//!   one relocatable little-endian buffer of CSR-style columns with pooled
//!   variable-length records (shared tree labels are written once), plus a
//!   versioned header carrying `n`, `k`, and the Table-1 word-size stats.
//! * [`FlatScheme::from_bytes`] validates that buffer **once** and then
//!   serves every access zero-copy: the views it hands out are `Copy`
//!   slice-plus-offset handles, no per-label or per-table allocation. Since
//!   format v3 the snapshot also carries a member-slot rank index (one word
//!   per tree incidence, checksummed like every section), so resolving a
//!   vertex's table inside a cluster is a single indexed read instead of a
//!   binary search over the member column.
//! * [`QueryEngine`] answers `find_tree` / `route` batches directly off the
//!   flat columns, sharding batches over `std::thread::scope` workers.
//!   There is no forwarding loop in this crate: the fast and the checked
//!   paths both instantiate the storage-generic kernel in
//!   [`en_routing::access`] — the same `Find-tree` + hop loop the in-memory
//!   scheme runs — so outcomes are bit-identical by construction (and
//!   property-proven in `tests/property_wire_roundtrip.rs`).
//! * [`mmap::MappedSnapshot`] opens a committed snapshot file straight out
//!   of the kernel page cache — an O(header) length check, then `mmap` —
//!   instead of copying hundreds of megabytes per open, with a
//!   read-into-heap fallback for non-Linux targets and shape-invalid files
//!   (see that module's SIGBUS-safety argument); [`SnapshotSource`] lets
//!   [`SchemeStore`] epochs serve owned and mapped buffers alike.
//! * [`en_routing::access::RouteCache`] (sized per engine via
//!   [`CacheConfig`]) memoises hot `Find-tree` decisions in front of the
//!   kernel — the win the Zipf workloads model — with hit/miss/eviction
//!   counters in [`BatchStats`]; cached outcomes are bit-identical by
//!   construction because the cache stores decisions, not answers.
//! * [`workload::generate_pairs`] produces uniform, Zipf-hotspot, and
//!   near-vs-far query workloads for the benches.
//!
//! # Fault tolerance
//!
//! Serving is hardened end to end (see `tests/integration_fault_tolerance.rs`
//! and the `fault_drill` harness bin):
//!
//! * **Snapshot integrity** — the v3 header carries a per-section FNV-1a
//!   checksum plus a whole-header checksum ([`checksum`]);
//!   [`FlatScheme::from_bytes`] verifies them once at load, so corruption is
//!   a structured [`WireError::ChecksumMismatch`], never a wrong answer, and
//!   the per-query hot path stays checksum-free.
//! * **Epoch hot swap** — [`SchemeStore`] validates candidate snapshots
//!   *before* atomically swapping them in; a failed publish leaves the
//!   current epoch serving (rollback by default) and readers pin whole
//!   epochs, so a swap never tears a batch.
//! * **Panic-isolated shards** — [`QueryEngine::route_batch`] runs each
//!   shard under `catch_unwind`; a panicking shard is retried one query at a
//!   time through the checked accessors ([`QueryEngine::route_checked`]), so
//!   one corrupt record degrades one query, and [`BatchStats`] /
//!   [`ShardStats`] report exactly what happened.
//! * **Deterministic fault injection** — [`faultsim`] builds seeded fault
//!   plans (boundary truncations, bit flips, offset scrambles) and drills
//!   the whole stack, asserting error-not-crash everywhere.
//!
//! # Example
//!
//! ```
//! use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
//! use en_routing::construction::{build_routing_scheme, ConstructionConfig};
//! use en_wire::{FlatScheme, QueryEngine};
//!
//! let g = erdos_renyi_connected(&GeneratorConfig::new(64, 5), 0.1);
//! let built = build_routing_scheme(&g, &ConstructionConfig::new(2, 42)).unwrap();
//!
//! // Snapshot the scheme, then serve it zero-copy from the bytes.
//! let bytes = en_wire::snapshot::serialize(&built.scheme);
//! let flat = FlatScheme::from_bytes(&bytes).expect("snapshot validates");
//! let engine = QueryEngine::new(flat, &g).expect("sizes match");
//!
//! let outcome = engine.route(3, 60).expect("delivery succeeds");
//! let reference = built.scheme.route(&g, 3, 60).expect("delivery succeeds");
//! assert_eq!(outcome.path, reference.path);
//! ```

// `deny`, not `forbid`: the `mmap` module carries the crate's single
// scoped `allow` for its raw-syscall wrapper; every other module is
// checked Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod engine;
pub mod error;
pub mod faultsim;
pub mod flat;
pub mod format;
pub mod mmap;
pub mod snapshot;
pub mod store;
pub mod workload;

pub use engine::{BatchOutcome, BatchStats, CacheConfig, QueryEngine, ShardStats};
pub use error::WireError;
pub use flat::{
    FlatCluster, FlatLabelEntry, FlatScheme, FlatTreeLabel, FlatTreeTable, FlatU64s, SectionSpan,
    SnapshotManifest, ValidateStats,
};
pub use mmap::MappedSnapshot;
pub use snapshot::serialize;
pub use store::{SchemeStore, SnapshotEpoch, SnapshotSource, StoreStats};
pub use workload::{generate_pairs, PairWorkload};
