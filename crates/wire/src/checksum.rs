//! In-crate snapshot checksums (the environment is offline — no new deps).
//!
//! The snapshot integrity layer uses a word-wise FNV-1a variant: the
//! classic 64-bit FNV-1a fold, but absorbing one little-endian `u64` per
//! step instead of one byte. Sections are 8-byte aligned words by
//! construction, so the word-wise fold checksums a 300 MB snapshot with an
//! eighth of the multiplies of byte-wise FNV while keeping its avalanche on
//! single-bit flips (the whole point here: any flipped bit anywhere in a
//! covered range changes the digest).
//!
//! The digest is *not* cryptographic — it defends against truncation, bit
//! rot, and torn transfers, not an adversary crafting collisions.

/// The 64-bit FNV offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The 64-bit FNV prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Word-wise FNV-1a over a `u64` slice.
#[inline]
pub fn fnv1a_words(words: &[u64]) -> u64 {
    words
        .iter()
        .fold(FNV_OFFSET, |h, &w| (h ^ w).wrapping_mul(FNV_PRIME))
}

/// Word-wise FNV-1a over a byte buffer, decoding 8-byte little-endian
/// chunks; a trailing partial chunk (never produced by the serializer, but
/// tolerated) is zero-padded.
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(FNV_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut pad = [0u8; 8];
        pad[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(pad)).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_and_bytes_agree_on_aligned_input() {
        let words = [0u64, 1, u64::MAX, 0xdead_beef, 42];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(fnv1a_words(&words), fnv1a_bytes(&bytes));
    }

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(fnv1a_words(&[]), FNV_OFFSET);
        assert_eq!(fnv1a_bytes(&[]), FNV_OFFSET);
    }

    #[test]
    fn every_single_bit_flip_changes_the_digest() {
        let mut bytes: Vec<u8> = (0u8..64).collect();
        let clean = fnv1a_bytes(&bytes);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                bytes[byte] ^= 1 << bit;
                assert_ne!(fnv1a_bytes(&bytes), clean, "flip {byte}:{bit} undetected");
                bytes[byte] ^= 1 << bit;
            }
        }
        assert_eq!(fnv1a_bytes(&bytes), clean, "flips must have been restored");
    }

    #[test]
    fn digest_is_position_sensitive() {
        assert_ne!(fnv1a_words(&[1, 2]), fnv1a_words(&[2, 1]));
        assert_ne!(fnv1a_words(&[0, 0]), fnv1a_words(&[0]));
    }

    #[test]
    fn trailing_partial_chunk_is_absorbed() {
        let full = fnv1a_bytes(&[7u8; 8]);
        let partial = fnv1a_bytes(&[7u8; 5]);
        assert_ne!(full, partial);
        assert_ne!(partial, FNV_OFFSET);
    }
}
