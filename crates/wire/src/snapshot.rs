//! Serializing a [`RoutingScheme`] into the flat snapshot buffer.

use std::collections::HashMap;
use std::sync::Arc;

use en_routing::scheme::RoutingScheme;
use en_tree_routing::{TreeLabel, TreeTable};

use crate::checksum::{fnv1a_bytes, fnv1a_words};
use crate::format::{
    push_word, Section, CLUSTER_RECORD_WORDS, HEADER_WORDS, H_HEADER_SUM, H_SECTION_SUMS,
    LABEL_ENTRY_WORDS, MAGIC, NULL, NUM_SECTIONS, OWN_ENTRY_WORDS, VERSION,
};

fn opt(v: Option<usize>) -> u64 {
    v.map_or(NULL, |x| x as u64)
}

/// Appends one table record to the table pool, returning its pool-relative
/// word offset. The vertex and tree root are implicit (member column /
/// cluster centre).
fn write_table(pool: &mut Vec<u64>, t: &TreeTable) -> u64 {
    let off = pool.len() as u64;
    pool.extend_from_slice(&[
        t.subtree_root as u64,
        opt(t.parent),
        opt(t.heavy_child),
        t.a_local,
        t.b_local,
        t.a_global,
        t.b_global,
        opt(t.global_heavy.as_ref().map(|gh| gh.child_subtree)),
    ]);
    if let Some(gh) = &t.global_heavy {
        pool.extend_from_slice(&[
            gh.portal as u64,
            gh.portal_label.a,
            gh.portal_label.exceptions.len() as u64,
        ]);
        for &(x, c) in &gh.portal_label.exceptions {
            pool.extend_from_slice(&[x as u64, c as u64]);
        }
    }
    off
}

/// Appends one tree-label record to the label pool, returning its
/// pool-relative word offset.
fn write_label(pool: &mut Vec<u64>, l: &TreeLabel) -> u64 {
    let off = pool.len() as u64;
    pool.extend_from_slice(&[
        l.vertex as u64,
        l.subtree_root as u64,
        l.a_global,
        l.local.a,
        l.local.exceptions.len() as u64,
    ]);
    for &(x, c) in &l.local.exceptions {
        pool.extend_from_slice(&[x as u64, c as u64]);
    }
    pool.push(l.global_exceptions.len() as u64);
    for e in &l.global_exceptions {
        pool.extend_from_slice(&[
            e.parent_subtree as u64,
            e.child_subtree as u64,
            e.portal as u64,
            e.portal_label.a,
            e.portal_label.exceptions.len() as u64,
        ]);
        for &(x, c) in &e.portal_label.exceptions {
            pool.extend_from_slice(&[x as u64, c as u64]);
        }
    }
    off
}

/// Interns `label` into the pool, writing it only on first sight.
///
/// Labels are `Arc`-pooled by the assemble path — the same allocation backs
/// a member's node-label entry and the centre's own-cluster table — so
/// interning by allocation identity writes each shared label once and the
/// snapshot inherits the in-memory sharing.
fn intern_label(
    pool: &mut Vec<u64>,
    seen: &mut HashMap<*const TreeLabel, u64>,
    label: &Arc<TreeLabel>,
) -> u64 {
    *seen
        .entry(Arc::as_ptr(label))
        .or_insert_with(|| write_label(pool, label))
}

/// Serializes `scheme` into a self-contained snapshot buffer.
///
/// The result is little-endian, internally 8-byte aligned, and relocatable:
/// [`FlatScheme::from_bytes`](crate::FlatScheme::from_bytes) validates it
/// once and then serves every query by borrowing directly from the buffer.
pub fn serialize(scheme: &RoutingScheme) -> Vec<u8> {
    let n = scheme.n();
    let k = scheme.k();
    let centers = scheme.centers();

    // --- Cluster columns -----------------------------------------------------
    let mut center_index = vec![NULL; n];
    let mut clusters = Vec::with_capacity(centers.len() * CLUSTER_RECORD_WORDS);
    let mut member_ids: Vec<u64> = Vec::new();
    let mut member_table_offs: Vec<u64> = Vec::new();
    let mut table_pool: Vec<u64> = Vec::new();
    // Per-vertex (centre, slot) pairs harvested during the cluster walk —
    // the raw material of the v3 rank index emitted below.
    let mut slots_by_vertex: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    for (ci, &center) in centers.iter().enumerate() {
        center_index[center] = ci as u64;
        let ts = scheme
            .tree_scheme(center)
            .expect("centers() lists only centres with a scheme");
        let level = scheme.center_level(center).unwrap_or(0);
        let start = member_ids.len();
        for (i, v) in ts.members().enumerate() {
            member_ids.push(v as u64);
            slots_by_vertex[v].push((center as u64, i as u64));
            let table = ts.table_by_index(i).expect("tables align with members");
            member_table_offs.push(write_table(&mut table_pool, table));
        }
        clusters.extend_from_slice(&[
            center as u64,
            level as u64,
            start as u64,
            (member_ids.len() - start) as u64,
        ]);
    }
    for s in &mut slots_by_vertex {
        s.sort_unstable();
    }

    // --- Per-vertex columns --------------------------------------------------
    let mut label_pool: Vec<u64> = Vec::new();
    let mut seen: HashMap<*const TreeLabel, u64> = HashMap::new();

    let mut vtrees_off: Vec<u64> = Vec::with_capacity(n + 1);
    let mut vtrees_vals: Vec<u64> = Vec::new();
    let mut member_slots: Vec<u64> = Vec::new();
    let mut label_entries_off: Vec<u64> = Vec::with_capacity(n + 1);
    let mut label_entries: Vec<u64> = Vec::new();
    vtrees_off.push(0);
    label_entries_off.push(0);
    for v in 0..n {
        let table = scheme.table(v);
        vtrees_vals.extend(table.trees.iter().map(|&c| c as u64));
        // The rank index stays word-aligned with VTREES_VALS: for the i-th
        // tree entry, the vertex's slot in that cluster's member column.
        let slots = &slots_by_vertex[v];
        for &c in &table.trees {
            let at = slots
                .binary_search_by_key(&(c as u64), |&(center, _)| center)
                .expect("every tree of a vertex lists it as a cluster member");
            member_slots.push(slots[at].1);
        }
        vtrees_off.push(vtrees_vals.len() as u64);
        for entry in &scheme.label(v).entries {
            let label_off = entry
                .tree_label
                .as_ref()
                .map_or(NULL, |l| intern_label(&mut label_pool, &mut seen, l));
            label_entries.extend_from_slice(&[
                entry.level as u64,
                entry.pivot as u64,
                entry.dist,
                label_off,
            ]);
        }
        label_entries_off.push((label_entries.len() / LABEL_ENTRY_WORDS) as u64);
    }

    let mut own_off: Vec<u64> = Vec::with_capacity(n + 1);
    let mut own_entries: Vec<u64> = Vec::new();
    own_off.push(0);
    for v in 0..n {
        let own = &scheme.table(v).own_cluster_labels;
        let mut members: Vec<usize> = own.keys().copied().collect();
        members.sort_unstable();
        for m in members {
            let label_off = intern_label(&mut label_pool, &mut seen, &own[&m]);
            own_entries.extend_from_slice(&[m as u64, label_off]);
        }
        own_off.push((own_entries.len() / OWN_ENTRY_WORDS) as u64);
    }

    // --- Header + emission ---------------------------------------------------
    let sections: [&[u64]; NUM_SECTIONS] = [
        &center_index,
        &clusters,
        &member_ids,
        &member_table_offs,
        &table_pool,
        &vtrees_off,
        &vtrees_vals,
        &member_slots,
        &own_off,
        &own_entries,
        &label_entries_off,
        &label_entries,
        &label_pool,
    ];
    let total_words = HEADER_WORDS + sections.iter().map(|s| s.len()).sum::<usize>();

    let total_table_words: usize = (0..n).map(|v| scheme.table_words(v)).sum();
    let total_label_words: usize = (0..n).map(|v| scheme.label_words(v)).sum();

    let mut out = Vec::with_capacity(total_words * 8);
    push_word(&mut out, MAGIC);
    push_word(&mut out, VERSION);
    push_word(&mut out, n as u64);
    push_word(&mut out, k as u64);
    push_word(&mut out, centers.len() as u64);
    push_word(&mut out, total_words as u64);
    push_word(&mut out, member_ids.len() as u64);
    push_word(&mut out, scheme.max_table_words() as u64);
    push_word(&mut out, total_table_words as u64);
    push_word(&mut out, scheme.max_label_words() as u64);
    push_word(&mut out, total_label_words as u64);
    let mut off = HEADER_WORDS as u64;
    for s in &sections {
        push_word(&mut out, off);
        off += s.len() as u64;
    }
    debug_assert_eq!(out.len(), H_SECTION_SUMS * 8);
    // The integrity layer: one checksum per section, then — as the very
    // last header word — a checksum over every other header byte, so no
    // header or section bit can flip undetected.
    for s in &sections {
        push_word(&mut out, fnv1a_words(s));
    }
    while out.len() < H_HEADER_SUM * 8 {
        push_word(&mut out, 0); // reserved
    }
    let header_sum = fnv1a_bytes(&out);
    push_word(&mut out, header_sum);
    debug_assert_eq!(out.len(), HEADER_WORDS * 8);
    for s in &sections {
        for &w in *s {
            push_word(&mut out, w);
        }
    }
    debug_assert_eq!(out.len(), total_words * 8);
    debug_assert_eq!(Section::LabelPool as usize, NUM_SECTIONS - 1);
    out
}
