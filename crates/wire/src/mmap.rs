//! Page-cache-backed snapshot buffers: open a snapshot file at page-fault
//! speed instead of copying it.
//!
//! A committed snapshot of real size (hundreds of megabytes at `n = 10⁴`)
//! costs a full buffer copy per open when read the ordinary way. This
//! module maps the file instead: [`MappedSnapshot::open`] hands out a
//! read-only, `MAP_PRIVATE` view whose pages are faulted in (and shared
//! with every other open of the same file) by the kernel page cache, so an
//! open costs O(header) work regardless of snapshot size.
//!
//! # SIGBUS safety
//!
//! Reading a mapped page past the end of the backing file raises `SIGBUS`,
//! which no in-process validation can catch. The open path therefore
//! orders its work so that can never happen to a well-behaved caller:
//!
//! 1. **Validate the length first.** The file's size is checked against
//!    the O(header) shape rules (8-byte multiple, at least a header,
//!    `total_words · 8 == file length`) using an ordinary `read` of the
//!    header prefix — *before any mapping syscall*.
//! 2. **Then map.** Only a file whose header agrees with its physical
//!    length is mapped, so every in-bounds word of the mapping is backed
//!    by real file bytes. A truncated or misaligned file is never mapped
//!    at all — it falls back to a heap read, where
//!    [`FlatScheme::from_bytes`](crate::FlatScheme::from_bytes) reports
//!    the structured error.
//! 3. **Then checksum.** Callers run the usual full validation over
//!    [`MappedSnapshot::bytes`]; corruption *within* a correctly-sized
//!    file is caught exactly as for owned buffers.
//!
//! The residual hazard — another process truncating the file *after* the
//! length check — is outside any userspace reader's control; snapshot
//! files are written once and replaced whole (publish-by-rename), never
//! shrunk in place.
//!
//! The raw-syscall wrapper below exists because the build environment is
//! offline: no `libc`, no `memmap2`. It is gated to Linux on x86-64 /
//! aarch64; every other target (and any mapping failure) takes the
//! read-into-heap fallback, which behaves identically apart from the copy.

// The one place in the crate where `unsafe` is permitted (the crate-level
// lint is `deny`, not `forbid`, exactly for this module); everything else
// stays checked Rust.
#![allow(unsafe_code)]

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::ops::Deref;
use std::path::Path;

use crate::format::{HEADER_WORDS, H_TOTAL_WORDS, MAGIC, VERSION};

/// Linux raw syscalls for the three mapping operations, gated to the
/// architectures whose syscall ABI is spelled out here.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    pub const PROT_READ: usize = 1;
    pub const MAP_PRIVATE: usize = 2;
    pub const MADV_WILLNEED: usize = 3;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const MMAP: usize = 9;
        pub const MUNMAP: usize = 11;
        pub const MADVISE: usize = 28;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const MMAP: usize = 222;
        pub const MUNMAP: usize = 215;
        pub const MADVISE: usize = 233;
    }

    /// One six-argument Linux syscall, returning the raw (negative-errno)
    /// result.
    ///
    /// # Safety
    ///
    /// The caller must uphold the invoked syscall's own contract; the
    /// wrapper only encodes the calling convention.
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        #[cfg(target_arch = "aarch64")]
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            in("x8") nr,
            options(nostack)
        );
        ret
    }

    /// Whether a raw syscall return encodes `-errno`.
    fn is_err(ret: isize) -> bool {
        // Linux returns -4095..=-1 for errors; everything else is a result.
        (-4095..0).contains(&(ret as i64 as isize))
    }

    /// Maps `len` bytes of `fd` read-only and private, returning the
    /// page-aligned base address, or `None` when the kernel refuses.
    ///
    /// # Safety
    ///
    /// `fd` must be an open, readable file descriptor and `len` must not
    /// exceed the file's length (the module's pre-map length check).
    pub unsafe fn mmap_readonly(fd: i32, len: usize) -> Option<*const u8> {
        let ret = syscall6(nr::MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0);
        if is_err(ret) {
            return None;
        }
        Some(ret as *const u8)
    }

    /// Unmaps a region previously returned by [`mmap_readonly`].
    ///
    /// # Safety
    ///
    /// `ptr`/`len` must name exactly one live mapping, never used again.
    pub unsafe fn munmap(ptr: *const u8, len: usize) {
        let _ = syscall6(nr::MUNMAP, ptr as usize, len, 0, 0, 0, 0);
    }

    /// Advises the kernel the whole mapping will be read soon
    /// (best-effort; failure is ignored).
    ///
    /// # Safety
    ///
    /// `ptr`/`len` must name a live mapping.
    pub unsafe fn madvise_willneed(ptr: *const u8, len: usize) {
        let _ = syscall6(nr::MADVISE, ptr as usize, len, MADV_WILLNEED, 0, 0, 0);
    }
}

/// How the snapshot bytes are held.
#[derive(Debug)]
enum Buffer {
    /// A live read-only file mapping (Linux fast path).
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mapped {
        ptr: *const u8,
        /// Mapping length in bytes (a whole number of words by the pre-map
        /// shape check).
        len: usize,
    },
    /// The read-into-heap fallback: the file bytes copied into an
    /// 8-byte-aligned word buffer. `byte_len` may be shorter than the word
    /// buffer's span when the file length was not word-aligned (the
    /// trailing partial word is zero padding that [`MappedSnapshot::bytes`]
    /// never exposes).
    Owned { words: Vec<u64>, byte_len: usize },
}

/// A snapshot buffer opened from a file: memory-mapped on the Linux fast
/// path, read into an aligned heap buffer everywhere else (and for any
/// file failing the pre-map shape check — see the module docs for why
/// shape-invalid files must never be mapped).
///
/// Derefs to the buffer's whole 8-byte words; [`Self::bytes`] is the exact
/// byte image of the file and is what feeds
/// [`FlatScheme::from_bytes`](crate::FlatScheme::from_bytes).
#[derive(Debug)]
pub struct MappedSnapshot {
    buf: Buffer,
}

// SAFETY: the mapped variant is a private, read-only mapping that only this
// value can unmap, so sharing references (or moving the handle) across
// threads is no different from an owned immutable buffer.
unsafe impl Send for MappedSnapshot {}
// SAFETY: as above — the mapping is immutable for the handle's lifetime.
unsafe impl Sync for MappedSnapshot {}

impl MappedSnapshot {
    /// Opens `path`, mapping it when the O(header) shape check passes and
    /// falling back to a heap read otherwise (see the module docs).
    ///
    /// # Errors
    ///
    /// I/O errors only (open/stat/read failures). A file with *snapshot*
    /// problems — truncation, bad magic, corruption — still opens (via the
    /// heap fallback when its length is shape-invalid) so that validation
    /// over [`Self::bytes`] reports the structured [`crate::WireError`].
    pub fn open(path: &Path) -> io::Result<MappedSnapshot> {
        // Timed only when a recorder is installed; the histogram separates
        // mapped opens from heap-fallback opens so a fleet silently losing
        // its page-cache serving shows up as a counter shift.
        let t0 = en_obs::active().then(std::time::Instant::now);
        let snapshot = Self::open_untimed(path)?;
        if let Some(t0) = t0 {
            let dur_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            if snapshot.is_mapped() {
                en_obs::histogram_record("wire.mmap_open_ns", dur_ns);
                en_obs::counter_add("wire.open.mapped", 1);
            } else {
                en_obs::histogram_record("wire.fallback_open_ns", dur_ns);
                en_obs::counter_add("wire.open.fallback", 1);
            }
        }
        Ok(snapshot)
    }

    fn open_untimed(path: &Path) -> io::Result<MappedSnapshot> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if Self::shape_ok(&mut file, len)? {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            {
                use std::os::fd::AsRawFd;
                let len = len as usize;
                // SAFETY: `file` is open and readable, and `len` is its
                // exact current length per the shape check above.
                if let Some(ptr) = unsafe { sys::mmap_readonly(file.as_raw_fd(), len) } {
                    // SAFETY: `ptr`/`len` is the mapping just created.
                    unsafe { sys::madvise_willneed(ptr, len) };
                    return Ok(MappedSnapshot {
                        buf: Buffer::Mapped { ptr, len },
                    });
                }
                // The kernel refused (resource limits); fall through to the
                // copying path, which serves the same bytes.
            }
        }
        Self::read_owned(&mut file, len)
    }

    /// The O(header) pre-map check: physical length word-aligned, at least
    /// a header, magic and version in place, and the header's declared
    /// `total_words` equal to the physical length — the invariant that
    /// makes every in-bounds read of a subsequent mapping file-backed.
    fn shape_ok(file: &mut File, len: u64) -> io::Result<bool> {
        if len % 8 != 0 || len < (HEADER_WORDS * 8) as u64 || len > usize::MAX as u64 {
            return Ok(false);
        }
        let mut header = [0u8; HEADER_WORDS * 8];
        file.read_exact(&mut header)?;
        let word = |i: usize| u64::from_le_bytes(header[i * 8..i * 8 + 8].try_into().expect("8"));
        Ok(word(0) == MAGIC
            && word(1) == VERSION
            && word(H_TOTAL_WORDS).checked_mul(8) == Some(len))
    }

    /// The fallback: copy the whole file into an aligned word buffer.
    fn read_owned(file: &mut File, len: u64) -> io::Result<MappedSnapshot> {
        file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::with_capacity(len as usize);
        file.read_to_end(&mut bytes)?;
        let byte_len = bytes.len();
        let mut words = vec![0u64; byte_len.div_ceil(8)];
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            // Native-endian on purpose: `words` is a raw byte image (the
            // aligned analogue of the mapping), not decoded snapshot words —
            // decoding is `format::Words`'s job, off `Self::bytes`.
            words[i] = u64::from_ne_bytes(w);
        }
        Ok(MappedSnapshot {
            buf: Buffer::Owned { words, byte_len },
        })
    }

    /// The exact byte image of the opened file — what snapshot validation
    /// and serving read.
    pub fn bytes(&self) -> &[u8] {
        match &self.buf {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Buffer::Mapped { ptr, len } => {
                // SAFETY: the mapping is live for `self`'s lifetime, `len`
                // bytes long, and never written through.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Buffer::Owned { words, byte_len } => {
                // SAFETY: any initialised `u64` buffer is a valid `[u8]` of
                // 8× the length; we then trim the zero padding past the
                // file's real length.
                let all = unsafe {
                    std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8)
                };
                &all[..*byte_len]
            }
        }
    }

    /// Whether this open took the mapping fast path (false on non-Linux
    /// targets, for shape-invalid files, and when the kernel refused the
    /// mapping).
    pub fn is_mapped(&self) -> bool {
        match &self.buf {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Buffer::Mapped { .. } => true,
            Buffer::Owned { .. } => false,
        }
    }
}

impl Deref for MappedSnapshot {
    type Target = [u64];

    /// The buffer's whole 8-byte words, aligned (page-aligned when mapped,
    /// heap-aligned otherwise). A shape-invalid fallback buffer's trailing
    /// partial word is not included; [`Self::bytes`] is authoritative.
    fn deref(&self) -> &[u64] {
        match &self.buf {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Buffer::Mapped { ptr, len } => {
                // SAFETY: the mapping is live, `len` is a whole number of
                // words (pre-map shape check), and mmap bases are
                // page-aligned, hence u64-aligned.
                unsafe { std::slice::from_raw_parts(ptr.cast::<u64>(), len / 8) }
            }
            Buffer::Owned { words, byte_len } => &words[..byte_len / 8],
        }
    }
}

impl Drop for MappedSnapshot {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Buffer::Mapped { ptr, len } = self.buf {
            // SAFETY: `ptr`/`len` is the single mapping this value owns;
            // after drop nothing can read it again.
            unsafe { sys::munmap(ptr, len) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatScheme;
    use crate::serialize;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
    use en_routing::construction::{build_routing_scheme, ConstructionConfig};
    use std::path::PathBuf;

    fn snapshot(seed: u64) -> Vec<u8> {
        let g = erdos_renyi_connected(&GeneratorConfig::new(48, seed).with_weights(1, 9), 0.15);
        let built = build_routing_scheme(&g, &ConstructionConfig::new(2, seed)).unwrap();
        serialize(&built.scheme)
    }

    /// A scratch file under the workspace target dir (kept inside the repo).
    fn scratch(name: &str, bytes: &[u8]) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn mapped_bytes_equal_file_bytes() {
        let bytes = snapshot(1);
        let path = scratch("mmap_roundtrip.enwire", &bytes);
        let mapped = MappedSnapshot::open(&path).unwrap();
        assert_eq!(mapped.bytes(), &bytes[..]);
        assert_eq!(mapped.len(), bytes.len() / 8);
        // Deref words are the same raw image.
        assert_eq!(mapped[0].to_ne_bytes(), bytes[..8]);
        // And the snapshot validates off the mapping exactly as off the heap.
        let flat = FlatScheme::from_bytes(mapped.bytes()).unwrap();
        assert_eq!(flat.n(), FlatScheme::from_bytes(&bytes).unwrap().n());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fast_path_maps_on_linux() {
        let bytes = snapshot(2);
        let path = scratch("mmap_fastpath.enwire", &bytes);
        let mapped = MappedSnapshot::open(&path).unwrap();
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert!(
                mapped.is_mapped(),
                "shape-valid file must take the fast path"
            );
        } else {
            assert!(!mapped.is_mapped());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shape_invalid_files_are_never_mapped() {
        let bytes = snapshot(3);
        // Word-misaligned truncation, word-aligned truncation (header
        // total_words disagrees), header-only prefix, and foreign magic:
        // all must fall back to the heap and then fail validation with a
        // structured error.
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("misaligned", bytes[..bytes.len() - 3].to_vec()),
            ("truncated", bytes[..bytes.len() - 8].to_vec()),
            (
                "header_only",
                bytes[..crate::format::HEADER_WORDS * 8].to_vec(),
            ),
            ("tiny", bytes[..16].to_vec()),
            ("bad_magic", {
                let mut b = bytes.clone();
                b[0] ^= 0xFF;
                b
            }),
        ];
        for (name, corrupt) in cases {
            let path = scratch(&format!("mmap_{name}.enwire"), &corrupt);
            let mapped = MappedSnapshot::open(&path).unwrap();
            assert!(!mapped.is_mapped(), "{name} must not be mapped");
            assert_eq!(mapped.bytes(), &corrupt[..], "{name} bytes must round-trip");
            assert!(
                FlatScheme::from_bytes(mapped.bytes()).is_err(),
                "{name} must fail validation"
            );
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(
            MappedSnapshot::open(Path::new("/root/repo/target/tmp/definitely_missing.enwire"))
                .is_err()
        );
    }
}
