//! Deterministic fault injection against snapshot bytes.
//!
//! The serving stack claims *error-not-crash* for arbitrary snapshot
//! corruption. This module makes that claim drillable: seeded, fully
//! deterministic fault **plans** (truncations at every section boundary,
//! single-bit flips over the header and each section, scrambled offset
//! columns) plus runners that apply each fault to a pristine buffer and
//! classify what the stack did about it:
//!
//! * **detected** — [`FlatScheme::from_bytes`] rejected the bytes with a
//!   structured [`WireError`]; nothing corrupt was ever served.
//! * **degraded** — the bytes were forced in past validation (via
//!   [`FlatScheme::from_bytes_unvalidated`], simulating corruption that
//!   strikes *after* load) and the engine turned the damage into per-query
//!   errors while the batch and process survived.
//! * **survived** — the fault turned out not to affect any observable
//!   outcome (possible only for post-load corruption of bytes no query
//!   touches).
//! * **undetected** — the failure mode: a corrupt buffer validated clean.
//!   The drills assert this count is zero.
//!
//! Plans are pure data (`Vec<FaultCase>`), so tests, the `fault_drill`
//! harness bin, and CI all execute byte-identical fault sequences for a
//! given seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::WireError;
use crate::flat::{FlatScheme, SnapshotManifest};
use crate::format::{Section, HEADER_WORDS};

/// One way to damage a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Keep only the first `len` bytes.
    Truncate {
        /// Bytes to keep.
        len: usize,
    },
    /// Flip a single bit.
    BitFlip {
        /// Byte offset.
        byte: usize,
        /// Bit index within the byte (0..8).
        bit: u8,
    },
    /// Overwrite one 8-byte word with an arbitrary value.
    WordWrite {
        /// Word offset (in 8-byte words from the buffer start).
        word: usize,
        /// The value written.
        value: u64,
    },
}

/// A named fault: what to do to the bytes, and a label for reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCase {
    /// Human-readable label (`"truncate@member_ids"`, `"flip header 3:17"`).
    pub name: String,
    /// The damage to apply.
    pub kind: FaultKind,
}

impl FaultCase {
    /// Applies the fault to a copy of `bytes`.
    pub fn apply(&self, bytes: &[u8]) -> Vec<u8> {
        match self.kind {
            FaultKind::Truncate { len } => bytes[..len.min(bytes.len())].to_vec(),
            FaultKind::BitFlip { byte, bit } => {
                let mut out = bytes.to_vec();
                if let Some(b) = out.get_mut(byte) {
                    *b ^= 1 << (bit % 8);
                }
                out
            }
            FaultKind::WordWrite { word, value } => {
                let mut out = bytes.to_vec();
                let at = word * 8;
                if at + 8 <= out.len() {
                    out[at..at + 8].copy_from_slice(&value.to_le_bytes());
                }
                out
            }
        }
    }
}

/// Truncations at every section boundary, one word before each boundary,
/// and two sub-word cuts — the shapes a torn transfer produces.
pub fn truncation_plan(manifest: &SnapshotManifest) -> Vec<FaultCase> {
    let total = manifest.total_words * 8;
    let mut plan = Vec::new();
    let mut push = |name: String, len: usize| {
        if len < total {
            plan.push(FaultCase {
                name,
                kind: FaultKind::Truncate { len },
            });
        }
    };
    for span in &manifest.sections {
        let name = span.section.name();
        push(format!("truncate@{name}"), span.start_word * 8);
        if span.start_word > 0 {
            push(format!("truncate@{name}-1w"), (span.start_word - 1) * 8);
        }
    }
    push("truncate@end-1w".into(), total.saturating_sub(8));
    // Sub-word cuts: misaligned buffers.
    push("truncate@end-1b".into(), total.saturating_sub(1));
    push("truncate@mid+3b".into(), total / 2 / 8 * 8 + 3);
    push("truncate@empty".into(), 0);
    plan
}

/// A single-bit flip in every bit of every header word — the header is
/// small enough to sweep exhaustively.
pub fn header_flip_plan() -> Vec<FaultCase> {
    let mut plan = Vec::with_capacity(HEADER_WORDS * 64);
    for word in 0..HEADER_WORDS {
        for bit in 0..64u32 {
            plan.push(FaultCase {
                name: format!("flip header {word}:{bit}"),
                kind: FaultKind::BitFlip {
                    byte: word * 8 + (bit / 8) as usize,
                    bit: (bit % 8) as u8,
                },
            });
        }
    }
    plan
}

/// `per_section` seeded single-bit flips inside every non-empty section.
pub fn section_flip_plan(
    manifest: &SnapshotManifest,
    seed: u64,
    per_section: usize,
) -> Vec<FaultCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plan = Vec::new();
    for span in &manifest.sections {
        if span.words == 0 {
            continue;
        }
        let (start, len) = (span.start_word * 8, span.words * 8);
        for i in 0..per_section {
            let byte = start + rng.gen_range(0..len);
            let bit = rng.gen_range(0..8u32) as u8;
            plan.push(FaultCase {
                name: format!("flip {} #{i} @{byte}:{bit}", span.section.name()),
                kind: FaultKind::BitFlip { byte, bit },
            });
        }
    }
    plan
}

/// Seeded scrambles of the offset columns — the words the reader indexes
/// with: cluster descriptors, the member-table offset column, the v3
/// member-slot rank index, and all three per-vertex CSRs. Each case
/// overwrites one word with a huge or adversarial value (past-the-end
/// offsets, reversed monotonicity, slots naming the wrong member).
pub fn offset_scramble_plan(
    manifest: &SnapshotManifest,
    seed: u64,
    cases: usize,
) -> Vec<FaultCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let targets = [
        Section::Clusters,
        Section::MemberTableOffs,
        Section::VtreesOff,
        Section::MemberSlots,
        Section::OwnOff,
        Section::LabelEntriesOff,
        Section::OwnEntries,
        Section::LabelEntries,
        Section::CenterIndex,
    ];
    let mut plan = Vec::new();
    for i in 0..cases {
        let span = manifest.sections[targets[i % targets.len()] as usize];
        if span.words == 0 {
            continue;
        }
        let word = span.start_word + rng.gen_range(0..span.words);
        let value = match rng.gen_range(0..3u32) {
            0 => u64::MAX,
            1 => manifest.total_words as u64 + rng.gen_range(1..1_000_000u64),
            _ => rng.gen_range(0..u64::MAX / 2) | (1 << 40),
        };
        plan.push(FaultCase {
            name: format!("scramble {} w{word}={value:#x}", span.section.name()),
            kind: FaultKind::WordWrite { word, value },
        });
    }
    plan
}

/// How the stack handled one injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// `from_bytes` rejected the corrupt buffer.
    Detected(WireError),
    /// Post-load corruption was served degraded: this many queries errored,
    /// the batch and process survived.
    Degraded {
        /// Queries that returned structured errors.
        errors: usize,
    },
    /// The fault changed no observable outcome.
    Survived,
    /// A corrupt buffer validated clean — the failure mode drills hunt.
    Undetected,
}

/// Aggregated drill results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults injected.
    pub injected: usize,
    /// Faults rejected at load time.
    pub detected: usize,
    /// Faults served degraded (post-load corruption, per-query errors).
    pub degraded: usize,
    /// Faults with no observable effect.
    pub survived: usize,
    /// Labels of faults that validated clean — must stay empty.
    pub undetected: Vec<String>,
}

impl FaultReport {
    /// Whether every injected fault was detected, degraded, or survived.
    pub fn all_handled(&self) -> bool {
        self.undetected.is_empty() && self.detected + self.degraded + self.survived == self.injected
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: FaultReport) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.degraded += other.degraded;
        self.survived += other.survived;
        self.undetected.extend(other.undetected);
    }

    /// One-line summary for harness stdout.
    pub fn summary(&self) -> String {
        format!(
            "injected={} detected={} degraded={} survived={} undetected={}",
            self.injected,
            self.detected,
            self.degraded,
            self.survived,
            self.undetected.len()
        )
    }
}

/// Runs a load-time drill: every fault in `plan` must make
/// [`FlatScheme::from_bytes`] return an error (the faults all really
/// change covered bytes, so an `Ok` is recorded as undetected).
pub fn drill_loads(bytes: &[u8], plan: &[FaultCase]) -> FaultReport {
    let mut report = FaultReport::default();
    for case in plan {
        let corrupt = case.apply(bytes);
        if corrupt.len() == bytes.len() && corrupt == bytes {
            continue; // the fault was a no-op (e.g. writing the same word)
        }
        report.injected += 1;
        match FlatScheme::from_bytes(&corrupt) {
            Err(_) => report.detected += 1,
            Ok(_) => report.undetected.push(case.name.clone()),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
    use en_routing::construction::{build_routing_scheme, ConstructionConfig};

    fn snapshot() -> Vec<u8> {
        let g = erdos_renyi_connected(&GeneratorConfig::new(36, 5).with_weights(1, 9), 0.15);
        let built = build_routing_scheme(&g, &ConstructionConfig::new(2, 5)).unwrap();
        serialize(&built.scheme)
    }

    #[test]
    fn plans_are_deterministic() {
        let bytes = snapshot();
        let manifest = FlatScheme::from_bytes(&bytes).unwrap().manifest();
        assert_eq!(truncation_plan(&manifest), truncation_plan(&manifest));
        assert_eq!(
            section_flip_plan(&manifest, 7, 4),
            section_flip_plan(&manifest, 7, 4)
        );
        assert_ne!(
            section_flip_plan(&manifest, 7, 4),
            section_flip_plan(&manifest, 8, 4)
        );
        assert_eq!(
            offset_scramble_plan(&manifest, 3, 16),
            offset_scramble_plan(&manifest, 3, 16)
        );
    }

    #[test]
    fn apply_shapes_are_right() {
        let bytes = vec![0u8; 64];
        let t = FaultCase {
            name: "t".into(),
            kind: FaultKind::Truncate { len: 10 },
        };
        assert_eq!(t.apply(&bytes).len(), 10);
        let f = FaultCase {
            name: "f".into(),
            kind: FaultKind::BitFlip { byte: 3, bit: 2 },
        };
        let flipped = f.apply(&bytes);
        assert_eq!(flipped[3], 4);
        assert_eq!(f.apply(&flipped), bytes, "a bit flip is an involution");
        let w = FaultCase {
            name: "w".into(),
            kind: FaultKind::WordWrite { word: 1, value: 42 },
        };
        assert_eq!(
            u64::from_le_bytes(w.apply(&bytes)[8..16].try_into().unwrap()),
            42
        );
        // Out-of-range damage degrades to a no-op instead of panicking.
        let oob = FaultCase {
            name: "oob".into(),
            kind: FaultKind::WordWrite {
                word: 100,
                value: 1,
            },
        };
        assert_eq!(oob.apply(&bytes), bytes);
    }

    #[test]
    fn every_planned_fault_is_detected_at_load() {
        let bytes = snapshot();
        let manifest = FlatScheme::from_bytes(&bytes).unwrap().manifest();
        let mut report = drill_loads(&bytes, &truncation_plan(&manifest));
        report.merge(drill_loads(&bytes, &section_flip_plan(&manifest, 11, 3)));
        report.merge(drill_loads(
            &bytes,
            &offset_scramble_plan(&manifest, 13, 24),
        ));
        assert!(report.all_handled(), "undetected: {:?}", report.undetected);
        assert_eq!(report.detected, report.injected, "all load faults detect");
        assert!(report.injected > 30);
    }
}
