//! Query-workload generation for the serving benchmarks and tests.
//!
//! Three pair distributions, all deterministic for a given seed (via the
//! workspace's seeded RNG):
//!
//! * **Uniform** — independent uniform source/destination pairs, the
//!   baseline all-to-all traffic shape.
//! * **Zipf hotspot** — both endpoints follow a Zipf law over independent
//!   seeded random rankings of the vertices, modelling skewed traffic
//!   (heavy-hitter sources talking to popular destinations, so a small hot
//!   set of `(source, destination)` pairs carries most packets — the shape
//!   the hot-route cache and the page-cache-resident snapshot exploit).
//! * **Near vs. far** — a tunable fraction of pairs are *near* (the
//!   destination is reached by a short random walk from the source, so the
//!   pair is usually covered by a low-level cluster), the rest are uniform
//!   *far* pairs (usually routed through sparse high-level trees).

use en_graph::{NodeId, WeightedGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A pair distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum PairWorkload {
    /// Independent uniform pairs.
    Uniform,
    /// Zipf-distributed endpoints with the given exponent (`1.0` is the
    /// classic heavy-skew; larger is more skewed): sources and destinations
    /// are drawn from independent Zipf rankings, so hot pairs repeat.
    ZipfHotspot {
        /// The Zipf exponent `s > 0`.
        exponent: f64,
    },
    /// A `near_fraction` of pairs end a `walk_hops`-step random walk from
    /// the source; the rest are uniform.
    NearFar {
        /// Fraction of near pairs in `[0, 1]`.
        near_fraction: f64,
        /// Steps of the random walk that produces a near destination.
        walk_hops: usize,
    },
}

impl PairWorkload {
    /// Short name for benchmark labels.
    pub fn name(&self) -> &'static str {
        match self {
            PairWorkload::Uniform => "uniform",
            PairWorkload::ZipfHotspot { .. } => "zipf",
            PairWorkload::NearFar { .. } => "near-far",
        }
    }
}

/// Generates `pairs` source/destination pairs over the vertices of `g`
/// (always with distinct endpoints), deterministically for a given seed.
///
/// # Panics
///
/// Panics if `g` has fewer than two vertices, or on nonsensical workload
/// parameters (a non-positive Zipf exponent, a near fraction outside
/// `[0, 1]`).
pub fn generate_pairs(
    g: &WeightedGraph,
    workload: &PairWorkload,
    pairs: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let n = g.num_nodes();
    assert!(n >= 2, "need at least two vertices to form pairs");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(pairs);
    match workload {
        PairWorkload::Uniform => {
            for _ in 0..pairs {
                out.push(uniform_pair(&mut rng, n));
            }
        }
        PairWorkload::ZipfHotspot { exponent } => {
            assert!(*exponent > 0.0, "Zipf exponent must be positive");
            // Independent seeded rankings for the two endpoints: rank r maps
            // to vertex ranking[r], so the hotspots are spread over the id
            // space and hot sources need not be hot destinations.
            use rand::seq::SliceRandom;
            let mut dst_ranking: Vec<NodeId> = (0..n).collect();
            dst_ranking.shuffle(&mut rng);
            let mut src_ranking: Vec<NodeId> = (0..n).collect();
            src_ranking.shuffle(&mut rng);
            // Normalised cumulative Zipf weights over ranks.
            let mut cum = Vec::with_capacity(n);
            let mut acc = 0.0f64;
            for r in 0..n {
                acc += 1.0 / ((r + 1) as f64).powf(*exponent);
                cum.push(acc);
            }
            for c in &mut cum {
                *c /= acc;
            }
            let zipf_rank = |rng: &mut StdRng| {
                let u: f64 = rng.gen();
                cum.partition_point(|&c| c <= u).min(n - 1)
            };
            for _ in 0..pairs {
                let to = dst_ranking[zipf_rank(&mut rng)];
                let from = loop {
                    let v = src_ranking[zipf_rank(&mut rng)];
                    if v != to {
                        break v;
                    }
                };
                out.push((from, to));
            }
        }
        PairWorkload::NearFar {
            near_fraction,
            walk_hops,
        } => {
            assert!(
                (0.0..=1.0).contains(near_fraction),
                "near fraction must be within [0, 1]"
            );
            for _ in 0..pairs {
                if rng.gen_bool(*near_fraction) {
                    out.push(near_pair(g, &mut rng, *walk_hops));
                } else {
                    out.push(uniform_pair(&mut rng, n));
                }
            }
        }
    }
    out
}

fn uniform_pair(rng: &mut StdRng, n: usize) -> (NodeId, NodeId) {
    let from = rng.gen_range(0..n);
    let to = loop {
        let v = rng.gen_range(0..n);
        if v != from {
            break v;
        }
    };
    (from, to)
}

/// A near pair: walk `hops` random edges from a uniform source; if the walk
/// closes a loop back onto the source, fall back to the first neighbour
/// (graphs here are connected, so every vertex has one).
fn near_pair(g: &WeightedGraph, rng: &mut StdRng, hops: usize) -> (NodeId, NodeId) {
    let from = rng.gen_range(0..g.num_nodes());
    let mut at = from;
    for _ in 0..hops.max(1) {
        let nbrs = g.neighbors(at);
        if !nbrs.is_empty() {
            at = nbrs[rng.gen_range(0..nbrs.len())].node;
        }
    }
    if at == from {
        at = g.neighbors(from)[0].node;
    }
    (from, at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    fn graph() -> WeightedGraph {
        erdos_renyi_connected(&GeneratorConfig::new(100, 3).with_weights(1, 10), 0.1)
    }

    #[test]
    fn pairs_are_distinct_and_in_range() {
        let g = graph();
        for w in [
            PairWorkload::Uniform,
            PairWorkload::ZipfHotspot { exponent: 1.1 },
            PairWorkload::NearFar {
                near_fraction: 0.5,
                walk_hops: 2,
            },
        ] {
            let pairs = generate_pairs(&g, &w, 500, 7);
            assert_eq!(pairs.len(), 500, "{}", w.name());
            for (u, v) in pairs {
                assert!(u < 100 && v < 100 && u != v, "{}", w.name());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = graph();
        let w = PairWorkload::ZipfHotspot { exponent: 1.0 };
        assert_eq!(
            generate_pairs(&g, &w, 200, 9),
            generate_pairs(&g, &w, 200, 9)
        );
        assert_ne!(
            generate_pairs(&g, &w, 200, 9),
            generate_pairs(&g, &w, 200, 10)
        );
    }

    #[test]
    fn zipf_concentrates_destinations() {
        let g = graph();
        let pairs = generate_pairs(&g, &PairWorkload::ZipfHotspot { exponent: 1.2 }, 2000, 5);
        let mut counts = vec![0usize; 100];
        for (_, to) in pairs {
            counts[to] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest destination must clearly dominate the median one.
        assert!(counts[0] >= 20 * counts[50].max(1) / 2);
    }

    #[test]
    fn near_pairs_are_actually_near() {
        let g = graph();
        let pairs = generate_pairs(
            &g,
            &PairWorkload::NearFar {
                near_fraction: 1.0,
                walk_hops: 1,
            },
            200,
            11,
        );
        for (u, v) in pairs {
            assert!(g.has_edge(u, v), "1-hop walk must end at a neighbour");
        }
    }
}
