//! The zero-copy snapshot reader: validate once, then borrow.
//!
//! [`FlatScheme::from_bytes`] walks the whole buffer a single time — header,
//! section bounds, CSR monotonicity, every table and label record — and
//! rejects anything inconsistent. After that, every accessor is plain
//! arithmetic over the borrowed bytes: the views handed out
//! ([`FlatTreeTable`], [`FlatTreeLabel`], [`FlatLocalLabel`],
//! [`FlatU64s`]) are `Copy` slice-plus-offset handles that never allocate.

use en_graph::NodeId;
use en_tree_routing::{LabelView, LocalLabelView, TableSlots, TableView};

use crate::checksum::fnv1a_bytes;
use crate::error::WireError;
use crate::format::{
    Section, Words, CLUSTER_RECORD_WORDS, HEADER_WORDS, H_HEADER_SUM, H_K, H_MAX_LABEL_WORDS,
    H_MAX_TABLE_WORDS, H_N, H_NUM_CLUSTERS, H_SECTIONS, H_SECTION_SUMS, H_TOTAL_LABEL_WORDS,
    H_TOTAL_MEMBERS, H_TOTAL_TABLE_WORDS, H_TOTAL_WORDS, LABEL_ENTRY_WORDS, MAGIC, NULL,
    NUM_SECTIONS, OWN_ENTRY_WORDS, TABLE_FIXED_WORDS, VERSION,
};

/// A complete routing scheme served directly from a snapshot buffer.
///
/// Construction ([`Self::from_bytes`]) validates the buffer once; every
/// subsequent access borrows from it without allocating.
#[derive(Debug, Clone, Copy)]
pub struct FlatScheme<'a> {
    words: Words<'a>,
    n: usize,
    k: usize,
    num_clusters: usize,
    /// Absolute word offset of each section, plus the buffer end.
    secs: [usize; NUM_SECTIONS + 1],
}

/// Snapshots at or above this many bytes of section payload shard their
/// load-time checksum walk across threads; smaller ones stay serial (the
/// spawn overhead would dominate).
pub const PARALLEL_VALIDATE_MIN_BYTES: usize = 1 << 20;

/// Per-thread accounting of one load-time checksum walk
/// ([`FlatScheme::from_bytes_accounted`]).
///
/// The standing constraint of a single-core recording host applies:
/// [`Self::total_words`] always equals the full section span, so the
/// parallel walk is auditable against the serial one even where the
/// speedup itself cannot be observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateStats {
    /// Checksum workers actually used (1 = the serial walk).
    pub threads: usize,
    /// Words checksummed by each worker; sums to the whole section span.
    pub per_thread_words: Vec<usize>,
}

impl ValidateStats {
    /// Total words checksummed across all workers — always the whole
    /// section span, whatever the thread count.
    pub fn total_words(&self) -> usize {
        self.per_thread_words.iter().sum()
    }
}

/// A borrowed run of words viewed as a `u64` column slice.
#[derive(Debug, Clone, Copy)]
pub struct FlatU64s<'a> {
    words: Words<'a>,
    start: usize,
    len: usize,
}

impl FlatU64s<'_> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element `i`.
    ///
    /// # Panics
    ///
    /// Panics when the underlying read runs past the buffer — impossible on
    /// a fully validated snapshot, possible on one loaded with
    /// [`FlatScheme::from_bytes_unvalidated`]. The checked paths use
    /// [`Self::try_get`].
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        self.words.get(self.start + i)
    }

    /// Element `i`, or `None` when `i` is out of range or the slice itself
    /// (computed from possibly-corrupt offsets) runs past the buffer.
    #[inline]
    pub fn try_get(&self, i: usize) -> Option<u64> {
        if i >= self.len {
            return None;
        }
        self.words.try_get(self.start.checked_add(i)?)
    }

    /// Binary search over an ascending column without trusting the column
    /// bounds: out-of-buffer reads surface as `Err(WireError)` instead of a
    /// panic, and `Ok` mirrors [`Self::binary_search`]'s `Ok`.
    pub fn try_binary_search(&self, x: u64) -> Result<Result<usize, usize>, WireError> {
        let err = WireError::Corrupt {
            what: "member column runs past the buffer",
        };
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.try_get(mid).ok_or(err)?.cmp(&x) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(Ok(mid)),
            }
        }
        Ok(Err(lo))
    }

    /// Binary search for `x` over an ascending column.
    pub fn binary_search(&self, x: u64) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.get(mid).cmp(&x) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Iterates the elements.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

/// One cluster of the snapshot: descriptor plus the member/table columns.
#[derive(Debug, Clone, Copy)]
pub struct FlatCluster<'a> {
    scheme: FlatScheme<'a>,
    /// Dense cluster id (position in the clusters section).
    pub id: usize,
    /// The cluster centre (also the root of its tree scheme).
    pub center: NodeId,
    /// The hierarchy level of the centre.
    pub level: usize,
    members_start: usize,
    members_len: usize,
}

impl<'a> FlatCluster<'a> {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members_len
    }

    /// Whether the cluster has no members (never true in a valid snapshot).
    pub fn is_empty(&self) -> bool {
        self.members_len == 0
    }

    /// The ascending member vertex ids.
    pub fn members(&self) -> FlatU64s<'a> {
        FlatU64s {
            words: self.scheme.words,
            start: self.scheme.secs[Section::MemberIds as usize] + self.members_start,
            len: self.members_len,
        }
    }

    /// The member column with its span checked against the member section:
    /// a descriptor whose `members_start`/`members_len` (untrusted words)
    /// overrun the column is reported instead of read.
    pub fn try_members(&self) -> Result<FlatU64s<'a>, WireError> {
        let err = WireError::Corrupt {
            what: "cluster members overrun the member column",
        };
        let sec = self.scheme.secs[Section::MemberIds as usize];
        let sec_len = self.scheme.secs[Section::MemberIds as usize + 1] - sec;
        let end = self
            .members_start
            .checked_add(self.members_len)
            .ok_or(err)?;
        if end > sec_len {
            return Err(err);
        }
        Ok(self.members())
    }

    /// The member-order rank of `v` in this cluster, resolved through the
    /// v3 [`Section::MemberSlots`] rank index: a binary search over `v`'s
    /// *own* short tree list, then one word read — never a search over the
    /// (up to `n`-element) member column.
    ///
    /// # Panics
    ///
    /// May panic over a scheme loaded with
    /// [`FlatScheme::from_bytes_unvalidated`] whose CSR or slot columns are
    /// corrupt; [`Self::try_slot_of`] is the checked equivalent.
    pub fn slot_of(&self, v: NodeId) -> Option<usize> {
        let trees = self.scheme.trees_of(v);
        // A vertex's tree row is short (its cluster memberships, not a
        // member column), so a forward scan with an ascending-order early
        // exit beats binary search on the per-hop path.
        let c = self.center as u64;
        let mut i = 0usize;
        loop {
            if i >= trees.len() {
                return None;
            }
            let w = trees.get(i);
            if w >= c {
                if w > c {
                    return None;
                }
                break;
            }
            i += 1;
        }
        // MEMBER_SLOTS is word-aligned with VTREES_VALS, so the tree slice's
        // position inside its column addresses the slot directly.
        let rel = trees.start - self.scheme.secs[Section::VtreesVals as usize];
        let slot = self
            .scheme
            .words
            .get(self.scheme.secs[Section::MemberSlots as usize] + rel + i)
            as usize;
        (slot < self.members_len).then_some(slot)
    }

    /// [`Self::slot_of`] with every untrusted read checked: the CSR range,
    /// the slot-column bounds, and — because the rank index itself is
    /// untrusted over unvalidated bytes — agreement with the member column
    /// (`members[slot] == v`) before the slot is handed out.
    pub fn try_slot_of(&self, v: NodeId) -> Result<Option<usize>, WireError> {
        let trees = self.scheme.try_trees_of(v)?;
        let Ok(i) = trees.try_binary_search(self.center as u64)? else {
            return Ok(None);
        };
        let err = WireError::Corrupt {
            what: "member-slot index runs past its section",
        };
        let ms_base = self.scheme.secs[Section::MemberSlots as usize];
        let ms_len = self.scheme.secs[Section::MemberSlots as usize + 1] - ms_base;
        let rel = trees.start - self.scheme.secs[Section::VtreesVals as usize];
        let at = rel.checked_add(i).ok_or(err)?;
        if at >= ms_len {
            return Err(err);
        }
        let slot = self.scheme.words.try_get(ms_base + at).ok_or(err)? as usize;
        let members = self.try_members()?;
        if members.try_get(slot) != Some(v as u64) {
            return Err(WireError::Corrupt {
                what: "member-slot index disagrees with the member column",
            });
        }
        Ok(Some(slot))
    }

    /// The routing table stored at member-order rank `slot`: one
    /// offset-column read plus the pool offset — O(1) on any slot source.
    pub fn table_at(&self, slot: usize) -> Option<FlatTreeTable<'a>> {
        if slot >= self.members_len {
            return None;
        }
        let vertex = self.members().get(slot) as NodeId;
        Some(self.table_at_slot(slot, vertex))
    }

    /// [`Self::table_at`] when the caller already knows the vertex stored at
    /// `slot` (skips re-reading the member column).
    fn table_at_slot(&self, slot: usize, vertex: NodeId) -> FlatTreeTable<'a> {
        let rel = self
            .scheme
            .words
            .get(self.scheme.secs[Section::MemberTableOffs as usize] + self.members_start + slot);
        FlatTreeTable {
            words: self.scheme.words,
            off: self.scheme.secs[Section::TablePool as usize] + rel as usize,
            vertex,
        }
    }

    /// The routing table of member `v`, if `v` is in this cluster:
    /// [`Self::slot_of`] through the v3 rank index, then O(1) column
    /// arithmetic.
    ///
    /// # Panics
    ///
    /// May panic (never reads out of bounds — every accessor is checked
    /// Rust; `unsafe` is denied outside the `mmap` module) over a scheme
    /// loaded with [`FlatScheme::from_bytes_unvalidated`]
    /// whose columns are corrupt; [`Self::try_table_of`] is the checked
    /// equivalent.
    pub fn table_of(&self, v: NodeId) -> Option<FlatTreeTable<'a>> {
        let slot = self.slot_of(v)?;
        Some(self.table_at_slot(slot, v))
    }

    /// The pre-v3 lookup — a binary search over the full member column —
    /// kept as the test oracle the rank-index path is checked against.
    #[cfg(test)]
    pub(crate) fn table_of_by_search(&self, v: NodeId) -> Option<FlatTreeTable<'a>> {
        let pos = self.members().binary_search(v as u64).ok()?;
        Some(self.table_at_slot(pos, v))
    }

    /// [`Self::table_of`] with every untrusted index checked: the slot
    /// resolution (including member-column agreement), the offset-column
    /// read, and the whole table record (including its global-heavy tail)
    /// are bounds-validated before a view is handed out, so the returned
    /// view's reads cannot leave the table pool.
    pub fn try_table_of(&self, v: NodeId) -> Result<Option<FlatTreeTable<'a>>, WireError> {
        let Some(slot) = self.try_slot_of(v)? else {
            return Ok(None);
        };
        let off_col = WireError::Corrupt {
            what: "table-offset column runs past the buffer",
        };
        let rel = self
            .scheme
            .words
            .try_get(
                self.scheme.secs[Section::MemberTableOffs as usize]
                    + self.members_start.checked_add(slot).ok_or(off_col)?,
            )
            .ok_or(off_col)?;
        let pool_base = self.scheme.secs[Section::TablePool as usize];
        let pool_len = self.scheme.secs[Section::TablePool as usize + 1] - pool_base;
        validate_table_record(self.scheme.words, pool_base, pool_len, rel as usize)?;
        Ok(Some(FlatTreeTable {
            words: self.scheme.words,
            off: pool_base + rel as usize,
            vertex: v,
        }))
    }
}

impl<'a> TableSlots for FlatCluster<'a> {
    type Table = FlatTreeTable<'a>;

    #[inline]
    fn slot_of(&self, v: NodeId) -> Option<usize> {
        FlatCluster::slot_of(self, v)
    }

    #[inline]
    fn table_at(&self, slot: usize) -> Option<FlatTreeTable<'a>> {
        FlatCluster::table_at(self, slot)
    }

    #[inline]
    fn table_of(&self, v: NodeId) -> Option<FlatTreeTable<'a>> {
        FlatCluster::table_of(self, v)
    }
}

/// A borrowed local TZ label (a DFS time plus `(x, x')` exception pairs).
#[derive(Debug, Clone, Copy)]
pub struct FlatLocalLabel<'a> {
    words: Words<'a>,
    a: u64,
    exc_start: usize,
    exc_count: usize,
}

impl LocalLabelView for FlatLocalLabel<'_> {
    #[inline]
    fn a(&self) -> u64 {
        self.a
    }

    #[inline]
    fn exception_at(&self, x: NodeId) -> Option<NodeId> {
        for i in 0..self.exc_count {
            if self.words.get(self.exc_start + 2 * i) == x as u64 {
                return Some(self.words.get(self.exc_start + 2 * i + 1) as NodeId);
            }
        }
        None
    }
}

/// A borrowed tree-routing table record.
#[derive(Debug, Clone, Copy)]
pub struct FlatTreeTable<'a> {
    words: Words<'a>,
    /// Absolute word offset of the record.
    off: usize,
    vertex: NodeId,
}

fn opt(w: u64) -> Option<NodeId> {
    (w != NULL).then_some(w as NodeId)
}

impl<'a> TableView for FlatTreeTable<'a> {
    type Local = FlatLocalLabel<'a>;

    #[inline]
    fn vertex(&self) -> NodeId {
        self.vertex
    }

    #[inline]
    fn subtree_root(&self) -> NodeId {
        self.words.get(self.off) as NodeId
    }

    #[inline]
    fn parent(&self) -> Option<NodeId> {
        opt(self.words.get(self.off + 1))
    }

    #[inline]
    fn heavy_child(&self) -> Option<NodeId> {
        opt(self.words.get(self.off + 2))
    }

    #[inline]
    fn a_local(&self) -> u64 {
        self.words.get(self.off + 3)
    }

    #[inline]
    fn local_interval_contains(&self, a: u64) -> bool {
        self.words.get(self.off + 3) <= a && a < self.words.get(self.off + 4)
    }

    #[inline]
    fn global_interval_contains(&self, a_global: u64) -> bool {
        self.words.get(self.off + 5) <= a_global && a_global < self.words.get(self.off + 6)
    }

    #[inline]
    fn global_heavy(&self) -> Option<(NodeId, FlatLocalLabel<'a>)> {
        let child = opt(self.words.get(self.off + 7))?;
        Some((
            child,
            FlatLocalLabel {
                words: self.words,
                a: self.words.get(self.off + 9),
                exc_start: self.off + 11,
                exc_count: self.words.get(self.off + 10) as usize,
            },
        ))
    }
}

/// A borrowed tree-label record — the packet-header view forwarding consumes.
#[derive(Debug, Clone, Copy)]
pub struct FlatTreeLabel<'a> {
    words: Words<'a>,
    /// Absolute word offset of the record.
    off: usize,
}

impl<'a> FlatTreeLabel<'a> {
    /// The labelled vertex.
    pub fn vertex(&self) -> NodeId {
        self.words.get(self.off) as NodeId
    }

    fn local_exc_count(&self) -> usize {
        self.words.get(self.off + 4) as usize
    }

    /// Word offset of the global-exception count.
    fn gexc_base(&self) -> usize {
        self.off + 5 + 2 * self.local_exc_count()
    }
}

impl<'a> LabelView for FlatTreeLabel<'a> {
    type Local = FlatLocalLabel<'a>;

    #[inline]
    fn subtree_root(&self) -> NodeId {
        self.words.get(self.off + 1) as NodeId
    }

    #[inline]
    fn a_global(&self) -> u64 {
        self.words.get(self.off + 2)
    }

    #[inline]
    fn local(&self) -> FlatLocalLabel<'a> {
        FlatLocalLabel {
            words: self.words,
            a: self.words.get(self.off + 3),
            exc_start: self.off + 5,
            exc_count: self.local_exc_count(),
        }
    }

    fn global_exception_at(&self, w: NodeId) -> Option<(NodeId, FlatLocalLabel<'a>)> {
        let base = self.gexc_base();
        let count = self.words.get(base) as usize;
        let mut at = base + 1;
        for _ in 0..count {
            let parent_subtree = self.words.get(at) as NodeId;
            let exc_count = self.words.get(at + 4) as usize;
            if parent_subtree == w {
                return Some((
                    self.words.get(at + 1) as NodeId,
                    FlatLocalLabel {
                        words: self.words,
                        a: self.words.get(at + 3),
                        exc_start: at + 5,
                        exc_count,
                    },
                ));
            }
            at += 5 + 2 * exc_count;
        }
        None
    }
}

/// One node-label entry decoded from the snapshot.
#[derive(Debug, Clone, Copy)]
pub struct FlatLabelEntry<'a> {
    /// The level `i`.
    pub level: usize,
    /// The (approximate) `i`-pivot.
    pub pivot: NodeId,
    /// The (approximate) distance to the pivot.
    pub dist: u64,
    /// The vertex's tree label in the pivot's tree, when it belongs to it.
    pub tree_label: Option<FlatTreeLabel<'a>>,
}

impl<'a> FlatScheme<'a> {
    /// Validates `bytes` as a snapshot and wraps it for zero-copy access.
    ///
    /// The validation is exhaustive — header magic/version/size, the header
    /// checksum, every per-section checksum, section bounds, CSR
    /// monotonicity, every record reachable from a column — so the
    /// accessors never have to re-check and simply borrow. The checksums
    /// are verified here, once per load: integrity costs one linear pass at
    /// publish/load time and nothing on the per-query hot path.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first inconsistency found;
    /// truncated buffers, foreign magic, flipped bits anywhere in the
    /// header or a section, and corrupted offsets are all rejected rather
    /// than risking a panic at query time.
    pub fn from_bytes(bytes: &'a [u8]) -> Result<Self, WireError> {
        Self::from_bytes_accounted(bytes, 0).map(|(flat, _)| flat)
    }

    /// [`Self::from_bytes`] with the checksum walk's thread count pinned
    /// and its per-thread work accounting returned.
    ///
    /// `threads == 0` picks automatically (serial below
    /// [`PARALLEL_VALIDATE_MIN_BYTES`], the host's parallelism capped at
    /// the section count above it) — exactly what [`Self::from_bytes`]
    /// does. The returned [`ValidateStats`] records the worker count
    /// actually used and the words each worker checksummed; the accounting
    /// always totals the full section span, whatever the thread count, so
    /// a recorded parallel walk is auditable against the serial one.
    ///
    /// # Errors
    ///
    /// Exactly what [`Self::from_bytes`] reports — the first failing
    /// section *in section order* is reported whatever the sharding, so
    /// the error is bit-identical to the serial walk's.
    pub fn from_bytes_accounted(
        bytes: &'a [u8],
        threads: usize,
    ) -> Result<(Self, ValidateStats), WireError> {
        // Timed only when a recorder is installed; the uninstrumented load
        // path never reads the clock.
        let t0 = en_obs::active().then(std::time::Instant::now);
        let flat = Self::parse_header(bytes, true)?;
        let stats = flat.verify_section_checksums(bytes, threads)?;
        let total_members = flat.words.get(H_TOTAL_MEMBERS) as usize;
        flat.validate_clusters(total_members)?;
        flat.validate_csrs()?;
        if let Some(t0) = t0 {
            let dur_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            en_obs::histogram_record("wire.validate_ns", dur_ns);
            en_obs::counter_add("wire.validate.runs", 1);
            en_obs::counter_add("wire.validate.words_total", stats.total_words() as u64);
            en_obs::gauge_set("wire.validate.threads", stats.threads as u64);
        }
        Ok((flat, stats))
    }

    /// Wraps `bytes` after shape checks only: header geometry, section
    /// bounds, and fixed column lengths — **no checksums, no structural
    /// validation of section contents**.
    ///
    /// This exists for two callers. The epoch store re-opens bytes it
    /// already fully validated at publish time, where re-walking hundreds
    /// of megabytes per reader would defeat validate-once. And the
    /// fault-injection harness deliberately loads malformed-but-header-valid
    /// buffers to drill the checked accessor paths ([`FlatU64s::try_get`],
    /// [`FlatCluster::try_table_of`],
    /// [`route_checked`](crate::QueryEngine::route_checked)) — over an
    /// unvalidated scheme the *unchecked* accessors may panic or return
    /// garbage, the checked ones must return errors.
    ///
    /// # Errors
    ///
    /// Rejects buffers whose header geometry is unusable (misalignment,
    /// truncation, foreign magic/version, out-of-order section offsets,
    /// wrong fixed-column lengths); everything deeper is trusted.
    pub fn from_bytes_unvalidated(bytes: &'a [u8]) -> Result<Self, WireError> {
        Self::parse_header(bytes, false)
    }

    /// The shared shape pass: cheap O(header) checks that make the section
    /// arithmetic well-defined. `verify_header_sum` additionally pins every
    /// header bit under the trailing header checksum.
    fn parse_header(bytes: &'a [u8], verify_header_sum: bool) -> Result<Self, WireError> {
        if bytes.len() % 8 != 0 {
            return Err(WireError::Misaligned { len: bytes.len() });
        }
        if bytes.len() < HEADER_WORDS * 8 {
            return Err(WireError::Truncated {
                expected: HEADER_WORDS * 8,
                actual: bytes.len(),
            });
        }
        let words = Words::new(bytes);
        if words.get(0) != MAGIC {
            return Err(WireError::BadMagic {
                found: words.get(0),
            });
        }
        if words.get(1) != VERSION {
            return Err(WireError::UnsupportedVersion {
                found: words.get(1),
            });
        }
        if verify_header_sum {
            // Covers every header word but itself — verified before any
            // other header word is trusted.
            let expected = words.get(H_HEADER_SUM);
            let actual = fnv1a_bytes(&bytes[..H_HEADER_SUM * 8]);
            if expected != actual {
                return Err(WireError::ChecksumMismatch {
                    region: "header",
                    expected,
                    actual,
                });
            }
        }
        let total_words = words.get(H_TOTAL_WORDS) as usize;
        if total_words != words.len() {
            return Err(WireError::Truncated {
                expected: total_words * 8,
                actual: bytes.len(),
            });
        }
        let n = words.get(H_N) as usize;
        let k = words.get(H_K) as usize;
        let num_clusters = words.get(H_NUM_CLUSTERS) as usize;
        let total_members = words.get(H_TOTAL_MEMBERS) as usize;
        if k == 0 {
            return Err(WireError::Corrupt { what: "k is zero" });
        }

        // Section table: contiguous, in order, inside the buffer.
        let mut secs = [0usize; NUM_SECTIONS + 1];
        for (i, sec) in secs.iter_mut().take(NUM_SECTIONS).enumerate() {
            *sec = words.get(H_SECTIONS + i) as usize;
        }
        secs[NUM_SECTIONS] = total_words;
        if secs[0] != HEADER_WORDS {
            return Err(WireError::Corrupt {
                what: "first section does not follow the header",
            });
        }
        for i in 0..NUM_SECTIONS {
            if secs[i] > secs[i + 1] || secs[i + 1] > total_words {
                return Err(WireError::Corrupt {
                    what: "section offsets out of order or out of bounds",
                });
            }
        }
        let sec_len = |s: Section| secs[s as usize + 1] - secs[s as usize];

        // Fixed-size sections — the byte-budget manifest check: every
        // fixed column's span must match the header's own n / cluster /
        // member counts before any of it is indexed.
        let fixed: [(Section, usize, &'static str); 7] = [
            (Section::CenterIndex, n, "centre index length"),
            (
                Section::Clusters,
                num_clusters * CLUSTER_RECORD_WORDS,
                "cluster table length",
            ),
            (Section::MemberIds, total_members, "member column length"),
            (
                Section::MemberTableOffs,
                total_members,
                "table-offset column length",
            ),
            (Section::VtreesOff, n + 1, "vertex-trees CSR length"),
            (Section::OwnOff, n + 1, "own-label CSR length"),
            (Section::LabelEntriesOff, n + 1, "label-entry CSR length"),
        ];
        for (s, expect, what) in fixed {
            if sec_len(s) != expect {
                return Err(WireError::Corrupt { what });
            }
        }

        Ok(FlatScheme {
            words,
            n,
            k,
            num_clusters,
            secs,
        })
    }

    /// Verifies each section's stored checksum against its bytes, sharding
    /// the sections over `threads` scoped workers (per-section FNV is
    /// independent, so the walk parallelises without changing a single
    /// compared value). `threads == 0` picks automatically; see
    /// [`Self::from_bytes_accounted`].
    ///
    /// Every section's actual checksum is computed before any is compared,
    /// and comparison runs in section order — the reported error is the
    /// first failing section in section order, identical to the serial
    /// walk's, whatever the sharding.
    fn verify_section_checksums(
        &self,
        bytes: &[u8],
        threads: usize,
    ) -> Result<ValidateStats, WireError> {
        let section_words: Vec<usize> = (0..NUM_SECTIONS)
            .map(|i| self.secs[i + 1] - self.secs[i])
            .collect();
        let total_words: usize = section_words.iter().sum();
        let threads = match threads {
            0 if total_words * 8 < PARALLEL_VALIDATE_MIN_BYTES => 1,
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        }
        .clamp(1, NUM_SECTIONS);

        let mut actual = [0u64; NUM_SECTIONS];
        let per_thread_words;
        if threads == 1 {
            for (i, sum) in actual.iter_mut().enumerate() {
                *sum = fnv1a_bytes(&bytes[self.secs[i] * 8..self.secs[i + 1] * 8]);
            }
            per_thread_words = vec![total_words];
        } else {
            // Deterministic longest-processing-time assignment: sections
            // sorted by word count (descending, ties by index), each placed
            // on the least-loaded worker — balanced whatever the section
            // size skew (the pools dwarf the CSR columns).
            let mut order: Vec<usize> = (0..NUM_SECTIONS).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(section_words[i]), i));
            let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); threads];
            let mut load = vec![0usize; threads];
            for i in order {
                let w = (0..threads)
                    .min_by_key(|&t| (load[t], t))
                    .expect("threads >= 1");
                load[w] += section_words[i];
                assignment[w].push(i);
            }
            let sums: Vec<Vec<(usize, u64)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = assignment
                    .iter()
                    .map(|sections| {
                        scope.spawn(move || {
                            sections
                                .iter()
                                .map(|&i| {
                                    (
                                        i,
                                        fnv1a_bytes(&bytes[self.secs[i] * 8..self.secs[i + 1] * 8]),
                                    )
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("checksum worker cannot panic"))
                    .collect()
            });
            for worker in sums {
                for (i, sum) in worker {
                    actual[i] = sum;
                }
            }
            per_thread_words = load;
        }

        for (i, sec) in Section::ALL.iter().enumerate() {
            let expected = self.words.get(H_SECTION_SUMS + i);
            if expected != actual[i] {
                return Err(WireError::ChecksumMismatch {
                    region: sec.name(),
                    expected,
                    actual: actual[i],
                });
            }
        }
        Ok(ValidateStats {
            threads,
            per_thread_words,
        })
    }

    fn validate_clusters(&self, total_members: usize) -> Result<(), WireError> {
        let words = self.words;
        // Centre index entries point at clusters whose centre points back.
        let ci = self.secs[Section::CenterIndex as usize];
        for v in 0..self.n {
            let c = words.get(ci + v);
            if c == NULL {
                continue;
            }
            if c as usize >= self.num_clusters {
                return Err(WireError::Corrupt {
                    what: "centre index points past the cluster table",
                });
            }
            if self.cluster(c as usize).center != v {
                return Err(WireError::Corrupt {
                    what: "centre index disagrees with the cluster table",
                });
            }
        }
        let table_pool_len =
            self.secs[Section::TablePool as usize + 1] - self.secs[Section::TablePool as usize];
        let mut covered = 0usize;
        for id in 0..self.num_clusters {
            let c = self.cluster(id);
            if c.center >= self.n
                || words.get(ci + c.center) != id as u64
                || c.members_start != covered
                || c.members_len == 0
            {
                return Err(WireError::Corrupt {
                    what: "cluster descriptor inconsistent",
                });
            }
            covered += c.members_len;
            if covered > total_members {
                return Err(WireError::Corrupt {
                    what: "cluster members overrun the member column",
                });
            }
            let members = c.members();
            let mut prev: Option<u64> = None;
            let mut has_center = false;
            for i in 0..members.len() {
                let v = members.get(i);
                if v >= self.n as u64 || prev.is_some_and(|p| p >= v) {
                    return Err(WireError::Corrupt {
                        what: "cluster members not ascending vertex ids",
                    });
                }
                has_center |= v as usize == c.center;
                prev = Some(v);
                let rel = words
                    .get(self.secs[Section::MemberTableOffs as usize] + c.members_start + i)
                    as usize;
                validate_table_record(
                    words,
                    self.secs[Section::TablePool as usize],
                    table_pool_len,
                    rel,
                )?;
            }
            if !has_center {
                return Err(WireError::Corrupt {
                    what: "cluster centre is not a member",
                });
            }
        }
        if covered != total_members {
            return Err(WireError::Corrupt {
                what: "member column not fully covered by clusters",
            });
        }
        Ok(())
    }

    fn validate_csrs(&self) -> Result<(), WireError> {
        let words = self.words;
        // The v3 rank index is column-aligned with the tree column: same
        // length, and — checked per incidence below — every slot points back
        // at its vertex in the named cluster's member column. Requiring the
        // tree column to also match the member count makes the incidence map
        // a *bijection* (slots are injective per cluster), so every member
        // entry is reachable through the index and the indexed lookup is
        // provably equivalent to the member binary search it replaced.
        let vv = Section::VtreesVals as usize;
        let ms = Section::MemberSlots as usize;
        if self.secs[ms + 1] - self.secs[ms] != self.secs[vv + 1] - self.secs[vv] {
            return Err(WireError::Corrupt {
                what: "member-slot index length disagrees with the tree column",
            });
        }
        if self.secs[vv + 1] - self.secs[vv] != self.words.get(H_TOTAL_MEMBERS) as usize {
            return Err(WireError::Corrupt {
                what: "tree column length disagrees with the member count",
            });
        }
        let check_csr = |s: Section, unit: usize, vals: Section| -> Result<(), WireError> {
            let base = self.secs[s as usize];
            let vals_len = (self.secs[vals as usize + 1] - self.secs[vals as usize]) / unit;
            let mut prev = 0u64;
            for v in 0..=self.n {
                let o = words.get(base + v);
                if (v == 0 && o != 0) || o < prev || o as usize > vals_len {
                    return Err(WireError::Corrupt {
                        what: "CSR offsets not monotone within bounds",
                    });
                }
                prev = o;
            }
            if prev as usize != vals_len {
                return Err(WireError::Corrupt {
                    what: "CSR does not cover its value column",
                });
            }
            Ok(())
        };
        check_csr(Section::VtreesOff, 1, Section::VtreesVals)?;
        check_csr(Section::OwnOff, OWN_ENTRY_WORDS, Section::OwnEntries)?;
        check_csr(
            Section::LabelEntriesOff,
            LABEL_ENTRY_WORDS,
            Section::LabelEntries,
        )?;

        let label_pool_base = self.secs[Section::LabelPool as usize];
        let label_pool_len = self.secs[Section::LabelPool as usize + 1] - label_pool_base;
        for v in 0..self.n {
            // Tree memberships: ascending centre ids, each with a rank-index
            // slot that resolves back to `v` in that cluster's member column.
            let trees = self.trees_of(v);
            let slots_at = self.secs[ms] + (trees.start - self.secs[vv]);
            for i in 0..trees.len() {
                let c = trees.get(i);
                if c >= self.n as u64 || (i > 0 && trees.get(i - 1) >= c) {
                    return Err(WireError::Corrupt {
                        what: "vertex tree list not ascending centre ids",
                    });
                }
                let Some(cluster) = self.cluster_of_center(c as NodeId) else {
                    return Err(WireError::Corrupt {
                        what: "vertex tree list names a centre without a cluster",
                    });
                };
                let slot = words.get(slots_at + i) as usize;
                if slot >= cluster.len() || cluster.members().get(slot) != v as u64 {
                    return Err(WireError::Corrupt {
                        what: "member-slot index disagrees with the member column",
                    });
                }
            }
            // Own-cluster entries: ascending member ids, valid label records.
            let (start, count) = self.own_range(v);
            let base = self.secs[Section::OwnEntries as usize];
            for e in 0..count {
                let m = words.get(base + (start + e) * OWN_ENTRY_WORDS);
                if m >= self.n as u64
                    || (e > 0 && words.get(base + (start + e - 1) * OWN_ENTRY_WORDS) >= m)
                {
                    return Err(WireError::Corrupt {
                        what: "own-cluster entries not ascending member ids",
                    });
                }
                let off = words.get(base + (start + e) * OWN_ENTRY_WORDS + 1) as usize;
                validate_label_record(words, label_pool_base, label_pool_len, off)?;
            }
            // Node-label entries: levels within range, valid label records.
            let (start, count) = self.label_entry_range(v);
            let base = self.secs[Section::LabelEntries as usize];
            for e in 0..count {
                let at = base + (start + e) * LABEL_ENTRY_WORDS;
                if words.get(at) >= self.k as u64 || words.get(at + 1) >= self.n as u64 {
                    return Err(WireError::Corrupt {
                        what: "label entry level or pivot out of range",
                    });
                }
                let off = words.get(at + 3);
                if off != NULL {
                    validate_label_record(words, label_pool_base, label_pool_len, off as usize)?;
                }
            }
        }
        Ok(())
    }

    // --- Header accessors ----------------------------------------------------

    /// Number of host vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The trade-off parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of cluster trees.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Total snapshot size in bytes.
    pub fn snapshot_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Sum of all cluster sizes.
    pub fn total_members(&self) -> usize {
        self.words.get(H_TOTAL_MEMBERS) as usize
    }

    /// Largest routing table in `O(log n)` words (the Table-1 accounting the
    /// in-memory scheme measured at serialization time).
    pub fn max_table_words(&self) -> usize {
        self.words.get(H_MAX_TABLE_WORDS) as usize
    }

    /// Summed routing-table words over all vertices.
    pub fn total_table_words(&self) -> usize {
        self.words.get(H_TOTAL_TABLE_WORDS) as usize
    }

    /// Largest label in `O(log n)` words.
    pub fn max_label_words(&self) -> usize {
        self.words.get(H_MAX_LABEL_WORDS) as usize
    }

    /// Summed label words over all vertices.
    pub fn total_label_words(&self) -> usize {
        self.words.get(H_TOTAL_LABEL_WORDS) as usize
    }

    // --- Column accessors ----------------------------------------------------

    /// The ascending centres of the cluster trees containing `v` (empty for
    /// a vertex id outside the snapshot).
    pub fn trees_of(&self, v: NodeId) -> FlatU64s<'a> {
        if v >= self.n {
            return FlatU64s {
                words: self.words,
                start: self.secs[Section::VtreesVals as usize],
                len: 0,
            };
        }
        let base = self.secs[Section::VtreesOff as usize];
        let start = self.words.get(base + v) as usize;
        let end = self.words.get(base + v + 1) as usize;
        FlatU64s {
            words: self.words,
            start: self.secs[Section::VtreesVals as usize] + start,
            len: end - start,
        }
    }

    /// `(start entry, entry count)` of `v`'s slice of an offset CSR; empty
    /// for a vertex id outside the snapshot.
    fn csr_range(&self, offsets: Section, v: NodeId) -> (usize, usize) {
        if v >= self.n {
            return (0, 0);
        }
        let base = self.secs[offsets as usize];
        let start = self.words.get(base + v) as usize;
        let end = self.words.get(base + v + 1) as usize;
        (start, end - start)
    }

    /// [`Self::csr_range`] with the offset pair checked for monotonicity
    /// and against the value section's capacity (`unit` words per entry).
    fn try_csr_range(
        &self,
        offsets: Section,
        vals: Section,
        unit: usize,
        v: NodeId,
    ) -> Result<(usize, usize), WireError> {
        if v >= self.n {
            return Ok((0, 0));
        }
        let err = WireError::Corrupt {
            what: "CSR offsets not monotone within bounds",
        };
        let base = self.secs[offsets as usize];
        let start = self.words.try_get(base + v).ok_or(err)? as usize;
        let end = self.words.try_get(base + v + 1).ok_or(err)? as usize;
        let vals_len = (self.secs[vals as usize + 1] - self.secs[vals as usize]) / unit;
        if start > end || end > vals_len {
            return Err(err);
        }
        Ok((start, end - start))
    }

    /// [`Self::trees_of`] with the CSR offsets checked: a corrupt offset
    /// pair (non-monotone, or pointing past the value column) is reported
    /// instead of producing a slice that reads out of bounds.
    pub fn try_trees_of(&self, v: NodeId) -> Result<FlatU64s<'a>, WireError> {
        let (start, len) = self.try_csr_range(Section::VtreesOff, Section::VtreesVals, 1, v)?;
        Ok(FlatU64s {
            words: self.words,
            start: self.secs[Section::VtreesVals as usize] + start,
            len,
        })
    }

    fn own_range(&self, v: NodeId) -> (usize, usize) {
        self.csr_range(Section::OwnOff, v)
    }

    /// The `4k−5` refinement lookup: if `center` stores an own-cluster label
    /// for `member`, return it (`None` for out-of-range ids).
    pub fn own_label(&self, center: NodeId, member: NodeId) -> Option<FlatTreeLabel<'a>> {
        let (start, count) = self.own_range(center);
        let base = self.secs[Section::OwnEntries as usize];
        let (mut lo, mut hi) = (0usize, count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let m = self.words.get(base + (start + mid) * OWN_ENTRY_WORDS);
            match m.cmp(&(member as u64)) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let off = self.words.get(base + (start + mid) * OWN_ENTRY_WORDS + 1) as usize;
                    return Some(FlatTreeLabel {
                        words: self.words,
                        off: self.secs[Section::LabelPool as usize] + off,
                    });
                }
            }
        }
        None
    }

    /// [`Self::own_label`] with the CSR range, the entry reads, and the
    /// label record all bounds-checked before a view escapes.
    pub fn try_own_label(
        &self,
        center: NodeId,
        member: NodeId,
    ) -> Result<Option<FlatTreeLabel<'a>>, WireError> {
        let (start, count) = self.try_csr_range(
            Section::OwnOff,
            Section::OwnEntries,
            OWN_ENTRY_WORDS,
            center,
        )?;
        let err = WireError::Corrupt {
            what: "own-cluster entry runs past the buffer",
        };
        let base = self.secs[Section::OwnEntries as usize];
        let (mut lo, mut hi) = (0usize, count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let m = self
                .words
                .try_get(base + (start + mid) * OWN_ENTRY_WORDS)
                .ok_or(err)?;
            match m.cmp(&(member as u64)) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let off = self
                        .words
                        .try_get(base + (start + mid) * OWN_ENTRY_WORDS + 1)
                        .ok_or(err)? as usize;
                    let pool_base = self.secs[Section::LabelPool as usize];
                    let pool_len = self.secs[Section::LabelPool as usize + 1] - pool_base;
                    validate_label_record(self.words, pool_base, pool_len, off)?;
                    return Ok(Some(FlatTreeLabel {
                        words: self.words,
                        off: pool_base + off,
                    }));
                }
            }
        }
        Ok(None)
    }

    /// Number of own-cluster labels stored at `center` (0 unless `center` is
    /// a level-0 centre).
    pub fn own_label_count(&self, center: NodeId) -> usize {
        self.own_range(center).1
    }

    fn label_entry_range(&self, v: NodeId) -> (usize, usize) {
        self.csr_range(Section::LabelEntriesOff, v)
    }

    /// Number of node-label entries `v` carries (0 for a vertex id outside
    /// the snapshot).
    pub fn label_entry_count(&self, v: NodeId) -> usize {
        self.label_entry_range(v).1
    }

    /// `v`'s `i`-th node-label entry, in ascending level order, or `None`
    /// when `i` is past the entry count.
    pub fn label_entry_at(&self, v: NodeId, i: usize) -> Option<FlatLabelEntry<'a>> {
        let (start, count) = self.label_entry_range(v);
        (i < count).then(|| self.decode_label_entry(start + i))
    }

    fn decode_label_entry(&self, entry: usize) -> FlatLabelEntry<'a> {
        let at = self.secs[Section::LabelEntries as usize] + entry * LABEL_ENTRY_WORDS;
        let off = self.words.get(at + 3);
        FlatLabelEntry {
            level: self.words.get(at) as usize,
            pivot: self.words.get(at + 1) as NodeId,
            dist: self.words.get(at + 2),
            tree_label: (off != NULL).then(|| FlatTreeLabel {
                words: self.words,
                off: self.secs[Section::LabelPool as usize] + off as usize,
            }),
        }
    }

    /// [`Self::label_entry_count`] with the CSR offsets checked.
    pub fn try_label_entry_count(&self, v: NodeId) -> Result<usize, WireError> {
        self.try_csr_range(
            Section::LabelEntriesOff,
            Section::LabelEntries,
            LABEL_ENTRY_WORDS,
            v,
        )
        .map(|(_, count)| count)
    }

    /// [`Self::label_entry_at`] with the CSR range, the level/pivot fields,
    /// and the referenced label record all checked before a view escapes —
    /// the per-entry building block of the checked query path (no
    /// allocation, unlike [`Self::try_label_entries_of`]).
    pub fn try_label_entry_at(
        &self,
        v: NodeId,
        i: usize,
    ) -> Result<Option<FlatLabelEntry<'a>>, WireError> {
        let (start, count) = self.try_csr_range(
            Section::LabelEntriesOff,
            Section::LabelEntries,
            LABEL_ENTRY_WORDS,
            v,
        )?;
        if i >= count {
            return Ok(None);
        }
        let err = WireError::Corrupt {
            what: "label entry runs past the buffer",
        };
        let at = self.secs[Section::LabelEntries as usize] + (start + i) * LABEL_ENTRY_WORDS;
        let level = self.words.try_get(at).ok_or(err)?;
        let pivot = self.words.try_get(at + 1).ok_or(err)?;
        if level >= self.k as u64 || pivot >= self.n as u64 {
            return Err(WireError::Corrupt {
                what: "label entry level or pivot out of range",
            });
        }
        let dist = self.words.try_get(at + 2).ok_or(err)?;
        let off = self.words.try_get(at + 3).ok_or(err)?;
        let pool_base = self.secs[Section::LabelPool as usize];
        let tree_label = if off == NULL {
            None
        } else {
            let pool_len = self.secs[Section::LabelPool as usize + 1] - pool_base;
            validate_label_record(self.words, pool_base, pool_len, off as usize)?;
            Some(FlatTreeLabel {
                words: self.words,
                off: pool_base + off as usize,
            })
        };
        Ok(Some(FlatLabelEntry {
            level: level as usize,
            pivot: pivot as NodeId,
            dist,
            tree_label,
        }))
    }

    /// The node-label entries of `v`, in ascending level order (empty for a
    /// vertex id outside the snapshot).
    pub fn label_entries_of(&self, v: NodeId) -> impl Iterator<Item = FlatLabelEntry<'a>> + '_ {
        let (start, count) = self.label_entry_range(v);
        (0..count).map(move |e| self.decode_label_entry(start + e))
    }

    /// [`Self::label_entries_of`] with every entry checked — the CSR range,
    /// the level/pivot fields, and each referenced label record — collected
    /// into a vector (the checked path may allocate; the hot path may not).
    pub fn try_label_entries_of(&self, v: NodeId) -> Result<Vec<FlatLabelEntry<'a>>, WireError> {
        let (start, count) = self.try_csr_range(
            Section::LabelEntriesOff,
            Section::LabelEntries,
            LABEL_ENTRY_WORDS,
            v,
        )?;
        let err = WireError::Corrupt {
            what: "label entry runs past the buffer",
        };
        let base = self.secs[Section::LabelEntries as usize];
        let pool_base = self.secs[Section::LabelPool as usize];
        let pool_len = self.secs[Section::LabelPool as usize + 1] - pool_base;
        let mut out = Vec::with_capacity(count);
        for e in 0..count {
            let at = base + (start + e) * LABEL_ENTRY_WORDS;
            let level = self.words.try_get(at).ok_or(err)?;
            let pivot = self.words.try_get(at + 1).ok_or(err)?;
            if level >= self.k as u64 || pivot >= self.n as u64 {
                return Err(WireError::Corrupt {
                    what: "label entry level or pivot out of range",
                });
            }
            let dist = self.words.try_get(at + 2).ok_or(err)?;
            let off = self.words.try_get(at + 3).ok_or(err)?;
            let tree_label = if off == NULL {
                None
            } else {
                validate_label_record(self.words, pool_base, pool_len, off as usize)?;
                Some(FlatTreeLabel {
                    words: self.words,
                    off: pool_base + off as usize,
                })
            };
            out.push(FlatLabelEntry {
                level: level as usize,
                pivot: pivot as NodeId,
                dist,
                tree_label,
            });
        }
        Ok(out)
    }

    /// The cluster with dense id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= num_clusters()`.
    pub fn cluster(&self, id: usize) -> FlatCluster<'a> {
        assert!(id < self.num_clusters, "cluster id out of range");
        let at = self.secs[Section::Clusters as usize] + id * CLUSTER_RECORD_WORDS;
        FlatCluster {
            scheme: *self,
            id,
            center: self.words.get(at) as NodeId,
            level: self.words.get(at + 1) as usize,
            members_start: self.words.get(at + 2) as usize,
            members_len: self.words.get(at + 3) as usize,
        }
    }

    /// The cluster rooted at `center`, if any.
    ///
    /// # Panics
    ///
    /// Panics over an unvalidated scheme whose centre index names a cluster
    /// id past the cluster table; [`Self::try_cluster_of_center`] reports
    /// that instead.
    pub fn cluster_of_center(&self, center: NodeId) -> Option<FlatCluster<'a>> {
        if center >= self.n {
            return None;
        }
        let id = self
            .words
            .get(self.secs[Section::CenterIndex as usize] + center);
        (id != NULL).then(|| self.cluster(id as usize))
    }

    /// [`Self::cluster_of_center`] with the centre-index word checked
    /// against the cluster table before it is used as an index.
    pub fn try_cluster_of_center(
        &self,
        center: NodeId,
    ) -> Result<Option<FlatCluster<'a>>, WireError> {
        if center >= self.n {
            return Ok(None);
        }
        let id = self
            .words
            .try_get(self.secs[Section::CenterIndex as usize] + center)
            .ok_or(WireError::Corrupt {
                what: "centre index runs past the buffer",
            })?;
        if id == NULL {
            return Ok(None);
        }
        if id as usize >= self.num_clusters {
            return Err(WireError::Corrupt {
                what: "centre index points past the cluster table",
            });
        }
        Ok(Some(self.cluster(id as usize)))
    }

    /// Iterates all clusters in dense id order.
    pub fn clusters(&self) -> impl Iterator<Item = FlatCluster<'a>> + '_ {
        (0..self.num_clusters).map(move |id| self.cluster(id))
    }

    /// The snapshot's byte-budget manifest: each section's span and stored
    /// checksum, straight from the (already shape-checked) header. Fault
    /// tooling uses it to aim truncations and flips at exact boundaries.
    pub fn manifest(&self) -> SnapshotManifest {
        let mut sections = [SectionSpan {
            section: Section::CenterIndex,
            start_word: 0,
            words: 0,
            checksum: 0,
        }; NUM_SECTIONS];
        for (i, sec) in Section::ALL.iter().enumerate() {
            sections[i] = SectionSpan {
                section: *sec,
                start_word: self.secs[i],
                words: self.secs[i + 1] - self.secs[i],
                checksum: self.words.get(H_SECTION_SUMS + i),
            };
        }
        SnapshotManifest {
            total_words: self.words.len(),
            header_checksum: self.words.get(H_HEADER_SUM),
            sections,
        }
    }
}

/// One section's span inside a snapshot, as declared by the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionSpan {
    /// Which section.
    pub section: Section,
    /// Absolute start, in words from the buffer start.
    pub start_word: usize,
    /// Length in words.
    pub words: usize,
    /// The checksum the header stores for this section.
    pub checksum: u64,
}

/// The header's byte-budget manifest: every section span plus the stored
/// checksums (see [`FlatScheme::manifest`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotManifest {
    /// Total buffer size in words.
    pub total_words: usize,
    /// The stored header checksum.
    pub header_checksum: u64,
    /// Per-section spans, in buffer order.
    pub sections: [SectionSpan; NUM_SECTIONS],
}

impl SnapshotManifest {
    /// The word offsets of every section boundary, ascending: the start of
    /// each section plus the end of the buffer — the exact places where a
    /// torn transfer truncates cleanly.
    pub fn boundaries(&self) -> Vec<usize> {
        let mut b: Vec<usize> = self.sections.iter().map(|s| s.start_word).collect();
        b.push(self.total_words);
        b
    }
}

/// Walks one table record, checking that it fits inside the table pool.
fn validate_table_record(
    words: Words<'_>,
    pool_base: usize,
    pool_len: usize,
    rel: usize,
) -> Result<(), WireError> {
    let err = WireError::Corrupt {
        what: "table record overruns the table pool",
    };
    let end = rel.checked_add(TABLE_FIXED_WORDS).ok_or(err)?;
    if end > pool_len {
        return Err(err);
    }
    if words.get(pool_base + rel + 7) != NULL {
        // Global-heavy tail: portal, portal-label DFS time, exception count…
        let count_end = end.checked_add(3).ok_or(err)?;
        if count_end > pool_len {
            return Err(err);
        }
        // …then that many (x, x') pairs.
        let exc = words.get(pool_base + end + 2) as usize;
        if count_end
            .checked_add(exc.checked_mul(2).ok_or(err)?)
            .ok_or(err)?
            > pool_len
        {
            return Err(err);
        }
    }
    Ok(())
}

/// Walks one label record, checking that it fits inside the label pool.
fn validate_label_record(
    words: Words<'_>,
    pool_base: usize,
    pool_len: usize,
    rel: usize,
) -> Result<(), WireError> {
    let err = WireError::Corrupt {
        what: "label record overruns the label pool",
    };
    let check = |at: usize| if at > pool_len { Err(err) } else { Ok(at) };
    let mut at = check(rel.checked_add(5).ok_or(err)?)?;
    let local_exc = words.get(pool_base + rel + 4) as usize;
    at = check(
        at.checked_add(local_exc.checked_mul(2).ok_or(err)?)
            .ok_or(err)?,
    )?;
    check(at + 1)?;
    let gexc = words.get(pool_base + at) as usize;
    at += 1;
    for _ in 0..gexc {
        check(at.checked_add(5).ok_or(err)?)?;
        let exc = words.get(pool_base + at + 4) as usize;
        at = check(
            at.checked_add(5)
                .and_then(|x| x.checked_add(exc.checked_mul(2)?))
                .ok_or(err)?,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    //! Per-accessor corruption drills: each test poisons one word that the
    //! header's *shape* checks cannot see (so the buffer still opens with
    //! [`FlatScheme::from_bytes_unvalidated`]), then asserts the checked
    //! accessor reports the damage as a [`WireError`] instead of panicking —
    //! and that the full [`FlatScheme::from_bytes`] pass catches the same
    //! corruption up front via the section checksums.

    use super::*;
    use crate::serialize;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
    use en_routing::construction::{build_routing_scheme, ConstructionConfig};

    fn snapshot() -> Vec<u8> {
        let g = erdos_renyi_connected(&GeneratorConfig::new(64, 9).with_weights(1, 15), 0.12);
        let built = build_routing_scheme(&g, &ConstructionConfig::new(2, 9)).unwrap();
        serialize(&built.scheme)
    }

    fn word_at(bytes: &[u8], w: usize) -> u64 {
        u64::from_le_bytes(bytes[w * 8..w * 8 + 8].try_into().unwrap())
    }

    /// Overwrites word `w` and asserts the checksum layer would have caught
    /// it, then hands back the corrupt buffer for the accessor drill.
    fn poke(bytes: &[u8], w: usize, value: u64) -> Vec<u8> {
        let mut out = bytes.to_vec();
        out[w * 8..w * 8 + 8].copy_from_slice(&value.to_le_bytes());
        assert!(
            FlatScheme::from_bytes(&out).is_err(),
            "a poisoned word must never validate"
        );
        out
    }

    fn start(m: &SnapshotManifest, s: Section) -> usize {
        m.sections[s as usize].start_word
    }

    #[test]
    fn try_cluster_of_center_reports_poisoned_centre_index() {
        let bytes = snapshot();
        let flat = FlatScheme::from_bytes(&bytes).unwrap();
        let m = flat.manifest();
        let ci = start(&m, Section::CenterIndex);
        let center = (0..flat.n())
            .find(|&v| word_at(&bytes, ci + v) != NULL)
            .expect("some vertex is a centre");
        let bad = poke(&bytes, ci + center, flat.num_clusters() as u64 + 7);
        let forced = FlatScheme::from_bytes_unvalidated(&bad).unwrap();
        assert!(matches!(
            forced.try_cluster_of_center(center),
            Err(WireError::Corrupt { .. })
        ));
        // Ids past n stay a clean miss even on a corrupt buffer.
        assert!(matches!(
            forced.try_cluster_of_center(forced.n() + 3),
            Ok(None)
        ));
    }

    #[test]
    fn try_members_reports_member_span_overrun() {
        let bytes = snapshot();
        let m = FlatScheme::from_bytes(&bytes).unwrap().manifest();
        let cl = start(&m, Section::Clusters);
        // Cluster 0's descriptor: [center, level, members_start, members_len].
        let bad = poke(&bytes, cl + 3, 1 << 40);
        let forced = FlatScheme::from_bytes_unvalidated(&bad).unwrap();
        let cluster = forced.cluster(0);
        assert!(matches!(
            cluster.try_members(),
            Err(WireError::Corrupt { .. })
        ));
        // table_of goes through the same span first.
        assert!(cluster.try_table_of(0).is_err());
    }

    #[test]
    fn try_table_of_reports_poisoned_table_offset() {
        let bytes = snapshot();
        let m = FlatScheme::from_bytes(&bytes).unwrap().manifest();
        let cl = start(&m, Section::Clusters);
        let members_start = word_at(&bytes, cl + 2) as usize;
        let member0 = word_at(&bytes, start(&m, Section::MemberIds) + members_start) as NodeId;
        let bad = poke(
            &bytes,
            start(&m, Section::MemberTableOffs) + members_start,
            u64::MAX,
        );
        let forced = FlatScheme::from_bytes_unvalidated(&bad).unwrap();
        assert!(matches!(
            forced.cluster(0).try_table_of(member0),
            Err(WireError::Corrupt { .. })
        ));
    }

    #[test]
    fn try_trees_of_reports_corrupt_csr_offsets() {
        let bytes = snapshot();
        let m = FlatScheme::from_bytes(&bytes).unwrap().manifest();
        let vo = start(&m, Section::VtreesOff);
        // Poisoning off[1] breaks vertex 0 (end past the column) and vertex 1
        // (non-monotone start > end) at once.
        let bad = poke(&bytes, vo + 1, u64::MAX);
        let forced = FlatScheme::from_bytes_unvalidated(&bad).unwrap();
        assert!(forced.try_trees_of(0).is_err());
        assert!(forced.try_trees_of(1).is_err());
        // Vertices whose offsets are untouched still read cleanly.
        let pristine = FlatScheme::from_bytes(&bytes).unwrap();
        let healthy: Vec<u64> = forced.try_trees_of(5).unwrap().iter().collect();
        let expect: Vec<u64> = pristine.trees_of(5).iter().collect();
        assert_eq!(healthy, expect);
    }

    #[test]
    fn try_own_label_reports_poisoned_label_offset() {
        let bytes = snapshot();
        let flat = FlatScheme::from_bytes(&bytes).unwrap();
        let m = flat.manifest();
        let oo = start(&m, Section::OwnOff);
        let v = (0..flat.n())
            .find(|&v| word_at(&bytes, oo + v + 1) > word_at(&bytes, oo + v))
            .expect("some centre stores own-cluster labels (4k-5 refinement)");
        let entry =
            start(&m, Section::OwnEntries) + word_at(&bytes, oo + v) as usize * OWN_ENTRY_WORDS;
        let member = word_at(&bytes, entry) as NodeId;
        // Sanity: the pristine lookup resolves.
        assert!(flat.try_own_label(v, member).unwrap().is_some());
        let bad = poke(&bytes, entry + 1, u64::MAX);
        let forced = FlatScheme::from_bytes_unvalidated(&bad).unwrap();
        assert!(matches!(
            forced.try_own_label(v, member),
            Err(WireError::Corrupt { .. })
        ));
    }

    #[test]
    fn try_label_entries_of_reports_out_of_range_fields() {
        let bytes = snapshot();
        let flat = FlatScheme::from_bytes(&bytes).unwrap();
        let m = flat.manifest();
        let lo = start(&m, Section::LabelEntriesOff);
        let v = (0..flat.n())
            .find(|&v| word_at(&bytes, lo + v + 1) > word_at(&bytes, lo + v))
            .expect("some vertex has label entries");
        let entry =
            start(&m, Section::LabelEntries) + word_at(&bytes, lo + v) as usize * LABEL_ENTRY_WORDS;

        // Level past k.
        let bad = poke(&bytes, entry, flat.k() as u64 + 100);
        let forced = FlatScheme::from_bytes_unvalidated(&bad).unwrap();
        assert!(matches!(
            forced.try_label_entries_of(v),
            Err(WireError::Corrupt { .. })
        ));

        // Pivot past n.
        let bad = poke(&bytes, entry + 1, flat.n() as u64 + 100);
        let forced = FlatScheme::from_bytes_unvalidated(&bad).unwrap();
        assert!(forced.try_label_entries_of(v).is_err());

        // Label-pool offset past the pool.
        let bad = poke(&bytes, entry + 3, u64::MAX - 1);
        let forced = FlatScheme::from_bytes_unvalidated(&bad).unwrap();
        assert!(forced.try_label_entries_of(v).is_err());

        // The pristine checked path agrees with the fast iterator.
        let checked = flat.try_label_entries_of(v).unwrap();
        let fast: Vec<FlatLabelEntry<'_>> = flat.label_entries_of(v).collect();
        assert_eq!(checked.len(), fast.len());
        for (a, b) in checked.iter().zip(&fast) {
            assert_eq!(a.level, b.level);
            assert_eq!(a.pivot, b.pivot);
            assert_eq!(a.dist, b.dist);
        }
    }

    #[test]
    fn scrambled_member_column_never_panics_the_checked_paths() {
        let bytes = snapshot();
        let flat = FlatScheme::from_bytes(&bytes).unwrap();
        let m = flat.manifest();
        let cl = start(&m, Section::Clusters);
        let members_start = word_at(&bytes, cl + 2) as usize;
        let members_len = word_at(&bytes, cl + 3) as usize;
        assert!(members_len >= 2, "cluster 0 needs two members for the swap");
        let mi = start(&m, Section::MemberIds) + members_start;
        let (a, b) = (word_at(&bytes, mi), word_at(&bytes, mi + 1));
        let bad = poke(&poke(&bytes, mi, b), mi + 1, a);
        let forced = FlatScheme::from_bytes_unvalidated(&bad).unwrap();
        let cluster = forced.cluster(0);
        // A descending run breaks the binary-search invariant: the lookups
        // may miss or err, but they must return, not panic.
        for v in [a as NodeId, b as NodeId, 0, forced.n() - 1] {
            let _ = cluster.try_table_of(v);
            let _ = forced.try_own_label(v, a as NodeId);
        }
    }

    #[test]
    fn rank_index_agrees_with_the_member_search_oracle() {
        let bytes = snapshot();
        let flat = FlatScheme::from_bytes(&bytes).unwrap();
        let mut lookups = 0usize;
        for cluster in flat.clusters() {
            for slot in 0..cluster.len() {
                let v = cluster.members().get(slot) as NodeId;
                assert_eq!(cluster.slot_of(v), Some(slot));
                let fast = cluster.table_of(v).expect("member resolves via the index");
                let oracle = cluster
                    .table_of_by_search(v)
                    .expect("member resolves via search");
                assert_eq!(fast.off, oracle.off, "index and search disagree on {v}");
                assert_eq!(fast.vertex(), oracle.vertex());
                // table_at addresses the same record by slot alone.
                assert_eq!(cluster.table_at(slot).unwrap().off, fast.off);
                // The checked path lands on the same record too.
                assert_eq!(cluster.try_table_of(v).unwrap().unwrap().off, fast.off);
                lookups += 1;
            }
            // Non-members miss on both paths (a cluster may span all of V,
            // in which case there is no outsider to probe).
            if let Some(outsider) =
                (0..flat.n()).find(|&v| cluster.members().binary_search(v as u64).is_err())
            {
                assert!(cluster.table_of(outsider).is_none());
                assert!(cluster.table_of_by_search(outsider).is_none());
                assert!(cluster.try_table_of(outsider).unwrap().is_none());
            }
        }
        assert!(lookups > 0, "the drill must exercise real lookups");
    }

    #[test]
    fn try_table_of_reports_poisoned_rank_index() {
        let bytes = snapshot();
        let flat = FlatScheme::from_bytes(&bytes).unwrap();
        let m = flat.manifest();
        // Pick an incidence whose cluster has a second member to point at.
        let (v, i, c) = (0..flat.n())
            .flat_map(|v| {
                let trees = flat.trees_of(v);
                (0..trees.len()).map(move |i| (v, i, trees.get(i) as NodeId))
            })
            .find(|&(_, _, c)| flat.cluster_of_center(c).unwrap().len() >= 2)
            .expect("some cluster has at least two members");
        let slot_word = start(&m, Section::MemberSlots)
            + (flat.trees_of(v).start - start(&m, Section::VtreesVals))
            + i;
        let cluster = flat.cluster_of_center(c).unwrap();
        let good = word_at(&bytes, slot_word) as usize;

        // A slot naming a *different* member: in range, so only the
        // member-column agreement check can catch it.
        let bad = poke(&bytes, slot_word, ((good + 1) % cluster.len()) as u64);
        let forced = FlatScheme::from_bytes_unvalidated(&bad).unwrap();
        assert!(matches!(
            forced.cluster_of_center(c).unwrap().try_table_of(v),
            Err(WireError::Corrupt { .. })
        ));

        // A slot far past every column.
        let bad = poke(&bytes, slot_word, u64::MAX);
        let forced = FlatScheme::from_bytes_unvalidated(&bad).unwrap();
        assert!(forced
            .cluster_of_center(c)
            .unwrap()
            .try_table_of(v)
            .is_err());
    }

    #[test]
    fn manifest_boundaries_cover_the_whole_buffer() {
        let bytes = snapshot();
        let flat = FlatScheme::from_bytes(&bytes).unwrap();
        let m = flat.manifest();
        let b = m.boundaries();
        assert_eq!(b.len(), NUM_SECTIONS + 1);
        assert_eq!(b[0], HEADER_WORDS, "first section starts after the header");
        assert_eq!(*b.last().unwrap(), bytes.len() / 8);
        assert!(b.windows(2).all(|w| w[0] <= w[1]), "boundaries ascend");
        let spanned: usize = m.sections.iter().map(|s| s.words).sum();
        assert_eq!(
            spanned + HEADER_WORDS,
            m.total_words,
            "sections tile the buffer"
        );
    }

    #[test]
    fn parallel_validation_accounts_the_whole_section_span() {
        let bytes = snapshot();
        let section_words = bytes.len() / 8 - HEADER_WORDS;
        for threads in [1usize, 2, 3, 7, NUM_SECTIONS, 64] {
            let (_, stats) = FlatScheme::from_bytes_accounted(&bytes, threads).unwrap();
            assert_eq!(
                stats.threads,
                threads.min(NUM_SECTIONS),
                "worker count is the request capped at the section count"
            );
            assert_eq!(stats.per_thread_words.len(), stats.threads);
            assert_eq!(
                stats.total_words(),
                section_words,
                "at {threads} threads the accounting must total the serial walk"
            );
        }
        // The automatic pick (threads = 0) accounts identically.
        let (_, auto) = FlatScheme::from_bytes_accounted(&bytes, 0).unwrap();
        assert_eq!(auto.total_words(), section_words);
    }

    #[test]
    fn parallel_validation_reports_the_same_error_as_serial() {
        let bytes = snapshot();
        let m = FlatScheme::from_bytes(&bytes).unwrap().manifest();
        // Poison one word in each of two sections; whatever the sharding,
        // the reported mismatch must be the first failing section in
        // section order — bit-identical to the serial walk's error.
        let mut bad = bytes.clone();
        for s in [Section::MemberIds, Section::LabelPool] {
            let w = m.sections[s as usize].start_word;
            bad[w * 8] ^= 0x10;
        }
        let serial = FlatScheme::from_bytes_accounted(&bad, 1).unwrap_err();
        for threads in [2usize, 5, NUM_SECTIONS] {
            let sharded = FlatScheme::from_bytes_accounted(&bad, threads).unwrap_err();
            assert_eq!(serial, sharded, "at {threads} threads");
        }
        assert!(matches!(
            serial,
            WireError::ChecksumMismatch {
                region: "member_ids",
                ..
            }
        ));
    }
}
