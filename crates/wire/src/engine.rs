//! The batched, multi-threaded query engine over a flat snapshot.
//!
//! [`QueryEngine`] answers `find_tree` / `route` queries directly off the
//! snapshot columns — forwarding runs through the *same*
//! [`next_hop_view`](en_tree_routing::next_hop_view) implementation the
//! in-memory [`RoutingScheme`] uses, over the flat
//! [`TableView`](en_tree_routing::TableView) /
//! [`LabelView`](en_tree_routing::LabelView) implementations, so outcomes
//! are bit-identical by construction. Batches shard across plain
//! `std::thread::scope` workers (the engine is `Sync`: a snapshot borrow
//! plus a graph borrow), each with its own pre-sized output scratch.

use en_graph::dijkstra::dijkstra;
use en_graph::{Dist, NodeId, Path, WeightedGraph};
use en_routing::error::RoutingError;
use en_routing::scheme::RouteOutcome;
use en_tree_routing::{next_hop_view, scheme::TreeRoutingError};

use crate::error::WireError;
use crate::flat::{FlatScheme, FlatTreeLabel};

/// A query engine serving one snapshot over one host graph.
///
/// The graph is needed only to weigh traversed paths (and, for
/// [`Self::route`], to compute the exact-distance denominator the stretch
/// report uses); forwarding itself reads nothing but the snapshot.
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine<'a> {
    flat: FlatScheme<'a>,
    graph: &'a WeightedGraph,
}

/// Aggregate statistics of one routed batch.
///
/// The stretch fields are meaningful only when the batch was given exact
/// distances; without them every outcome carries the `exact = 0` placeholder
/// (whose stretch reads 1.0 by convention).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Pairs in the batch.
    pub pairs: usize,
    /// Pairs routed successfully.
    pub delivered: usize,
    /// Pairs that failed (should be none outside adversarial inputs).
    pub failed: usize,
    /// Summed hop count of the delivered paths.
    pub total_hops: u64,
    /// Summed weighted length of the delivered paths.
    pub total_length: u64,
    /// Largest stretch over delivered pairs (0.0 when none delivered).
    pub max_stretch: f64,
    /// Mean stretch over delivered pairs (0.0 when none delivered).
    pub mean_stretch: f64,
}

/// The outcome of routing one batch: per-pair results in input order plus
/// the aggregate statistics — identical regardless of how many threads the
/// batch was sharded over.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One result per input pair, in input order.
    pub outcomes: Vec<Result<RouteOutcome, RoutingError>>,
    /// Aggregates over `outcomes`, computed in input order.
    pub stats: BatchStats,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine for `flat` over `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::GraphMismatch`] when the snapshot was built for a
    /// different vertex count.
    pub fn new(flat: FlatScheme<'a>, graph: &'a WeightedGraph) -> Result<Self, WireError> {
        if graph.num_nodes() != flat.n() {
            return Err(WireError::GraphMismatch {
                graph_n: graph.num_nodes(),
                snapshot_n: flat.n(),
            });
        }
        Ok(QueryEngine { flat, graph })
    }

    /// The snapshot this engine serves.
    pub fn flat(&self) -> &FlatScheme<'a> {
        &self.flat
    }

    fn check_node(&self, v: NodeId) -> Result<(), RoutingError> {
        if v < self.flat.n() {
            Ok(())
        } else {
            Err(RoutingError::NodeOutOfRange {
                node: v,
                n: self.flat.n(),
            })
        }
    }

    /// Algorithm 1 (`Find-tree`) plus the `4k−5` refinement, off the flat
    /// columns: the centre of the tree a packet from `from` to `to` will
    /// use, and the destination's (borrowed) tree label there.
    ///
    /// # Errors
    ///
    /// Mirrors [`RoutingScheme::find_tree`](en_routing::scheme::RoutingScheme::find_tree):
    /// out-of-range vertices and the (low-probability) no-common-tree case.
    pub fn find_tree(
        &self,
        from: NodeId,
        to: NodeId,
    ) -> Result<(NodeId, FlatTreeLabel<'a>), RoutingError> {
        self.check_node(from)?;
        self.check_node(to)?;
        // The 4k−5 refinement: `from` is a level-0 centre storing `to`'s
        // label in its own-cluster table.
        if let Some(label) = self.flat.own_label(from, to) {
            return Ok((from, label));
        }
        // Entries are stored in ascending level order, matching the
        // in-memory level scan.
        for entry in self.flat.label_entries_of(to) {
            let Some(tree_label) = entry.tree_label else {
                continue; // `to` itself is not in this pivot's tree.
            };
            if self
                .flat
                .trees_of(from)
                .binary_search(entry.pivot as u64)
                .is_ok()
            {
                return Ok((entry.pivot, tree_label));
            }
        }
        Err(RoutingError::NoCommonTree { from, to })
    }

    /// Forwards hop by hop, returning the tree used, its level, and the path.
    fn forward(&self, from: NodeId, to: NodeId) -> Result<(NodeId, usize, Path), RoutingError> {
        let (root, header_label) = self.find_tree(from, to)?;
        let cluster = self
            .flat
            .cluster_of_center(root)
            .ok_or_else(|| RoutingError::TreeRouting(format!("no cluster for centre {root}")))?;
        let mut path = Path::trivial(from);
        let mut current = from;
        for _ in 0..=self.flat.n() {
            let table = cluster
                .table_of(current)
                .ok_or(TreeRoutingError::NotInTree { vertex: current })?;
            match next_hop_view(table, header_label)? {
                None => return Ok((root, cluster.level, path)),
                Some(next) => {
                    path.push(next);
                    current = next;
                }
            }
        }
        Err(RoutingError::TreeRouting(format!(
            "forwarding from {from} to {to} through tree {root} did not terminate"
        )))
    }

    fn outcome(&self, root: NodeId, level: usize, path: Path, exact: Dist) -> RouteOutcome {
        let length = path.length_in(self.graph).unwrap_or(0);
        let stretch = if exact == 0 {
            1.0
        } else {
            length as f64 / exact as f64
        };
        RouteOutcome {
            tree_root: root,
            level,
            path,
            length,
            exact,
            stretch,
        }
    }

    /// Routes one packet, measuring stretch against the exact distance
    /// (computed with Dijkstra, like the in-memory scheme's `route`).
    ///
    /// # Errors
    ///
    /// Mirrors [`RoutingScheme::route`](en_routing::scheme::RoutingScheme::route).
    pub fn route(&self, from: NodeId, to: NodeId) -> Result<RouteOutcome, RoutingError> {
        let (root, level, path) = self.forward(from, to)?;
        let exact = dijkstra(self.graph, from).dist[to];
        Ok(self.outcome(root, level, path, exact))
    }

    /// Routes one packet against a caller-supplied exact distance (the
    /// serving hot path: no Dijkstra anywhere).
    ///
    /// # Errors
    ///
    /// Mirrors
    /// [`RoutingScheme::route_with_exact`](en_routing::scheme::RoutingScheme::route_with_exact).
    pub fn route_with_exact(
        &self,
        from: NodeId,
        to: NodeId,
        exact: Dist,
    ) -> Result<RouteOutcome, RoutingError> {
        let (root, level, path) = self.forward(from, to)?;
        Ok(self.outcome(root, level, path, exact))
    }

    fn route_chunk(
        &self,
        pairs: &[(NodeId, NodeId)],
        exacts: Option<&[Dist]>,
    ) -> Vec<Result<RouteOutcome, RoutingError>> {
        // Per-worker scratch: one pre-sized output vector, filled in order.
        let mut out = Vec::with_capacity(pairs.len());
        for (i, &(from, to)) in pairs.iter().enumerate() {
            let exact = exacts.map_or(0, |e| e[i]);
            out.push(self.route_with_exact(from, to, exact));
        }
        out
    }

    /// Routes a batch of pairs, sharded over `threads` scoped worker
    /// threads, and returns per-pair outcomes in input order plus aggregate
    /// statistics.
    ///
    /// `exacts`, when given, must align with `pairs` and supplies the
    /// stretch denominators (the batch then never runs Dijkstra); without
    /// it, outcomes carry `exact = 0` placeholders and the stats' stretch
    /// fields are not meaningful.
    ///
    /// Sharding is deterministic and outcomes are reassembled in input
    /// order, so the result — including the aggregate statistics — is
    /// identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `exacts` is shorter than `pairs`, or if a worker thread
    /// panics.
    pub fn route_batch(
        &self,
        pairs: &[(NodeId, NodeId)],
        exacts: Option<&[Dist]>,
        threads: usize,
    ) -> BatchOutcome {
        if let Some(e) = exacts {
            assert!(e.len() >= pairs.len(), "exacts must align with pairs");
        }
        let threads = threads.clamp(1, pairs.len().max(1));
        // `chunks(chunk)` yields at most `threads` shards and never slices
        // past the end, whatever the len/threads remainder.
        let chunk = pairs.len().div_ceil(threads).max(1);
        let outcomes = if threads == 1 {
            self.route_chunk(pairs, exacts)
        } else {
            let shards: Vec<Vec<Result<RouteOutcome, RoutingError>>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = pairs
                        .chunks(chunk)
                        .enumerate()
                        .map(|(t, pair_slice)| {
                            let exact_slice =
                                exacts.map(|e| &e[t * chunk..t * chunk + pair_slice.len()]);
                            scope.spawn(move || self.route_chunk(pair_slice, exact_slice))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("query worker panicked"))
                        .collect()
                });
            let mut outcomes = Vec::with_capacity(pairs.len());
            for shard in shards {
                outcomes.extend(shard);
            }
            outcomes
        };
        let stats = batch_stats(&outcomes);
        BatchOutcome { outcomes, stats }
    }
}

/// Folds per-pair outcomes into [`BatchStats`], in input order (so the
/// floating-point sums are independent of the thread count used).
fn batch_stats(outcomes: &[Result<RouteOutcome, RoutingError>]) -> BatchStats {
    let mut stats = BatchStats {
        pairs: outcomes.len(),
        delivered: 0,
        failed: 0,
        total_hops: 0,
        total_length: 0,
        max_stretch: 0.0,
        mean_stretch: 0.0,
    };
    let mut stretch_sum = 0.0f64;
    for out in outcomes {
        match out {
            Ok(o) => {
                stats.delivered += 1;
                stats.total_hops += o.path.hops() as u64;
                stats.total_length += o.length;
                stretch_sum += o.stretch;
                if o.stretch > stats.max_stretch {
                    stats.max_stretch = o.stretch;
                }
            }
            Err(_) => stats.failed += 1,
        }
    }
    if stats.delivered > 0 {
        stats.mean_stretch = stretch_sum / stats.delivered as f64;
    }
    stats
}
