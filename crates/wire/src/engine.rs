//! The batched, multi-threaded query engine over a flat snapshot.
//!
//! [`QueryEngine`] answers `find_tree` / `route` queries directly off the
//! snapshot columns. There is no forwarding loop in this module: both the
//! fast and the hardened paths are instantiations of the single
//! storage-generic kernel in [`en_routing::access`] — `FastAccess` reads
//! the plain accessors (and may panic over unvalidated corrupt bytes),
//! `CheckedAccess` reads the `try_*` accessors and bounds every hop, so
//! fast, checked, and in-memory routing share one `Find-tree` and one hop
//! loop and are bit-identical by construction. Batches shard across plain
//! `std::thread::scope` workers (the engine is `Sync`: a snapshot borrow
//! plus a graph borrow), each with its own pre-sized output scratch.
//!
//! # Fault tolerance
//!
//! A production batch must not die with one poisoned query. Every shard
//! worker runs under [`std::panic::catch_unwind`]; a shard that panics
//! (possible only over a snapshot loaded with
//! [`FlatScheme::from_bytes_unvalidated`], or a latent bug) is **retried
//! once, sequentially, one query at a time** through
//! [`QueryEngine::route_checked`] — the hardened path that bounds-checks
//! every untrusted index and catches any residual panic per query. A
//! single corrupt record therefore degrades exactly the queries that touch
//! it into structured [`RoutingError`]s; the rest of the shard, the batch,
//! and the process keep going. [`BatchStats`] reports the damage
//! (`shard_panics` / `retried` / `degraded`) and [`BatchOutcome::shards`]
//! carries per-shard accounting whose totals always reconcile with the
//! batch size.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use en_graph::dijkstra::dijkstra;
use en_graph::{Dist, NodeId, Path, WeightedGraph};
use en_routing::access::{self, CacheStats, RouteAccess, RouteCache};
use en_routing::error::RoutingError;
use en_routing::scheme::RouteOutcome;

use crate::error::WireError;
use crate::flat::{FlatCluster, FlatScheme, FlatTreeLabel, FlatTreeTable};

/// The fast instantiation of the forwarding kernel: plain accessors, no
/// per-read checks. Over a fully validated snapshot no method can fail;
/// over bytes loaded with [`FlatScheme::from_bytes_unvalidated`] it may
/// panic (never read out of bounds — the accessors are checked Rust;
/// `unsafe` is denied outside the `mmap` module), which the batch layer
/// contains per shard.
#[derive(Debug, Clone, Copy)]
struct FastAccess<'a> {
    flat: FlatScheme<'a>,
}

impl<'a> RouteAccess for FastAccess<'a> {
    type Label = FlatTreeLabel<'a>;
    type Table = FlatTreeTable<'a>;
    type Tree = FlatCluster<'a>;

    #[inline]
    fn n(&self) -> usize {
        self.flat.n()
    }

    #[inline]
    fn own_label(
        &self,
        center: NodeId,
        member: NodeId,
    ) -> Result<Option<FlatTreeLabel<'a>>, RoutingError> {
        Ok(self.flat.own_label(center, member))
    }

    #[inline]
    fn label_entry_count(&self, to: NodeId) -> Result<usize, RoutingError> {
        Ok(self.flat.label_entry_count(to))
    }

    #[inline]
    fn label_entry(
        &self,
        to: NodeId,
        i: usize,
    ) -> Result<(NodeId, Option<FlatTreeLabel<'a>>), RoutingError> {
        let e = self
            .flat
            .label_entry_at(to, i)
            .expect("kernel indexes within the entry count");
        Ok((e.pivot, e.tree_label))
    }

    #[inline]
    fn in_tree(&self, v: NodeId, root: NodeId) -> Result<bool, RoutingError> {
        Ok(self.flat.trees_of(v).binary_search(root as u64).is_ok())
    }

    #[inline]
    fn tree(&self, root: NodeId) -> Result<Option<(FlatCluster<'a>, usize)>, RoutingError> {
        Ok(self.flat.cluster_of_center(root).map(|c| (c, c.level)))
    }

    #[inline]
    fn table(
        &self,
        tree: &FlatCluster<'a>,
        v: NodeId,
    ) -> Result<Option<FlatTreeTable<'a>>, RoutingError> {
        Ok(tree.table_of(v))
    }
}

/// The hardened instantiation of the forwarding kernel: every lookup goes
/// through the `try_*` accessors (CSR offsets, entry fields, record bounds,
/// the rank index's member-column agreement), and every next hop is bounded
/// by `n`, so corrupt columns surface as structured [`RoutingError`]s
/// instead of panics.
#[derive(Debug, Clone, Copy)]
struct CheckedAccess<'a> {
    flat: FlatScheme<'a>,
}

impl<'a> RouteAccess for CheckedAccess<'a> {
    type Label = FlatTreeLabel<'a>;
    type Table = FlatTreeTable<'a>;
    type Tree = FlatCluster<'a>;

    #[inline]
    fn n(&self) -> usize {
        self.flat.n()
    }

    fn own_label(
        &self,
        center: NodeId,
        member: NodeId,
    ) -> Result<Option<FlatTreeLabel<'a>>, RoutingError> {
        Ok(self.flat.try_own_label(center, member)?)
    }

    fn label_entry_count(&self, to: NodeId) -> Result<usize, RoutingError> {
        Ok(self.flat.try_label_entry_count(to)?)
    }

    fn label_entry(
        &self,
        to: NodeId,
        i: usize,
    ) -> Result<(NodeId, Option<FlatTreeLabel<'a>>), RoutingError> {
        let e = self
            .flat
            .try_label_entry_at(to, i)?
            .ok_or(WireError::Corrupt {
                what: "label entry vanished between count and read",
            })?;
        Ok((e.pivot, e.tree_label))
    }

    fn in_tree(&self, v: NodeId, root: NodeId) -> Result<bool, RoutingError> {
        Ok(self
            .flat
            .try_trees_of(v)?
            .try_binary_search(root as u64)?
            .is_ok())
    }

    fn tree(&self, root: NodeId) -> Result<Option<(FlatCluster<'a>, usize)>, RoutingError> {
        Ok(self.flat.try_cluster_of_center(root)?.map(|c| (c, c.level)))
    }

    fn table(
        &self,
        tree: &FlatCluster<'a>,
        v: NodeId,
    ) -> Result<Option<FlatTreeTable<'a>>, RoutingError> {
        Ok(tree.try_table_of(v)?)
    }

    #[inline]
    fn check_hop(&self, next: NodeId) -> Result<(), RoutingError> {
        if next >= self.flat.n() {
            return Err(RoutingError::TreeRouting(format!(
                "corrupt snapshot: next hop {next} is not a vertex"
            )));
        }
        Ok(())
    }
}

/// Sizing of the per-shard hot-route caches a [`QueryEngine`] puts in
/// front of the `Find-tree` kernel (see
/// [`en_routing::access::RouteCache`]).
///
/// `capacity` is rounded up to a power of two; `0` disables caching.
/// [`QueryEngine::new`] starts from [`CacheConfig::from_env`] so a whole
/// test or serving process can be flipped cached via `EN_WIRE_CACHE_CAP`;
/// [`QueryEngine::with_cache`] overrides per engine. Caching never changes
/// outcomes — the cache memoises decisions and replays them through the
/// live accessor — only [`BatchStats`]' cache counters and the speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Slots per shard cache (`0` = disabled; rounded up to a power of
    /// two).
    pub capacity: usize,
}

impl CacheConfig {
    /// Caching off — the default when `EN_WIRE_CACHE_CAP` is unset.
    pub const DISABLED: CacheConfig = CacheConfig { capacity: 0 };

    /// The process-wide default: `EN_WIRE_CACHE_CAP` parsed as a slot
    /// count (unset, empty, or unparsable ⇒ disabled). Read once and
    /// cached for the life of the process.
    ///
    /// A malformed value is not swallowed silently: the one-time parse
    /// bumps the `wire.cache.env_malformed` counter, records a `warn`
    /// event on the installed [`en_obs::Recorder`], and prints a single
    /// stderr note before falling back to disabled.
    pub fn from_env() -> CacheConfig {
        static CAP: OnceLock<usize> = OnceLock::new();
        CacheConfig {
            capacity: *CAP.get_or_init(|| {
                parse_cache_cap(std::env::var("EN_WIRE_CACHE_CAP").ok().as_deref())
            }),
        }
    }
}

/// The one-time `EN_WIRE_CACHE_CAP` parse behind [`CacheConfig::from_env`]:
/// unset and empty mean "disabled" by contract; anything else that fails to
/// parse is an operator mistake and is surfaced instead of ignored.
fn parse_cache_cap(value: Option<&str>) -> usize {
    let Some(raw) = value else { return 0 };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return 0;
    }
    match trimmed.parse() {
        Ok(cap) => cap,
        Err(_) => {
            en_obs::counter_add("wire.cache.env_malformed", 1);
            en_obs::event(
                en_obs::Level::Warn,
                "wire.cache.env_malformed",
                &[
                    ("var", "EN_WIRE_CACHE_CAP".into()),
                    ("value", trimmed.into()),
                ],
            );
            eprintln!(
                "warning: EN_WIRE_CACHE_CAP={trimmed:?} is not a slot count; hot-route caching stays disabled"
            );
            0
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::DISABLED
    }
}

/// A query engine serving one snapshot over one host graph.
///
/// The graph is needed only to weigh traversed paths (and, for
/// [`Self::route`], to compute the exact-distance denominator the stretch
/// report uses); forwarding itself reads nothing but the snapshot.
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine<'a> {
    flat: FlatScheme<'a>,
    graph: &'a WeightedGraph,
    cache: CacheConfig,
}

/// Aggregate statistics of one routed batch.
///
/// The stretch fields are meaningful only when the batch was given exact
/// distances; without them every outcome carries the `exact = 0` placeholder
/// (whose stretch reads 1.0 by convention).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Pairs in the batch.
    pub pairs: usize,
    /// Pairs routed successfully.
    pub delivered: usize,
    /// Pairs that failed (should be none outside adversarial inputs).
    pub failed: usize,
    /// Summed hop count of the delivered paths.
    pub total_hops: u64,
    /// Summed weighted length of the delivered paths.
    pub total_length: u64,
    /// Largest stretch over delivered pairs (0.0 when none delivered).
    pub max_stretch: f64,
    /// Mean stretch over delivered pairs (0.0 when none delivered).
    pub mean_stretch: f64,
    /// Shards whose worker panicked and was retried (0 on healthy
    /// snapshots — a validated snapshot cannot panic a worker).
    pub shard_panics: usize,
    /// Queries re-run sequentially because their shard panicked.
    pub retried: usize,
    /// Queries that still failed after the checked retry and were degraded
    /// into per-query errors instead of killing the batch.
    pub degraded: usize,
    /// Hot-route cache hits summed over all shard caches (0 with caching
    /// disabled).
    pub cache_hits: u64,
    /// Hot-route cache misses summed over all shard caches (every query is
    /// counted a miss when caching is disabled).
    pub cache_misses: u64,
    /// Hot-route cache evictions summed over all shard caches.
    pub cache_evictions: u64,
}

impl BatchStats {
    /// Cache hits over hits + misses, `0.0` when nothing was counted.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// A copy with the cache counters zeroed.
    ///
    /// The routing outcomes and every other statistic are identical for
    /// every thread count, but the cache counters are *shard-local* by
    /// design (each worker warms its own cache), so they legitimately vary
    /// with the sharding. Determinism assertions across thread counts
    /// compare this normalised form and the outcomes bit-for-bit.
    pub fn without_cache_counters(&self) -> BatchStats {
        BatchStats {
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            ..self.clone()
        }
    }
}

/// Per-shard accounting of one routed batch, reported through
/// [`BatchOutcome::shards`]: across all shards, `queries` always sums to
/// the batch size, `errors` to [`BatchStats::failed`], and `retries` to
/// [`BatchStats::retried`], whatever the thread count or fault pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Queries assigned to this shard.
    pub queries: usize,
    /// Queries that returned an error (including degraded ones).
    pub errors: usize,
    /// Queries re-run sequentially after the shard's worker panicked.
    pub retries: usize,
    /// Whether the shard's worker panicked on first pass.
    pub panicked: bool,
    /// This shard's hot-route cache counters (zeroed when the shard
    /// panicked — the retry path runs uncached).
    pub cache: CacheStats,
}

/// The outcome of routing one batch: per-pair results in input order plus
/// the aggregate statistics — identical regardless of how many threads the
/// batch was sharded over.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One result per input pair, in input order.
    pub outcomes: Vec<Result<RouteOutcome, RoutingError>>,
    /// Aggregates over `outcomes`, computed in input order.
    pub stats: BatchStats,
    /// Per-shard accounting, in shard order (one entry per worker chunk;
    /// a single entry when the batch ran on one thread).
    pub shards: Vec<ShardStats>,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine for `flat` over `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::GraphMismatch`] when the snapshot was built for a
    /// different vertex count.
    pub fn new(flat: FlatScheme<'a>, graph: &'a WeightedGraph) -> Result<Self, WireError> {
        if graph.num_nodes() != flat.n() {
            return Err(WireError::GraphMismatch {
                graph_n: graph.num_nodes(),
                snapshot_n: flat.n(),
            });
        }
        Ok(QueryEngine {
            flat,
            graph,
            cache: CacheConfig::from_env(),
        })
    }

    /// Replaces the engine's cache sizing (builder style); see
    /// [`CacheConfig`].
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// The cache sizing this engine shards batches with.
    pub fn cache_config(&self) -> CacheConfig {
        self.cache
    }

    /// The snapshot this engine serves.
    pub fn flat(&self) -> &FlatScheme<'a> {
        &self.flat
    }

    /// Algorithm 1 (`Find-tree`) plus the `4k−5` refinement, off the flat
    /// columns: the centre of the tree a packet from `from` to `to` will
    /// use, and the destination's (borrowed) tree label there — the shared
    /// kernel ([`en_routing::access::find_tree_via`]) over `FastAccess`.
    ///
    /// # Errors
    ///
    /// Mirrors [`RoutingScheme::find_tree`](en_routing::scheme::RoutingScheme::find_tree):
    /// out-of-range vertices and the (low-probability) no-common-tree case.
    pub fn find_tree(
        &self,
        from: NodeId,
        to: NodeId,
    ) -> Result<(NodeId, FlatTreeLabel<'a>), RoutingError> {
        access::find_tree_via(&FastAccess { flat: self.flat }, from, to)
    }

    /// Forwards hop by hop, returning the tree used, its level, and the path.
    fn forward(&self, from: NodeId, to: NodeId) -> Result<(NodeId, usize, Path), RoutingError> {
        access::forward_via(&FastAccess { flat: self.flat }, from, to)
    }

    fn outcome(&self, root: NodeId, level: usize, path: Path, exact: Dist) -> RouteOutcome {
        let length = path.length_in(self.graph).unwrap_or(0);
        let stretch = if exact == 0 {
            1.0
        } else {
            length as f64 / exact as f64
        };
        RouteOutcome {
            tree_root: root,
            level,
            path,
            length,
            exact,
            stretch,
        }
    }

    /// Routes one packet, measuring stretch against the exact distance
    /// (computed with Dijkstra, like the in-memory scheme's `route`).
    ///
    /// # Errors
    ///
    /// Mirrors [`RoutingScheme::route`](en_routing::scheme::RoutingScheme::route).
    pub fn route(&self, from: NodeId, to: NodeId) -> Result<RouteOutcome, RoutingError> {
        let (root, level, path) = self.forward(from, to)?;
        let exact = dijkstra(self.graph, from).dist[to];
        Ok(self.outcome(root, level, path, exact))
    }

    /// Routes one packet against a caller-supplied exact distance (the
    /// serving hot path: no Dijkstra anywhere).
    ///
    /// # Errors
    ///
    /// Mirrors
    /// [`RoutingScheme::route_with_exact`](en_routing::scheme::RoutingScheme::route_with_exact).
    pub fn route_with_exact(
        &self,
        from: NodeId,
        to: NodeId,
        exact: Dist,
    ) -> Result<RouteOutcome, RoutingError> {
        let (root, level, path) = self.forward(from, to)?;
        Ok(self.outcome(root, level, path, exact))
    }

    /// The hardened forwarding path — the *same* kernel, instantiated over
    /// [`CheckedAccess`]: every untrusted index (CSR offsets, entry fields,
    /// record bounds, the rank index) is validated before use and every
    /// next hop is bounded, so corrupt columns surface as errors, not
    /// panics, while the routing decisions stay bit-identical.
    fn forward_checked(
        &self,
        from: NodeId,
        to: NodeId,
    ) -> Result<(NodeId, usize, Path), RoutingError> {
        access::forward_via(&CheckedAccess { flat: self.flat }, from, to)
    }

    /// Routes one packet through the hardened path: checked accessors,
    /// per-hop index validation, and a panic guard. Over a fully validated
    /// snapshot this returns exactly what [`Self::route_with_exact`]
    /// returns, just slower; over corrupt bytes (a snapshot loaded with
    /// [`FlatScheme::from_bytes_unvalidated`]) it degrades the query into a
    /// structured error instead of panicking the caller.
    ///
    /// # Errors
    ///
    /// Everything [`Self::route_with_exact`] reports, plus
    /// [`RoutingError::TreeRouting`] for any corruption encountered
    /// mid-route.
    pub fn route_checked(
        &self,
        from: NodeId,
        to: NodeId,
        exact: Dist,
    ) -> Result<RouteOutcome, RoutingError> {
        // The checked accessors make index corruption an error; the unwind
        // guard additionally contains anything they cannot see (e.g. a
        // corrupt record interior tripping a slice bound in a view).
        match catch_unwind(AssertUnwindSafe(|| self.forward_checked(from, to))) {
            Ok(forwarded) => {
                forwarded.map(|(root, level, path)| self.outcome(root, level, path, exact))
            }
            Err(_) => Err(RoutingError::TreeRouting(format!(
                "corrupt snapshot: query {from}->{to} panicked and was degraded"
            ))),
        }
    }

    /// [`Self::route_with_exact`] fronted by a caller-held hot-route cache
    /// (the fast flat storage under
    /// [`en_routing::access::forward_via_cached`]). Outcomes are
    /// bit-identical to the uncached call on any validated snapshot; only
    /// the cache's counters and the speed differ.
    ///
    /// # Errors
    ///
    /// Exactly what [`Self::route_with_exact`] reports.
    pub fn route_with_cache(
        &self,
        cache: &mut RouteCache,
        from: NodeId,
        to: NodeId,
        exact: Dist,
    ) -> Result<RouteOutcome, RoutingError> {
        let (root, level, path) =
            access::forward_via_cached(&FastAccess { flat: self.flat }, cache, from, to)?;
        Ok(self.outcome(root, level, path, exact))
    }

    /// [`Self::route_checked`] fronted by a caller-held hot-route cache —
    /// the hardened accessors under the same cached kernel, so the checked
    /// storage exercises caching exactly like the fast one (errors are
    /// never cached; a degraded query stays degraded).
    ///
    /// # Errors
    ///
    /// Exactly what [`Self::route_checked`] reports.
    pub fn route_checked_with_cache(
        &self,
        cache: &mut RouteCache,
        from: NodeId,
        to: NodeId,
        exact: Dist,
    ) -> Result<RouteOutcome, RoutingError> {
        let mut guarded = AssertUnwindSafe((cache, self));
        match catch_unwind(move || {
            let (cache, engine) = &mut *guarded;
            access::forward_via_cached(&CheckedAccess { flat: engine.flat }, cache, from, to)
        }) {
            Ok(forwarded) => {
                forwarded.map(|(root, level, path)| self.outcome(root, level, path, exact))
            }
            Err(_) => Err(RoutingError::TreeRouting(format!(
                "corrupt snapshot: query {from}->{to} panicked and was degraded"
            ))),
        }
    }

    fn route_chunk(
        &self,
        pairs: &[(NodeId, NodeId)],
        exacts: Option<&[Dist]>,
        cache: &mut RouteCache,
    ) -> Vec<Result<RouteOutcome, RoutingError>> {
        // Per-worker scratch: one pre-sized output vector, filled in order.
        // The observability gate is hoisted out of the loop: with no
        // recorder installed the hot path takes exactly one relaxed load
        // for the whole chunk and never reads the clock.
        let obs = en_obs::active();
        let mut out = Vec::with_capacity(pairs.len());
        for (i, &(from, to)) in pairs.iter().enumerate() {
            let exact = exacts.map_or(0, |e| e[i]);
            if obs {
                let t0 = std::time::Instant::now();
                let res = self.route_with_cache(cache, from, to, exact);
                let dur_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                en_obs::histogram_record("wire.route_latency_ns", dur_ns);
                if let Ok(o) = &res {
                    en_obs::histogram_record("wire.route_hops", o.path.hops() as u64);
                }
                out.push(res);
            } else {
                out.push(self.route_with_cache(cache, from, to, exact));
            }
        }
        out
    }

    /// Routes one shard: the fast path first, under a panic guard; if the
    /// worker panicked, one sequential retry per query through the checked
    /// path, so only the queries actually touching corruption degrade.
    fn route_shard_isolated(
        &self,
        pairs: &[(NodeId, NodeId)],
        exacts: Option<&[Dist]>,
    ) -> (Vec<Result<RouteOutcome, RoutingError>>, ShardStats) {
        let mut stats = ShardStats {
            queries: pairs.len(),
            ..ShardStats::default()
        };
        // One cache per shard: workers warm their own memo lock-free, and
        // outcomes stay deterministic per shard (hence per batch) because a
        // cache can never change an answer, only skip a scan.
        let mut cache = RouteCache::new(self.cache.capacity);
        let fast = catch_unwind(AssertUnwindSafe(|| {
            self.route_chunk(pairs, exacts, &mut cache)
        }));
        let outcomes = match fast {
            Ok(outcomes) => {
                stats.cache = cache.stats();
                outcomes
            }
            Err(_) => {
                // The shard died mid-chunk; re-run it query by query on the
                // hardened path. Retrying is deterministic — the snapshot
                // bytes are immutable — so a query that panicked fast will
                // now produce a structured error instead.
                stats.panicked = true;
                stats.retries = pairs.len();
                pairs
                    .iter()
                    .enumerate()
                    .map(|(i, &(from, to))| {
                        self.route_checked(from, to, exacts.map_or(0, |e| e[i]))
                    })
                    .collect()
            }
        };
        stats.errors = outcomes.iter().filter(|o| o.is_err()).count();
        (outcomes, stats)
    }

    /// Routes a batch of pairs, sharded over `threads` scoped worker
    /// threads, and returns per-pair outcomes in input order plus aggregate
    /// statistics.
    ///
    /// `exacts`, when given, must align with `pairs` and supplies the
    /// stretch denominators (the batch then never runs Dijkstra); without
    /// it, outcomes carry `exact = 0` placeholders and the stats' stretch
    /// fields are not meaningful.
    ///
    /// Sharding is deterministic and outcomes are reassembled in input
    /// order, so the result — outcomes and aggregate statistics alike — is
    /// identical for every thread count, with one carve-out: the cache
    /// counters are per-shard by design (each worker warms its own cache),
    /// so with caching enabled they vary with the sharding. Compare
    /// [`BatchStats::without_cache_counters`] across thread counts.
    ///
    /// A worker panic does not kill the batch: the shard is caught,
    /// retried sequentially through [`Self::route_checked`], and any query
    /// still failing is degraded into its per-query error (see the module
    /// docs; `stats.shard_panics` / `retried` / `degraded` and
    /// [`BatchOutcome::shards`] report what happened).
    ///
    /// # Panics
    ///
    /// Panics if `exacts` is shorter than `pairs`.
    pub fn route_batch(
        &self,
        pairs: &[(NodeId, NodeId)],
        exacts: Option<&[Dist]>,
        threads: usize,
    ) -> BatchOutcome {
        if let Some(e) = exacts {
            assert!(e.len() >= pairs.len(), "exacts must align with pairs");
        }
        let threads = threads.clamp(1, pairs.len().max(1));
        // `chunks(chunk)` yields at most `threads` shards and never slices
        // past the end, whatever the len/threads remainder.
        let chunk = pairs.len().div_ceil(threads).max(1);
        let (outcomes, shards) = if threads == 1 {
            let (outcomes, stats) = self.route_shard_isolated(pairs, exacts);
            (outcomes, vec![stats])
        } else {
            let sharded: Vec<(Vec<Result<RouteOutcome, RoutingError>>, ShardStats)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = pairs
                        .chunks(chunk)
                        .enumerate()
                        .map(|(t, pair_slice)| {
                            let exact_slice =
                                exacts.map(|e| &e[t * chunk..t * chunk + pair_slice.len()]);
                            // The panic guard runs *inside* the worker, so
                            // join() below cannot observe a panic.
                            scope.spawn(move || self.route_shard_isolated(pair_slice, exact_slice))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker guarded by catch_unwind"))
                        .collect()
                });
            let mut outcomes = Vec::with_capacity(pairs.len());
            let mut shards = Vec::with_capacity(sharded.len());
            for (shard_outcomes, shard_stats) in sharded {
                outcomes.extend(shard_outcomes);
                shards.push(shard_stats);
            }
            (outcomes, shards)
        };
        let mut stats = batch_stats(&outcomes);
        for s in &shards {
            stats.shard_panics += s.panicked as usize;
            stats.retried += s.retries;
            if s.panicked {
                stats.degraded += s.errors;
            }
            stats.cache_hits += s.cache.hits;
            stats.cache_misses += s.cache.misses;
            stats.cache_evictions += s.cache.evictions;
        }
        publish_batch_obs(&stats);
        BatchOutcome {
            outcomes,
            stats,
            shards,
        }
    }
}

/// Republishes a batch's [`BatchStats`] as observability counters (no-op
/// without an installed recorder). The counters mirror the stats exactly —
/// `tests/integration_obs.rs` reconciles them at several thread counts.
fn publish_batch_obs(stats: &BatchStats) {
    if !en_obs::active() {
        return;
    }
    en_obs::counter_add("wire.batch.pairs", stats.pairs as u64);
    en_obs::counter_add("wire.batch.delivered", stats.delivered as u64);
    en_obs::counter_add("wire.batch.failed", stats.failed as u64);
    en_obs::counter_add("wire.batch.hops_total", stats.total_hops);
    en_obs::counter_add("wire.batch.length_total", stats.total_length);
    en_obs::counter_add("wire.shard.panics", stats.shard_panics as u64);
    en_obs::counter_add("wire.shard.retried", stats.retried as u64);
    en_obs::counter_add("wire.shard.degraded", stats.degraded as u64);
    en_obs::counter_add("wire.cache.hits", stats.cache_hits);
    en_obs::counter_add("wire.cache.misses", stats.cache_misses);
    en_obs::counter_add("wire.cache.evictions", stats.cache_evictions);
}

/// Folds per-pair outcomes into [`BatchStats`], in input order (so the
/// floating-point sums are independent of the thread count used).
fn batch_stats(outcomes: &[Result<RouteOutcome, RoutingError>]) -> BatchStats {
    let mut stats = BatchStats {
        pairs: outcomes.len(),
        delivered: 0,
        failed: 0,
        total_hops: 0,
        total_length: 0,
        max_stretch: 0.0,
        mean_stretch: 0.0,
        shard_panics: 0,
        retried: 0,
        degraded: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
    };
    let mut stretch_sum = 0.0f64;
    for out in outcomes {
        match out {
            Ok(o) => {
                stats.delivered += 1;
                stats.total_hops += o.path.hops() as u64;
                stats.total_length += o.length;
                stretch_sum += o.stretch;
                if o.stretch > stats.max_stretch {
                    stats.max_stretch = o.stretch;
                }
            }
            Err(_) => stats.failed += 1,
        }
    }
    if stats.delivered > 0 {
        stats.mean_stretch = stretch_sum / stats.delivered as f64;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_cap_parse_contract() {
        assert_eq!(parse_cache_cap(None), 0, "unset means disabled");
        assert_eq!(parse_cache_cap(Some("")), 0, "empty means disabled");
        assert_eq!(parse_cache_cap(Some("  ")), 0);
        assert_eq!(parse_cache_cap(Some("64")), 64);
        assert_eq!(parse_cache_cap(Some(" 128\n")), 128);
    }

    #[test]
    fn malformed_cache_cap_warns_instead_of_silence() {
        let reg = std::sync::Arc::new(en_obs::MetricsRegistry::new());
        {
            let _guard = en_obs::install(reg.clone());
            assert_eq!(parse_cache_cap(Some("lots")), 0);
            assert_eq!(parse_cache_cap(Some("-3")), 0);
        }
        assert_eq!(reg.counter_value("wire.cache.env_malformed"), 2);
        let events = reg.events_snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "wire.cache.env_malformed");
        assert_eq!(events[0].level, en_obs::Level::Warn);
        assert!(events[0]
            .fields
            .iter()
            .any(|(k, v)| k == "value" && *v == en_obs::FieldValue::Str("lots".into())));
    }
}
