//! Property-based equivalence tests: the batched frontier/CSR Theorem-1
//! kernel against the retained naive reference implementation.
//!
//! The batched kernel is an aggressive rewrite (vertex-major chunks, i32
//! cells, branchless min sweeps, post-hoc parents), so every random instance
//! here doubles as an equivalence oracle: `dist` must match the naive
//! levelled Bellman–Ford bit for bit, and the parents must satisfy the
//! Remark-1 inequality (3) against those exact distances.

use proptest::prelude::*;

use en_congest_algos::theorem1::{multi_source_hop_bounded, multi_source_hop_bounded_reference};
use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
use en_graph::{is_finite, WeightedGraph};

fn arb_instance() -> impl Strategy<Value = (WeightedGraph, Vec<usize>, usize)> {
    (5usize..50, 0u64..10_000, 1u64..200, 1usize..12, 1usize..12).prop_map(
        |(n, seed, max_w, num_sources, hop_bound)| {
            let g =
                erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, max_w), 0.15);
            let sources: Vec<usize> = (0..num_sources.min(n))
                .map(|i| (i * 7 + seed as usize) % n)
                .collect();
            (g, sources, hop_bound)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn batched_dist_is_bit_identical_to_naive_reference(instance in arb_instance()) {
        let (g, sources, b) = instance;
        let batched = multi_source_hop_bounded(&g, &sources, b, 0.25, 4);
        let (ref_dist, _) = multi_source_hop_bounded_reference(&g, &sources, b);
        for si in 0..sources.len() {
            prop_assert_eq!(batched.dist_row(si), ref_dist[si].as_slice(), "source row {}", si);
        }
    }

    #[test]
    fn batched_parents_are_remark1_consistent(instance in arb_instance()) {
        let (g, sources, b) = instance;
        let batched = multi_source_hop_bounded(&g, &sources, b, 0.25, 4);
        for si in 0..sources.len() {
            let dist = batched.dist_row(si);
            let parent = batched.parent_row(si);
            for v in g.nodes() {
                match parent[v] {
                    Some(p) => {
                        // A parent is a real neighbour satisfying inequality
                        // (3): d_uv >= w(u, p) + d_pv.
                        let w = g.edge_weight(v, p).expect("parent must be a neighbour");
                        prop_assert!(is_finite(dist[v]));
                        prop_assert!(
                            dist[v] >= w + dist[p],
                            "source row {} vertex {}: {} < {} + {}",
                            si, v, dist[v], w, dist[p]
                        );
                    }
                    None => {
                        // Only the source itself and unreachable vertices may
                        // lack a parent.
                        prop_assert!(
                            v == sources[si] || !is_finite(dist[v]),
                            "source row {} vertex {} has no parent", si, v
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_kernel_is_deterministic(instance in arb_instance()) {
        let (g, sources, b) = instance;
        let a = multi_source_hop_bounded(&g, &sources, b, 0.25, 4);
        let c = multi_source_hop_bounded(&g, &sources, b, 0.25, 4);
        for si in 0..sources.len() {
            prop_assert_eq!(a.dist_row(si), c.dist_row(si));
            prop_assert_eq!(a.parent_row(si), c.parent_row(si));
        }
    }
}
