//! Theorem 1 (\[Nan14\]): multi-source approximate hop-bounded distances.
//!
//! Given a source set `V' ⊆ V`, a hop bound `B ≥ 1` and `0 < ε < 1`, every
//! vertex `u` learns values `d_uv` for all `v ∈ V'` with
//!
//! ```text
//! d^{(B)}_G(u, v) ≤ d_uv ≤ (1 + ε) d^{(B)}_G(u, v)          (2)
//! ```
//!
//! and, per Remark 1, a neighbour `p = p_v(u)` with
//!
//! ```text
//! d_uv ≥ w(u, p) + d_pv                                      (3)
//! ```
//!
//! The original distributed algorithm runs in `Õ(|V'| + B + D)/ε` rounds.
//! Reproduction note (see DESIGN.md): we compute the values source-parallel at
//! graph level — which yields the *exact* `B`-hop distances, trivially
//! satisfying (2) — and charge the paper's round bound on a
//! [`RoundLedger`]. The exactness also makes (3) hold
//! with the hop-bounded parent (proof: `d^{(B)}(u,v) = w(u,p) + d^{(B-1)}(p,v)
//! ≥ w(u,p) + d^{(B)}(p,v)`).
//!
//! # Implementation
//!
//! The computation is batched over a single [`CsrGraph`] view built once.
//! Sources are processed in chunks of up to 64; within a chunk the distance
//! state is *vertex-major* (one contiguous row of per-source values per
//! vertex), and every sweep walks the adjacency once for the **union
//! frontier** — the vertices whose value changed for *any* chunk source in
//! the previous sweep — relaxing all chunk sources of an edge in one
//! contiguous, branchless min loop that the compiler can vectorise. The cell
//! width comes from the shared [`en_graph::cell`] machinery (also used by the
//! restricted cluster kernel in `en_graph::restricted`): `i32` when the
//! largest possible finite distance fits (twice the SIMD width, half the
//! memory traffic), `u64` otherwise. Start-of-sweep values live in a swap-buffered `prev` array whose
//! rows are refreshed only for frontier vertices, so the levelled semantics
//! (`dist[v] = d^{(t)}(v)` after sweep `t`) are preserved with no per-sweep
//! snapshot clone. Remark-1 parents are recovered after the sweeps in one
//! argmin pass over the adjacency (the neighbour `p` minimising
//! `d_pv + w(u, p)` satisfies inequality (3) by the levelled-path argument),
//! keeping the hot loop free of conditional stores. The finished chunk is
//! transposed into the flat source-major output. The retained naive
//! implementation ([`multi_source_hop_bounded_reference`]) is the oracle the
//! property tests validate the batched kernel against, bit for bit on
//! `dist`.

use std::collections::HashMap;

use en_graph::cell::{fits_i32, DistCell};
use en_graph::{
    dist_add, shard_spans, BuildOptions, BuildStats, CsrGraph, Dist, NodeId, WeightedGraph,
    INFINITY,
};

use en_congest::RoundLedger;

/// The output of the Theorem 1 computation.
///
/// Distances and parents are stored flat, source-major (`|V'|` rows of `n`
/// entries); use [`MultiSourceHopBounded::dist_row`] /
/// [`MultiSourceHopBounded::parent_row`] for bulk access, or
/// [`MultiSourceHopBounded::value`] / [`MultiSourceHopBounded::parent_towards`]
/// for point lookups by source id.
#[derive(Debug, Clone)]
pub struct MultiSourceHopBounded {
    /// The source set `V'`, in the order used by the row indices below.
    pub sources: Vec<NodeId>,
    /// `dist[s * n + u]` is `d_{u, sources[s]}` (satisfying inequality (2)).
    dist: Vec<Dist>,
    /// `parent[s * n + u]` is the neighbour `p_{sources[s]}(u)` of `u`
    /// (Remark 1), or `None` when `u` is the source itself or unreachable
    /// within `B` hops.
    parent: Vec<Option<NodeId>>,
    /// Number of vertices `n` (the row stride).
    n: usize,
    /// Maps a source id back to its row index in `dist` / `parent`.
    pub source_index: HashMap<NodeId, usize>,
    /// The hop bound `B` used.
    pub hop_bound: usize,
    /// Round charge for the computation (`Õ(|V'| + B + D)/ε`).
    pub ledger: RoundLedger,
}

impl MultiSourceHopBounded {
    /// Number of vertices `n` (the stride of each row).
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The distance row of source index `s`: `dist_row(s)[u] = d_{u, sources[s]}`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= sources.len()`.
    pub fn dist_row(&self, s: usize) -> &[Dist] {
        &self.dist[s * self.n..(s + 1) * self.n]
    }

    /// The parent row of source index `s` (Remark 1 parents).
    ///
    /// # Panics
    ///
    /// Panics if `s >= sources.len()`.
    pub fn parent_row(&self, s: usize) -> &[Option<NodeId>] {
        &self.parent[s * self.n..(s + 1) * self.n]
    }

    /// The value `d_uv` for source `v` and vertex `u`, or [`INFINITY`] if `v`
    /// is not a source or `u` is unreachable within `B` hops.
    pub fn value(&self, u: NodeId, v: NodeId) -> Dist {
        match self.source_index.get(&v) {
            Some(&s) => self.dist[s * self.n + u],
            None => INFINITY,
        }
    }

    /// The parent `p_v(u)` of Remark 1, if defined.
    pub fn parent_towards(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        self.source_index
            .get(&v)
            .and_then(|&s| self.parent[s * self.n + u])
    }
}

/// Runs the Theorem 1 computation for source set `sources`, hop bound `B`,
/// approximation parameter `eps`, on a graph of hop-diameter `hop_diameter`
/// (used only for the round charge).
///
/// # Panics
///
/// Panics if a source is out of range, `B == 0`, or `eps` is not in `(0, 1)`.
pub fn multi_source_hop_bounded(
    g: &WeightedGraph,
    sources: &[NodeId],
    hop_bound: usize,
    eps: f64,
    hop_diameter: usize,
) -> MultiSourceHopBounded {
    multi_source_hop_bounded_opts(
        g,
        sources,
        hop_bound,
        eps,
        hop_diameter,
        &BuildOptions::sequential(),
    )
    .0
}

/// [`multi_source_hop_bounded`] with a thread-count knob: the source
/// sequence is sharded into 64-aligned contiguous spans, each swept by its
/// own scoped worker into its own disjoint slice of the flat source-major
/// output — same chunk composition, same writes, so the result is
/// bit-identical to the sequential run for every thread count. Also returns
/// per-thread work accounting (sources swept; finite distance cells
/// produced).
///
/// # Panics
///
/// Panics if a source is out of range, `B == 0`, or `eps` is not in `(0, 1)`.
pub fn multi_source_hop_bounded_opts(
    g: &WeightedGraph,
    sources: &[NodeId],
    hop_bound: usize,
    eps: f64,
    hop_diameter: usize,
    opts: &BuildOptions,
) -> (MultiSourceHopBounded, BuildStats) {
    assert!(hop_bound >= 1, "hop bound B must be at least 1");
    assert!(eps > 0.0 && eps < 1.0, "epsilon must be in (0, 1)");
    for &s in sources {
        assert!(s < g.num_nodes(), "source {s} out of range");
    }
    let _span = en_obs::span("theorem1_kernel");
    en_obs::counter_add("kernel.theorem1.sources", sources.len() as u64);
    let n = g.num_nodes();
    let csr = CsrGraph::from_graph(g);
    let mut dist = vec![INFINITY; sources.len() * n];
    let mut parent: Vec<Option<NodeId>> = vec![None; sources.len() * n];
    // The i32 kernel is exact whenever every finite levelled distance fits
    // below its sentinel: a B-hop path has at most n - 1 edges of weight at
    // most max_weight.
    let stats = if fits_i32(n, g.max_weight()) {
        sharded_chunks::<i32>(
            &csr,
            sources,
            hop_bound,
            opts.threads,
            &mut dist,
            &mut parent,
        )
    } else {
        sharded_chunks::<u64>(
            &csr,
            sources,
            hop_bound,
            opts.threads,
            &mut dist,
            &mut parent,
        )
    };
    let source_index = sources
        .iter()
        .copied()
        .enumerate()
        .map(|(i, s)| (s, i))
        .collect();
    let mut ledger = RoundLedger::new();
    let charged = ((sources.len() + hop_bound + hop_diameter) as f64 / eps).ceil() as usize;
    ledger.charge(
        format!(
            "Theorem 1: multi-source {}-hop distances from {} sources",
            hop_bound,
            sources.len()
        ),
        charged,
        format!(
            "O(|V'| + B + D)/eps = ({} + {} + {}) / {:.4}",
            sources.len(),
            hop_bound,
            hop_diameter,
            eps
        ),
    );
    let res = MultiSourceHopBounded {
        sources: sources.to_vec(),
        dist,
        parent,
        n,
        source_index,
        hop_bound,
        ledger,
    };
    (res, stats)
}

/// Shards `sources` into 64-aligned spans, splits the flat source-major
/// output arrays into the matching disjoint slices, and runs
/// [`batched_chunks`] for each span on its own scoped worker (in place on
/// the calling thread for a single span). Row indices inside
/// [`batched_chunks`] are relative to the slice it is handed, so each worker
/// writes exactly the rows the sequential sweep would — bit-identically.
fn sharded_chunks<T: DistCell>(
    csr: &CsrGraph,
    sources: &[NodeId],
    hop_bound: usize,
    threads: usize,
    dist: &mut [Dist],
    parent: &mut [Option<NodeId>],
) -> BuildStats {
    let n = csr.num_nodes();
    let spans = shard_spans(sources.len(), threads, 64);
    if spans.len() <= 1 {
        batched_chunks::<T>(csr, sources, hop_bound, dist, parent);
        let finite = dist.iter().filter(|&&d| d < INFINITY).count();
        return BuildStats::single(sources.len(), finite);
    }
    let mut dist_parts: Vec<&mut [Dist]> = Vec::with_capacity(spans.len());
    let mut parent_parts: Vec<&mut [Option<NodeId>]> = Vec::with_capacity(spans.len());
    let mut dist_rest = dist;
    let mut parent_rest = parent;
    for span in &spans {
        let (d, dr) = dist_rest.split_at_mut(span.len() * n);
        let (p, pr) = parent_rest.split_at_mut(span.len() * n);
        dist_parts.push(d);
        parent_parts.push(p);
        dist_rest = dr;
        parent_rest = pr;
    }
    let finite_counts: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .iter()
            .zip(dist_parts.into_iter().zip(parent_parts))
            .map(|(span, (d, p))| {
                let span = span.clone();
                scope.spawn(move || {
                    batched_chunks::<T>(csr, &sources[span], hop_bound, d, p);
                    d.iter().filter(|&&x| x < INFINITY).count()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("theorem-1 kernel worker panicked"))
            .collect()
    });
    let mut stats = BuildStats::default();
    for (span, finite) in spans.iter().zip(finite_counts) {
        stats.record(span.len(), finite);
    }
    stats
}

/// The batched vertex-major kernel: processes `sources` in chunks of up to
/// 64, writing levelled `B`-hop distances and Remark-1 parents into the flat
/// source-major `dist` / `parent` output arrays.
fn batched_chunks<T: DistCell>(
    csr: &CsrGraph,
    sources: &[NodeId],
    hop_bound: usize,
    dist: &mut [Dist],
    parent: &mut [Option<NodeId>],
) {
    let n = csr.num_nodes();
    // Local packed adjacency: u32 targets and cell-width weights halve the
    // per-sweep memory traffic relative to the usize/u64 CSR arrays.
    let mut offsets = Vec::with_capacity(n + 1);
    let mut targets: Vec<u32> = Vec::with_capacity(2 * csr.num_edges());
    let mut weights: Vec<T> = Vec::with_capacity(2 * csr.num_edges());
    offsets.push(0usize);
    for v in 0..n {
        let (ts, ws) = csr.arcs(v);
        targets.extend(ts.iter().map(|&t| t as u32));
        weights.extend(ws.iter().map(|&w| T::from_weight(w)));
        offsets.push(targets.len());
    }
    // Union-frontier worklist plus the dense changed-flag array it is
    // rebuilt from after every sweep.
    let mut frontier: Vec<u32> = Vec::new();
    let mut changed = vec![0u8; n];
    const CHUNK: usize = 64;
    for (chunk_index, chunk) in sources.chunks(CHUNK).enumerate() {
        let sc = chunk.len();
        // Vertex-major state: `cur[v * sc + j]` is the current best value of
        // vertex `v` for chunk source `j`; `prev` holds the start-of-sweep
        // values, refreshed lazily for frontier vertices only.
        let mut cur = vec![T::INF; n * sc];
        let mut prev = vec![T::INF; n * sc];
        frontier.clear();
        for (j, &src) in chunk.iter().enumerate() {
            cur[src * sc + j] = T::ZERO;
            if changed[src] == 0 {
                changed[src] = 1;
                frontier.push(src as u32);
            }
        }
        for &src in &frontier {
            changed[src as usize] = 0;
        }
        for _ in 0..hop_bound {
            if frontier.is_empty() {
                break;
            }
            // Refresh the start-of-sweep rows of the vertices that will relay
            // this sweep; no other `prev` row is read.
            for &u in &frontier {
                let urow = u as usize * sc;
                prev[urow..urow + sc].copy_from_slice(&cur[urow..urow + sc]);
            }
            for &u in &frontier {
                let urow = u as usize * sc;
                let lo = offsets[u as usize];
                let hi = offsets[u as usize + 1];
                for (&v, &w) in targets[lo..hi].iter().zip(&weights[lo..hi]) {
                    let vrow = v as usize * sc;
                    // Relaxing every chunk source here (including ones whose
                    // value at `u` did not change last sweep) only re-offers
                    // candidates that were already applied — a no-op — so
                    // the inner loop is a contiguous branchless min that the
                    // compiler vectorises; INF saturates and never wins. The
                    // XOR accumulator detects any change without a branch.
                    let urows = &prev[urow..urow + sc];
                    let vrows = &mut cur[vrow..vrow + sc];
                    let mut delta = T::ZERO;
                    for (vd, &ud) in vrows.iter_mut().zip(urows) {
                        let cand = ud.add_capped(w);
                        let old = *vd;
                        let new = if cand < old { cand } else { old };
                        delta = delta | (old ^ new);
                        *vd = new;
                    }
                    changed[v as usize] |= u8::from(delta != T::ZERO);
                }
            }
            // Rebuild the frontier from the dense changed flags (an O(n)
            // scan, negligible next to the relaxation work).
            frontier.clear();
            for (v, flag) in changed.iter_mut().enumerate() {
                if *flag != 0 {
                    *flag = 0;
                    frontier.push(v as u32);
                }
            }
        }
        // Remark-1 parents, recovered post hoc: for every reachable
        // non-source vertex, the neighbour `p` minimising `d_pv + w(u, p)`
        // (ties to the smallest id) satisfies `d_uv ≥ w(u, p) + d_pv`,
        // because the final edge (p*, u) of a levelled B-hop path gives
        // `d_uv = w + d^{(B-1)}(p*) ≥ w + d_p*v ≥ min_p (w + d_pv)`.
        // The argmin runs branchlessly over packed `(cand << 32) | p` keys.
        let mut best_key: Vec<T::Key> = vec![T::KEY_MAX; sc];
        for v in 0..n {
            let vrow = v * sc;
            let lo = offsets[v];
            let hi = offsets[v + 1];
            for key in best_key.iter_mut() {
                *key = T::KEY_MAX;
            }
            for (&p, &w) in targets[lo..hi].iter().zip(&weights[lo..hi]) {
                let prow = p as usize * sc;
                for (key, &pd) in best_key.iter_mut().zip(&cur[prow..prow + sc]) {
                    let cand = pd.add_capped(w).pack(p);
                    *key = (*key).min(cand);
                }
            }
            for j in 0..sc {
                let si = chunk_index * CHUNK + j;
                let d = cur[vrow + j];
                dist[si * n + v] = d.into_dist();
                parent[si * n + v] = if d < T::INF && d > T::ZERO && T::key_value(best_key[j]) <= d
                {
                    Some(T::key_neighbor(best_key[j]) as NodeId)
                } else {
                    None
                };
            }
        }
    }
}

/// The retained naive reference for [`multi_source_hop_bounded`]: one
/// levelled Bellman–Ford per source, each sweep a full `O(n + m)` pass over a
/// per-sweep snapshot — exactly the seed implementation this repository
/// started from.
///
/// Returns `(dist, parent)` in the nested per-source layout. Kept as the
/// equivalence oracle for the property tests and the perf-comparison bench;
/// not for production use.
///
/// # Panics
///
/// Panics if a source is out of range.
#[allow(clippy::type_complexity)]
pub fn multi_source_hop_bounded_reference(
    g: &WeightedGraph,
    sources: &[NodeId],
    hop_bound: usize,
) -> (Vec<Vec<Dist>>, Vec<Vec<Option<NodeId>>>) {
    for &s in sources {
        assert!(s < g.num_nodes(), "source {s} out of range");
    }
    let n = g.num_nodes();
    let mut dist = Vec::with_capacity(sources.len());
    let mut parent = Vec::with_capacity(sources.len());
    let mut snapshot = vec![INFINITY; n];
    for &src in sources {
        // Levelled Bellman-Ford: after t sweeps, cur[u] = d^{(t)}(src, u).
        let mut cur = vec![INFINITY; n];
        let mut par: Vec<Option<NodeId>> = vec![None; n];
        cur[src] = 0;
        for _ in 0..hop_bound {
            snapshot.copy_from_slice(&cur);
            let mut any = false;
            for u in 0..n {
                if snapshot[u] >= INFINITY {
                    continue;
                }
                for nb in g.neighbors(u) {
                    let cand = dist_add(snapshot[u], nb.weight);
                    if cand < cur[nb.node] {
                        cur[nb.node] = cand;
                        par[nb.node] = Some(u);
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
        }
        dist.push(cur);
        parent.push(par);
    }
    (dist, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::bellman_ford::hop_bounded_distances;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    fn setup() -> (WeightedGraph, Vec<NodeId>, MultiSourceHopBounded) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(60, 41).with_weights(1, 30), 0.07);
        let sources = vec![0, 7, 23, 42];
        let res = multi_source_hop_bounded(&g, &sources, 6, 0.25, 10);
        (g, sources, res)
    }

    #[test]
    fn inequality_2_holds_with_exact_values() {
        let (g, sources, res) = setup();
        for (si, &src) in sources.iter().enumerate() {
            let reference = hop_bounded_distances(&g, src, 6);
            for u in g.nodes() {
                assert_eq!(
                    res.dist_row(si)[u],
                    reference.dist[u],
                    "source {src}, vertex {u}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_reference_bit_for_bit() {
        let (g, sources, res) = setup();
        let (ref_dist, _) = multi_source_hop_bounded_reference(&g, &sources, 6);
        for si in 0..sources.len() {
            assert_eq!(res.dist_row(si), ref_dist[si].as_slice(), "source row {si}");
        }
    }

    #[test]
    fn inequality_3_holds_for_parents() {
        let (g, sources, res) = setup();
        for (si, &src) in sources.iter().enumerate() {
            for u in g.nodes() {
                if let Some(p) = res.parent_row(si)[u] {
                    let w = g.edge_weight(u, p).expect("parent is a neighbour");
                    assert!(
                        res.dist_row(si)[u] >= w + res.dist_row(si)[p],
                        "source {src}, vertex {u}: {} < {} + {}",
                        res.dist_row(si)[u],
                        w,
                        res.dist_row(si)[p]
                    );
                }
            }
        }
    }

    #[test]
    fn value_and_parent_accessors() {
        let (g, _sources, res) = setup();
        assert_eq!(res.value(0, 0), 0);
        assert_eq!(res.value(5, 999), INFINITY);
        assert_eq!(res.parent_towards(0, 0), None);
        assert_eq!(res.num_vertices(), g.num_nodes());
        // A neighbour of source 0 should have 0 recorded as its parent when the
        // direct edge is its best 6-hop path.
        let nb = g.neighbors(0)[0];
        let direct_best = res.value(nb.node, 0) == nb.weight;
        if direct_best {
            assert_eq!(res.parent_towards(nb.node, 0), Some(0));
        }
    }

    #[test]
    fn symmetric_between_source_pairs() {
        // The paper notes the computed values are symmetric for u, v both in V'.
        let (_g, sources, res) = setup();
        for &a in &sources {
            for &b in &sources {
                assert_eq!(res.value(a, b), res.value(b, a));
            }
        }
    }

    #[test]
    fn ledger_charges_expected_formula() {
        let (_g, sources, res) = setup();
        let expected = ((sources.len() + 6 + 10) as f64 / 0.25).ceil() as usize;
        assert_eq!(res.ledger.total_rounds(), expected);
        assert_eq!(res.ledger.len(), 1);
    }

    #[test]
    #[should_panic(expected = "hop bound")]
    fn rejects_zero_hop_bound() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(10, 1), 0.3);
        let _ = multi_source_hop_bounded(&g, &[0], 0, 0.1, 3);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(10, 1), 0.3);
        let _ = multi_source_hop_bounded(&g, &[0], 2, 1.5, 3);
    }
}
