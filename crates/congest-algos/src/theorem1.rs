//! Theorem 1 (\[Nan14\]): multi-source approximate hop-bounded distances.
//!
//! Given a source set `V' ⊆ V`, a hop bound `B ≥ 1` and `0 < ε < 1`, every
//! vertex `u` learns values `d_uv` for all `v ∈ V'` with
//!
//! ```text
//! d^{(B)}_G(u, v) ≤ d_uv ≤ (1 + ε) d^{(B)}_G(u, v)          (2)
//! ```
//!
//! and, per Remark 1, a neighbour `p = p_v(u)` with
//!
//! ```text
//! d_uv ≥ w(u, p) + d_pv                                      (3)
//! ```
//!
//! The original distributed algorithm runs in `Õ(|V'| + B + D)/ε` rounds.
//! Reproduction note (see DESIGN.md): we compute the values source-parallel at
//! graph level — which yields the *exact* `B`-hop distances, trivially
//! satisfying (2) — and charge the paper's round bound on a
//! [`RoundLedger`](en_congest::RoundLedger). The exactness also makes (3) hold
//! with the hop-bounded parent (proof: `d^{(B)}(u,v) = w(u,p) + d^{(B-1)}(p,v)
//! ≥ w(u,p) + d^{(B)}(p,v)`).

use std::collections::HashMap;

use en_graph::{dist_add, Dist, NodeId, WeightedGraph, INFINITY};

use en_congest::RoundLedger;

/// The output of the Theorem 1 computation.
#[derive(Debug, Clone)]
pub struct MultiSourceHopBounded {
    /// The source set `V'`, in the order used by the index maps below.
    pub sources: Vec<NodeId>,
    /// `dist[s][u]` is `d_{u, sources[s]}` (satisfying inequality (2)).
    pub dist: Vec<Vec<Dist>>,
    /// `parent[s][u]` is the neighbour `p_{sources[s]}(u)` of `u` (Remark 1),
    /// or `None` when `u` is the source itself or unreachable within `B` hops.
    pub parent: Vec<Vec<Option<NodeId>>>,
    /// Maps a source id back to its row index in `dist` / `parent`.
    pub source_index: HashMap<NodeId, usize>,
    /// The hop bound `B` used.
    pub hop_bound: usize,
    /// Round charge for the computation (`Õ(|V'| + B + D)/ε`).
    pub ledger: RoundLedger,
}

impl MultiSourceHopBounded {
    /// The value `d_uv` for source `v` and vertex `u`, or [`INFINITY`] if `v`
    /// is not a source or `u` is unreachable within `B` hops.
    pub fn value(&self, u: NodeId, v: NodeId) -> Dist {
        match self.source_index.get(&v) {
            Some(&s) => self.dist[s][u],
            None => INFINITY,
        }
    }

    /// The parent `p_v(u)` of Remark 1, if defined.
    pub fn parent_towards(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        self.source_index.get(&v).and_then(|&s| self.parent[s][u])
    }
}

/// Runs the Theorem 1 computation for source set `sources`, hop bound `B`,
/// approximation parameter `eps`, on a graph of hop-diameter `hop_diameter`
/// (used only for the round charge).
///
/// # Panics
///
/// Panics if a source is out of range, `B == 0`, or `eps` is not in `(0, 1)`.
pub fn multi_source_hop_bounded(
    g: &WeightedGraph,
    sources: &[NodeId],
    hop_bound: usize,
    eps: f64,
    hop_diameter: usize,
) -> MultiSourceHopBounded {
    assert!(hop_bound >= 1, "hop bound B must be at least 1");
    assert!(eps > 0.0 && eps < 1.0, "epsilon must be in (0, 1)");
    for &s in sources {
        assert!(s < g.num_nodes(), "source {s} out of range");
    }
    let n = g.num_nodes();
    let mut dist = Vec::with_capacity(sources.len());
    let mut parent = Vec::with_capacity(sources.len());
    for &src in sources {
        // Levelled Bellman-Ford: after t sweeps, cur[u] = d^{(t)}(src, u).
        let mut cur = vec![INFINITY; n];
        let mut par: Vec<Option<NodeId>> = vec![None; n];
        cur[src] = 0;
        for _ in 0..hop_bound {
            let snapshot = cur.clone();
            let mut changed = false;
            for u in 0..n {
                if snapshot[u] >= INFINITY {
                    continue;
                }
                for nb in g.neighbors(u) {
                    let cand = dist_add(snapshot[u], nb.weight);
                    if cand < cur[nb.node] {
                        cur[nb.node] = cand;
                        par[nb.node] = Some(u);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        dist.push(cur);
        parent.push(par);
    }
    let source_index = sources
        .iter()
        .copied()
        .enumerate()
        .map(|(i, s)| (s, i))
        .collect();
    let mut ledger = RoundLedger::new();
    let charged = ((sources.len() + hop_bound + hop_diameter) as f64 / eps).ceil() as usize;
    ledger.charge(
        format!(
            "Theorem 1: multi-source {}-hop distances from {} sources",
            hop_bound,
            sources.len()
        ),
        charged,
        format!(
            "O(|V'| + B + D)/eps = ({} + {} + {}) / {:.4}",
            sources.len(),
            hop_bound,
            hop_diameter,
            eps
        ),
    );
    MultiSourceHopBounded {
        sources: sources.to_vec(),
        dist,
        parent,
        source_index,
        hop_bound,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::bellman_ford::hop_bounded_distances;
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    fn setup() -> (WeightedGraph, Vec<NodeId>, MultiSourceHopBounded) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(60, 41).with_weights(1, 30), 0.07);
        let sources = vec![0, 7, 23, 42];
        let res = multi_source_hop_bounded(&g, &sources, 6, 0.25, 10);
        (g, sources, res)
    }

    #[test]
    fn inequality_2_holds_with_exact_values() {
        let (g, sources, res) = setup();
        for (si, &src) in sources.iter().enumerate() {
            let reference = hop_bounded_distances(&g, src, 6);
            for u in g.nodes() {
                assert_eq!(
                    res.dist[si][u], reference.dist[u],
                    "source {src}, vertex {u}"
                );
            }
        }
    }

    #[test]
    fn inequality_3_holds_for_parents() {
        let (g, sources, res) = setup();
        for (si, &src) in sources.iter().enumerate() {
            for u in g.nodes() {
                if let Some(p) = res.parent[si][u] {
                    let w = g.edge_weight(u, p).expect("parent is a neighbour");
                    assert!(
                        res.dist[si][u] >= w + res.dist[si][p],
                        "source {src}, vertex {u}: {} < {} + {}",
                        res.dist[si][u],
                        w,
                        res.dist[si][p]
                    );
                }
            }
        }
    }

    #[test]
    fn value_and_parent_accessors() {
        let (g, _sources, res) = setup();
        assert_eq!(res.value(0, 0), 0);
        assert_eq!(res.value(5, 999), INFINITY);
        assert_eq!(res.parent_towards(0, 0), None);
        // A neighbour of source 0 should have 0 recorded as its parent when the
        // direct edge is its best 6-hop path.
        let nb = g.neighbors(0)[0];
        let direct_best = res.value(nb.node, 0) == nb.weight;
        if direct_best {
            assert_eq!(res.parent_towards(nb.node, 0), Some(0));
        }
    }

    #[test]
    fn symmetric_between_source_pairs() {
        // The paper notes the computed values are symmetric for u, v both in V'.
        let (_g, sources, res) = setup();
        for &a in &sources {
            for &b in &sources {
                assert_eq!(res.value(a, b), res.value(b, a));
            }
        }
    }

    #[test]
    fn ledger_charges_expected_formula() {
        let (_g, sources, res) = setup();
        let expected = ((sources.len() + 6 + 10) as f64 / 0.25).ceil() as usize;
        assert_eq!(res.ledger.total_rounds(), expected);
        assert_eq!(res.ledger.len(), 1);
    }

    #[test]
    #[should_panic(expected = "hop bound")]
    fn rejects_zero_hop_bound() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(10, 1), 0.3);
        let _ = multi_source_hop_bounded(&g, &[0], 0, 0.1, 3);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(10, 1), 0.3);
        let _ = multi_source_hop_bounded(&g, &[0], 2, 1.5, 3);
    }
}
