//! Distributed primitives used by the routing-scheme construction.
//!
//! Three primitives from the paper live here:
//!
//! * [`explore`] — multi-source weighted Bellman–Ford exploration, executed as
//!   a *real* message-passing protocol on the CONGEST simulator. This is the
//!   workhorse of the exact-pivot computation and the small-scale cluster
//!   construction (Section 3.2): `t` iterations rooted at a vertex set `A`
//!   give every vertex its exact distance to `A` provided the relevant
//!   shortest paths use at most `t` hops.
//! * [`theorem1`] — the multi-source approximate hop-bounded distance
//!   computation of \[Nan14\] (Theorem 1 in the paper): every vertex `u`
//!   learns values `d_uv` for all sources `v ∈ V'` with
//!   `d^{(B)}_G(u,v) ≤ d_uv ≤ (1+ε) d^{(B)}_G(u,v)`, together with a parent
//!   neighbour `p_v(u)` satisfying `d_uv ≥ w(u,p) + d_pv` (Remark 1).
//!   The values are computed source-parallel at graph level and the round
//!   cost `Õ(|V'| + B + D)/ε` is charged on a [`RoundLedger`]; the returned
//!   values are validated in tests against the sequential reference.
//! * [`cluster_explore`] — the *parallel* depth-bounded cluster exploration of
//!   Section 3.2 (all centres of a level at once, join condition (11)),
//!   executed as a real protocol so the congestion that Claim 2 bounds by
//!   `Õ(n^{1/k})` is actually measured on the wire.
//!
//! [`RoundLedger`]: en_congest::RoundLedger

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster_explore;
pub mod explore;
pub mod theorem1;

pub use cluster_explore::{distributed_cluster_exploration, ClusterExplorationResult};
pub use explore::{distributed_exploration, ExplorationResult};
pub use theorem1::{
    multi_source_hop_bounded, multi_source_hop_bounded_opts, multi_source_hop_bounded_reference,
    MultiSourceHopBounded,
};
