//! Parallel depth-bounded cluster exploration as a real CONGEST protocol
//! (Section 3.2 of the paper, "Building the Small Trees").
//!
//! All centres `u ∈ A_i \ A_{i+1}` explore **in parallel**: a vertex `v` that
//! receives a message originated at `u` with current distance `b_v(u)` joins
//! `C(u)` and relays the message to its neighbours iff
//! `b_v(u) < d_G(v, A_{i+1})` (inequality (11)). Each message is a
//! `(centre, distance)` pair. When a vertex improves its estimate for several
//! centres in the same round it must send several messages over each edge; the
//! simulator's per-edge budget turns that into extra rounds, so the measured
//! round count *is* `iterations × congestion` — the quantity the paper bounds
//! by `iterations × Õ(n^{1/k})` via Claim 2.
//!
//! The sequential construction (`grow_exact_cluster_csr` in the `en_routing`
//! crate) produces the same clusters; this protocol exists to validate, on the
//! simulator, both the membership/distance outcome and the congestion claim.

use std::collections::HashMap;

use en_graph::{dist_add, Dist, NodeId, WeightedGraph, INFINITY};

use en_congest::{
    Incoming, NodeContext, Outgoing, Protocol, RoundStats, SimulationConfig, Simulator,
};

/// Per-node protocol state for the parallel exploration.
#[derive(Debug, Clone)]
struct ClusterExploreProtocol {
    /// Centres this node hosts (it is the origin for them).
    own_centers: Vec<NodeId>,
    /// Join threshold `d_G(v, A_{i+1})` of this node ([`INFINITY`] at the top level).
    threshold: Dist,
    /// Iteration budget (the paper's `4 n^{(i+1)/k} ln n`).
    iterations: usize,
    /// Best known distance and parent port per centre.
    best: HashMap<NodeId, (Dist, Option<usize>)>,
    /// Centres whose improved estimate has not been announced yet.
    dirty: Vec<NodeId>,
}

type ClusterMsg = (u64, u64); // (centre id, distance)

impl ClusterExploreProtocol {
    fn announce(&mut self, ctx: &NodeContext, out: &mut Vec<Outgoing<ClusterMsg>>) {
        for center in self.dirty.drain(..) {
            let (dist, _) = self.best[&center];
            for port in 0..ctx.degree() {
                out.push(Outgoing::new(port, (center as u64, dist)));
            }
        }
    }

    fn is_member(&self, center: NodeId, dist: Dist) -> bool {
        // The centre itself is always a member; others need strict inequality (11).
        self.own_centers.contains(&center) || dist < self.threshold
    }
}

impl Protocol for ClusterExploreProtocol {
    type Msg = ClusterMsg;

    fn init(&mut self, ctx: &NodeContext, out: &mut Vec<Outgoing<ClusterMsg>>) {
        for &c in &self.own_centers.clone() {
            self.best.insert(c, (0, None));
            self.dirty.push(c);
        }
        self.announce(ctx, out);
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        round: usize,
        incoming: &[Incoming<ClusterMsg>],
        out: &mut Vec<Outgoing<ClusterMsg>>,
    ) {
        if round > self.iterations {
            return;
        }
        for inc in incoming {
            let center = inc.msg.0 as NodeId;
            let w = ctx
                .weight_at(inc.port)
                .expect("message arrived on a real port");
            let cand = dist_add(inc.msg.1, w);
            let current = self.best.get(&center).map(|&(d, _)| d).unwrap_or(INFINITY);
            if cand < current && self.is_member(center, cand) {
                self.best.insert(center, (cand, Some(inc.port)));
                if !self.dirty.contains(&center) {
                    self.dirty.push(center);
                }
            }
        }
        self.announce(ctx, out);
    }
}

/// The outcome of the parallel exploration for one centre.
#[derive(Debug, Clone, Default)]
pub struct ExploredCluster {
    /// `members[v] = (b_v(centre), parent of v)` for every joined vertex
    /// (the centre maps to `(0, None)`).
    pub members: HashMap<NodeId, (Dist, Option<NodeId>)>,
}

/// The outcome of the parallel multi-centre exploration.
#[derive(Debug, Clone)]
pub struct ClusterExplorationResult {
    /// One entry per centre, keyed by centre id.
    pub clusters: HashMap<NodeId, ExploredCluster>,
    /// Simulator statistics; `stats.max_edge_backlog` is the measured
    /// congestion that Claim 2 bounds by `Õ(n^{1/k})`.
    pub stats: RoundStats,
    /// The iteration budget that was used.
    pub iterations: usize,
}

/// Runs the parallel depth-bounded exploration from `centers`, with per-vertex
/// join thresholds `thresholds[v] = d_G(v, A_{i+1})` and the given iteration
/// budget, by real message passing.
///
/// # Panics
///
/// Panics if `thresholds.len() != n` or a centre id is out of range.
pub fn distributed_cluster_exploration(
    g: &WeightedGraph,
    centers: &[NodeId],
    thresholds: &[Dist],
    iterations: usize,
) -> ClusterExplorationResult {
    assert_eq!(
        thresholds.len(),
        g.num_nodes(),
        "one threshold per vertex required"
    );
    for &c in centers {
        assert!(c < g.num_nodes(), "centre {c} out of range");
    }
    let mut own: Vec<Vec<NodeId>> = vec![Vec::new(); g.num_nodes()];
    for &c in centers {
        own[c].push(c);
    }
    let mut sim = Simulator::new(g, SimulationConfig::default(), |v| ClusterExploreProtocol {
        own_centers: own[v].clone(),
        threshold: thresholds[v],
        iterations,
        best: HashMap::new(),
        dirty: Vec::new(),
    });
    let stats = sim.run();
    let mut clusters: HashMap<NodeId, ExploredCluster> = centers
        .iter()
        .map(|&c| (c, ExploredCluster::default()))
        .collect();
    for (v, proto) in sim.protocols().iter().enumerate() {
        for (&center, &(dist, parent_port)) in &proto.best {
            if !proto.is_member(center, dist) {
                continue;
            }
            let parent = parent_port
                .and_then(|port| g.neighbor_at_port(v, port))
                .map(|nb| nb.node);
            clusters
                .entry(center)
                .or_default()
                .members
                .insert(v, (dist, parent));
        }
    }
    ClusterExplorationResult {
        clusters,
        stats,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::dijkstra::{dijkstra, multi_source_dijkstra};
    use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};

    /// Exact thresholds `d_G(v, A_1)` and the level-0 centres for a two-level
    /// hierarchy where `a1` is the sampled set.
    fn setup(n: usize, seed: u64, a1: &[NodeId]) -> (WeightedGraph, Vec<Dist>, Vec<NodeId>) {
        let g = erdos_renyi_connected(&GeneratorConfig::new(n, seed).with_weights(1, 30), 0.12);
        let (thresholds, _) = multi_source_dijkstra(&g, a1);
        let centers: Vec<NodeId> = (0..n).filter(|v| !a1.contains(v)).collect();
        (g, thresholds, centers)
    }

    #[test]
    fn membership_and_distances_match_definition_6() {
        let a1 = vec![3, 17, 29];
        let (g, thresholds, centers) = setup(40, 1, &a1);
        let res = distributed_cluster_exploration(&g, &centers, &thresholds, g.num_nodes());
        for &c in &centers {
            let sp = dijkstra(&g, c);
            let cluster = &res.clusters[&c];
            for v in g.nodes() {
                let should = v == c || sp.dist[v] < thresholds[v];
                assert_eq!(
                    cluster.members.contains_key(&v),
                    should,
                    "centre {c} vertex {v}"
                );
                if should {
                    assert_eq!(cluster.members[&v].0, sp.dist[v], "centre {c} vertex {v}");
                }
            }
        }
    }

    #[test]
    fn parents_form_trees_within_the_cluster() {
        let a1 = vec![0, 11];
        let (g, thresholds, centers) = setup(35, 3, &a1);
        let res = distributed_cluster_exploration(&g, &centers, &thresholds, g.num_nodes());
        for (&c, cluster) in &res.clusters {
            for (&v, &(dist, parent)) in &cluster.members {
                match parent {
                    None => assert_eq!(v, c),
                    Some(p) => {
                        assert!(
                            cluster.members.contains_key(&p),
                            "parent of {v} outside C({c})"
                        );
                        let w = g.edge_weight(v, p).expect("parent is a neighbour");
                        assert_eq!(cluster.members[&p].0 + w, dist);
                    }
                }
            }
        }
    }

    #[test]
    fn congestion_respects_claim_2_overlap() {
        // The measured per-edge backlog is governed by the maximum number of
        // clusters containing any single vertex (Claim 2): a vertex announces
        // only clusters it belongs to, so the backlog is at most a small
        // multiple of the overlap (the multiple accounts for repeated
        // improvements of the same estimate during the relaxation).
        let a1 = vec![2, 9, 21, 33];
        let (g, thresholds, centers) = setup(45, 5, &a1);
        let res = distributed_cluster_exploration(&g, &centers, &thresholds, g.num_nodes());
        let max_overlap = (0..g.num_nodes())
            .map(|v| {
                res.clusters
                    .values()
                    .filter(|c| c.members.contains_key(&v))
                    .count()
            })
            .max()
            .unwrap_or(0);
        assert!(
            res.stats.max_edge_backlog <= max_overlap.max(1) * 8 + 8,
            "backlog {} vs overlap {max_overlap}",
            res.stats.max_edge_backlog
        );
        // And the run finishes within iterations x congestion (+ drain slack),
        // which is exactly the charge the paper's analysis assigns.
        assert!(res.stats.rounds <= res.iterations * res.stats.max_edge_backlog.max(1) + 3);
    }

    #[test]
    fn iteration_budget_limits_reach() {
        // With a tiny iteration budget only vertices within that many hops of a
        // centre can join.
        let g = en_graph::generators::path(&GeneratorConfig::new(12, 7).unweighted());
        let thresholds = vec![INFINITY; 12];
        let res = distributed_cluster_exploration(&g, &[0], &thresholds, 3);
        let members = &res.clusters[&0].members;
        assert!(members.contains_key(&3));
        assert!(!members.contains_key(&6));
    }

    #[test]
    #[should_panic(expected = "one threshold per vertex")]
    fn rejects_wrong_threshold_length() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(10, 1), 0.3);
        let _ = distributed_cluster_exploration(&g, &[0], &[INFINITY; 3], 5);
    }
}
