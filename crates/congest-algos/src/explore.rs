//! Multi-source weighted Bellman–Ford exploration as a real CONGEST protocol.
//!
//! "Conduct `t` iterations of Bellman–Ford rooted in the vertex set `A_i`"
//! (Section 3.1 of the paper) — every vertex learns its distance to the
//! nearest source, the identity of that source (its *pivot*), and its parent
//! towards it, provided the shortest path to the nearest source uses at most
//! `t` hops. Each message is a `(source id, distance)` pair, i.e. two words.

use en_graph::{dist_add, Dist, NodeId, WeightedGraph, INFINITY};

use en_congest::{
    Incoming, NodeContext, Outgoing, Protocol, RoundStats, SimulationConfig, Simulator,
};

/// Per-node state of the exploration protocol.
#[derive(Debug, Clone)]
struct ExploreProtocol {
    /// Whether this node is one of the sources.
    is_source: bool,
    /// Current best distance to the nearest source.
    dist: Dist,
    /// The source realising `dist`.
    source: Option<NodeId>,
    /// Port towards the parent on the best path found so far.
    parent_port: Option<usize>,
    /// Number of Bellman-Ford iterations to run.
    iterations: usize,
    /// Whether the state changed since we last announced it.
    dirty: bool,
}

type ExploreMsg = (u64, u64); // (source id, distance)

impl ExploreProtocol {
    fn announce(&mut self, ctx: &NodeContext, out: &mut Vec<Outgoing<ExploreMsg>>) {
        if !self.dirty || self.dist >= INFINITY {
            return;
        }
        self.dirty = false;
        let src = self.source.expect("finite distance implies a source") as u64;
        out.extend((0..ctx.degree()).map(|p| Outgoing::new(p, (src, self.dist))));
    }
}

impl Protocol for ExploreProtocol {
    type Msg = ExploreMsg;

    fn init(&mut self, ctx: &NodeContext, out: &mut Vec<Outgoing<ExploreMsg>>) {
        if self.is_source {
            self.dist = 0;
            self.source = Some(ctx.id);
            self.dirty = true;
            self.announce(ctx, out);
        }
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        round: usize,
        incoming: &[Incoming<ExploreMsg>],
        out: &mut Vec<Outgoing<ExploreMsg>>,
    ) {
        // Stop relaying once the allotted number of iterations has elapsed;
        // this mirrors the fixed iteration count of the paper's explorations.
        if round > self.iterations {
            return;
        }
        for inc in incoming {
            let w = ctx
                .weight_at(inc.port)
                .expect("message arrived on a real port");
            let cand = dist_add(inc.msg.1, w);
            let cand_src = inc.msg.0 as NodeId;
            let better =
                cand < self.dist || (cand == self.dist && self.source.is_none_or(|s| cand_src < s));
            if better {
                self.dist = cand;
                self.source = Some(cand_src);
                self.parent_port = Some(inc.port);
                self.dirty = true;
            }
        }
        self.announce(ctx, out);
    }
}

/// The result of a multi-source exploration.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    /// `dist[v]`: distance from `v` to the nearest source along a path of at
    /// most `iterations` hops ([`INFINITY`] if no source is that close).
    pub dist: Vec<Dist>,
    /// `pivot[v]`: the source realising `dist[v]`.
    pub pivot: Vec<Option<NodeId>>,
    /// `parent[v]`: the neighbour of `v` on the found path towards its pivot.
    pub parent: Vec<Option<NodeId>>,
    /// Simulator statistics for the run.
    pub stats: RoundStats,
}

/// Runs `iterations` rounds of multi-source Bellman–Ford rooted at `sources`,
/// by real message passing.
///
/// If the shortest path from `v` to its nearest source uses at most
/// `iterations` hops, then `dist[v]` is exact (Claim 3 / the pivot computation
/// of Section 3.1 chooses `iterations = 4 n^{i/k} ln n` to guarantee this with
/// high probability).
///
/// # Panics
///
/// Panics if any source id is out of range.
pub fn distributed_exploration(
    g: &WeightedGraph,
    sources: &[NodeId],
    iterations: usize,
) -> ExplorationResult {
    for &s in sources {
        assert!(s < g.num_nodes(), "source {s} out of range");
    }
    let is_source = {
        let mut f = vec![false; g.num_nodes()];
        for &s in sources {
            f[s] = true;
        }
        f
    };
    let mut sim = Simulator::new(g, SimulationConfig::default(), |v| ExploreProtocol {
        is_source: is_source[v],
        dist: INFINITY,
        source: None,
        parent_port: None,
        iterations,
        dirty: false,
    });
    let stats = sim.run();
    let n = g.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut pivot = vec![None; n];
    let mut parent = vec![None; n];
    for (v, p) in sim.protocols().iter().enumerate() {
        dist[v] = p.dist;
        pivot[v] = p.source;
        parent[v] = p
            .parent_port
            .and_then(|port| g.neighbor_at_port(v, port))
            .map(|nb| nb.node);
    }
    ExplorationResult {
        dist,
        pivot,
        parent,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::bellman_ford::hop_bounded_distances;
    use en_graph::dijkstra::multi_source_dijkstra;
    use en_graph::generators::{erdos_renyi_connected, path, GeneratorConfig};

    #[test]
    fn single_source_full_exploration_matches_dijkstra() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(40, 13), 0.1);
        let res = distributed_exploration(&g, &[0], g.num_nodes());
        let (dist, _) = multi_source_dijkstra(&g, &[0]);
        assert_eq!(res.dist, dist);
        assert!(res.pivot.iter().all(|&p| p == Some(0)));
    }

    #[test]
    fn multi_source_full_exploration_matches_multi_source_dijkstra() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(50, 17), 0.08);
        let sources = vec![3, 11, 29];
        let res = distributed_exploration(&g, &sources, g.num_nodes());
        let (dist, _) = multi_source_dijkstra(&g, &sources);
        assert_eq!(res.dist, dist);
        for v in g.nodes() {
            let p = res.pivot[v].unwrap();
            assert!(sources.contains(&p));
        }
    }

    #[test]
    fn bounded_iterations_limit_reach() {
        // On an unweighted path from vertex 0, t iterations reach exactly t hops.
        let g = path(&GeneratorConfig::new(10, 1).unweighted());
        let res = distributed_exploration(&g, &[0], 3);
        assert_eq!(res.dist[3], 3);
        assert_eq!(res.dist[4], INFINITY);
        assert_eq!(res.pivot[4], None);
    }

    #[test]
    fn bounded_exploration_at_least_as_good_as_hop_bounded_reference() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(40, 23).with_weights(1, 50), 0.1);
        let t = 4;
        let res = distributed_exploration(&g, &[5], t);
        let reference = hop_bounded_distances(&g, 5, t);
        for v in g.nodes() {
            // The protocol may do better than the t-hop bound because a value
            // that arrived in round r < t keeps propagating, but never worse.
            assert!(res.dist[v] <= reference.dist[v], "vertex {v}");
        }
    }

    #[test]
    fn parents_point_along_shortest_paths() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(30, 31), 0.12);
        let res = distributed_exploration(&g, &[2], g.num_nodes());
        for v in g.nodes() {
            if v == 2 {
                assert_eq!(res.parent[v], None);
                continue;
            }
            let p = res.parent[v].expect("connected graph: every vertex has a parent");
            let w = g.edge_weight(v, p).expect("parent is a neighbour");
            assert_eq!(res.dist[v], res.dist[p] + w, "vertex {v}");
        }
    }

    #[test]
    fn rounds_close_to_iteration_budget() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(40, 37), 0.1);
        let iterations = 6;
        let res = distributed_exploration(&g, &[0], iterations);
        // The protocol stops relaying after `iterations` rounds, plus a couple
        // of rounds to drain in-flight messages.
        assert!(res.stats.rounds <= iterations + 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_source() {
        let g = path(&GeneratorConfig::new(4, 1));
        let _ = distributed_exploration(&g, &[9], 2);
    }
}
