//! Global broadcast and convergecast over a BFS tree (Lemma 1).
//!
//! Lemma 1 of the paper: if every vertex `v` holds `m_v` messages of `O(1)`
//! words each, `M = Σ_v m_v`, then all vertices can receive all messages
//! within `O(M + D)` rounds. The mechanism is a pipelined convergecast of all
//! messages to the root of a BFS tree followed by a pipelined broadcast down
//! the tree.
//!
//! This module provides both the **executable** version (a real protocol run
//! through the simulator, used to validate the bound) and the **closed-form
//! round charges** used by the higher-level constructions when they invoke
//! Lemma 1 as a black box.

use en_graph::tree::RootedTree;
use en_graph::{NodeId, WeightedGraph};

use crate::bfs_tree::build_bfs_tree;
use crate::network::{SimulationConfig, Simulator};
use crate::protocol::{Incoming, NodeContext, Outgoing, Protocol};
use crate::stats::RoundStats;

/// Closed-form round charge for broadcasting `num_messages` `O(1)`-word
/// messages to every vertex over a BFS tree of depth `depth` (Lemma 1):
/// a pipelined downcast delivers one message per tree edge per round, so the
/// last message arrives after `num_messages + depth` rounds.
pub fn broadcast_rounds(num_messages: usize, depth: usize) -> usize {
    if num_messages == 0 {
        0
    } else {
        num_messages + depth
    }
}

/// Closed-form round charge for collecting `num_messages` messages (spread
/// arbitrarily over the vertices) at the root of a BFS tree of depth `depth`:
/// the root's busiest incident tree edge forwards at most `num_messages`
/// messages, one per round, after a `depth`-round pipeline fill.
pub fn convergecast_rounds(num_messages: usize, depth: usize) -> usize {
    if num_messages == 0 {
        0
    } else {
        num_messages + depth
    }
}

/// Combined charge for Lemma 1 (convergecast to the root, then broadcast to
/// everyone): `O(M + D)` with the explicit constant 2.
pub fn lemma1_rounds(num_messages: usize, depth: usize) -> usize {
    convergecast_rounds(num_messages, depth) + broadcast_rounds(num_messages, depth)
}

/// A message routed down the BFS tree: `(sequence number, payload)`.
type TreeMsg = (u64, u64);

/// Protocol that pipelines a list of payload words from the root down a fixed
/// tree to every vertex.
#[derive(Debug, Clone)]
struct DowncastProtocol {
    /// Port towards the parent (None at the root).
    parent_port: Option<usize>,
    /// Ports towards children in the tree.
    child_ports: Vec<usize>,
    /// Messages this node originates (only the root has any).
    to_send: Vec<u64>,
    /// Everything received, in arrival order.
    received: Vec<u64>,
}

impl Protocol for DowncastProtocol {
    type Msg = TreeMsg;

    fn init(&mut self, _ctx: &NodeContext, out: &mut Vec<Outgoing<TreeMsg>>) {
        for (i, &payload) in self.to_send.iter().enumerate() {
            for &cp in &self.child_ports {
                out.push(Outgoing::new(cp, (i as u64, payload)));
            }
        }
    }

    fn on_round(
        &mut self,
        _ctx: &NodeContext,
        _round: usize,
        incoming: &[Incoming<TreeMsg>],
        out: &mut Vec<Outgoing<TreeMsg>>,
    ) {
        for inc in incoming {
            if Some(inc.port) == self.parent_port {
                self.received.push(inc.msg.1);
                for &cp in &self.child_ports {
                    out.push(Outgoing::new(cp, inc.msg));
                }
            }
        }
    }
}

/// The outcome of an executable pipelined broadcast.
#[derive(Debug, Clone)]
pub struct BroadcastResult {
    /// For every vertex, the payload words it received (the root's own
    /// messages are included for uniformity).
    pub received: Vec<Vec<u64>>,
    /// Statistics of the broadcast phase only (excludes BFS-tree construction).
    pub stats: RoundStats,
    /// Depth of the BFS tree used.
    pub tree_depth: usize,
}

/// Broadcasts `messages` (held initially by `root`) to every vertex by real
/// pipelined message passing down a freshly built BFS tree.
///
/// # Panics
///
/// Panics if `root` is out of range or the graph is disconnected.
pub fn pipelined_broadcast(g: &WeightedGraph, root: NodeId, messages: &[u64]) -> BroadcastResult {
    let bfs = build_bfs_tree(g, root);
    assert!(
        bfs.tree.len() == g.num_nodes(),
        "pipelined broadcast requires a connected graph"
    );
    let children = bfs.tree.children();
    let mut sim = Simulator::new(g, SimulationConfig::default(), |v| {
        let parent_port = bfs
            .tree
            .parent(v)
            .map(|(p, _)| g.port_towards(v, p).expect("tree edge must exist in graph"));
        let child_ports = children[v]
            .iter()
            .map(|&c| g.port_towards(v, c).expect("tree edge must exist in graph"))
            .collect();
        DowncastProtocol {
            parent_port,
            child_ports,
            to_send: if v == root { messages.to_vec() } else { vec![] },
            received: if v == root { messages.to_vec() } else { vec![] },
        }
    });
    let stats = sim.run();
    let received = sim
        .into_protocols()
        .into_iter()
        .map(|p| p.received)
        .collect();
    BroadcastResult {
        received,
        stats,
        tree_depth: bfs.depth,
    }
}

/// Protocol that pipelines every vertex's local payload words up a fixed tree
/// to the root (convergecast).
#[derive(Debug, Clone)]
struct ConvergecastProtocol {
    parent_port: Option<usize>,
    to_send: Vec<u64>,
    received: Vec<u64>,
}

impl Protocol for ConvergecastProtocol {
    type Msg = u64;

    fn init(&mut self, _ctx: &NodeContext, out: &mut Vec<Outgoing<u64>>) {
        if let Some(pp) = self.parent_port {
            out.extend(self.to_send.iter().map(|&m| Outgoing::new(pp, m)));
        }
    }

    fn on_round(
        &mut self,
        _ctx: &NodeContext,
        _round: usize,
        incoming: &[Incoming<u64>],
        out: &mut Vec<Outgoing<u64>>,
    ) {
        for inc in incoming {
            self.received.push(inc.msg);
            if let Some(pp) = self.parent_port {
                out.push(Outgoing::new(pp, inc.msg));
            }
        }
    }
}

/// The outcome of an executable pipelined convergecast.
#[derive(Debug, Clone)]
pub struct ConvergecastResult {
    /// All payload words collected at the root (the root's own included).
    pub at_root: Vec<u64>,
    /// Statistics of the convergecast phase only.
    pub stats: RoundStats,
    /// Depth of the BFS tree used.
    pub tree_depth: usize,
}

/// Collects `per_node_messages[v]` from every vertex `v` at `root` by real
/// pipelined message passing up a freshly built BFS tree.
///
/// # Panics
///
/// Panics if `root` is out of range, the graph is disconnected, or
/// `per_node_messages.len() != n`.
pub fn pipelined_convergecast(
    g: &WeightedGraph,
    root: NodeId,
    per_node_messages: &[Vec<u64>],
) -> ConvergecastResult {
    assert_eq!(
        per_node_messages.len(),
        g.num_nodes(),
        "one message list per vertex required"
    );
    let bfs = build_bfs_tree(g, root);
    assert!(
        bfs.tree.len() == g.num_nodes(),
        "pipelined convergecast requires a connected graph"
    );
    let mut sim = Simulator::new(g, SimulationConfig::default(), |v| {
        let parent_port = bfs
            .tree
            .parent(v)
            .map(|(p, _)| g.port_towards(v, p).expect("tree edge must exist in graph"));
        ConvergecastProtocol {
            parent_port,
            to_send: per_node_messages[v].clone(),
            received: if v == root {
                per_node_messages[v].clone()
            } else {
                vec![]
            },
        }
    });
    let stats = sim.run();
    let at_root = sim.into_protocols().swap_remove(root).received;
    ConvergecastResult {
        at_root,
        stats,
        tree_depth: bfs.depth,
    }
}

/// Builds a [`RootedTree`] BFS backbone and returns `(tree, depth)`; a
/// convenience used by higher layers that need a broadcast tree but charge
/// rounds analytically.
pub fn bfs_backbone(g: &WeightedGraph, root: NodeId) -> (RootedTree, usize) {
    let res = build_bfs_tree(g, root);
    (res.tree, res.depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::generators::{erdos_renyi_connected, path, star, GeneratorConfig};

    #[test]
    fn closed_form_charges() {
        assert_eq!(broadcast_rounds(0, 10), 0);
        assert_eq!(broadcast_rounds(5, 10), 15);
        assert_eq!(convergecast_rounds(7, 3), 10);
        assert_eq!(lemma1_rounds(5, 10), 30);
    }

    #[test]
    fn broadcast_delivers_everything_to_everyone() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(30, 7), 0.1);
        let msgs: Vec<u64> = (100..120).collect();
        let res = pipelined_broadcast(&g, 4, &msgs);
        for v in g.nodes() {
            let mut got = res.received[v].clone();
            got.sort_unstable();
            assert_eq!(got, msgs, "vertex {v} missing messages");
        }
    }

    #[test]
    fn broadcast_rounds_match_lemma1_bound_on_a_path() {
        let g = path(&GeneratorConfig::new(20, 1));
        let msgs: Vec<u64> = (0..15).collect();
        let res = pipelined_broadcast(&g, 0, &msgs);
        // Pipelining: last of 15 messages reaches depth 19 after ~ 15 + 19 rounds.
        let bound = broadcast_rounds(msgs.len(), res.tree_depth);
        assert!(
            res.stats.rounds <= bound + 2,
            "{} > {}",
            res.stats.rounds,
            bound + 2
        );
        assert!(res.stats.rounds >= res.tree_depth);
    }

    #[test]
    fn convergecast_collects_all_messages_at_root() {
        let g = star(&GeneratorConfig::new(12, 3));
        let per_node: Vec<Vec<u64>> = (0..12)
            .map(|v| vec![v as u64 * 10, v as u64 * 10 + 1])
            .collect();
        let res = pipelined_convergecast(&g, 0, &per_node);
        let mut got = res.at_root.clone();
        got.sort_unstable();
        let mut want: Vec<u64> = per_node.into_iter().flatten().collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn convergecast_rounds_bounded_by_lemma1_on_random_graph() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(40, 11), 0.08);
        let per_node: Vec<Vec<u64>> = (0..40).map(|v| vec![v as u64]).collect();
        let total: usize = per_node.iter().map(Vec::len).sum();
        let res = pipelined_convergecast(&g, 0, &per_node);
        assert!(res.stats.rounds <= convergecast_rounds(total, res.tree_depth) + 2);
    }

    #[test]
    fn empty_broadcast_is_free() {
        let g = path(&GeneratorConfig::new(5, 1));
        let res = pipelined_broadcast(&g, 0, &[]);
        assert!(res.received.iter().all(Vec::is_empty));
    }
}
