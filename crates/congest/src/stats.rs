//! Execution statistics: rounds, messages, words, and congestion.

/// Statistics collected by a [`Simulator`](crate::network::Simulator) run or
/// charged by a [`RoundLedger`](crate::ledger::RoundLedger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Number of synchronous rounds executed (or charged).
    pub rounds: usize,
    /// Total number of messages delivered.
    pub messages: usize,
    /// Total number of `O(log n)`-bit words delivered.
    pub words: usize,
    /// The largest backlog observed on any directed edge (a backlog of `q`
    /// means a send had to wait `q − 1` extra rounds behind earlier sends on
    /// the same edge). A value of at most 1 means the execution never needed
    /// to queue, i.e. the protocol respected the CONGEST budget natively.
    pub max_edge_backlog: usize,
    /// Whether the execution hit the configured round limit before quiescence.
    pub hit_round_limit: bool,
}

impl RoundStats {
    /// Combines two runs executed one after the other (rounds add, congestion
    /// takes the maximum).
    pub fn then(&self, later: &RoundStats) -> RoundStats {
        RoundStats {
            rounds: self.rounds + later.rounds,
            messages: self.messages + later.messages,
            words: self.words + later.words,
            max_edge_backlog: self.max_edge_backlog.max(later.max_edge_backlog),
            hit_round_limit: self.hit_round_limit || later.hit_round_limit,
        }
    }

    /// Combines two runs executed in parallel (rounds take the maximum —
    /// the executions share the network, so this is only valid when the
    /// caller has already accounted for their mutual congestion).
    pub fn in_parallel(&self, other: &RoundStats) -> RoundStats {
        RoundStats {
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
            words: self.words + other.words,
            max_edge_backlog: self.max_edge_backlog.max(other.max_edge_backlog),
            hit_round_limit: self.hit_round_limit || other.hit_round_limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn then_accumulates_rounds_and_messages() {
        let a = RoundStats {
            rounds: 5,
            messages: 10,
            words: 20,
            max_edge_backlog: 2,
            hit_round_limit: false,
        };
        let b = RoundStats {
            rounds: 3,
            messages: 1,
            words: 2,
            max_edge_backlog: 4,
            hit_round_limit: true,
        };
        let c = a.then(&b);
        assert_eq!(c.rounds, 8);
        assert_eq!(c.messages, 11);
        assert_eq!(c.words, 22);
        assert_eq!(c.max_edge_backlog, 4);
        assert!(c.hit_round_limit);
    }

    #[test]
    fn parallel_takes_max_rounds() {
        let a = RoundStats {
            rounds: 5,
            ..RoundStats::default()
        };
        let b = RoundStats {
            rounds: 9,
            ..RoundStats::default()
        };
        assert_eq!(a.in_parallel(&b).rounds, 9);
    }

    #[test]
    fn default_is_zeroed() {
        let d = RoundStats::default();
        assert_eq!(d.rounds, 0);
        assert!(!d.hit_round_limit);
    }
}
