//! Message-size accounting.
//!
//! A CONGEST message carries `O(log n)` bits — one machine word in our
//! accounting (plus a constant number of extra words, since the model and the
//! paper both allow `O(1)`-word messages: "every message consists of `O(1)`
//! words"). Protocol message types implement [`MessageSize`] so the simulator
//! can verify they respect the budget and can count total words on the wire.

/// Trait implemented by protocol message types so the simulator can account
/// for their size in machine words (one word = `O(log n)` bits).
pub trait MessageSize {
    /// Number of `O(log n)`-bit words this message occupies on the wire.
    fn words(&self) -> usize;
}

/// The default per-message word budget enforced by the simulator: messages of
/// `O(1)` words. The paper's protocols send (vertex id, distance) pairs and
/// similar constant-size records, which fit comfortably.
pub const DEFAULT_WORD_LIMIT: usize = 8;

impl MessageSize for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl MessageSize for usize {
    fn words(&self) -> usize {
        1
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl<A: MessageSize, B: MessageSize, C: MessageSize> MessageSize for (A, B, C) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words()
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn words(&self) -> usize {
        match self {
            Some(t) => 1 + t.words(),
            None => 1,
        }
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn words(&self) -> usize {
        1 + self.iter().map(MessageSize::words).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_words() {
        assert_eq!(7u64.words(), 1);
        assert_eq!(7usize.words(), 1);
    }

    #[test]
    fn tuple_words_sum() {
        assert_eq!((1u64, 2u64).words(), 2);
        assert_eq!((1u64, 2u64, 3usize).words(), 3);
    }

    #[test]
    fn option_and_vec_words() {
        assert_eq!(Some(5u64).words(), 2);
        assert_eq!(None::<u64>.words(), 1);
        assert_eq!(vec![1u64, 2, 3].words(), 4);
        assert_eq!(Vec::<u64>::new().words(), 1);
    }
}
