//! The node-side API of the simulator: [`Protocol`], [`NodeContext`],
//! [`Incoming`] and [`Outgoing`].

use en_graph::{Neighbor, NodeId, Weight};

use crate::message::MessageSize;

/// Everything a node is allowed to know at the start of a CONGEST execution:
/// its own id, the total number of vertices (standard assumption), and its
/// incident edges addressed by port number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeContext {
    /// This node's id.
    pub id: NodeId,
    /// Number of vertices `n` in the network.
    pub n: usize,
    /// Incident edges: `ports[p]` is the neighbour reached through port `p`.
    pub ports: Vec<Neighbor>,
}

impl NodeContext {
    /// Degree of this node (number of ports).
    pub fn degree(&self) -> usize {
        self.ports.len()
    }

    /// The weight of the edge behind `port`, if the port exists.
    pub fn weight_at(&self, port: usize) -> Option<Weight> {
        self.ports.get(port).map(|nb| nb.weight)
    }

    /// The port leading to neighbour `v`, if `v` is adjacent.
    ///
    /// Note: a real CONGEST node knows the *ids* of its neighbours in the
    /// standard `KT1` variant assumed by the paper (edge weights and endpoint
    /// ids are known to both endpoints).
    pub fn port_towards(&self, v: NodeId) -> Option<usize> {
        self.ports.iter().position(|nb| nb.node == v)
    }
}

/// A message delivered to a node at the start of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incoming<M> {
    /// The port the message arrived on.
    pub port: usize,
    /// The message payload.
    pub msg: M,
}

/// A message a node wants to send at the end of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing<M> {
    /// The port to send through.
    pub port: usize,
    /// The message payload.
    pub msg: M,
}

impl<M> Outgoing<M> {
    /// Convenience constructor.
    pub fn new(port: usize, msg: M) -> Self {
        Outgoing { port, msg }
    }
}

/// The behaviour of one node in a CONGEST execution.
///
/// The [`Simulator`](crate::network::Simulator) drives each protocol instance
/// through `init` (before round 1) and then `on_round` once per round. The
/// execution terminates when the network is *quiescent*: no messages are in
/// flight or queued and the previous round produced no new sends.
///
/// Sends are pushed into the `out` buffer the simulator passes in — one
/// reusable scratch vector shared by every node, cleared before each call —
/// so steady-state rounds allocate nothing per node.
pub trait Protocol {
    /// The message type exchanged by this protocol.
    type Msg: Clone + MessageSize;

    /// Called once before the first round; pushes the initial sends into
    /// `out` (cleared by the simulator before the call).
    fn init(&mut self, ctx: &NodeContext, out: &mut Vec<Outgoing<Self::Msg>>);

    /// Called once per round with the messages delivered this round; pushes
    /// the messages to send into `out` (they are delivered next round,
    /// subject to the one-message-per-edge-per-round budget).
    fn on_round(
        &mut self,
        ctx: &NodeContext,
        round: usize,
        incoming: &[Incoming<Self::Msg>],
        out: &mut Vec<Outgoing<Self::Msg>>,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_context_lookups() {
        let ctx = NodeContext {
            id: 3,
            n: 10,
            ports: vec![
                Neighbor { node: 5, weight: 2 },
                Neighbor { node: 1, weight: 7 },
            ],
        };
        assert_eq!(ctx.degree(), 2);
        assert_eq!(ctx.weight_at(1), Some(7));
        assert_eq!(ctx.weight_at(2), None);
        assert_eq!(ctx.port_towards(1), Some(1));
        assert_eq!(ctx.port_towards(9), None);
    }

    #[test]
    fn outgoing_constructor() {
        let o = Outgoing::new(2, 9u64);
        assert_eq!(o.port, 2);
        assert_eq!(o.msg, 9);
    }
}
