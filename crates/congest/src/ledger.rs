//! Round accounting for composite constructions.
//!
//! The full routing-scheme construction composes many primitives (Bellman–Ford
//! explorations, Theorem 1 invocations, hopset construction, broadcasts, …).
//! Executing every one of them at message granularity is feasible only for the
//! primitives; the composite phases instead *charge* rounds using the explicit
//! formulas the paper derives, and the [`RoundLedger`] records every charge
//! with the formula that justifies it. The benchmark harness prints both the
//! ledger total and, where available, the simulated round counts of the
//! primitive protocols so the two can be compared.

use std::fmt;

/// One charged phase of a composite construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Human-readable name of the phase (e.g. "small-scale Bellman-Ford, level 2").
    pub name: String,
    /// Rounds charged for the phase.
    pub rounds: usize,
    /// The formula used to justify the charge (e.g. "4 n^{(i+1)/k} ln n iterations × Õ(n^{1/k}) congestion").
    pub formula: String,
}

/// A ledger of round charges, phase by phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundLedger {
    phases: Vec<Phase>,
}

impl RoundLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        RoundLedger::default()
    }

    /// Records a phase charging `rounds` rounds, justified by `formula`.
    pub fn charge(&mut self, name: impl Into<String>, rounds: usize, formula: impl Into<String>) {
        self.phases.push(Phase {
            name: name.into(),
            rounds,
            formula: formula.into(),
        });
    }

    /// Merges another ledger's phases (sequential composition).
    pub fn absorb(&mut self, other: RoundLedger) {
        self.phases.extend(other.phases);
    }

    /// The recorded phases, in charge order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total rounds charged.
    pub fn total_rounds(&self) -> usize {
        self.phases.iter().map(|p| p.rounds).sum()
    }

    /// Number of recorded phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether no phase has been charged yet.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Publishes the total charged rounds as the `congest.rounds_charged`
    /// gauge (and the phase count as `congest.phases_charged`) on the
    /// installed [`en_obs::Recorder`], if any.
    pub fn publish_rounds_gauge(&self) {
        en_obs::gauge_set("congest.rounds_charged", self.total_rounds() as u64);
        en_obs::gauge_set("congest.phases_charged", self.len() as u64);
    }
}

impl fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.phases {
            writeln!(f, "{:>12} rounds  {}  [{}]", p.rounds, p.name, p.formula)?;
        }
        writeln!(f, "{:>12} rounds  TOTAL", self.total_rounds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut ledger = RoundLedger::new();
        assert!(ledger.is_empty());
        ledger.charge("phase a", 10, "D");
        ledger.charge("phase b", 32, "sqrt(n)");
        assert_eq!(ledger.total_rounds(), 42);
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.phases()[0].name, "phase a");
    }

    #[test]
    fn absorb_merges_in_order() {
        let mut a = RoundLedger::new();
        a.charge("x", 1, "f");
        let mut b = RoundLedger::new();
        b.charge("y", 2, "g");
        a.absorb(b);
        assert_eq!(a.total_rounds(), 3);
        assert_eq!(a.phases()[1].name, "y");
    }

    #[test]
    fn display_contains_total() {
        let mut ledger = RoundLedger::new();
        ledger.charge("phase", 7, "formula");
        let s = ledger.to_string();
        assert!(s.contains("TOTAL"));
        assert!(s.contains('7'));
        assert!(s.contains("formula"));
    }
}
