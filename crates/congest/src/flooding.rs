//! A minimal flooding protocol, used as the simulator's "hello world" and as a
//! building block in tests: informed nodes forward a token to all neighbours
//! exactly once.

use crate::protocol::{Incoming, NodeContext, Outgoing, Protocol};

/// Floods a single token through the network from the initially informed nodes.
///
/// After the run, [`FloodProtocol::informed`] reports whether the node ever
/// saw the token, and [`FloodProtocol::informed_at_round`] the round it did.
#[derive(Debug, Clone)]
pub struct FloodProtocol {
    informed: bool,
    informed_at_round: Option<usize>,
    forwarded: bool,
}

impl FloodProtocol {
    /// Creates the protocol state; `source` nodes start informed.
    pub fn new(source: bool) -> Self {
        FloodProtocol {
            informed: source,
            informed_at_round: if source { Some(0) } else { None },
            forwarded: false,
        }
    }

    /// Whether this node has received (or started with) the token.
    pub fn informed(&self) -> bool {
        self.informed
    }

    /// The round at which this node became informed (0 for sources).
    pub fn informed_at_round(&self) -> Option<usize> {
        self.informed_at_round
    }

    fn forward_all(&mut self, ctx: &NodeContext, out: &mut Vec<Outgoing<u64>>) {
        if self.forwarded {
            return;
        }
        self.forwarded = true;
        out.extend((0..ctx.degree()).map(|p| Outgoing::new(p, 1)));
    }
}

impl Protocol for FloodProtocol {
    type Msg = u64;

    fn init(&mut self, ctx: &NodeContext, out: &mut Vec<Outgoing<u64>>) {
        if self.informed {
            self.forward_all(ctx, out);
        }
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        round: usize,
        incoming: &[Incoming<u64>],
        out: &mut Vec<Outgoing<u64>>,
    ) {
        if !incoming.is_empty() && !self.informed {
            self.informed = true;
            self.informed_at_round = Some(round);
        }
        if self.informed {
            self.forward_all(ctx, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{SimulationConfig, Simulator};
    use en_graph::generators::{erdos_renyi_connected, star, GeneratorConfig};
    use en_graph::{bfs::bfs, NodeId};

    #[test]
    fn informed_round_equals_hop_distance() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(40, 3), 0.08);
        let source: NodeId = 7;
        let mut sim = Simulator::new(&g, SimulationConfig::default(), |v| {
            FloodProtocol::new(v == source)
        });
        sim.run();
        let hops = bfs(&g, source).hops;
        for (v, p) in sim.protocols().iter().enumerate() {
            assert!(p.informed());
            assert_eq!(p.informed_at_round().unwrap(), hops[v], "vertex {v}");
        }
    }

    #[test]
    fn star_floods_in_two_rounds_from_a_leaf() {
        let g = star(&GeneratorConfig::new(10, 0));
        let mut sim = Simulator::new(&g, SimulationConfig::default(), |v| {
            FloodProtocol::new(v == 5)
        });
        sim.run();
        assert_eq!(sim.protocols()[0].informed_at_round(), Some(1));
        assert_eq!(sim.protocols()[9].informed_at_round(), Some(2));
    }
}
