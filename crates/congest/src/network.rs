//! The synchronous CONGEST simulation engine.

use std::collections::VecDeque;

use en_graph::WeightedGraph;

use crate::message::{MessageSize, DEFAULT_WORD_LIMIT};
use crate::protocol::{Incoming, NodeContext, Outgoing, Protocol};
use crate::stats::RoundStats;

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationConfig {
    /// Hard limit on the number of rounds; the run stops (and reports
    /// [`RoundStats::hit_round_limit`]) if it is reached before quiescence.
    pub max_rounds: usize,
    /// Per-message word budget; a protocol sending a larger message panics,
    /// because that would silently break the model.
    pub word_limit: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            max_rounds: 1_000_000,
            word_limit: DEFAULT_WORD_LIMIT,
        }
    }
}

impl SimulationConfig {
    /// A config with the given round limit and the default word budget.
    pub fn with_max_rounds(max_rounds: usize) -> Self {
        SimulationConfig {
            max_rounds,
            ..SimulationConfig::default()
        }
    }
}

/// The synchronous simulator driving one [`Protocol`] instance per vertex.
///
/// Per directed edge the simulator keeps a FIFO queue; in every round it
/// delivers at most **one** message from each queue. A protocol may enqueue
/// several messages on the same edge in one round — they are simply delivered
/// over the following rounds, so congestion is paid for in rounds exactly as
/// the CONGEST model prescribes. The peak queue length is reported as
/// [`RoundStats::max_edge_backlog`].
#[derive(Debug)]
pub struct Simulator<P: Protocol> {
    contexts: Vec<NodeContext>,
    protocols: Vec<P>,
    /// `queues[v][p]` is the outgoing FIFO on the directed edge from `v`
    /// through its port `p`.
    queues: Vec<Vec<VecDeque<P::Msg>>>,
    /// Per-node inbox scratch, cleared and refilled every round (capacity is
    /// retained, so steady-state rounds allocate nothing here).
    inboxes: Vec<Vec<Incoming<P::Msg>>>,
    /// Shared outbox scratch handed to each protocol call in turn.
    outbox: Vec<Outgoing<P::Msg>>,
    config: SimulationConfig,
    stats: RoundStats,
    started: bool,
}

impl<P: Protocol> Simulator<P> {
    /// Builds a simulator for `g`, creating one protocol instance per vertex
    /// with the provided factory.
    pub fn new(
        g: &WeightedGraph,
        config: SimulationConfig,
        mut make_protocol: impl FnMut(usize) -> P,
    ) -> Self {
        let contexts: Vec<NodeContext> = g
            .nodes()
            .map(|v| NodeContext {
                id: v,
                n: g.num_nodes(),
                ports: g.neighbors(v).to_vec(),
            })
            .collect();
        let protocols: Vec<P> = g.nodes().map(&mut make_protocol).collect();
        let queues = contexts
            .iter()
            .map(|ctx| vec![VecDeque::new(); ctx.ports.len()])
            .collect();
        let inboxes = (0..contexts.len()).map(|_| Vec::new()).collect();
        Simulator {
            contexts,
            protocols,
            queues,
            inboxes,
            outbox: Vec::new(),
            config,
            stats: RoundStats::default(),
            started: false,
        }
    }

    /// Read-only access to the per-node protocol states (typically inspected
    /// after the run to collect each node's local output).
    pub fn protocols(&self) -> &[P] {
        &self.protocols
    }

    /// The per-node contexts (id, `n`, ports).
    pub fn contexts(&self) -> &[NodeContext] {
        &self.contexts
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> RoundStats {
        self.stats
    }

    /// Drains `outbox` into `node`'s port queues. A free-standing associated
    /// function over the individual fields so callers can hold disjoint
    /// borrows of the other simulator state.
    fn flush_outbox(
        queues: &mut [Vec<VecDeque<P::Msg>>],
        stats: &mut RoundStats,
        config: &SimulationConfig,
        node: usize,
        outbox: &mut Vec<Outgoing<P::Msg>>,
    ) {
        if outbox.is_empty() {
            return;
        }
        for out in outbox.drain(..) {
            assert!(
                out.port < queues[node].len(),
                "node {node} sent through nonexistent port {}",
                out.port
            );
            assert!(
                out.msg.words() <= config.word_limit,
                "node {node} sent a {}-word message; the CONGEST budget is {} words",
                out.msg.words(),
                config.word_limit
            );
            queues[node][out.port].push_back(out.msg);
        }
        let backlog = queues[node].iter().map(VecDeque::len).max().unwrap_or(0);
        stats.max_edge_backlog = stats.max_edge_backlog.max(backlog);
    }

    /// Runs `init` on every node (enqueuing their initial sends). Called
    /// automatically by [`run`](Self::run); exposed for step-by-step tests.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let mut outbox = std::mem::take(&mut self.outbox);
        for v in 0..self.contexts.len() {
            outbox.clear();
            self.protocols[v].init(&self.contexts[v], &mut outbox);
            Self::flush_outbox(
                &mut self.queues,
                &mut self.stats,
                &self.config,
                v,
                &mut outbox,
            );
        }
        self.outbox = outbox;
    }

    /// Returns `true` if no message is queued anywhere in the network.
    pub fn is_quiescent(&self) -> bool {
        self.queues
            .iter()
            .all(|qs| qs.iter().all(VecDeque::is_empty))
    }

    /// Executes a single round: delivers at most one message per directed
    /// edge, invokes every protocol, and enqueues the produced sends.
    ///
    /// Returns `true` if any message was delivered or sent this round.
    pub fn step(&mut self) -> bool {
        self.start();
        let n = self.contexts.len();
        // Phase 1: pop at most one message per directed edge. The per-node
        // inbox buffers are cleared, not reallocated, so their capacity is
        // reused round over round.
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        let mut delivered_any = false;
        for v in 0..n {
            for port in 0..self.contexts[v].ports.len() {
                if let Some(msg) = self.queues[v][port].pop_front() {
                    delivered_any = true;
                    let target = self.contexts[v].ports[port].node;
                    let back_port = self.contexts[target]
                        .port_towards(v)
                        .expect("adjacency must be symmetric");
                    self.stats.messages += 1;
                    self.stats.words += msg.words();
                    self.inboxes[target].push(Incoming {
                        port: back_port,
                        msg,
                    });
                }
            }
        }
        self.stats.rounds += 1;
        // Phase 2: run every protocol on its inbox, all sharing one outbox
        // scratch buffer (and borrowing the node context in place rather than
        // cloning its port list).
        let round = self.stats.rounds;
        let mut sent_any = false;
        let mut outbox = std::mem::take(&mut self.outbox);
        for v in 0..n {
            outbox.clear();
            self.protocols[v].on_round(&self.contexts[v], round, &self.inboxes[v], &mut outbox);
            if !outbox.is_empty() {
                sent_any = true;
            }
            Self::flush_outbox(
                &mut self.queues,
                &mut self.stats,
                &self.config,
                v,
                &mut outbox,
            );
        }
        self.outbox = outbox;
        delivered_any || sent_any
    }

    /// Runs rounds until the network is quiescent or the round limit is hit,
    /// and returns the accumulated statistics.
    pub fn run(&mut self) -> RoundStats {
        self.start();
        while !self.is_quiescent() {
            if self.stats.rounds >= self.config.max_rounds {
                self.stats.hit_round_limit = true;
                break;
            }
            self.step();
        }
        self.stats
    }

    /// Consumes the simulator and returns the protocol states, so callers can
    /// harvest each node's local output by value.
    pub fn into_protocols(self) -> Vec<P> {
        self.protocols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::FloodProtocol;
    use en_graph::generators::{path, GeneratorConfig};
    use en_graph::WeightedGraph;

    #[test]
    fn flooding_on_a_path_takes_diameter_rounds() {
        let g = path(&GeneratorConfig::new(6, 1));
        let mut sim = Simulator::new(&g, SimulationConfig::default(), |v| {
            FloodProtocol::new(v == 0)
        });
        let stats = sim.run();
        assert!(sim.protocols().iter().all(|p| p.informed()));
        // One extra round to detect quiescence is allowed.
        assert!(
            stats.rounds >= 5 && stats.rounds <= 7,
            "rounds = {}",
            stats.rounds
        );
        assert!(!stats.hit_round_limit);
        assert_eq!(stats.max_edge_backlog, 1);
    }

    #[test]
    fn round_limit_is_respected() {
        let g = path(&GeneratorConfig::new(50, 1));
        let mut sim = Simulator::new(&g, SimulationConfig::with_max_rounds(3), |v| {
            FloodProtocol::new(v == 0)
        });
        let stats = sim.run();
        assert!(stats.hit_round_limit);
        assert_eq!(stats.rounds, 3);
        assert!(!sim.protocols()[49].informed());
    }

    #[test]
    fn no_source_means_instant_quiescence() {
        let g = path(&GeneratorConfig::new(4, 1));
        let mut sim = Simulator::new(&g, SimulationConfig::default(), |_| {
            FloodProtocol::new(false)
        });
        let stats = sim.run();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    #[should_panic(expected = "nonexistent port")]
    fn sending_through_bad_port_panics() {
        struct Bad;
        impl Protocol for Bad {
            type Msg = u64;
            fn init(&mut self, _ctx: &NodeContext, out: &mut Vec<Outgoing<u64>>) {
                out.push(Outgoing::new(99, 1));
            }
            fn on_round(
                &mut self,
                _ctx: &NodeContext,
                _round: usize,
                _incoming: &[Incoming<u64>],
                _out: &mut Vec<Outgoing<u64>>,
            ) {
            }
        }
        let g = WeightedGraph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g, SimulationConfig::default(), |_| Bad);
        sim.run();
    }

    #[test]
    #[should_panic(expected = "word")]
    fn oversized_message_panics() {
        struct Chatty;
        impl Protocol for Chatty {
            type Msg = Vec<u64>;
            fn init(&mut self, _ctx: &NodeContext, out: &mut Vec<Outgoing<Vec<u64>>>) {
                out.push(Outgoing::new(0, vec![0; 100]));
            }
            fn on_round(
                &mut self,
                _ctx: &NodeContext,
                _round: usize,
                _incoming: &[Incoming<Vec<u64>>],
                _out: &mut Vec<Outgoing<Vec<u64>>>,
            ) {
            }
        }
        let g = WeightedGraph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g, SimulationConfig::default(), |_| Chatty);
        sim.run();
    }

    #[test]
    fn backlog_is_reported_when_a_node_bursts() {
        // A node that enqueues 5 messages on the same edge in round 1 forces a
        // backlog of 5, and delivery takes 5 extra rounds.
        struct Burst {
            fired: bool,
            received: usize,
        }
        impl Protocol for Burst {
            type Msg = u64;
            fn init(&mut self, ctx: &NodeContext, out: &mut Vec<Outgoing<u64>>) {
                if ctx.id == 0 {
                    self.fired = true;
                    out.extend((0..5).map(|i| Outgoing::new(0, i)));
                }
            }
            fn on_round(
                &mut self,
                _ctx: &NodeContext,
                _round: usize,
                incoming: &[Incoming<u64>],
                _out: &mut Vec<Outgoing<u64>>,
            ) {
                self.received += incoming.len();
            }
        }
        let g = WeightedGraph::from_edges(2, [(0, 1, 1)]).unwrap();
        let mut sim = Simulator::new(&g, SimulationConfig::default(), |_| Burst {
            fired: false,
            received: 0,
        });
        let stats = sim.run();
        assert_eq!(stats.max_edge_backlog, 5);
        assert!(stats.rounds >= 5);
        assert_eq!(sim.protocols()[1].received, 5);
    }

    #[test]
    fn into_protocols_returns_states() {
        let g = path(&GeneratorConfig::new(3, 1));
        let mut sim = Simulator::new(&g, SimulationConfig::default(), |v| {
            FloodProtocol::new(v == 1)
        });
        sim.run();
        let protos = sim.into_protocols();
        assert_eq!(protos.len(), 3);
        assert!(protos.into_iter().all(|p| p.informed()));
    }
}
