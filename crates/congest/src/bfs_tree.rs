//! Distributed BFS-tree construction.
//!
//! A BFS tree rooted at an arbitrary vertex is the backbone of every global
//! communication primitive in the paper (Lemma 1 and the convergecasts /
//! broadcasts of Sections 3 and 6). Building it takes `O(D)` rounds: the root
//! floods a token and every other vertex adopts as its parent the neighbour it
//! first heard the token from.

use en_graph::tree::RootedTree;
use en_graph::{NodeId, WeightedGraph};

use crate::network::{SimulationConfig, Simulator};
use crate::protocol::{Incoming, NodeContext, Outgoing, Protocol};
use crate::stats::RoundStats;

/// Per-node state of the BFS-tree construction protocol.
#[derive(Debug, Clone)]
pub struct BfsTreeProtocol {
    is_root: bool,
    /// Port towards the adopted parent (None for the root / unreached nodes).
    parent_port: Option<usize>,
    /// Hop level in the tree (0 for the root).
    level: Option<usize>,
    forwarded: bool,
}

impl BfsTreeProtocol {
    /// Creates the protocol state for one node.
    pub fn new(is_root: bool) -> Self {
        BfsTreeProtocol {
            is_root,
            parent_port: None,
            level: if is_root { Some(0) } else { None },
            forwarded: false,
        }
    }

    /// The adopted parent port, if any.
    pub fn parent_port(&self) -> Option<usize> {
        self.parent_port
    }

    /// The node's BFS level (hop distance from the root).
    pub fn level(&self) -> Option<usize> {
        self.level
    }

    fn forward(&mut self, ctx: &NodeContext, out: &mut Vec<Outgoing<u64>>) {
        if self.forwarded {
            return;
        }
        self.forwarded = true;
        let level = self.level.expect("forwarding node knows its level") as u64;
        out.extend((0..ctx.degree()).map(|p| Outgoing::new(p, level)));
    }
}

impl Protocol for BfsTreeProtocol {
    type Msg = u64;

    fn init(&mut self, ctx: &NodeContext, out: &mut Vec<Outgoing<u64>>) {
        if self.is_root {
            self.forward(ctx, out);
        }
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        _round: usize,
        incoming: &[Incoming<u64>],
        out: &mut Vec<Outgoing<u64>>,
    ) {
        if self.level.is_none() {
            if let Some(first) = incoming.iter().min_by_key(|m| (m.msg, m.port)) {
                self.level = Some(first.msg as usize + 1);
                self.parent_port = Some(first.port);
            }
        }
        if self.level.is_some() {
            self.forward(ctx, out);
        }
    }
}

/// The outcome of a distributed BFS-tree construction.
#[derive(Debug, Clone)]
pub struct BfsTreeResult {
    /// The constructed BFS tree (tree edges carry the *graph* weights, but the
    /// tree structure follows hop distances).
    pub tree: RootedTree,
    /// Hop level of every vertex (`None` for vertices the root cannot reach).
    pub levels: Vec<Option<usize>>,
    /// The depth of the tree (maximum level).
    pub depth: usize,
    /// Statistics of the construction run.
    pub stats: RoundStats,
}

/// Builds a BFS tree rooted at `root` by real message passing.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn build_bfs_tree(g: &WeightedGraph, root: NodeId) -> BfsTreeResult {
    assert!(root < g.num_nodes(), "root {root} out of range");
    let mut sim = Simulator::new(&g.clone(), SimulationConfig::default(), |v| {
        BfsTreeProtocol::new(v == root)
    });
    let stats = sim.run();
    let mut parents = vec![None; g.num_nodes()];
    let mut levels = vec![None; g.num_nodes()];
    for (v, p) in sim.protocols().iter().enumerate() {
        levels[v] = p.level();
        if let Some(port) = p.parent_port() {
            let nb = g.neighbor_at_port(v, port).expect("parent port exists");
            parents[v] = Some((nb.node, nb.weight));
        }
    }
    let tree = RootedTree::from_parents(root, parents);
    let depth = levels.iter().flatten().copied().max().unwrap_or(0);
    BfsTreeResult {
        tree,
        levels,
        depth,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::bfs::bfs;
    use en_graph::generators::{erdos_renyi_connected, path, GeneratorConfig};

    #[test]
    fn bfs_tree_levels_match_sequential_bfs() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(50, 5), 0.08);
        let res = build_bfs_tree(&g, 3);
        let seq = bfs(&g, 3);
        for v in g.nodes() {
            assert_eq!(res.levels[v], Some(seq.hops[v]), "vertex {v}");
        }
        assert_eq!(res.depth, seq.eccentricity());
        assert!(res.tree.is_subgraph_of(&g));
        assert_eq!(res.tree.len(), g.num_nodes());
    }

    #[test]
    fn bfs_tree_on_path_is_the_path() {
        let g = path(&GeneratorConfig::new(6, 2));
        let res = build_bfs_tree(&g, 0);
        assert_eq!(res.depth, 5);
        for v in 1..6 {
            assert_eq!(res.tree.parent(v).map(|(p, _)| p), Some(v - 1));
        }
        // Construction takes about D rounds.
        assert!(res.stats.rounds >= 5 && res.stats.rounds <= 8);
    }

    #[test]
    fn construction_takes_about_diameter_rounds() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(80, 9), 0.06);
        let res = build_bfs_tree(&g, 0);
        let ecc = bfs(&g, 0).eccentricity();
        assert!(res.stats.rounds >= ecc);
        assert!(res.stats.rounds <= ecc + 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_root_panics() {
        let g = path(&GeneratorConfig::new(4, 2));
        let _ = build_bfs_tree(&g, 10);
    }
}
