//! A synchronous CONGEST-model network simulator.
//!
//! The paper's algorithms are stated in the standard CONGEST model
//! \[Pel00a\]: every vertex initially knows only its incident edges,
//! communication proceeds in synchronous rounds, and in every round each
//! vertex may send one message of `O(log n)` bits to each of its neighbours.
//! The time complexity of an algorithm is the number of rounds it takes.
//!
//! This crate instantiates that model as an executable simulator:
//!
//! * [`Protocol`] — the behaviour of a single node: how it reacts to the
//!   messages delivered in a round and which messages it wants to send.
//! * [`Simulator`] — the synchronous engine. It enforces the per-edge
//!   per-direction budget of **one message per round**: if a node asks to send
//!   several messages over the same link in one round, the extra messages are
//!   queued and delivered in later rounds, so congestion automatically turns
//!   into additional rounds, exactly as in the model.
//! * [`RoundStats`] — rounds, messages, words, and peak congestion.
//! * [`bfs_tree`] — a real message-passing construction of a BFS tree rooted
//!   at a designated vertex (the backbone for global broadcast).
//! * [`broadcast`] — pipelined broadcast / convergecast over a BFS tree
//!   (Lemma 1 of the paper: `M` messages reach every vertex within
//!   `O(M + D)` rounds) plus the closed-form round charges used by the
//!   higher-level constructions.
//! * [`ledger`] — a [`RoundLedger`] that records, phase
//!   by phase, how many rounds a composite construction charges and why.
//!
//! # Example
//!
//! ```
//! use en_congest::{Simulator, SimulationConfig};
//! use en_congest::flooding::FloodProtocol;
//! use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
//!
//! let g = erdos_renyi_connected(&GeneratorConfig::new(32, 1), 0.15);
//! let mut sim = Simulator::new(&g, SimulationConfig::default(), |node| {
//!     FloodProtocol::new(node == 0)
//! });
//! let stats = sim.run();
//! assert!(sim.protocols().iter().all(|p| p.informed()));
//! assert!(stats.rounds > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs_tree;
pub mod broadcast;
pub mod flooding;
pub mod ledger;
pub mod message;
pub mod network;
pub mod protocol;
pub mod stats;

pub use ledger::{Phase, RoundLedger};
pub use message::MessageSize;
pub use network::{SimulationConfig, Simulator};
pub use protocol::{Incoming, NodeContext, Outgoing, Protocol};
pub use stats::RoundStats;
