//! Tree routing (Section 6 of the paper): exact (stretch-1) routing in a
//! rooted tree with `O(log n)`-word tables and `O(log² n)`-word labels,
//! constructible in `Õ(√n + D)` rounds.
//!
//! The classic Thorup–Zwick tree-routing scheme assigns DFS intervals and
//! heavy-child pointers, which takes `Θ(depth)` rounds to compute
//! distributively — linear in the worst case. The paper's variant samples
//! ≈ `√n` *portal* vertices `U`, removes the edge from each portal to its
//! parent to split the tree into bounded-depth subtrees, runs the TZ scheme
//! *locally* in every subtree, and runs a second TZ scheme *globally* on the
//! virtual tree `T'` induced on the portals. A routing step first decides, via
//! the global DFS interval, which subtree to head for, and then routes locally
//! inside the current subtree (possibly towards a *portal* whose local label
//! is embedded in the header).
//!
//! This crate implements that two-level scheme exactly as described
//! (Theorem 7), including the degenerate single-level case (`U = {root}`),
//! plus the round accounting of Theorem 7 and Remark 3.
//!
//! # Example
//!
//! ```
//! use en_graph::generators::{random_tree, GeneratorConfig};
//! use en_graph::dijkstra::dijkstra;
//! use en_graph::tree::RootedTree;
//! use en_tree_routing::{TreeRoutingConfig, TreeRoutingScheme};
//!
//! let g = random_tree(&GeneratorConfig::new(64, 3));
//! let tree = RootedTree::from_shortest_paths(&g, &dijkstra(&g, 0));
//! let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(9));
//! let route = scheme.route(17, 42).expect("both vertices are in the tree");
//! assert_eq!(route.nodes().first(), Some(&17));
//! assert_eq!(route.nodes().last(), Some(&42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod label;
pub mod scheme;
pub mod table;

pub use cost::{remark3_rounds, theorem7_rounds};
pub use label::{LabelView, LocalLabel, LocalLabelView, TreeLabel, TreeLabelRef};
pub use scheme::{next_hop_view, TreeRoutingConfig, TreeRoutingScheme};
pub use table::{GlobalHeavyEntry, TableSlots, TableView, TreeTable};
