//! Round accounting for the distributed tree-routing construction.
//!
//! Theorem 7: for a single tree that is a subgraph of `G`, routing tables and
//! labels can be computed in `Õ(√n + D)` rounds. Remark 3: for a family of
//! trees in which every vertex participates in at most `s` trees, all the
//! schemes can be computed in parallel within `Õ(√(n·s) + D)` rounds.
//!
//! The formulas below carry the explicit `log` factors the proofs use
//! (`γ log² n + (n/γ) log n + D` with `γ = √n`, and the staged-broadcast
//! analysis of Remark 3), so the harness can report concrete round numbers.

/// Natural logarithm of `n`, clamped below at 1 so formulas stay monotone on
/// tiny inputs.
fn ln_n(n: usize) -> f64 {
    (n.max(2) as f64).ln().max(1.0)
}

/// Round charge of Theorem 7 for a single tree over a host graph with `n`
/// vertices and hop-diameter `d`:
/// `O(γ log² n + (n/γ) log n + D)` with the paper's choice `γ = √n`.
pub fn theorem7_rounds(n: usize, d: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let nf = n as f64;
    let gamma = nf.sqrt().max(1.0);
    let ln = ln_n(n);
    (gamma * ln * ln + (nf / gamma) * ln + d as f64).ceil() as usize
}

/// Round charge of Remark 3 for `s`-overlapping tree families:
/// `Õ(√(n·s) + D)`, with the explicit `log²` factor of the staged broadcast
/// and the paper's choice `γ = √(n/s) / √log n`.
pub fn remark3_rounds(n: usize, s: usize, d: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let nf = n as f64;
    let sf = s.max(1) as f64;
    let ln = ln_n(n);
    ((nf * sf).sqrt() * ln * ln + d as f64).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem7_scales_like_sqrt_n() {
        let small = theorem7_rounds(100, 5);
        let large = theorem7_rounds(10_000, 5);
        // sqrt(10000)/sqrt(100) = 10; allow slack for the log factors.
        assert!(large > 5 * small);
        assert!(large < 40 * small);
    }

    #[test]
    fn remark3_grows_with_overlap() {
        let s1 = remark3_rounds(1_000, 1, 10);
        let s16 = remark3_rounds(1_000, 16, 10);
        assert!(s16 > s1);
        // sqrt(16) = 4.
        assert!(s16 <= 5 * s1);
    }

    #[test]
    fn diameter_term_is_additive() {
        let base = remark3_rounds(1_000, 4, 0);
        let with_d = remark3_rounds(1_000, 4, 500);
        assert_eq!(with_d, base + 500);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(theorem7_rounds(0, 10), 0);
        assert_eq!(remark3_rounds(0, 3, 10), 0);
        assert!(theorem7_rounds(1, 0) > 0);
        assert!(remark3_rounds(1, 0, 0) > 0);
    }
}
