//! Tree-routing tables: the local state each vertex stores for one tree.

use en_graph::NodeId;

use crate::label::{LocalLabel, LocalLabelView};

/// Information a vertex in subtree `T_w` keeps about the heavy child of `w` in
/// the virtual tree `T'` (the one `T'`-child whose identity is *not* carried
/// in packet labels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalHeavyEntry {
    /// The heavy child `h'(w)` of `w` in `T'` (a subtree root).
    pub child_subtree: NodeId,
    /// The portal `y ∈ T_w`: the parent of `h'(w)` in the real tree `T`.
    pub portal: NodeId,
    /// The local label of the portal inside `T_w` (routes packets to it).
    pub portal_label: LocalLabel,
}

impl GlobalHeavyEntry {
    /// Size in words.
    pub fn words(&self) -> usize {
        2 + self.portal_label.words()
    }
}

/// The routing table a single vertex stores for a single tree.
///
/// Per the paper this is `O(log n)` words: the local TZ table
/// (parent, heavy child, DFS interval) for the vertex's subtree, plus the
/// `T'`-level information of its subtree root (which the subtree root
/// propagates to all vertices of its subtree during the construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeTable {
    /// This vertex.
    pub vertex: NodeId,
    /// The root of the whole tree.
    pub tree_root: NodeId,
    /// The root `w` of the subtree `T_w` containing this vertex.
    pub subtree_root: NodeId,
    /// The parent of this vertex in the real tree `T` (None only at the tree root).
    pub parent: Option<NodeId>,
    /// The heavy child of this vertex *within its subtree*, if it has children there.
    pub heavy_child: Option<NodeId>,
    /// DFS entry time of this vertex within its subtree.
    pub a_local: u64,
    /// DFS exit time (entry + local subtree size) within its subtree.
    pub b_local: u64,
    /// DFS entry time of `T_w` within the virtual tree `T'`.
    pub a_global: u64,
    /// DFS exit time of `T_w` within `T'`.
    pub b_global: u64,
    /// The heavy `T'`-child of `w`, with the portal information needed to reach it.
    pub global_heavy: Option<GlobalHeavyEntry>,
}

impl TreeTable {
    /// Returns `true` if the local DFS interval of this vertex contains `a`
    /// (i.e. the target lies in this vertex's local subtree).
    pub fn local_interval_contains(&self, a: u64) -> bool {
        self.a_local <= a && a < self.b_local
    }

    /// Returns `true` if the global DFS interval of this vertex's subtree
    /// contains `a_global` (the target's subtree is a `T'`-descendant).
    pub fn global_interval_contains(&self, a_global: u64) -> bool {
        self.a_global <= a_global && a_global < self.b_global
    }

    /// Size of the table in `O(log n)`-bit words.
    pub fn words(&self) -> usize {
        // vertex, tree root, subtree root, parent, heavy child, 4 interval
        // endpoints, plus the global heavy entry.
        9 + self
            .global_heavy
            .as_ref()
            .map_or(0, GlobalHeavyEntry::words)
    }
}

/// Read access to one tree-routing table, abstracted over the storage.
///
/// Forwarding ([`next_hop_view`](crate::scheme::next_hop_view)) consumes
/// tables exclusively through this trait, so the owned [`TreeTable`] and any
/// flat serialized representation route identically — there is only one
/// forwarding implementation. Implementors are cheap `Copy` handles.
pub trait TableView: Copy {
    /// The local-label view type of the embedded portal labels.
    type Local: LocalLabelView;

    /// The vertex this table belongs to.
    fn vertex(&self) -> NodeId;
    /// The root `w` of the subtree `T_w` containing this vertex.
    fn subtree_root(&self) -> NodeId;
    /// The parent of this vertex in the real tree (None only at the root).
    fn parent(&self) -> Option<NodeId>;
    /// The heavy child of this vertex within its subtree, if any.
    fn heavy_child(&self) -> Option<NodeId>;
    /// DFS entry time of this vertex within its subtree.
    fn a_local(&self) -> u64;
    /// Whether the local DFS interval of this vertex contains `a`.
    fn local_interval_contains(&self, a: u64) -> bool;
    /// Whether the global DFS interval of this vertex's subtree contains
    /// `a_global`.
    fn global_interval_contains(&self, a_global: u64) -> bool;
    /// The heavy `T'`-child of `w`, if any, as `(child_subtree, portal label)`.
    fn global_heavy(&self) -> Option<(NodeId, Self::Local)>;
}

/// Slot-addressed access to the routing tables of one tree — the companion
/// of [`TableView`] for the *collection* side of a lookup.
///
/// A tree's tables are conceptually keyed by vertex, but every storage keeps
/// them in member order: the owned [`TreeRoutingScheme`] aligns its table
/// vector with the sorted member array, and a flat snapshot lays table
/// records out along the member column. The *slot* — a vertex's rank in
/// that member order — is therefore a storage-independent address:
/// [`Self::table_at`] is O(1) column arithmetic everywhere, and
/// [`Self::slot_of`] is as fast as the storage can resolve a vertex (a
/// member binary search in the owned scheme, an index-column read in a v3
/// snapshot).
///
/// [`TreeRoutingScheme`]: crate::scheme::TreeRoutingScheme
pub trait TableSlots {
    /// The table view this storage hands out.
    type Table: TableView;

    /// The member-order rank of `v`, if `v` is in the tree.
    fn slot_of(&self, v: NodeId) -> Option<usize>;

    /// The table stored at member-order rank `slot` (O(1) on every storage).
    fn table_at(&self, slot: usize) -> Option<Self::Table>;

    /// The table of vertex `v`: [`Self::slot_of`] then [`Self::table_at`].
    fn table_of(&self, v: NodeId) -> Option<Self::Table> {
        self.slot_of(v).and_then(|slot| self.table_at(slot))
    }
}

impl<'a> TableView for &'a TreeTable {
    type Local = &'a LocalLabel;

    #[inline]
    fn vertex(&self) -> NodeId {
        self.vertex
    }

    #[inline]
    fn subtree_root(&self) -> NodeId {
        self.subtree_root
    }

    #[inline]
    fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    #[inline]
    fn heavy_child(&self) -> Option<NodeId> {
        self.heavy_child
    }

    #[inline]
    fn a_local(&self) -> u64 {
        self.a_local
    }

    #[inline]
    fn local_interval_contains(&self, a: u64) -> bool {
        TreeTable::local_interval_contains(self, a)
    }

    #[inline]
    fn global_interval_contains(&self, a_global: u64) -> bool {
        TreeTable::global_interval_contains(self, a_global)
    }

    #[inline]
    fn global_heavy(&self) -> Option<(NodeId, &'a LocalLabel)> {
        self.global_heavy
            .as_ref()
            .map(|gh| (gh.child_subtree, &gh.portal_label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TreeTable {
        TreeTable {
            vertex: 5,
            tree_root: 0,
            subtree_root: 2,
            parent: Some(2),
            heavy_child: Some(7),
            a_local: 3,
            b_local: 6,
            a_global: 1,
            b_global: 4,
            global_heavy: Some(GlobalHeavyEntry {
                child_subtree: 9,
                portal: 7,
                portal_label: LocalLabel {
                    a: 4,
                    exceptions: vec![],
                },
            }),
        }
    }

    #[test]
    fn interval_tests() {
        let t = table();
        assert!(t.local_interval_contains(3));
        assert!(t.local_interval_contains(5));
        assert!(!t.local_interval_contains(6));
        assert!(!t.local_interval_contains(2));
        assert!(t.global_interval_contains(1));
        assert!(!t.global_interval_contains(4));
    }

    #[test]
    fn word_count_includes_heavy_entry() {
        let t = table();
        assert_eq!(t.words(), 9 + 3);
        let mut t2 = t;
        t2.global_heavy = None;
        assert_eq!(t2.words(), 9);
    }
}
