//! Tree-routing labels.
//!
//! A label must contain everything a *remote* vertex needs, beyond its own
//! routing table, to forward a packet towards the labelled vertex. In the
//! two-level scheme a label has a local part (the TZ label inside the
//! destination's subtree) and a global part (the TZ label of the destination's
//! subtree inside the virtual portal tree `T'`, with each non-heavy virtual
//! edge annotated by the local label of the portal that realises it).

use en_graph::NodeId;

/// The classic Thorup–Zwick label of a vertex inside one (sub)tree:
/// its DFS entry time plus the list of non-heavy edges on the path from the
/// subtree root to the vertex.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LocalLabel {
    /// DFS entry time of the vertex within its subtree.
    pub a: u64,
    /// Non-heavy edges `(x, x')` on the root-to-vertex path: at vertex `x` the
    /// path continues to child `x'`, and `x'` is not the heavy child of `x`.
    pub exceptions: Vec<(NodeId, NodeId)>,
}

impl LocalLabel {
    /// The child recorded for `x`, if the path through `x` deviates from the
    /// heavy child.
    pub fn exception_at(&self, x: NodeId) -> Option<NodeId> {
        self.exceptions
            .iter()
            .find(|(p, _)| *p == x)
            .map(|&(_, c)| c)
    }

    /// Size of the label in `O(log n)`-bit words.
    pub fn words(&self) -> usize {
        1 + 2 * self.exceptions.len()
    }
}

/// One entry of the global part of a label: a non-heavy edge of the virtual
/// tree `T'` on the path from the root's subtree to the destination's subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalException {
    /// The parent subtree root `v_i` in `T'`.
    pub parent_subtree: NodeId,
    /// The child subtree root `w_i` in `T'` (a non-heavy child of `v_i`).
    pub child_subtree: NodeId,
    /// The portal `x_i`: the parent of `w_i` in the real tree `T`; it lies in
    /// the subtree rooted at `v_i`.
    pub portal: NodeId,
    /// The local label of the portal inside the subtree of `v_i`, used to
    /// route to it locally.
    pub portal_label: LocalLabel,
}

impl GlobalException {
    /// Size in words: the two subtree roots, the portal id, and its local label.
    pub fn words(&self) -> usize {
        3 + self.portal_label.words()
    }
}

/// The complete routing label of a vertex for one tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeLabel {
    /// The labelled vertex (carried for convenience; the scheme never needs to
    /// inspect it during forwarding).
    pub vertex: NodeId,
    /// The subtree root `w` such that the vertex lies in `T_w`.
    pub subtree_root: NodeId,
    /// Local TZ label of the vertex inside `T_w`.
    pub local: LocalLabel,
    /// DFS entry time of `T_w` in the virtual tree `T'`.
    pub a_global: u64,
    /// Non-heavy virtual edges on the `T'` path from the root's subtree to `T_w`.
    pub global_exceptions: Vec<GlobalException>,
}

impl TreeLabel {
    /// The global exception whose parent subtree is `w`, if any.
    pub fn global_exception_at(&self, w: NodeId) -> Option<&GlobalException> {
        self.global_exceptions
            .iter()
            .find(|e| e.parent_subtree == w)
    }

    /// The borrowed view of this label — what forwarding actually consumes.
    pub fn as_view(&self) -> TreeLabelRef<'_> {
        TreeLabelRef(self)
    }

    /// Size of the label in `O(log n)`-bit words.
    pub fn words(&self) -> usize {
        // vertex + subtree_root + a_global + local + exceptions
        3 + self.local.words()
            + self
                .global_exceptions
                .iter()
                .map(GlobalException::words)
                .sum::<usize>()
    }
}

/// Read access to one local TZ label, abstracted over the storage.
///
/// Forwarding ([`next_hop_view`](crate::scheme::next_hop_view)) consumes
/// labels exclusively through this trait and [`LabelView`], so the owned
/// heap representation ([`LocalLabel`] / [`TreeLabel`]) and any flat
/// serialized representation (e.g. a zero-copy snapshot column) are
/// guaranteed to route identically: there is only one forwarding
/// implementation.
///
/// Implementors are cheap `Copy` handles (a reference or a slice-plus-offset
/// view), so taking them by value allocates nothing.
pub trait LocalLabelView: Copy {
    /// DFS entry time of the labelled vertex within its subtree.
    fn a(&self) -> u64;
    /// The child recorded for `x`, if the root-to-vertex path deviates from
    /// `x`'s heavy child.
    fn exception_at(&self, x: NodeId) -> Option<NodeId>;
}

impl LocalLabelView for &LocalLabel {
    #[inline]
    fn a(&self) -> u64 {
        self.a
    }

    #[inline]
    fn exception_at(&self, x: NodeId) -> Option<NodeId> {
        LocalLabel::exception_at(self, x)
    }
}

/// Read access to one tree-routing label, abstracted over the storage.
///
/// See [`LocalLabelView`] for the rationale.
pub trait LabelView: Copy {
    /// The local-label view type this label hands out.
    type Local: LocalLabelView;

    /// The subtree root `w` such that the labelled vertex lies in `T_w`.
    fn subtree_root(&self) -> NodeId;
    /// DFS entry time of `T_w` in the virtual tree `T'`.
    fn a_global(&self) -> u64;
    /// Local TZ label of the vertex inside `T_w`.
    fn local(&self) -> Self::Local;
    /// The global exception whose parent subtree is `w`, if any, as
    /// `(child_subtree, portal label)`.
    fn global_exception_at(&self, w: NodeId) -> Option<(NodeId, Self::Local)>;
}

/// The borrowed view of an owned [`TreeLabel`].
///
/// This is the type forwarding consumes; `RoutingScheme`-level code holds
/// labels behind `Arc` (the assemble-path pooling) or borrows them from a
/// tree scheme, and both hand out this view without cloning any exception
/// vector.
#[derive(Debug, Clone, Copy)]
pub struct TreeLabelRef<'a>(pub &'a TreeLabel);

impl<'a> LabelView for TreeLabelRef<'a> {
    type Local = &'a LocalLabel;

    #[inline]
    fn subtree_root(&self) -> NodeId {
        self.0.subtree_root
    }

    #[inline]
    fn a_global(&self) -> u64 {
        self.0.a_global
    }

    #[inline]
    fn local(&self) -> &'a LocalLabel {
        &self.0.local
    }

    #[inline]
    fn global_exception_at(&self, w: NodeId) -> Option<(NodeId, &'a LocalLabel)> {
        self.0
            .global_exception_at(w)
            .map(|e| (e.child_subtree, &e.portal_label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_label_lookup_and_size() {
        let l = LocalLabel {
            a: 4,
            exceptions: vec![(1, 2), (5, 7)],
        };
        assert_eq!(l.exception_at(1), Some(2));
        assert_eq!(l.exception_at(5), Some(7));
        assert_eq!(l.exception_at(9), None);
        assert_eq!(l.words(), 5);
        assert_eq!(LocalLabel::default().words(), 1);
    }

    #[test]
    fn tree_label_lookup_and_size() {
        let label = TreeLabel {
            vertex: 9,
            subtree_root: 3,
            local: LocalLabel {
                a: 1,
                exceptions: vec![(3, 9)],
            },
            a_global: 2,
            global_exceptions: vec![GlobalException {
                parent_subtree: 0,
                child_subtree: 3,
                portal: 4,
                portal_label: LocalLabel {
                    a: 5,
                    exceptions: vec![],
                },
            }],
        };
        assert!(label.global_exception_at(0).is_some());
        assert!(label.global_exception_at(3).is_none());
        assert_eq!(label.words(), 3 + 3 + 4);
    }
}
