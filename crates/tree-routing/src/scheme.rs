//! Construction of the two-level tree-routing scheme and the forwarding logic.
//!
//! Forwarding is written once, generically over the
//! [`TableView`]/[`LabelView`] traits ([`next_hop_view`]): the owned
//! [`TreeTable`]/[`TreeLabel`] structs and any flat serialized representation
//! (e.g. the `en_wire` snapshot columns) share the exact same step logic, so
//! they cannot drift apart.

use std::cmp::Reverse;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use en_graph::forest::{LocalTopology, TreeView, NO_LOCAL_PARENT};
use en_graph::{NodeId, Path};

use crate::cost::theorem7_rounds;
use crate::label::{GlobalException, LabelView, LocalLabel, LocalLabelView, TreeLabel};
use crate::table::{GlobalHeavyEntry, TableSlots, TableView, TreeTable};

/// Configuration of the tree-routing construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeRoutingConfig {
    /// Seed for the portal sampling.
    pub seed: u64,
    /// Expected number of portal vertices `γ`. `None` uses the paper's choice
    /// `γ = √|T|`; `Some(0)` disables sampling entirely, which degenerates the
    /// scheme to the classic single-level Thorup–Zwick tree routing.
    pub gamma: Option<usize>,
}

impl TreeRoutingConfig {
    /// The default configuration (`γ = √|T|`) with the given seed.
    pub fn new(seed: u64) -> Self {
        TreeRoutingConfig { seed, gamma: None }
    }

    /// Overrides the expected portal count.
    pub fn with_gamma(mut self, gamma: usize) -> Self {
        self.gamma = Some(gamma);
        self
    }

    /// The classic single-level scheme (no portals besides the root).
    pub fn single_level() -> Self {
        TreeRoutingConfig {
            seed: 0,
            gamma: Some(0),
        }
    }
}

/// Errors that can occur while forwarding a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeRoutingError {
    /// The queried vertex is not part of the tree.
    NotInTree {
        /// The offending vertex.
        vertex: NodeId,
    },
    /// A routing table invariant was violated (e.g. a missing parent when one
    /// is required); indicates a construction bug.
    CorruptTable {
        /// The vertex whose table was inconsistent.
        vertex: NodeId,
    },
    /// Forwarding did not reach the destination within `n` hops.
    RoutingLoop {
        /// The source of the failed route.
        from: NodeId,
        /// The destination of the failed route.
        to: NodeId,
    },
}

impl std::fmt::Display for TreeRoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeRoutingError::NotInTree { vertex } => {
                write!(f, "vertex {vertex} is not in the tree")
            }
            TreeRoutingError::CorruptTable { vertex } => {
                write!(f, "routing table of vertex {vertex} is inconsistent")
            }
            TreeRoutingError::RoutingLoop { from, to } => {
                write!(f, "routing from {from} to {to} did not terminate")
            }
        }
    }
}

impl std::error::Error for TreeRoutingError {}

/// The complete routing scheme for one tree: a table and a label per member.
///
/// Tables and labels are stored per member vertex (not per host vertex), so a
/// scheme over a small cluster tree of a huge host graph stays proportional to
/// the cluster size — the routing scheme of Section 4 builds one of these per
/// cluster centre. Members are kept as a sorted id array with the tables and
/// labels aligned to it: lookups are a binary search and construction is a
/// straight append in member order, with no hashing anywhere — a cluster
/// family builds one scheme per centre and then queries a table or label per
/// member, so both sides of this trade are on the Section-4 assembly hot
/// path.
#[derive(Debug, Clone)]
pub struct TreeRoutingScheme {
    root: NodeId,
    host_size: usize,
    /// Member vertex ids, ascending; `tables` and `labels` are aligned.
    member_ids: Vec<u32>,
    tables: Vec<TreeTable>,
    /// Labels are `Arc`-pooled: the Section-4 assembly stores the same label
    /// in a level-0 centre's own-cluster table *and* in the member's node
    /// label, so handing out `Arc` clones instead of deep copies removes the
    /// per-member exception-vector clone traffic from the assemble hot path.
    labels: Vec<Arc<TreeLabel>>,
    portals: Vec<NodeId>,
    tree_size: usize,
}

/// Outcome of one local TZ routing step.
enum LocalStep {
    Arrived,
    Hop(NodeId),
}

/// One local TZ routing step towards `target`, generic over the storage.
fn local_step_view<T: TableView, L: LocalLabelView>(
    table: T,
    target: L,
) -> Result<LocalStep, TreeRoutingError> {
    if table.a_local() == target.a() {
        return Ok(LocalStep::Arrived);
    }
    if !table.local_interval_contains(target.a()) {
        let parent = table.parent().ok_or(TreeRoutingError::CorruptTable {
            vertex: table.vertex(),
        })?;
        return Ok(LocalStep::Hop(parent));
    }
    if let Some(child) = target.exception_at(table.vertex()) {
        return Ok(LocalStep::Hop(child));
    }
    let heavy = table.heavy_child().ok_or(TreeRoutingError::CorruptTable {
        vertex: table.vertex(),
    })?;
    Ok(LocalStep::Hop(heavy))
}

/// Computes the next hop from the vertex owning `table` towards the vertex
/// described by `label`, using only that table and the label — the single
/// forwarding implementation every representation routes through.
///
/// Returns `Ok(None)` when the owning vertex *is* the destination.
///
/// # Errors
///
/// Returns [`TreeRoutingError::CorruptTable`] if a table invariant is
/// violated (e.g. a missing parent where one is required).
pub fn next_hop_view<T: TableView, L: LabelView>(
    table: T,
    label: L,
) -> Result<Option<NodeId>, TreeRoutingError> {
    // Same subtree: pure local TZ routing on the destination's local label.
    if table.subtree_root() == label.subtree_root() {
        return match local_step_view(table, label.local())? {
            LocalStep::Arrived => Ok(None),
            LocalStep::Hop(next) => Ok(Some(next)),
        };
    }
    // Destination's subtree is *not* a T'-descendant of ours: climb.
    if !table.global_interval_contains(label.a_global()) {
        let parent = table.parent().ok_or(TreeRoutingError::CorruptTable {
            vertex: table.vertex(),
        })?;
        return Ok(Some(parent));
    }
    // Destination's subtree is a strict T'-descendant of ours: route to the
    // portal of the correct T' child, then cross into that child subtree.
    let (step, child_subtree) = match label.global_exception_at(table.subtree_root()) {
        Some((child, portal_label)) => (local_step_view(table, portal_label)?, child),
        None => {
            let (child, portal_label) =
                table.global_heavy().ok_or(TreeRoutingError::CorruptTable {
                    vertex: table.vertex(),
                })?;
            (local_step_view(table, portal_label)?, child)
        }
    };
    match step {
        LocalStep::Arrived => Ok(Some(child_subtree)),
        LocalStep::Hop(next) => Ok(Some(next)),
    }
}

impl TreeRoutingScheme {
    /// Builds the scheme for any [`TreeView`] — a dense
    /// [`RootedTree`](en_graph::tree::RootedTree) or a zero-copy cluster
    /// slice of an [`en_graph::forest::ClusterForest`].
    ///
    /// All working state lives in *local member-index space*, so building the
    /// scheme for a tree of `m` members costs `O(m)` memory regardless of the
    /// host-graph size — a cluster family assembles one scheme per centre, so
    /// this is squarely on the Section-4 assembly hot path.
    ///
    /// # Panics
    ///
    /// Panics only if the view violates the [`TreeView`] topology contract
    /// (which [`RootedTree`](en_graph::tree::RootedTree) and
    /// [`ClusterForest`](en_graph::forest::ClusterForest) construction
    /// prevent).
    pub fn build<T: TreeView>(tree: &T, config: &TreeRoutingConfig) -> Self {
        en_obs::counter_add("tree_routing.schemes_built", 1);
        Self::build_topology(&tree.topology(), config)
    }

    fn build_topology(topo: &LocalTopology<'_>, config: &TreeRoutingConfig) -> Self {
        let n_host = topo.host_size;
        let members = topo.members.as_ref();
        let parent_idx = topo.parent_idx.as_ref();
        let m = members.len();
        let root_local = topo.root_pos;
        let root = members[root_local] as NodeId;
        let tree_size = m;
        // Local index -> host vertex id (members are ascending, so local
        // order and vertex order agree — tie-breaks below rely on this).
        let vid = |i: usize| members[i] as NodeId;

        // --- Portal sampling -------------------------------------------------
        // The RNG stream is one draw per non-root member in ascending vertex
        // order, identical to the dense-representation code this replaced.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let gamma = config
            .gamma
            .unwrap_or_else(|| (tree_size as f64).sqrt().ceil() as usize);
        let p = if tree_size == 0 {
            0.0
        } else {
            (gamma as f64 / tree_size as f64).clamp(0.0, 1.0)
        };
        let mut is_portal = vec![false; m];
        for (i, portal) in is_portal.iter_mut().enumerate() {
            if i != root_local && p > 0.0 && rng.gen_bool(p) {
                *portal = true;
            }
        }
        is_portal[root_local] = true;

        // --- Children lists and preorder of T ----------------------------------
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); m];
        for i in 0..m {
            let p = parent_idx[i];
            if p != NO_LOCAL_PARENT {
                children[p as usize].push(i as u32);
            }
        }
        let mut preorder = Vec::with_capacity(m);
        let mut stack = vec![root_local];
        while let Some(v) = stack.pop() {
            preorder.push(v);
            for &c in children[v].iter().rev() {
                stack.push(c as usize);
            }
        }

        // --- Subtree assignment ----------------------------------------------
        let mut subtree_root = vec![usize::MAX; m];
        for &v in &preorder {
            subtree_root[v] = if is_portal[v] {
                v
            } else {
                subtree_root[parent_idx[v] as usize]
            };
        }

        // --- Local children / sizes / heavy children --------------------------
        let mut local_children: Vec<Vec<u32>> = vec![Vec::new(); m];
        for i in 0..m {
            let p = parent_idx[i];
            if p != NO_LOCAL_PARENT && subtree_root[i] == subtree_root[p as usize] {
                local_children[p as usize].push(i as u32);
            }
        }
        let mut local_size = vec![0usize; m];
        for &v in preorder.iter().rev() {
            local_size[v] = 1 + local_children[v]
                .iter()
                .map(|&c| local_size[c as usize])
                .sum::<usize>();
        }
        let heavy_child: Vec<Option<u32>> = (0..m)
            .map(|v| {
                local_children[v]
                    .iter()
                    .copied()
                    .max_by_key(|&c| (local_size[c as usize], Reverse(c)))
            })
            .collect();

        // --- Local DFS numbering per subtree -----------------------------------
        let subtree_roots: Vec<usize> = preorder
            .iter()
            .copied()
            .filter(|&v| subtree_root[v] == v)
            .collect();
        let mut a_local = vec![0u64; m];
        let mut b_local = vec![0u64; m];
        for &w in &subtree_roots {
            let mut counter = 0u64;
            let mut stack = vec![w];
            while let Some(x) = stack.pop() {
                a_local[x] = counter;
                b_local[x] = counter + local_size[x] as u64;
                counter += 1;
                for &c in local_children[x].iter().rev() {
                    stack.push(c as usize);
                }
            }
        }

        // --- Virtual tree T' ----------------------------------------------------
        let mut tprime_children: Vec<Vec<usize>> = vec![Vec::new(); m];
        for &w in &subtree_roots {
            if w != root_local {
                tprime_children[subtree_root[parent_idx[w] as usize]].push(w);
            }
        }
        // Subtree roots listed in T-preorder already have T'-parents before
        // children, so a reverse sweep computes T' subtree sizes.
        let mut tprime_size = vec![0usize; m];
        for &w in subtree_roots.iter().rev() {
            tprime_size[w] = 1 + tprime_children[w]
                .iter()
                .map(|&c| tprime_size[c])
                .sum::<usize>();
        }
        let mut tprime_heavy: Vec<Option<usize>> = vec![None; m];
        for &w in &subtree_roots {
            tprime_heavy[w] = tprime_children[w]
                .iter()
                .copied()
                .max_by_key(|&c| (tprime_size[c], Reverse(c)));
        }
        let mut a_global = vec![0u64; m];
        let mut b_global = vec![0u64; m];
        {
            let mut counter = 0u64;
            let mut stack = vec![root_local];
            while let Some(w) = stack.pop() {
                a_global[w] = counter;
                b_global[w] = counter + tprime_size[w] as u64;
                counter += 1;
                for &c in tprime_children[w].iter().rev() {
                    stack.push(c);
                }
            }
        }

        // --- Local labels (per vertex, within its subtree) ----------------------
        // Exceptions are stored as host vertex ids (the labels travel in
        // packet headers), so the conversion happens as they are recorded.
        let mut local_label: Vec<LocalLabel> = vec![LocalLabel::default(); m];
        for &w in &subtree_roots {
            let mut stack: Vec<(usize, Vec<(NodeId, NodeId)>)> = vec![(w, Vec::new())];
            while let Some((x, exceptions)) = stack.pop() {
                local_label[x] = LocalLabel {
                    a: a_local[x],
                    exceptions: exceptions.clone(),
                };
                for &c in &local_children[x] {
                    let c = c as usize;
                    let mut child_exc = exceptions.clone();
                    if heavy_child[x] != Some(c as u32) {
                        child_exc.push((vid(x), vid(c)));
                    }
                    stack.push((c, child_exc));
                }
            }
        }

        // --- Global exceptions (per subtree root, along the T' path) ------------
        let mut global_exceptions: Vec<Vec<GlobalException>> = vec![Vec::new(); m];
        {
            let mut stack: Vec<(usize, Vec<GlobalException>)> = vec![(root_local, Vec::new())];
            while let Some((w, exceptions)) = stack.pop() {
                global_exceptions[w] = exceptions.clone();
                for &c in &tprime_children[w] {
                    let mut child_exc = exceptions.clone();
                    if tprime_heavy[w] != Some(c) {
                        let portal = parent_idx[c] as usize;
                        child_exc.push(GlobalException {
                            parent_subtree: vid(w),
                            child_subtree: vid(c),
                            portal: vid(portal),
                            portal_label: local_label[portal].clone(),
                        });
                    }
                    stack.push((c, child_exc));
                }
            }
        }

        // --- Assemble tables and labels -----------------------------------------
        // Members are ascending, so pushing in local order keeps the arrays
        // binary-searchable by vertex id.
        let mut tables: Vec<TreeTable> = Vec::with_capacity(m);
        let mut labels: Vec<Arc<TreeLabel>> = Vec::with_capacity(m);
        for i in 0..m {
            let v = vid(i);
            let w = subtree_root[i];
            let global_heavy = tprime_heavy[w].map(|h| {
                let portal = parent_idx[h] as usize;
                GlobalHeavyEntry {
                    child_subtree: vid(h),
                    portal: vid(portal),
                    portal_label: local_label[portal].clone(),
                }
            });
            tables.push(TreeTable {
                vertex: v,
                tree_root: root,
                subtree_root: vid(w),
                parent: (parent_idx[i] != NO_LOCAL_PARENT).then(|| vid(parent_idx[i] as usize)),
                heavy_child: heavy_child[i].map(|c| vid(c as usize)),
                a_local: a_local[i],
                b_local: b_local[i],
                a_global: a_global[w],
                b_global: b_global[w],
                global_heavy,
            });
            labels.push(Arc::new(TreeLabel {
                vertex: v,
                subtree_root: vid(w),
                local: local_label[i].clone(),
                a_global: a_global[w],
                global_exceptions: global_exceptions[w].clone(),
            }));
        }

        let portals = subtree_roots.into_iter().map(vid).collect();
        TreeRoutingScheme {
            root,
            host_size: n_host,
            member_ids: members.to_vec(),
            tables,
            labels,
            portals,
            tree_size,
        }
    }

    /// Position of `v` in the sorted member array, if it is a member.
    #[inline]
    fn index_of(&self, v: NodeId) -> Option<usize> {
        if v > u32::MAX as usize {
            return None;
        }
        self.member_ids.binary_search(&(v as u32)).ok()
    }

    /// The root of the routed tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of vertices in the tree.
    pub fn tree_size(&self) -> usize {
        self.tree_size
    }

    /// The portal set `U(T)` (always contains the root).
    pub fn portals(&self) -> &[NodeId] {
        &self.portals
    }

    /// The routing table of `v`, if `v` is in the tree.
    pub fn table(&self, v: NodeId) -> Option<&TreeTable> {
        self.index_of(v).map(|i| &self.tables[i])
    }

    /// The table of the `i`-th member in ascending member order (the wire
    /// serializer walks tables in member order without re-searching).
    pub fn table_by_index(&self, i: usize) -> Option<&TreeTable> {
        self.tables.get(i)
    }

    /// The label of `v`, if `v` is in the tree.
    pub fn label(&self, v: NodeId) -> Option<&TreeLabel> {
        self.index_of(v).map(|i| &*self.labels[i])
    }

    /// The label of `v` behind its shared `Arc`, if `v` is in the tree —
    /// the assemble path stores this handle instead of a deep clone.
    pub fn label_arc(&self, v: NodeId) -> Option<&Arc<TreeLabel>> {
        self.index_of(v).map(|i| &self.labels[i])
    }

    /// The label of the `i`-th member in ascending member order — the same
    /// order an [`en_graph::forest::ClusterForest`] slice lists its members,
    /// so callers holding a membership-CSR position skip the binary search.
    pub fn label_by_index(&self, i: usize) -> Option<&TreeLabel> {
        self.labels.get(i).map(|l| &**l)
    }

    /// [`Self::label_by_index`], returning the shared `Arc` handle.
    pub fn label_arc_by_index(&self, i: usize) -> Option<&Arc<TreeLabel>> {
        self.labels.get(i)
    }

    /// The member vertices of the routed tree, in increasing id order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.member_ids.iter().map(|&v| v as NodeId)
    }

    /// Table size of `v` in words (0 if not a member).
    pub fn table_words(&self, v: NodeId) -> usize {
        self.table(v).map_or(0, TreeTable::words)
    }

    /// Label size of `v` in words (0 if not a member).
    pub fn label_words(&self, v: NodeId) -> usize {
        self.label(v).map_or(0, TreeLabel::words)
    }

    /// The largest table over all members, in words.
    pub fn max_table_words(&self) -> usize {
        self.tables.iter().map(TreeTable::words).max().unwrap_or(0)
    }

    /// The largest label over all members, in words.
    pub fn max_label_words(&self) -> usize {
        self.labels.iter().map(|l| l.words()).max().unwrap_or(0)
    }

    /// Round charge of building this scheme on a host with hop-diameter `d`
    /// (Theorem 7).
    pub fn construction_rounds(&self, d: usize) -> usize {
        theorem7_rounds(self.tree_size, d)
    }

    /// Computes the next hop from `current` towards the vertex described by
    /// `label`, using only `current`'s table and the label (the information a
    /// real node would have). Delegates to [`next_hop_view`].
    ///
    /// Returns `Ok(None)` when `current` *is* the destination.
    ///
    /// # Errors
    ///
    /// Returns an error if `current` is not in the tree or a table invariant
    /// is violated.
    pub fn next_hop(
        &self,
        current: NodeId,
        label: &TreeLabel,
    ) -> Result<Option<NodeId>, TreeRoutingError> {
        let table = self
            .table(current)
            .ok_or(TreeRoutingError::NotInTree { vertex: current })?;
        next_hop_view(table, label.as_view())
    }

    /// Routes a packet from `from` to `to`, returning the traversed path.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is not in the tree, or forwarding
    /// fails to terminate within `host_size` hops (which would indicate a bug).
    pub fn route(&self, from: NodeId, to: NodeId) -> Result<Path, TreeRoutingError> {
        let label = self
            .label_arc(to)
            .ok_or(TreeRoutingError::NotInTree { vertex: to })?
            .clone();
        if self.table(from).is_none() {
            return Err(TreeRoutingError::NotInTree { vertex: from });
        }
        let mut path = Path::trivial(from);
        let mut current = from;
        for _ in 0..=self.host_size {
            match self.next_hop(current, &label)? {
                None => return Ok(path),
                Some(next) => {
                    path.push(next);
                    current = next;
                }
            }
        }
        Err(TreeRoutingError::RoutingLoop { from, to })
    }
}

impl<'a> TableSlots for &'a TreeRoutingScheme {
    type Table = &'a TreeTable;

    #[inline]
    fn slot_of(&self, v: NodeId) -> Option<usize> {
        self.index_of(v)
    }

    #[inline]
    fn table_at(&self, slot: usize) -> Option<&'a TreeTable> {
        self.tables.get(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use en_graph::dijkstra::dijkstra;
    use en_graph::generators::{erdos_renyi_connected, path, random_tree, star, GeneratorConfig};
    use en_graph::tree::RootedTree;
    use en_graph::WeightedGraph;

    fn spt_of(g: &WeightedGraph, root: NodeId) -> RootedTree {
        RootedTree::from_shortest_paths(g, &dijkstra(g, root))
    }

    fn assert_exact_routing(tree: &RootedTree, scheme: &TreeRoutingScheme) {
        let members = tree.members();
        for &u in &members {
            for &v in &members {
                let route = scheme.route(u, v).unwrap_or_else(|e| {
                    panic!("route {u} -> {v} failed: {e}");
                });
                let expected = tree.tree_path(u, v).expect("both are members");
                assert_eq!(
                    route.nodes(),
                    expected.nodes(),
                    "route {u} -> {v} deviates from the tree path"
                );
            }
        }
    }

    #[test]
    fn single_level_scheme_routes_exactly_on_random_trees() {
        for seed in 0..3 {
            let g = random_tree(&GeneratorConfig::new(40, seed));
            let tree = spt_of(&g, 0);
            let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::single_level());
            assert_eq!(scheme.portals(), &[0]);
            assert_exact_routing(&tree, &scheme);
        }
    }

    #[test]
    fn two_level_scheme_routes_exactly_on_random_trees() {
        for seed in 0..3 {
            let g = random_tree(&GeneratorConfig::new(60, seed + 100));
            let tree = spt_of(&g, 5);
            let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(seed));
            assert!(!scheme.portals().is_empty());
            assert_exact_routing(&tree, &scheme);
        }
    }

    #[test]
    fn two_level_scheme_routes_exactly_on_spt_of_random_graph() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(70, 9).with_weights(1, 50), 0.06);
        let tree = spt_of(&g, 3);
        let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(4));
        assert_exact_routing(&tree, &scheme);
    }

    #[test]
    fn many_portals_still_route_exactly() {
        // Force every other vertex to be a portal (gamma = tree size).
        let g = random_tree(&GeneratorConfig::new(50, 77));
        let tree = spt_of(&g, 0);
        let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(1).with_gamma(50));
        assert!(scheme.portals().len() > 10);
        assert_exact_routing(&tree, &scheme);
    }

    #[test]
    fn path_tree_is_the_hard_case_for_depth_but_still_exact() {
        let g = path(&GeneratorConfig::new(60, 8));
        let tree = spt_of(&g, 0);
        let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(2));
        assert_exact_routing(&tree, &scheme);
    }

    #[test]
    fn star_tree_routes_exactly() {
        let g = star(&GeneratorConfig::new(30, 4));
        let tree = spt_of(&g, 0);
        let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(3));
        assert_exact_routing(&tree, &scheme);
    }

    #[test]
    fn partial_tree_over_host_graph() {
        // Tree covering only part of the host: routing between members works,
        // non-members are rejected.
        let mut tree = RootedTree::new(10, 0);
        tree.attach(1, 0, 3);
        tree.attach(2, 0, 1);
        tree.attach(3, 1, 2);
        let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(0));
        assert!(scheme.route(3, 2).is_ok());
        assert!(matches!(
            scheme.route(3, 7),
            Err(TreeRoutingError::NotInTree { vertex: 7 })
        ));
        assert!(matches!(
            scheme.route(8, 3),
            Err(TreeRoutingError::NotInTree { vertex: 8 })
        ));
        assert_eq!(scheme.table_words(7), 0);
    }

    #[test]
    fn table_and_label_sizes_are_polylogarithmic() {
        let n = 200;
        let g = random_tree(&GeneratorConfig::new(n, 21));
        let tree = spt_of(&g, 0);
        let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(5));
        let log2n = (n as f64).log2();
        // Theorem 7: tables O(log n) words, labels O(log^2 n) words. Generous
        // explicit constants keep the test robust across seeds.
        assert!(
            scheme.max_table_words() <= (8.0 * log2n) as usize + 16,
            "table too large: {}",
            scheme.max_table_words()
        );
        assert!(
            scheme.max_label_words() <= (8.0 * log2n * log2n) as usize + 32,
            "label too large: {}",
            scheme.max_label_words()
        );
    }

    #[test]
    fn construction_round_charge_is_positive_and_monotone_in_d() {
        let g = random_tree(&GeneratorConfig::new(64, 2));
        let tree = spt_of(&g, 0);
        let scheme = TreeRoutingScheme::build(&tree, &TreeRoutingConfig::new(5));
        assert!(scheme.construction_rounds(0) > 0);
        assert!(scheme.construction_rounds(100) > scheme.construction_rounds(0));
    }

    #[test]
    fn error_display_messages() {
        let e = TreeRoutingError::NotInTree { vertex: 4 };
        assert!(e.to_string().contains('4'));
        let e = TreeRoutingError::RoutingLoop { from: 1, to: 2 };
        assert!(e.to_string().contains("did not terminate"));
        let e = TreeRoutingError::CorruptTable { vertex: 3 };
        assert!(e.to_string().contains("inconsistent"));
    }
}
