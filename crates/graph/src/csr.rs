//! Compressed sparse row (CSR) adjacency — the cache-friendly graph view the
//! hot exploration kernels run on.
//!
//! [`WeightedGraph`] stores one heap-allocated `Vec<Neighbor>` per vertex,
//! which is convenient for incremental construction but scatters the adjacency
//! lists across the heap: a Bellman–Ford sweep that touches many vertices pays
//! a cache miss per list. [`CsrGraph`] packs the same adjacency into three
//! flat arrays (`offsets` / `targets` / `weights`) built once, so a sweep
//! walks memory linearly and the whole structure stays resident in cache
//! across sweeps and across sources.
//!
//! The neighbour *order* of every vertex is preserved exactly, so the index of
//! a neighbour inside [`CsrGraph::targets`]`(v)` is still the CONGEST port
//! number of that edge at `v`, interchangeable with
//! [`WeightedGraph::neighbors`].
//!
//! # Example
//!
//! ```
//! use en_graph::{CsrGraph, WeightedGraph};
//!
//! let g = WeightedGraph::from_edges(3, [(0, 1, 5), (1, 2, 7)]).unwrap();
//! let csr = CsrGraph::from_graph(&g);
//! assert_eq!(csr.num_nodes(), 3);
//! assert_eq!(csr.targets(1), &[0, 2]);
//! assert_eq!(csr.weights(1), &[5, 7]);
//! ```

use crate::graph::{Neighbor, WeightedGraph};
use crate::types::{NodeId, Weight};

/// A read-only CSR view of a [`WeightedGraph`].
///
/// Built once with [`CsrGraph::from_graph`]; all hot shortest-path kernels in
/// the workspace (`bellman_ford`, `dijkstra`, `bfs`, the Theorem-1 batched
/// exploration) iterate adjacency through this structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` / `weights` for `v`.
    offsets: Vec<usize>,
    /// Flat neighbour ids, vertex-major, in port order.
    targets: Vec<NodeId>,
    /// Flat edge weights, parallel to `targets`.
    weights: Vec<Weight>,
}

impl CsrGraph {
    /// Builds the CSR view of `g` in one pass, preserving port order.
    pub fn from_graph(g: &WeightedGraph) -> Self {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.num_edges());
        let mut weights = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0);
        for v in 0..n {
            for nb in g.neighbors(v) {
                targets.push(nb.node);
                weights.push(nb.weight);
            }
            offsets.push(targets.len());
        }
        CsrGraph {
            offsets,
            targets,
            weights,
        }
    }

    /// Builds a CSR view directly from its three flat arrays — the escape
    /// hatch for adjacency that does not come from a [`WeightedGraph`] (e.g.
    /// the augmented virtual graph `G''` of the hopset crate, whose restricted
    /// explorations run on this same kernel-facing shape).
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent: `offsets` must start at 0, be
    /// non-decreasing, end at `targets.len()`, and `targets` / `weights` must
    /// be parallel with every target id in range.
    pub fn from_parts(offsets: Vec<usize>, targets: Vec<NodeId>, weights: Vec<Weight>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n + 1 entries");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().expect("non-empty"),
            targets.len(),
            "offsets must end at targets.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert_eq!(
            targets.len(),
            weights.len(),
            "targets and weights must be parallel"
        );
        let n = offsets.len() - 1;
        assert!(targets.iter().all(|&t| t < n), "target id out of range");
        CsrGraph {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Maximum edge weight (0 for an edgeless graph) — the quantity the
    /// batched kernels use to pick their cell width.
    pub fn max_weight(&self) -> Weight {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The neighbour ids of `v`, in port order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn targets(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The edge weights of `v`, parallel to [`CsrGraph::targets`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn weights(&self, v: NodeId) -> &[Weight] {
        &self.weights[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Paired `(targets, weights)` slices of `v` — the shape the relaxation
    /// kernels consume.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn arcs(&self, v: NodeId) -> (&[NodeId], &[Weight]) {
        let lo = self.offsets[v];
        let hi = self.offsets[v + 1];
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Iterator over the neighbours of `v` as [`Neighbor`] values, in port
    /// order — drop-in compatible with [`WeightedGraph::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = Neighbor> + '_ {
        let (targets, weights) = self.arcs(v);
        targets
            .iter()
            .zip(weights)
            .map(|(&node, &weight)| Neighbor { node, weight })
    }
}

impl From<&WeightedGraph> for CsrGraph {
    fn from(g: &WeightedGraph) -> Self {
        CsrGraph::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedGraph {
        WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 2), (0, 2, 5)]).unwrap()
    }

    #[test]
    fn csr_matches_adjacency_lists_in_port_order() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.num_nodes(), g.num_nodes());
        assert_eq!(csr.num_edges(), g.num_edges());
        for v in g.nodes() {
            assert_eq!(csr.degree(v), g.degree(v));
            let from_csr: Vec<Neighbor> = csr.neighbors(v).collect();
            assert_eq!(from_csr.as_slice(), g.neighbors(v));
            let (targets, weights) = csr.arcs(v);
            for (p, nb) in g.neighbors(v).iter().enumerate() {
                assert_eq!(targets[p], nb.node);
                assert_eq!(weights[p], nb.weight);
            }
        }
    }

    #[test]
    fn isolated_vertices_have_empty_slices() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        assert!(csr.targets(3).is_empty());
        assert!(csr.weights(3).is_empty());
        assert_eq!(csr.degree(3), 0);
    }

    #[test]
    fn empty_graph_round_trips() {
        let csr = CsrGraph::from_graph(&WeightedGraph::new(0));
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_edges(), 0);
    }

    #[test]
    fn from_impl_agrees_with_from_graph() {
        let g = sample();
        assert_eq!(CsrGraph::from(&g), CsrGraph::from_graph(&g));
    }

    #[test]
    fn from_parts_round_trips_and_reports_max_weight() {
        let g = sample();
        let built = CsrGraph::from_graph(&g);
        let rebuilt = CsrGraph::from_parts(
            built.offsets.clone(),
            built.targets.clone(),
            built.weights.clone(),
        );
        assert_eq!(rebuilt, built);
        assert_eq!(rebuilt.max_weight(), 5);
        assert_eq!(CsrGraph::from_graph(&WeightedGraph::new(2)).max_weight(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parts_rejects_bad_target() {
        let _ = CsrGraph::from_parts(vec![0, 1], vec![7], vec![1]);
    }
}
