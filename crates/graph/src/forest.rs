//! Arena-backed compact cluster forest.
//!
//! A cluster family materialises one rooted tree per centre. Storing each of
//! those trees as a host-sized parent array (the [`RootedTree`]
//! representation) costs `O(n)` memory *per cluster* — `O(n · #clusters)`
//! overall — even though the paper bounds the total membership by
//! `O(n^{1+1/k} log n)` (Claim 2). The [`ClusterForest`] stores every cluster
//! of a family in shared CSR-style arrays instead, keyed by a dense
//! [`ClusterId`]:
//!
//! * `cluster_offsets[c] .. cluster_offsets[c + 1]` delimits cluster `c`'s
//!   slice of the member arrays;
//! * `member_ids` holds the member vertices, ascending within each slice
//!   (so membership tests are a binary search of the slice);
//! * `member_parent_idx` holds each member's parent as a *local index into
//!   the same slice* ([`NO_LOCAL_PARENT`] for the root), which makes forests
//!   concatenable without fix-ups;
//! * `member_parent_weight` and `member_root_dist` carry the tree-arc weight
//!   and the construction's root-distance estimate `b_v(u)` per member.
//!
//! Total memory is `O(Σ|C|)` — linear in membership, matching how Elkin-style
//! deterministic spanner constructions keep cluster state linear — and a
//! whole forest is a handful of flat allocations instead of thousands.
//!
//! The forest also carries an inverted **membership CSR** built in one
//! counting-sort pass at [`ClusterForestBuilder::finish`]: for every vertex
//! `v`, the list of `(cluster, local index)` pairs of the clusters containing
//! `v`. Overlap queries (`|{C : v ∈ C}|`, Claim 2's quantity) become `O(1)`,
//! and the Section-4 routing-scheme assembly sweeps it once instead of
//! re-walking every cluster's members.
//!
//! Finally, the [`TreeView`] trait abstracts "a rooted tree presented in
//! local member-index space". Forest slices ([`ClusterView`]) implement it
//! zero-copy; [`RootedTree`] implements it by materialising its topology
//! once, so consumers (the tree-routing construction of Theorem 7) work
//! off either representation.

use std::borrow::Cow;

use crate::tree::RootedTree;
use crate::types::{Dist, NodeId, Weight};

/// Dense identifier of a cluster within a [`ClusterForest`].
pub type ClusterId = usize;

/// `member_parent_idx` sentinel meaning "no parent" (the root of a cluster).
pub const NO_LOCAL_PARENT: u32 = u32::MAX;

/// A rooted tree presented in *local member-index space*: `m` members with
/// dense indices `0..m`, each knowing its vertex id and the local index of
/// its parent. This is the shape the tree-routing construction consumes —
/// all of its working state is `O(m)`, never `O(host)`.
#[derive(Debug, Clone)]
pub struct LocalTopology<'a> {
    /// Number of vertices in the host graph.
    pub host_size: usize,
    /// Member vertex ids, ascending.
    pub members: Cow<'a, [u32]>,
    /// `parent_idx[i]` is the local index of member `i`'s parent,
    /// [`NO_LOCAL_PARENT`] for the root.
    pub parent_idx: Cow<'a, [u32]>,
    /// `parent_weight[i]` is the weight of the arc to member `i`'s parent
    /// (0 for the root).
    pub parent_weight: Cow<'a, [Weight]>,
    /// Local index of the root.
    pub root_pos: usize,
}

impl LocalTopology<'_> {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the topology has no members (never the case for a
    /// well-formed tree, which contains at least its root).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The root vertex id.
    pub fn root(&self) -> NodeId {
        self.members[self.root_pos] as NodeId
    }
}

/// A rooted tree over a subset of a host graph's vertices, viewable in local
/// member-index space. Implemented zero-copy by forest slices
/// ([`ClusterView`]) and by materialisation by [`RootedTree`].
pub trait TreeView {
    /// The tree's local-index topology. Forest slices return borrowed
    /// slices; [`RootedTree`] materialises owned arrays once per call.
    fn topology(&self) -> LocalTopology<'_>;
}

impl TreeView for RootedTree {
    fn topology(&self) -> LocalTopology<'_> {
        let n = self.host_size();
        let members: Vec<u32> = self.members().iter().map(|&v| v as u32).collect();
        // Host-vertex -> local-index map for parent resolution.
        let mut pos = vec![NO_LOCAL_PARENT; n];
        for (i, &v) in members.iter().enumerate() {
            pos[v as usize] = i as u32;
        }
        let mut parent_idx = vec![NO_LOCAL_PARENT; members.len()];
        let mut parent_weight = vec![0; members.len()];
        for (i, &v) in members.iter().enumerate() {
            if let Some((p, w)) = self.parent(v as NodeId) {
                parent_idx[i] = pos[p];
                parent_weight[i] = w;
            }
        }
        let root_pos = pos[self.root()] as usize;
        LocalTopology {
            host_size: n,
            members: Cow::Owned(members),
            parent_idx: Cow::Owned(parent_idx),
            parent_weight: Cow::Owned(parent_weight),
            root_pos,
        }
    }
}

/// One member record handed to [`ClusterForestBuilder::push_cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestMember {
    /// The member vertex.
    pub v: NodeId,
    /// Its tree parent (a vertex id; must itself be a member or the centre).
    pub parent: NodeId,
    /// Weight of the arc `(parent, v)`.
    pub weight: Weight,
    /// The construction's root-distance estimate `b_v(u)` for this member.
    pub root_dist: Dist,
}

/// All clusters of a family in shared flat arrays; see the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterForest {
    n: usize,
    centers: Vec<NodeId>,
    levels: Vec<u32>,
    root_pos: Vec<u32>,
    cluster_offsets: Vec<usize>,
    member_ids: Vec<u32>,
    member_parent_idx: Vec<u32>,
    member_parent_weight: Vec<Weight>,
    member_root_dist: Vec<Dist>,
    /// Inverted membership CSR: `vertex_offsets[v] .. vertex_offsets[v + 1]`
    /// delimits `v`'s `(cluster, local index)` pairs.
    vertex_offsets: Vec<usize>,
    vertex_cluster: Vec<u32>,
    vertex_member_pos: Vec<u32>,
}

impl ClusterForest {
    /// An empty forest over a host of `n` vertices.
    pub fn empty(n: usize) -> Self {
        ClusterForestBuilder::new(n).finish()
    }

    /// Number of vertices in the host graph.
    pub fn host_size(&self) -> usize {
        self.n
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// `true` when the forest holds no clusters.
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Sum of all cluster sizes (the length of the member arrays).
    pub fn total_members(&self) -> usize {
        self.member_ids.len()
    }

    /// The view of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= num_clusters()`.
    pub fn cluster(&self, c: ClusterId) -> ClusterView<'_> {
        assert!(c < self.num_clusters(), "cluster {c} out of range");
        ClusterView {
            forest: self,
            id: c,
        }
    }

    /// Iterates over all clusters in id order.
    pub fn clusters(&self) -> impl Iterator<Item = ClusterView<'_>> {
        (0..self.num_clusters()).map(move |id| ClusterView { forest: self, id })
    }

    /// The first cluster rooted at `center`, by linear scan (family-level
    /// callers that need many lookups keep their own centre index).
    pub fn cluster_by_center(&self, center: NodeId) -> Option<ClusterView<'_>> {
        let id = self.centers.iter().position(|&c| c == center)?;
        Some(ClusterView { forest: self, id })
    }

    /// The number of clusters containing `v` — Claim 2's overlap, answered
    /// in `O(1)` from the membership CSR.
    ///
    /// # Panics
    ///
    /// Panics if `v >= host_size()`.
    pub fn overlap_of(&self, v: NodeId) -> usize {
        self.vertex_offsets[v + 1] - self.vertex_offsets[v]
    }

    /// The `(cluster, local member index)` pairs of the clusters containing
    /// `v`, in increasing cluster-id order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= host_size()`.
    pub fn membership(&self, v: NodeId) -> impl Iterator<Item = (ClusterId, usize)> + '_ {
        let lo = self.vertex_offsets[v];
        let hi = self.vertex_offsets[v + 1];
        self.vertex_cluster[lo..hi]
            .iter()
            .zip(&self.vertex_member_pos[lo..hi])
            .map(|(&c, &i)| (c as ClusterId, i as usize))
    }

    /// The maximum of [`Self::overlap_of`] over all vertices.
    pub fn max_overlap(&self) -> usize {
        (0..self.n).map(|v| self.overlap_of(v)).max().unwrap_or(0)
    }

    /// Bytes occupied by the forest's arrays (the family's memory footprint
    /// gauge reported by the perf harness).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.centers.capacity() * size_of::<NodeId>()
            + self.levels.capacity() * size_of::<u32>()
            + self.root_pos.capacity() * size_of::<u32>()
            + self.cluster_offsets.capacity() * size_of::<usize>()
            + self.member_ids.capacity() * size_of::<u32>()
            + self.member_parent_idx.capacity() * size_of::<u32>()
            + self.member_parent_weight.capacity() * size_of::<Weight>()
            + self.member_root_dist.capacity() * size_of::<Dist>()
            + self.vertex_offsets.capacity() * size_of::<usize>()
            + self.vertex_cluster.capacity() * size_of::<u32>()
            + self.vertex_member_pos.capacity() * size_of::<u32>()
    }
}

/// A zero-copy view of one cluster of a [`ClusterForest`]: the tree rooted at
/// the cluster's centre, plus the per-member root-distance estimates.
#[derive(Debug, Clone, Copy)]
pub struct ClusterView<'a> {
    forest: &'a ClusterForest,
    id: ClusterId,
}

impl<'a> ClusterView<'a> {
    #[inline]
    fn span(&self) -> std::ops::Range<usize> {
        self.forest.cluster_offsets[self.id]..self.forest.cluster_offsets[self.id + 1]
    }

    /// The cluster's dense id within its forest.
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// The cluster centre (the root of the tree).
    pub fn center(&self) -> NodeId {
        self.forest.centers[self.id]
    }

    /// The level `i` such that the centre is in `A_i \ A_{i+1}`.
    pub fn level(&self) -> usize {
        self.forest.levels[self.id] as usize
    }

    /// Number of members (including the centre).
    pub fn len(&self) -> usize {
        self.span().len()
    }

    /// Always `false`: a cluster contains at least its centre.
    pub fn is_empty(&self) -> bool {
        self.span().is_empty()
    }

    /// The member vertices as the raw ascending `u32` slice.
    pub fn member_ids(&self) -> &'a [u32] {
        &self.forest.member_ids[self.span()]
    }

    /// The members in increasing vertex-id order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + 'a {
        self.member_ids().iter().map(|&v| v as NodeId)
    }

    /// The per-member root-distance estimates, aligned with
    /// [`Self::member_ids`].
    pub fn root_dists(&self) -> &'a [Dist] {
        &self.forest.member_root_dist[self.span()]
    }

    /// The local index of `v` within the cluster, if `v` is a member.
    pub fn local_index_of(&self, v: NodeId) -> Option<usize> {
        self.member_ids().binary_search(&(v as u32)).ok()
    }

    /// Whether `v` belongs to the cluster.
    pub fn contains(&self, v: NodeId) -> bool {
        v < self.forest.n && self.local_index_of(v).is_some()
    }

    /// The root-distance estimate `b_v(center)` of member `v`.
    pub fn root_dist(&self, v: NodeId) -> Option<Dist> {
        self.local_index_of(v).map(|i| self.root_dists()[i])
    }

    /// The tree parent of member `v` with the connecting arc weight; `None`
    /// for the centre and for non-members.
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, Weight)> {
        let i = self.local_index_of(v)?;
        let span = self.span();
        let p = self.forest.member_parent_idx[span.start + i];
        if p == NO_LOCAL_PARENT {
            return None;
        }
        Some((
            self.forest.member_ids[span.start + p as usize] as NodeId,
            self.forest.member_parent_weight[span.start + i],
        ))
    }

    /// The tree arcs `(member, parent, weight)` of every non-root member.
    pub fn parent_arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + 'a {
        let span = self.span();
        let ids = &self.forest.member_ids[span.clone()];
        let parents = &self.forest.member_parent_idx[span.clone()];
        let weights = &self.forest.member_parent_weight[span];
        ids.iter()
            .zip(parents)
            .zip(weights)
            .filter(|((_, &p), _)| p != NO_LOCAL_PARENT)
            .map(move |((&v, &p), &w)| (v as NodeId, ids[p as usize] as NodeId, w))
    }

    /// Materialises the cluster tree as a host-sized [`RootedTree`] — the
    /// compatibility accessor for consumers that still want the dense
    /// per-cluster representation (the congest layer's oracle comparisons,
    /// Section-6 virtual-tree manipulation).
    pub fn tree(&self) -> RootedTree {
        RootedTree::from_compact_members(self.forest.n, self.center(), self.parent_arcs())
    }
}

impl TreeView for ClusterView<'_> {
    fn topology(&self) -> LocalTopology<'_> {
        let span = self.span();
        LocalTopology {
            host_size: self.forest.n,
            members: Cow::Borrowed(&self.forest.member_ids[span.clone()]),
            parent_idx: Cow::Borrowed(&self.forest.member_parent_idx[span.clone()]),
            parent_weight: Cow::Borrowed(&self.forest.member_parent_weight[span]),
            root_pos: self.forest.root_pos[self.id] as usize,
        }
    }
}

/// Incrementally builds a [`ClusterForest`]; see
/// [`Self::push_cluster`] and [`Self::finish`].
#[derive(Debug, Clone)]
pub struct ClusterForestBuilder {
    n: usize,
    centers: Vec<NodeId>,
    levels: Vec<u32>,
    root_pos: Vec<u32>,
    cluster_offsets: Vec<usize>,
    member_ids: Vec<u32>,
    member_parent_idx: Vec<u32>,
    member_parent_weight: Vec<Weight>,
    member_root_dist: Vec<Dist>,
}

impl ClusterForestBuilder {
    /// A builder for a forest over a host of `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not fit the `u32` member representation.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "host size must fit in u32");
        ClusterForestBuilder {
            n,
            centers: Vec::new(),
            levels: Vec::new(),
            root_pos: Vec::new(),
            cluster_offsets: vec![0],
            member_ids: Vec::new(),
            member_parent_idx: Vec::new(),
            member_parent_weight: Vec::new(),
            member_root_dist: Vec::new(),
        }
    }

    /// Number of vertices in the host graph.
    pub fn host_size(&self) -> usize {
        self.n
    }

    /// Number of clusters pushed so far (the id the next push will get).
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// The member ids of an already-pushed cluster (ascending) — lets
    /// callers account per-level overlap without waiting for
    /// [`Self::finish`].
    ///
    /// # Panics
    ///
    /// Panics if `c` has not been pushed yet.
    pub fn members_of(&self, c: ClusterId) -> &[u32] {
        &self.member_ids[self.cluster_offsets[c]..self.cluster_offsets[c + 1]]
    }

    /// Appends one cluster: the centre (root, `root_dist = 0`) plus the
    /// non-centre `members`, which must arrive in strictly ascending vertex
    /// order — exactly the shape the batched cluster kernel emits — with
    /// every parent either the centre or another member. Returns the new
    /// cluster's id.
    ///
    /// # Panics
    ///
    /// Panics if a member repeats or equals the centre, if any id is out of
    /// range, or if a recorded parent is not itself in the cluster.
    pub fn push_cluster(
        &mut self,
        center: NodeId,
        level: usize,
        members: impl IntoIterator<Item = ForestMember>,
    ) -> ClusterId {
        assert!(center < self.n, "centre {center} out of range");
        let start = self.member_ids.len();
        let mut last: Option<NodeId> = None;
        let mut root_seen = false;
        for m in members {
            assert!(m.v < self.n && m.parent < self.n, "member out of range");
            assert_ne!(m.v, center, "centre must not appear among the members");
            assert!(
                last.is_none_or(|prev| prev < m.v),
                "members must be strictly ascending"
            );
            if !root_seen && m.v > center {
                self.push_root(center);
                root_seen = true;
            }
            last = Some(m.v);
            self.member_ids.push(m.v as u32);
            // Stage the parent *vertex id*; resolved to a local index below,
            // once the whole slice is present.
            self.member_parent_idx.push(m.parent as u32);
            self.member_parent_weight.push(m.weight);
            self.member_root_dist.push(m.root_dist);
        }
        if !root_seen {
            self.push_root(center);
        }
        let end = self.member_ids.len();
        let root_local = self.member_ids[start..end]
            .binary_search(&(center as u32))
            .expect("centre is in its own slice") as u32;
        // Resolve staged parent vertices to local indices.
        for i in start..end {
            if self.member_parent_idx[i] == NO_LOCAL_PARENT {
                continue;
            }
            let p = self.member_parent_idx[i];
            let local = self.member_ids[start..end]
                .binary_search(&p)
                .unwrap_or_else(|_| {
                    panic!(
                        "parent {p} of member {} is not in the cluster of centre {center}",
                        self.member_ids[i]
                    )
                });
            self.member_parent_idx[i] = local as u32;
        }
        self.centers.push(center);
        self.levels.push(level as u32);
        self.root_pos.push(root_local);
        self.cluster_offsets.push(end);
        let id = self.centers.len() - 1;
        #[cfg(debug_assertions)]
        self.debug_check_tree(id);
        id
    }

    /// Total members pushed so far across all clusters.
    pub fn total_members(&self) -> usize {
        self.member_ids.len()
    }

    /// Appends every cluster of `other` after this builder's clusters,
    /// preserving `other`'s internal cluster order — the merge step of the
    /// parallel construction, where each worker fills a private builder and
    /// the coordinator absorbs them **in shard order**.
    ///
    /// Because `member_parent_idx` stores slice-local indices and `root_pos`
    /// is slice-local too, the member arrays concatenate without fix-ups;
    /// only `cluster_offsets` is rebased. Cluster ids, however, are
    /// *assigned by arrival order* — absorbing shards out of order permutes
    /// ids and with them the membership CSR and every id-keyed consumer (see
    /// the `absorb_out_of_order_permutes_cluster_ids` regression test), so
    /// callers must absorb in the sequential push order.
    ///
    /// # Panics
    ///
    /// Panics if the two builders have different host sizes.
    pub fn absorb(&mut self, other: ClusterForestBuilder) {
        assert_eq!(
            self.n, other.n,
            "cannot absorb a builder over a different host"
        );
        let _span = en_obs::span("forest_absorb");
        en_obs::counter_add("forest.absorbed_clusters", other.centers.len() as u64);
        en_obs::counter_add("forest.absorbed_members", other.member_ids.len() as u64);
        let base = self.member_ids.len();
        self.centers.extend_from_slice(&other.centers);
        self.levels.extend_from_slice(&other.levels);
        self.root_pos.extend_from_slice(&other.root_pos);
        self.cluster_offsets
            .extend(other.cluster_offsets[1..].iter().map(|&o| o + base));
        self.member_ids.extend_from_slice(&other.member_ids);
        self.member_parent_idx
            .extend_from_slice(&other.member_parent_idx);
        self.member_parent_weight
            .extend_from_slice(&other.member_parent_weight);
        self.member_root_dist
            .extend_from_slice(&other.member_root_dist);
    }

    fn push_root(&mut self, center: NodeId) {
        self.member_ids.push(center as u32);
        self.member_parent_idx.push(NO_LOCAL_PARENT);
        self.member_parent_weight.push(0);
        self.member_root_dist.push(0);
    }

    /// Builds the membership CSR in one counting-sort pass and returns the
    /// finished forest.
    pub fn finish(self) -> ClusterForest {
        let ClusterForestBuilder {
            n,
            centers,
            levels,
            root_pos,
            cluster_offsets,
            member_ids,
            member_parent_idx,
            member_parent_weight,
            member_root_dist,
        } = self;
        // Counting sort of (vertex -> (cluster, local idx)): one histogram
        // pass over member_ids, a prefix sum, and one scatter pass. Because
        // clusters are scanned in id order, each vertex's membership list
        // comes out sorted by cluster id.
        let mut vertex_offsets = vec![0usize; n + 1];
        for &v in &member_ids {
            vertex_offsets[v as usize + 1] += 1;
        }
        for v in 0..n {
            vertex_offsets[v + 1] += vertex_offsets[v];
        }
        let total = member_ids.len();
        let mut vertex_cluster = vec![0u32; total];
        let mut vertex_member_pos = vec![0u32; total];
        let mut cursor = vertex_offsets.clone();
        for c in 0..centers.len() {
            let span = cluster_offsets[c]..cluster_offsets[c + 1];
            for (i, &v) in member_ids[span].iter().enumerate() {
                let slot = cursor[v as usize];
                vertex_cluster[slot] = c as u32;
                vertex_member_pos[slot] = i as u32;
                cursor[v as usize] += 1;
            }
        }
        ClusterForest {
            n,
            centers,
            levels,
            root_pos,
            cluster_offsets,
            member_ids,
            member_parent_idx,
            member_parent_weight,
            member_root_dist,
            vertex_offsets,
            vertex_cluster,
            vertex_member_pos,
        }
    }

    /// Debug-only validation: the freshly pushed cluster's parent pointers
    /// form a tree rooted at the centre.
    #[cfg(debug_assertions)]
    fn debug_check_tree(&self, id: ClusterId) {
        let start = self.cluster_offsets[id];
        let end = self.cluster_offsets[id + 1];
        let m = end - start;
        let root = self.root_pos[id] as usize;
        for i in 0..m {
            let mut cur = i;
            let mut steps = 0;
            while self.member_parent_idx[start + cur] != NO_LOCAL_PARENT {
                cur = self.member_parent_idx[start + cur] as usize;
                steps += 1;
                assert!(steps <= m, "cycle in cluster {id} at local index {i}");
            }
            assert_eq!(
                cur, root,
                "member {i} of cluster {id} does not reach the root"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two clusters over a 5-vertex host:
    /// * centre 1 at level 0 with members {0, 1, 2} (0 and 2 hang off 1);
    /// * centre 3 at level 1 spanning {1, 2, 3, 4} as a path 3-2-1, 3-4.
    fn sample_forest() -> ClusterForest {
        let mut b = ClusterForestBuilder::new(5);
        b.push_cluster(
            1,
            0,
            [
                ForestMember {
                    v: 0,
                    parent: 1,
                    weight: 2,
                    root_dist: 2,
                },
                ForestMember {
                    v: 2,
                    parent: 1,
                    weight: 3,
                    root_dist: 3,
                },
            ],
        );
        b.push_cluster(
            3,
            1,
            [
                ForestMember {
                    v: 1,
                    parent: 2,
                    weight: 1,
                    root_dist: 5,
                },
                ForestMember {
                    v: 2,
                    parent: 3,
                    weight: 4,
                    root_dist: 4,
                },
                ForestMember {
                    v: 4,
                    parent: 3,
                    weight: 1,
                    root_dist: 1,
                },
            ],
        );
        b.finish()
    }

    #[test]
    fn cluster_views_expose_members_parents_and_dists() {
        let f = sample_forest();
        assert_eq!(f.num_clusters(), 2);
        assert_eq!(f.host_size(), 5);
        assert_eq!(f.total_members(), 7);
        let c0 = f.cluster(0);
        assert_eq!(c0.center(), 1);
        assert_eq!(c0.level(), 0);
        assert_eq!(c0.len(), 3);
        assert!(!c0.is_empty());
        assert_eq!(c0.members().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(c0.parent(0), Some((1, 2)));
        assert_eq!(c0.parent(1), None);
        assert_eq!(c0.root_dist(2), Some(3));
        assert_eq!(c0.root_dist(4), None);
        assert!(c0.contains(2) && !c0.contains(4));
        let c1 = f.cluster(1);
        assert_eq!(c1.center(), 3);
        assert_eq!(c1.parent(1), Some((2, 1)));
        assert_eq!(c1.parent(4), Some((3, 1)));
        let arcs: Vec<_> = c1.parent_arcs().collect();
        assert_eq!(arcs, vec![(1, 2, 1), (2, 3, 4), (4, 3, 1)]);
    }

    #[test]
    fn membership_csr_answers_overlap_queries() {
        let f = sample_forest();
        assert_eq!(f.overlap_of(0), 1);
        assert_eq!(f.overlap_of(1), 2);
        assert_eq!(f.overlap_of(2), 2);
        assert_eq!(f.overlap_of(4), 1);
        assert_eq!(f.max_overlap(), 2);
        let mem: Vec<_> = f.membership(2).collect();
        // Vertex 2 is local index 2 of cluster 0 and local index 1 of cluster 1.
        assert_eq!(mem, vec![(0, 2), (1, 1)]);
        assert_eq!(f.membership(3).count(), 1);
        assert!(f.memory_bytes() > 0);
    }

    #[test]
    fn materialised_tree_matches_the_view() {
        let f = sample_forest();
        let view = f.cluster(1);
        let tree = view.tree();
        assert_eq!(tree.root(), 3);
        assert_eq!(tree.members(), vec![1, 2, 3, 4]);
        for v in view.members() {
            assert_eq!(tree.parent(v), view.parent(v));
        }
        assert_eq!(tree.root_distances()[1], Some(5));
    }

    #[test]
    fn topology_agrees_between_view_and_materialised_tree() {
        let f = sample_forest();
        for view in f.clusters() {
            let tree = view.tree();
            let a = view.topology();
            let b = tree.topology();
            assert_eq!(a.members, b.members);
            assert_eq!(a.parent_idx, b.parent_idx);
            assert_eq!(a.parent_weight, b.parent_weight);
            assert_eq!(a.root_pos, b.root_pos);
            assert_eq!(a.root(), view.center());
            assert_eq!(a.len(), view.len());
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn shared_builder_concatenates_phases() {
        // Phases of a construction push into one shared builder; ids stay in
        // push order and the membership CSR spans all of them.
        let mut b = ClusterForestBuilder::new(5);
        b.push_cluster(
            4,
            0,
            [ForestMember {
                v: 0,
                parent: 4,
                weight: 9,
                root_dist: 9,
            }],
        );
        assert_eq!(b.members_of(0), &[0, 4]);
        b.push_cluster(
            1,
            0,
            [ForestMember {
                v: 0,
                parent: 1,
                weight: 2,
                root_dist: 2,
            }],
        );
        let merged = b.finish();
        assert_eq!(merged.num_clusters(), 2);
        assert_eq!(merged.cluster(0).center(), 4);
        assert_eq!(merged.cluster(1).center(), 1);
        assert_eq!(merged.overlap_of(0), 2);
        assert_eq!(merged.cluster_by_center(1).map(|c| c.id()), Some(1));
        assert!(merged.cluster_by_center(2).is_none());
    }

    #[test]
    fn absorb_in_shard_order_equals_sequential_pushes() {
        // The sequential oracle: both sample clusters into one builder.
        let sequential = sample_forest();
        // The parallel shape: each cluster in its own per-thread builder,
        // absorbed in shard order into a fresh coordinator builder.
        let mut shard0 = ClusterForestBuilder::new(5);
        shard0.push_cluster(
            1,
            0,
            [
                ForestMember {
                    v: 0,
                    parent: 1,
                    weight: 2,
                    root_dist: 2,
                },
                ForestMember {
                    v: 2,
                    parent: 1,
                    weight: 3,
                    root_dist: 3,
                },
            ],
        );
        let mut shard1 = ClusterForestBuilder::new(5);
        shard1.push_cluster(
            3,
            1,
            [
                ForestMember {
                    v: 1,
                    parent: 2,
                    weight: 1,
                    root_dist: 5,
                },
                ForestMember {
                    v: 2,
                    parent: 3,
                    weight: 4,
                    root_dist: 4,
                },
                ForestMember {
                    v: 4,
                    parent: 3,
                    weight: 1,
                    root_dist: 1,
                },
            ],
        );
        assert_eq!(shard1.total_members(), 4);
        let mut merged = ClusterForestBuilder::new(5);
        merged.absorb(shard0);
        merged.absorb(shard1);
        assert_eq!(merged.num_clusters(), 2);
        assert_eq!(merged.total_members(), 7);
        assert_eq!(merged.finish(), sequential);
    }

    #[test]
    fn absorb_handles_empty_shards_and_spanning_clusters() {
        // Empty shards (more threads than sources) are no-ops wherever they
        // land in the absorb sequence.
        let mut merged = ClusterForestBuilder::new(5);
        merged.absorb(ClusterForestBuilder::new(5));
        let mut spanning = ClusterForestBuilder::new(5);
        // A single cluster spanning every host vertex, rooted mid-range.
        spanning.push_cluster(
            2,
            0,
            [0, 1, 3, 4].map(|v| ForestMember {
                v,
                parent: 2,
                weight: 1,
                root_dist: 1,
            }),
        );
        merged.absorb(spanning);
        merged.absorb(ClusterForestBuilder::new(5));
        let f = merged.finish();
        assert_eq!(f.num_clusters(), 1);
        assert_eq!(f.total_members(), 5);
        let c = f.cluster(0);
        assert_eq!(c.center(), 2);
        assert_eq!(c.members().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        for v in 0..5 {
            assert_eq!(f.overlap_of(v), 1);
        }
    }

    #[test]
    fn absorb_out_of_order_permutes_cluster_ids() {
        // Ordering audit (the ride-along regression): absorbing shards out
        // of sequential order keeps each cluster internally well-formed —
        // ascending member_ids, local parents, root_pos all survive, so no
        // assertion fires — but permutes the *cluster ids*. Ids key the
        // membership CSR ordering, `cluster(id)` lookups, and the assemble
        // sweep, so the merged forest is NOT bit-identical to the sequential
        // one. This is why the parallel merge must absorb in shard order.
        let sequential = sample_forest();
        let mut shard0 = ClusterForestBuilder::new(5);
        shard0.push_cluster(
            1,
            0,
            [
                ForestMember {
                    v: 0,
                    parent: 1,
                    weight: 2,
                    root_dist: 2,
                },
                ForestMember {
                    v: 2,
                    parent: 1,
                    weight: 3,
                    root_dist: 3,
                },
            ],
        );
        let mut shard1 = ClusterForestBuilder::new(5);
        shard1.push_cluster(
            3,
            1,
            [
                ForestMember {
                    v: 1,
                    parent: 2,
                    weight: 1,
                    root_dist: 5,
                },
                ForestMember {
                    v: 2,
                    parent: 3,
                    weight: 4,
                    root_dist: 4,
                },
                ForestMember {
                    v: 4,
                    parent: 3,
                    weight: 1,
                    root_dist: 1,
                },
            ],
        );
        let mut merged = ClusterForestBuilder::new(5);
        merged.absorb(shard1); // wrong order
        merged.absorb(shard0);
        let swapped = merged.finish();
        // Per-cluster data is intact under the permuted ids...
        assert_eq!(swapped.cluster(0).center(), 3);
        assert_eq!(swapped.cluster(1).center(), 1);
        assert_eq!(
            swapped.cluster(1).members().collect::<Vec<_>>(),
            sequential.cluster(0).members().collect::<Vec<_>>()
        );
        // ...but the forest as a whole differs: ids and the id-ordered
        // membership CSR are permuted.
        assert_ne!(swapped, sequential);
        let seq_mem: Vec<_> = sequential.membership(2).collect();
        let swap_mem: Vec<_> = swapped.membership(2).collect();
        assert_eq!(seq_mem, vec![(0, 2), (1, 1)]);
        assert_eq!(swap_mem, vec![(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "different host")]
    fn absorb_rejects_host_mismatch() {
        let mut a = ClusterForestBuilder::new(5);
        a.absorb(ClusterForestBuilder::new(6));
    }

    #[test]
    fn empty_forest_is_queryable() {
        let f = ClusterForest::empty(4);
        assert!(f.is_empty());
        assert_eq!(f.num_clusters(), 0);
        assert_eq!(f.overlap_of(3), 0);
        assert_eq!(f.max_overlap(), 0);
        assert_eq!(f.clusters().count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_members() {
        let mut b = ClusterForestBuilder::new(5);
        let m = |v| ForestMember {
            v,
            parent: 0,
            weight: 1,
            root_dist: 1,
        };
        b.push_cluster(0, 0, [m(2), m(1)]);
    }

    #[test]
    #[should_panic(expected = "is not in the cluster")]
    fn rejects_foreign_parents() {
        let mut b = ClusterForestBuilder::new(5);
        b.push_cluster(
            0,
            0,
            [ForestMember {
                v: 1,
                parent: 3,
                weight: 1,
                root_dist: 1,
            }],
        );
    }

    #[test]
    fn rooted_tree_topology_handles_partial_hosts() {
        let mut t = RootedTree::new(10, 7);
        t.attach(2, 7, 5);
        t.attach(9, 2, 1);
        let topo = t.topology();
        assert_eq!(topo.members.as_ref(), &[2, 7, 9]);
        assert_eq!(topo.root_pos, 1);
        assert_eq!(topo.parent_idx.as_ref(), &[1, NO_LOCAL_PARENT, 0]);
        assert_eq!(topo.parent_weight.as_ref(), &[5, 0, 1]);
        assert_eq!(topo.host_size, 10);
        assert_eq!(topo.root(), 7);
    }
}
