//! Unweighted breadth-first search, BFS trees, and the hop-diameter `D`.
//!
//! The CONGEST model measures time in rounds over the *unweighted* topology,
//! so the hop-diameter `D` — the maximum hop distance between any two vertices
//! ignoring weights — is the quantity appearing in every running-time bound of
//! the paper.

use std::collections::VecDeque;

use crate::csr::CsrGraph;
use crate::graph::WeightedGraph;
use crate::types::NodeId;

/// Result of a breadth-first search from a single source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// The source vertex.
    pub source: NodeId,
    /// `hops[v]` is the hop distance from the source, `usize::MAX` if unreachable.
    pub hops: Vec<usize>,
    /// `parent[v]` is the BFS-tree parent of `v` (None for the source and
    /// unreachable vertices).
    pub parent: Vec<Option<NodeId>>,
}

impl BfsResult {
    /// The vertices reachable from the source, in BFS order.
    pub fn reachable(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.hops.len())
            .filter(|&v| self.hops[v] != usize::MAX)
            .collect();
        order.sort_by_key(|&v| (self.hops[v], v));
        order
    }

    /// The eccentricity of the source (max hop distance to any reachable vertex).
    pub fn eccentricity(&self) -> usize {
        self.hops
            .iter()
            .copied()
            .filter(|&h| h != usize::MAX)
            .max()
            .unwrap_or(0)
    }
}

/// Runs BFS from `source`, ignoring edge weights.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs(g: &WeightedGraph, source: NodeId) -> BfsResult {
    bfs_csr(&CsrGraph::from_graph(g), source)
}

/// [`bfs`] over a prebuilt [`CsrGraph`] view; callers sweeping many sources
/// on the same graph (e.g. [`hop_diameter`]) build the CSR once and call this.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_csr(csr: &CsrGraph, source: NodeId) -> BfsResult {
    assert!(source < csr.num_nodes(), "source {source} out of range");
    let n = csr.num_nodes();
    let mut hops = vec![usize::MAX; n];
    let mut parent = vec![None; n];
    let mut queue = VecDeque::new();
    hops[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in csr.targets(u) {
            if hops[v] == usize::MAX {
                hops[v] = hops[u] + 1;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    BfsResult {
        source,
        hops,
        parent,
    }
}

/// Returns `true` if the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &WeightedGraph) -> bool {
    if g.num_nodes() == 0 {
        return true;
    }
    let r = bfs(g, 0);
    r.hops.iter().all(|&h| h != usize::MAX)
}

/// The hop-diameter `D` of the graph: the maximum hop distance between any
/// pair of vertices, ignoring weights.
///
/// Returns `usize::MAX` if the graph is disconnected, and 0 for graphs with at
/// most one vertex.
pub fn hop_diameter(g: &WeightedGraph) -> usize {
    let n = g.num_nodes();
    if n <= 1 {
        return 0;
    }
    let csr = CsrGraph::from_graph(g);
    let mut d = 0;
    for u in g.nodes() {
        let r = bfs_csr(&csr, u);
        for &h in &r.hops {
            if h == usize::MAX {
                return usize::MAX;
            }
            d = d.max(h);
        }
    }
    d
}

/// The hop-diameter computed with the standard double-sweep *lower bound*
/// heuristic (two BFS passes).
///
/// Exact on trees; on general graphs returns a value between `D/2` and `D`.
/// Used by the benchmark harness when the exact all-pairs computation would be
/// too slow, and clearly labelled as an estimate in its output.
pub fn hop_diameter_estimate(g: &WeightedGraph) -> usize {
    let n = g.num_nodes();
    if n <= 1 {
        return 0;
    }
    let csr = CsrGraph::from_graph(g);
    let first = bfs_csr(&csr, 0);
    if first.hops.contains(&usize::MAX) {
        return usize::MAX;
    }
    let far = (0..n).max_by_key(|&v| first.hops[v]).unwrap_or(0);
    bfs_csr(&csr, far).eccentricity()
}

/// The connected components of the graph, each as a sorted vertex list.
pub fn connected_components(g: &WeightedGraph) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    let csr = CsrGraph::from_graph(g);
    for s in 0..n {
        if seen[s] {
            continue;
        }
        let r = bfs_csr(&csr, s);
        let mut comp: Vec<NodeId> = (0..n)
            .filter(|&v| r.hops[v] != usize::MAX && !seen[v])
            .collect();
        for &v in &comp {
            seen[v] = true;
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> WeightedGraph {
        WeightedGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1, 1))).unwrap()
    }

    #[test]
    fn bfs_hop_distances_on_path() {
        let g = path_graph(5);
        let r = bfs(&g, 0);
        assert_eq!(r.hops, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.parent[4], Some(3));
        assert_eq!(r.parent[0], None);
        assert_eq!(r.eccentricity(), 4);
    }

    #[test]
    fn bfs_reachable_is_in_level_order() {
        let g = path_graph(4);
        let r = bfs(&g, 1);
        assert_eq!(r.reachable(), vec![1, 0, 2, 3]);
    }

    #[test]
    fn hop_diameter_of_path_and_star() {
        assert_eq!(hop_diameter(&path_graph(6)), 5);
        let star = WeightedGraph::from_edges(5, (1..5).map(|i| (0, i, 7))).unwrap();
        assert_eq!(hop_diameter(&star), 2);
    }

    #[test]
    fn hop_diameter_ignores_weights() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1_000), (1, 2, 1_000), (0, 2, 1)]).unwrap();
        assert_eq!(hop_diameter(&g), 1);
    }

    #[test]
    fn disconnected_graph_has_infinite_diameter() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(!is_connected(&g));
        assert_eq!(hop_diameter(&g), usize::MAX);
        assert_eq!(hop_diameter_estimate(&g), usize::MAX);
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn double_sweep_exact_on_paths() {
        let g = path_graph(9);
        assert_eq!(hop_diameter_estimate(&g), hop_diameter(&g));
    }

    #[test]
    fn empty_and_singleton_graphs() {
        assert!(is_connected(&WeightedGraph::new(0)));
        assert_eq!(hop_diameter(&WeightedGraph::new(1)), 0);
        assert_eq!(hop_diameter(&WeightedGraph::new(0)), 0);
        assert_eq!(connected_components(&WeightedGraph::new(2)).len(), 2);
    }
}
