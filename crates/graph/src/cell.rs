//! Distance cells for the batched relaxation kernels.
//!
//! The hot multi-source kernels (the Theorem-1 hop-bounded exploration in
//! `en_congest_algos::theorem1` and the threshold-restricted cluster kernel in
//! [`crate::restricted`]) process sources in chunks and keep one contiguous
//! row of per-source values per vertex, relaxed by a branchless min loop the
//! compiler vectorises. The cell width is picked per instance: `i32` when the
//! largest possible finite distance fits below its sentinel (twice the SIMD
//! width and half the memory traffic of `u64`), `u64` otherwise. Both use a
//! "quarter of the type's range" sentinel for +∞ so a saturating add can
//! never wrap.
//!
//! This module is the single home of that machinery so every batched kernel
//! in the workspace shares one implementation.

use crate::types::{Dist, Weight, INFINITY};

/// A distance cell of a batched relaxation kernel.
///
/// Implemented for `i32` (used when the instance's maximum finite distance
/// fits — see [`fits_i32`]) and `u64` (the general fallback, whose domain is
/// the public [`Dist`] domain itself).
pub trait DistCell:
    Copy + Ord + std::ops::BitXor<Output = Self> + std::ops::BitOr<Output = Self>
{
    /// The unreachable sentinel for this cell width.
    const INF: Self;
    /// The zero distance.
    const ZERO: Self;
    /// Converts an edge weight (checked to fit by the caller).
    fn from_weight(w: Weight) -> Self;
    /// Converts a threshold from the public [`Dist`] domain, clamping values
    /// at or above the sentinel to [`DistCell::INF`]. Clamping preserves the
    /// strict admittance test `value < threshold`: every representable finite
    /// value is below the sentinel, and the sentinel itself never passes.
    fn from_threshold(d: Dist) -> Self;
    /// Converts back into the public [`Dist`] domain (`INF` → [`INFINITY`]).
    fn into_dist(self) -> Dist;
    /// `self + w`, saturating at [`DistCell::INF`].
    fn add_capped(self, w: Self) -> Self;
    /// Packed `(value, neighbour)` key for the branchless argmin parent pass.
    type Key: Copy + Ord;
    /// The largest key (no candidate seen yet).
    const KEY_MAX: Self::Key;
    /// Packs a candidate value and the offering neighbour into one key whose
    /// natural order is (value, neighbour id).
    fn pack(self, nb: u32) -> Self::Key;
    /// The value part of a packed key.
    fn key_value(key: Self::Key) -> Self;
    /// The neighbour part of a packed key.
    fn key_neighbor(key: Self::Key) -> u32;
}

/// Returns `true` when every finite distance of an instance with `n` vertices
/// and maximum edge weight `max_weight` fits below the `i32` cell sentinel
/// (a simple path has at most `n - 1` edges), so the narrow kernel is exact.
pub fn fits_i32(n: usize, max_weight: Weight) -> bool {
    (n as u128).saturating_mul(max_weight as u128) < <i32 as DistCell>::INF as u128
}

impl DistCell for u64 {
    const INF: u64 = INFINITY;
    const ZERO: u64 = 0;

    #[inline]
    fn from_weight(w: Weight) -> u64 {
        w
    }

    #[inline]
    fn from_threshold(d: Dist) -> u64 {
        d.min(INFINITY)
    }

    #[inline]
    fn into_dist(self) -> Dist {
        self
    }

    #[inline]
    fn add_capped(self, w: u64) -> u64 {
        self.saturating_add(w).min(INFINITY)
    }

    type Key = u128;
    const KEY_MAX: u128 = u128::MAX;

    #[inline]
    fn pack(self, nb: u32) -> u128 {
        ((self as u128) << 32) | nb as u128
    }

    #[inline]
    fn key_value(key: u128) -> u64 {
        (key >> 32) as u64
    }

    #[inline]
    fn key_neighbor(key: u128) -> u32 {
        key as u32
    }
}

// Signed 32-bit cells rather than unsigned: a signed vector min lowers to
// baseline-SSE2 `pcmpgtd` + blend, while unsigned 32-bit min needs SSE4.1.
// All values stay below i32::MAX / 4, so signedness never matters.
impl DistCell for i32 {
    const INF: i32 = i32::MAX / 4;
    const ZERO: i32 = 0;

    #[inline]
    fn from_weight(w: Weight) -> i32 {
        w as i32
    }

    #[inline]
    fn from_threshold(d: Dist) -> i32 {
        if d >= Self::INF as Dist {
            Self::INF
        } else {
            d as i32
        }
    }

    #[inline]
    fn into_dist(self) -> Dist {
        if self >= Self::INF {
            INFINITY
        } else {
            self as Dist
        }
    }

    #[inline]
    fn add_capped(self, w: i32) -> i32 {
        // Both operands are below i32::MAX / 4, so the plain sum cannot wrap.
        (self + w).min(Self::INF)
    }

    type Key = u64;
    const KEY_MAX: u64 = u64::MAX;

    #[inline]
    fn pack(self, nb: u32) -> u64 {
        ((self as u64) << 32) | nb as u64
    }

    #[inline]
    fn key_value(key: u64) -> i32 {
        (key >> 32) as i32
    }

    #[inline]
    fn key_neighbor(key: u64) -> u32 {
        key as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_cells_round_trip_the_dist_domain() {
        assert_eq!(<u64 as DistCell>::from_weight(7), 7);
        assert_eq!(<u64 as DistCell>::from_threshold(INFINITY + 5), INFINITY);
        assert_eq!(<u64 as DistCell>::INF.into_dist(), INFINITY);
        assert_eq!(<u64 as DistCell>::INF.add_capped(3), INFINITY);
        assert_eq!(5u64.add_capped(4), 9);
    }

    #[test]
    fn i32_cells_clamp_thresholds_and_saturate() {
        assert_eq!(<i32 as DistCell>::from_threshold(INFINITY), i32::MAX / 4);
        assert_eq!(<i32 as DistCell>::from_threshold(10), 10);
        assert_eq!(<i32 as DistCell>::INF.into_dist(), INFINITY);
        assert_eq!(<i32 as DistCell>::INF.add_capped(1), i32::MAX / 4);
        assert_eq!(3i32.add_capped(4), 7);
    }

    #[test]
    fn key_packing_orders_by_value_then_neighbor() {
        let a = 5i32.pack(2);
        let b = 5i32.pack(7);
        let c = 6i32.pack(0);
        assert!(a < b && b < c);
        assert_eq!(<i32 as DistCell>::key_value(b), 5);
        assert_eq!(<i32 as DistCell>::key_neighbor(b), 7);
        let k = 9u64.pack(3);
        assert_eq!(<u64 as DistCell>::key_value(k), 9);
        assert_eq!(<u64 as DistCell>::key_neighbor(k), 3);
    }

    #[test]
    fn fits_check_matches_sentinel() {
        assert!(fits_i32(1000, 100));
        assert!(!fits_i32(usize::MAX, u64::MAX));
        assert!(!fits_i32(2, (i32::MAX / 4) as u64));
    }
}
