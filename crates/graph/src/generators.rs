//! Reproducible workload generators.
//!
//! The paper is evaluated on the abstract CONGEST model, so any reproduction
//! must pick concrete input graphs. The benchmark harness uses the generators
//! here: classic random models (Erdős–Rényi, random geometric, Barabási–
//! Albert), structured topologies (grids, tori, rings, stars, caterpillars),
//! and random trees. All generators take a [`GeneratorConfig`] carrying the
//! vertex count, the weight range (integers in `{1, …, poly(n)}` per the
//! paper's assumption), and a seed, so every experiment is reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::bfs::connected_components;
use crate::graph::WeightedGraph;
use crate::types::{NodeId, Weight};

/// Configuration shared by all generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Number of vertices.
    pub n: usize,
    /// Random seed (all randomness is derived from it).
    pub seed: u64,
    /// Minimum edge weight (inclusive). Must be at least 1.
    pub min_weight: Weight,
    /// Maximum edge weight (inclusive).
    pub max_weight: Weight,
}

impl GeneratorConfig {
    /// A configuration with `n` vertices, the given seed, and weights in `1..=100`.
    pub fn new(n: usize, seed: u64) -> Self {
        GeneratorConfig {
            n,
            seed,
            min_weight: 1,
            max_weight: 100,
        }
    }

    /// Sets the weight range to exactly 1 (an unweighted graph).
    pub fn unweighted(mut self) -> Self {
        self.min_weight = 1;
        self.max_weight = 1;
        self
    }

    /// Sets the inclusive weight range.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    pub fn with_weights(mut self, min: Weight, max: Weight) -> Self {
        assert!(min >= 1, "weights must be positive");
        assert!(min <= max, "min_weight must not exceed max_weight");
        self.min_weight = min;
        self.max_weight = max;
        self
    }

    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    fn weight(&self, rng: &mut StdRng) -> Weight {
        rng.gen_range(self.min_weight..=self.max_weight)
    }
}

/// Erdős–Rényi `G(n, p)`: each pair becomes an edge independently with
/// probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn erdos_renyi(cfg: &GeneratorConfig, p: f64) -> WeightedGraph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1]"
    );
    let mut rng = cfg.rng();
    let mut g = WeightedGraph::new(cfg.n);
    for u in 0..cfg.n {
        for v in (u + 1)..cfg.n {
            if rng.gen_bool(p) {
                let w = cfg.weight(&mut rng);
                g.add_edge(u, v, w).expect("generator produces valid edges");
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` made connected by adding a minimum number of random
/// bridging edges between components.
///
/// The routing constructions all assume a connected network; this generator is
/// the default workload of the benchmark harness.
pub fn erdos_renyi_connected(cfg: &GeneratorConfig, p: f64) -> WeightedGraph {
    let mut g = erdos_renyi(cfg, p);
    connectify(&mut g, cfg);
    g
}

/// Random geometric graph: vertices are uniform points in the unit square, and
/// two vertices are adjacent iff their Euclidean distance is at most `radius`.
/// Edge weights are the rounded scaled distances (scaled by 1000), clamped to
/// the configured weight range — so geometry and weights agree, which makes
/// stretch behaviour realistic for mesh-like networks.
pub fn random_geometric(cfg: &GeneratorConfig, radius: f64) -> WeightedGraph {
    let mut rng = cfg.rng();
    let pts: Vec<(f64, f64)> = (0..cfg.n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut g = WeightedGraph::new(cfg.n);
    for u in 0..cfg.n {
        for v in (u + 1)..cfg.n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= radius {
                let scaled = (d * 1000.0).round() as Weight;
                let w = scaled.clamp(cfg.min_weight.max(1), cfg.max_weight.max(1));
                g.add_edge(u, v, w).expect("generator produces valid edges");
            }
        }
    }
    g
}

/// Connected random geometric graph (bridges added between components).
pub fn random_geometric_connected(cfg: &GeneratorConfig, radius: f64) -> WeightedGraph {
    let mut g = random_geometric(cfg, radius);
    connectify(&mut g, cfg);
    g
}

/// A `rows × cols` grid with random weights. Vertex `(r, c)` has id `r * cols + c`.
///
/// # Panics
///
/// Panics if `rows * cols != cfg.n`.
pub fn grid(cfg: &GeneratorConfig, rows: usize, cols: usize) -> WeightedGraph {
    assert_eq!(rows * cols, cfg.n, "rows * cols must equal n");
    let mut rng = cfg.rng();
    let mut g = WeightedGraph::new(cfg.n);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                let w = cfg.weight(&mut rng);
                g.add_edge(id, id + 1, w).expect("grid edge valid");
            }
            if r + 1 < rows {
                let w = cfg.weight(&mut rng);
                g.add_edge(id, id + cols, w).expect("grid edge valid");
            }
        }
    }
    g
}

/// A torus (grid with wrap-around edges), giving hop-diameter ≈ (rows+cols)/2.
///
/// # Panics
///
/// Panics if `rows * cols != cfg.n` or either side has fewer than 3 vertices.
pub fn torus(cfg: &GeneratorConfig, rows: usize, cols: usize) -> WeightedGraph {
    assert_eq!(rows * cols, cfg.n, "rows * cols must equal n");
    assert!(rows >= 3 && cols >= 3, "torus sides must be at least 3");
    let mut rng = cfg.rng();
    let mut g = WeightedGraph::new(cfg.n);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            let right = r * cols + (c + 1) % cols;
            let down = ((r + 1) % rows) * cols + c;
            if !g.has_edge(id, right) {
                let w = cfg.weight(&mut rng);
                g.add_edge(id, right, w).expect("torus edge valid");
            }
            if !g.has_edge(id, down) {
                let w = cfg.weight(&mut rng);
                g.add_edge(id, down, w).expect("torus edge valid");
            }
        }
    }
    g
}

/// A simple cycle 0–1–…–(n−1)–0 with random weights.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(cfg: &GeneratorConfig) -> WeightedGraph {
    assert!(cfg.n >= 3, "a ring needs at least 3 vertices");
    let mut rng = cfg.rng();
    let mut g = WeightedGraph::new(cfg.n);
    for i in 0..cfg.n {
        let j = (i + 1) % cfg.n;
        let w = cfg.weight(&mut rng);
        g.add_edge(i, j, w).expect("ring edge valid");
    }
    g
}

/// A path 0–1–…–(n−1) with random weights (worst case for hop-diameter).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(cfg: &GeneratorConfig) -> WeightedGraph {
    assert!(cfg.n >= 1, "path needs at least one vertex");
    let mut rng = cfg.rng();
    let mut g = WeightedGraph::new(cfg.n);
    for i in 0..cfg.n.saturating_sub(1) {
        let w = cfg.weight(&mut rng);
        g.add_edge(i, i + 1, w).expect("path edge valid");
    }
    g
}

/// A star with centre 0 (hop-diameter 2 — the best case for `D`-dependent bounds).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(cfg: &GeneratorConfig) -> WeightedGraph {
    assert!(cfg.n >= 1, "star needs at least one vertex");
    let mut rng = cfg.rng();
    let mut g = WeightedGraph::new(cfg.n);
    for v in 1..cfg.n {
        let w = cfg.weight(&mut rng);
        g.add_edge(0, v, w).expect("star edge valid");
    }
    g
}

/// A uniformly random labelled tree (via a random Prüfer-like attachment:
/// vertex `i` attaches to a uniformly random earlier vertex).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(cfg: &GeneratorConfig) -> WeightedGraph {
    assert!(cfg.n >= 1, "tree needs at least one vertex");
    let mut rng = cfg.rng();
    let mut g = WeightedGraph::new(cfg.n);
    for v in 1..cfg.n {
        let p = rng.gen_range(0..v);
        let w = cfg.weight(&mut rng);
        g.add_edge(p, v, w).expect("tree edge valid");
    }
    g
}

/// Barabási–Albert preferential attachment: each new vertex attaches to `m`
/// existing vertices chosen proportionally to degree. Produces the heavy-tail
/// degree distributions typical of internet-like topologies.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(cfg: &GeneratorConfig, m: usize) -> WeightedGraph {
    assert!(m >= 1, "attachment count must be positive");
    assert!(cfg.n > m, "need more vertices than the attachment count");
    let mut rng = cfg.rng();
    let mut g = WeightedGraph::new(cfg.n);
    // Start from a small clique on m+1 vertices.
    for u in 0..=m {
        for v in (u + 1)..=m {
            let w = cfg.weight(&mut rng);
            g.add_edge(u, v, w).expect("seed clique edge valid");
        }
    }
    // Repeated-endpoints list for preferential attachment sampling.
    let mut endpoints: Vec<NodeId> = Vec::new();
    for e in g.edges() {
        endpoints.push(e.u);
        endpoints.push(e.v);
    }
    for v in (m + 1)..cfg.n {
        let mut targets = Vec::new();
        let mut guard = 0;
        while targets.len() < m && guard < 100 * m {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        // Fall back to arbitrary distinct earlier vertices if sampling stalled.
        let mut u = 0;
        while targets.len() < m {
            if u != v && !targets.contains(&u) {
                targets.push(u);
            }
            u += 1;
        }
        for &t in &targets {
            let w = cfg.weight(&mut rng);
            g.add_edge(v, t, w).expect("BA edge valid");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

/// A "caterpillar": a spine path of length `⌈n/2⌉` with the remaining vertices
/// attached as legs. Large shortest-path diameter `S` with moderate `D` once
/// chords are added — used to stress the `Õ(S + n^{1/k})` baseline.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn caterpillar(cfg: &GeneratorConfig) -> WeightedGraph {
    assert!(cfg.n >= 2, "caterpillar needs at least 2 vertices");
    let mut rng = cfg.rng();
    let spine = cfg.n.div_ceil(2);
    let mut g = WeightedGraph::new(cfg.n);
    for i in 0..spine - 1 {
        let w = cfg.weight(&mut rng);
        g.add_edge(i, i + 1, w).expect("spine edge valid");
    }
    for v in spine..cfg.n {
        let attach = rng.gen_range(0..spine);
        let w = cfg.weight(&mut rng);
        g.add_edge(attach, v, w).expect("leg edge valid");
    }
    g
}

/// The complete graph `K_n` with random weights.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(cfg: &GeneratorConfig) -> WeightedGraph {
    assert!(cfg.n >= 1, "complete graph needs at least one vertex");
    let mut rng = cfg.rng();
    let mut g = WeightedGraph::new(cfg.n);
    for u in 0..cfg.n {
        for v in (u + 1)..cfg.n {
            let w = cfg.weight(&mut rng);
            g.add_edge(u, v, w).expect("complete edge valid");
        }
    }
    g
}

/// A two-tier "ISP-like" topology: a small densely connected core (clique plus
/// random chords) and access trees hanging off core vertices. This is the
/// motivating scenario of compact routing — many access nodes, few core nodes,
/// and shortest paths funnelling through the core.
///
/// `core_fraction` is the fraction of vertices placed in the core (clamped to
/// at least 2 vertices).
///
/// # Panics
///
/// Panics if `n < 4` or `core_fraction` not in `(0, 1]`.
pub fn two_tier_isp(cfg: &GeneratorConfig, core_fraction: f64) -> WeightedGraph {
    assert!(cfg.n >= 4, "two-tier topology needs at least 4 vertices");
    assert!(
        core_fraction > 0.0 && core_fraction <= 1.0,
        "core_fraction must be in (0, 1]"
    );
    let mut rng = cfg.rng();
    let core = ((cfg.n as f64 * core_fraction).round() as usize).clamp(2, cfg.n);
    let mut g = WeightedGraph::new(cfg.n);
    // Core: ring + random chords (models redundant backbone links).
    for i in 0..core {
        let j = (i + 1) % core;
        if i != j && !g.has_edge(i, j) {
            let w = cfg.weight(&mut rng);
            g.add_edge(i, j, w).expect("core ring edge valid");
        }
    }
    let chords = core.saturating_mul(2);
    for _ in 0..chords {
        let u = rng.gen_range(0..core);
        let v = rng.gen_range(0..core);
        if u != v && !g.has_edge(u, v) {
            let w = cfg.weight(&mut rng);
            g.add_edge(u, v, w).expect("core chord valid");
        }
    }
    // Access tier: each non-core vertex attaches to a random earlier vertex,
    // biased towards the core, forming access trees.
    for v in core..cfg.n {
        let attach = if rng.gen_bool(0.5) {
            rng.gen_range(0..core)
        } else {
            rng.gen_range(0..v)
        };
        let w = cfg.weight(&mut rng);
        g.add_edge(attach, v, w).expect("access edge valid");
    }
    g
}

/// Adds a minimum number of random bridging edges so the graph becomes connected.
fn connectify(g: &mut WeightedGraph, cfg: &GeneratorConfig) {
    if g.num_nodes() == 0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x9E3779B97F4A7C15));
    loop {
        let comps = connected_components(g);
        if comps.len() <= 1 {
            break;
        }
        let mut reps: Vec<NodeId> = comps
            .iter()
            .map(|c| *c.choose(&mut rng).expect("components are non-empty"))
            .collect();
        reps.shuffle(&mut rng);
        for pair in reps.windows(2) {
            if !g.has_edge(pair[0], pair[1]) {
                let w = rng.gen_range(cfg.min_weight..=cfg.max_weight);
                g.add_edge(pair[0], pair[1], w).expect("bridge edge valid");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::is_connected;

    fn cfg(n: usize) -> GeneratorConfig {
        GeneratorConfig::new(n, 42)
    }

    #[test]
    fn generators_are_deterministic_for_fixed_seed() {
        let a = erdos_renyi_connected(&cfg(50), 0.1);
        let b = erdos_renyi_connected(&cfg(50), 0.1);
        assert_eq!(a, b);
        let c = erdos_renyi_connected(&GeneratorConfig::new(50, 43), 0.1);
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_connected_is_connected() {
        for seed in 0..5 {
            let g = erdos_renyi_connected(&GeneratorConfig::new(60, seed), 0.02);
            assert!(is_connected(&g), "seed {seed} produced disconnected graph");
        }
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        let g0 = erdos_renyi(&cfg(10), 0.0);
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi(&cfg(10), 1.0);
        assert_eq!(g1.num_edges(), 45);
    }

    #[test]
    fn random_geometric_connected_is_connected() {
        let g = random_geometric_connected(&cfg(40), 0.2);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_and_torus_shapes() {
        let g = grid(&GeneratorConfig::new(12, 1), 3, 4);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // (cols-1)*rows + (rows-1)*cols
        assert!(is_connected(&g));
        let t = torus(&GeneratorConfig::new(16, 1), 4, 4);
        assert_eq!(t.num_edges(), 2 * 16);
        assert!(is_connected(&t));
        assert!(t.nodes().all(|v| t.degree(v) == 4));
    }

    #[test]
    fn ring_path_star_shapes() {
        let r = ring(&cfg(7));
        assert_eq!(r.num_edges(), 7);
        assert!(r.nodes().all(|v| r.degree(v) == 2));
        let p = path(&cfg(7));
        assert_eq!(p.num_edges(), 6);
        let s = star(&cfg(7));
        assert_eq!(s.degree(0), 6);
        assert!(is_connected(&s));
    }

    #[test]
    fn random_tree_has_n_minus_one_edges_and_is_connected() {
        let t = random_tree(&cfg(30));
        assert_eq!(t.num_edges(), 29);
        assert!(is_connected(&t));
    }

    #[test]
    fn barabasi_albert_connected_with_expected_edge_count() {
        let m = 3;
        let g = barabasi_albert(&cfg(40), m);
        assert!(is_connected(&g));
        // seed clique has C(m+1, 2) edges, each later vertex adds exactly m.
        let expected = (m + 1) * m / 2 + (40 - (m + 1)) * m;
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn caterpillar_and_complete_and_isp_are_connected() {
        assert!(is_connected(&caterpillar(&cfg(21))));
        let k = complete(&cfg(8));
        assert_eq!(k.num_edges(), 28);
        let isp = two_tier_isp(&cfg(50), 0.2);
        assert!(is_connected(&isp));
    }

    #[test]
    fn weight_range_is_respected() {
        let c = GeneratorConfig::new(25, 5).with_weights(10, 20);
        let g = erdos_renyi_connected(&c, 0.2);
        assert!(g.edges().all(|e| (10..=20).contains(&e.weight)));
        let u = GeneratorConfig::new(25, 5).unweighted();
        let g = erdos_renyi_connected(&u, 0.2);
        assert!(g.edges().all(|e| e.weight == 1));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn erdos_renyi_rejects_bad_probability() {
        let _ = erdos_renyi(&cfg(5), 1.5);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn config_rejects_zero_min_weight() {
        let _ = GeneratorConfig::new(5, 0).with_weights(0, 3);
    }
}
