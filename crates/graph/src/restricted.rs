//! Batched threshold-restricted multi-source shortest paths — the kernel
//! behind Thorup–Zwick cluster growing.
//!
//! The exact cluster of a centre `u` at level `i` is
//! `C(u) = { v : d_G(u, v) < d_G(v, A_{i+1}) }` (definition (6) of the paper),
//! grown as a restricted Dijkstra that only admits (and only relaxes through)
//! vertices `v` with `d(u, v) < threshold[v]`, where
//! `threshold[v] = d_G(v, A_{i+1})` is *shared by every centre of the level*.
//! Because every vertex on a shortest path from the centre to a cluster
//! member is itself a member (the containment argument of Section 3.2), the
//! restriction still yields exact distances for every member — and it makes
//! the per-centre searches embarrassingly batchable: one relaxation sweep can
//! serve many centres at once, exactly like the Theorem-1 multi-source kernel
//! in `en_congest_algos`.
//!
//! # Implementation
//!
//! Sources are locality-ordered (grouped by their Voronoi cell around the
//! zero-threshold set, which for genuine TZ thresholds is exactly `A_{i+1}`,
//! so chunk-mates' clusters overlap) and processed in chunks — 32 wide for
//! restricted growth, 64 for spanning growth — over a local packed adjacency
//! (`u32` targets, cell-width weights). Within a chunk the state is
//! *vertex-major* (one contiguous row of per-source values per vertex) and
//! every sweep walks the adjacency once for the **union frontier** — the
//! vertices whose value changed for *any* chunk source in the previous
//! sweep, pruned of vertices with no admitted cell. The membership
//! restriction is applied branchlessly when a relay row is refreshed: a cell
//! relays its value only while it is *admitted* (`value <
//! threshold[vertex]`, strict per definition (6)); the sources themselves
//! relay their zero exactly once, as an explicit seeding sweep, so a source
//! is exempt from its own threshold. The relaxation cell is `i32` when every
//! finite distance fits (`u64` otherwise) via the shared [`DistCell`]
//! machinery. Run to convergence (`max_sweeps = None`) the sweeps relax
//! Gauss–Seidel style — values improved earlier in a sweep propagate within
//! it — and compute exactly the restricted-Dijkstra fixed point; with
//! `max_sweeps = Some(β)` they relax Jacobi style from a start-of-sweep
//! snapshot and compute the levelled `β`-sweep values of the depth-bounded
//! Bellman–Ford explorations of Section 3.3.2 (the seeding counts as sweep
//! 1, matching a frontier initialised to the source alone).
//!
//! Parents — and the *relaxed edge weights* leading to them, so cluster trees
//! can be assembled without any `edge_weight` lookups — are recovered after
//! the sweeps in one branchless argmin pass over the adjacency, restricted to
//! admitted neighbours: for every member `v` of source `s` the neighbour `p`
//! minimising `d_ps + w(v, p)` is itself a member and satisfies
//! `d_ps + w(v, p) ≤ d_vs` with equality at convergence, so parent pointers
//! always form a tree rooted at the source with strictly decreasing
//! distances. The per-centre restricted Dijkstra
//! (`grow_exact_cluster_csr` in `en_routing::exact`) is the retained oracle
//! the property tests validate this kernel against, member set for member
//! set and distance for distance.
//!
//! # Parallelism
//!
//! A source's output column depends only on the graph and the shared
//! threshold vector — chunk-mates share sweeps, never values — so the
//! `_opts` entry points shard the locality-ordered source sequence into
//! chunk-aligned contiguous spans ([`shard_spans`]) and sweep each span on
//! its own scoped worker thread. Chunk composition and all per-source
//! outputs are exactly those of the sequential sweep, so the parallel run
//! is bit-identical for every thread count; per-thread work accounting is
//! returned as [`BuildStats`].

use crate::cell::{fits_i32, DistCell};
use crate::csr::CsrGraph;
use crate::parallel::{shard_spans, BuildOptions, BuildStats};
use crate::types::{Dist, NodeId, Weight, INFINITY};

/// `parent` sentinel meaning "no parent recorded".
const NO_PARENT: u32 = u32::MAX;

/// The output of [`restricted_multi_source_csr`]: distances, membership and
/// tree parents (with relaxed edge weights) for every source, stored
/// compactly per source: restricted growth reaches a small neighbourhood,
/// so the output holds the *reached* cells (and member records) instead of
/// `|sources| × n` flat rows — a full distance row can be materialised on
/// demand with [`RestrictedMultiSource::dist_row`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestrictedMultiSource {
    sources: Vec<NodeId>,
    threshold: Vec<Dist>,
    n: usize,
    /// `(v, dist)` of every vertex reached by source `s`, ascending `v`. Raw
    /// values are kept even for non-members (a vertex can be reached at a
    /// distance at or above its threshold without joining).
    reached: Vec<Vec<(u32, Dist)>>,
    /// One record per non-source member of `s`, ascending `v`.
    member_rows: Vec<Vec<MemberCell>>,
    /// Per-source member lists (ascending vertex id, source included).
    members: Vec<Vec<NodeId>>,
}

/// One member of a restricted cluster: its vertex, exact restricted distance
/// from the source, and the relaxed tree arc attaching it (everything the
/// cluster-tree assembly needs, with no adjacency or row lookups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberCell {
    /// The member vertex.
    pub v: u32,
    /// Its tree parent (`NO_PARENT` in the degenerate case where no
    /// admitted neighbour realised the distance; never the case at
    /// convergence).
    pub parent: u32,
    /// The restricted distance from the source.
    pub dist: Dist,
    /// The weight of the relaxed arc `(parent, v)`.
    pub weight: Weight,
}

impl MemberCell {
    /// The tree arc attaching this member: `(parent, weight)`, or `None` in
    /// the degenerate no-admitted-parent case (never at convergence).
    pub fn tree_arc(&self) -> Option<(NodeId, Weight)> {
        if self.parent == NO_PARENT {
            None
        } else {
            Some((self.parent as NodeId, self.weight))
        }
    }
}

impl RestrictedMultiSource {
    /// The source set, in row order.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Number of vertices `n` (the stride of each row).
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The shared membership-threshold vector the kernel ran with.
    pub fn threshold(&self) -> &[Dist] {
        &self.threshold
    }

    /// Materialises the distance row of source index `s`: `dist_row(s)[v]`
    /// is the restricted distance from `sources[s]` to `v`, [`INFINITY`]
    /// where unreached.
    ///
    /// # Panics
    ///
    /// Panics if `s >= sources().len()`.
    pub fn dist_row(&self, s: usize) -> Vec<Dist> {
        let mut row = vec![INFINITY; self.n];
        for &(v, d) in &self.reached[s] {
            row[v as usize] = d;
        }
        row
    }

    /// The restricted distance from `sources[s]` to `v` ([`INFINITY`] when
    /// unreached), by binary search of the compact reached list.
    pub fn dist(&self, s: usize, v: NodeId) -> Dist {
        match self.reached[s].binary_search_by_key(&(v as u32), |&(x, _)| x) {
            Ok(i) => self.reached[s][i].1,
            Err(_) => INFINITY,
        }
    }

    /// Whether `v` is a member of source `s`'s cluster: the source itself, or
    /// any vertex with `dist < threshold[v]` (strict, per definition (6)).
    pub fn is_member(&self, s: usize, v: NodeId) -> bool {
        v == self.sources[s] || self.dist(s, v) < self.threshold[v]
    }

    /// The compact member records of source `s` (every member except the
    /// source itself, ascending vertex id) — the shape cluster-tree assembly
    /// consumes directly.
    pub fn member_cells(&self, s: usize) -> &[MemberCell] {
        &self.member_rows[s]
    }

    /// The members of source `s`'s cluster, in increasing id order (collected
    /// by the kernel; no row scan).
    pub fn members(&self, s: usize) -> &[NodeId] {
        &self.members[s]
    }

    /// Iterator over the members of source `s`'s cluster, in increasing id
    /// order.
    pub fn members_of(&self, s: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.members[s].iter().copied()
    }

    /// The tree parent of member `v` towards source `s`, together with the
    /// relaxed weight of the connecting arc; `None` for the source itself and
    /// for non-members.
    pub fn parent_of(&self, s: usize, v: NodeId) -> Option<(NodeId, Weight)> {
        let row = &self.member_rows[s];
        match row.binary_search_by_key(&(v as u32), |c| c.v) {
            Ok(i) if row[i].parent != NO_PARENT => Some((row[i].parent as NodeId, row[i].weight)),
            _ => None,
        }
    }
}

/// Runs the batched threshold-restricted multi-source exploration on `csr`.
///
/// Every source grows its restricted shortest-path region against the shared
/// `threshold` vector: vertex `v` is admitted (joins, and relays onward)
/// exactly while `dist < threshold[v]`, strict, with the source itself always
/// admitted. `max_sweeps = None` runs each source to convergence (the
/// restricted-Dijkstra fixed point, exact distances); `max_sweeps = Some(β)`
/// stops after `β` levelled sweeps (the depth-bounded Bellman–Ford semantics
/// of Section 3.3.2, the seeding sweep included).
///
/// # Panics
///
/// Panics if a source is out of range or `threshold.len() != csr.num_nodes()`.
pub fn restricted_multi_source_csr(
    csr: &CsrGraph,
    sources: &[NodeId],
    threshold: &[Dist],
    max_sweeps: Option<usize>,
) -> RestrictedMultiSource {
    restricted_multi_source_csr_opts(
        csr,
        sources,
        threshold,
        max_sweeps,
        &BuildOptions::sequential(),
    )
    .0
}

/// [`restricted_multi_source_csr`] with a thread-count knob: the
/// locality-ordered sources are swept in chunk-aligned spans on up to
/// `opts.threads` scoped worker threads, bit-identically to the sequential
/// run (see the module docs). Also returns the per-thread work accounting.
///
/// # Panics
///
/// Panics if a source is out of range or `threshold.len() != csr.num_nodes()`.
pub fn restricted_multi_source_csr_opts(
    csr: &CsrGraph,
    sources: &[NodeId],
    threshold: &[Dist],
    max_sweeps: Option<usize>,
    opts: &BuildOptions,
) -> (RestrictedMultiSource, BuildStats) {
    validate_inputs(csr, sources, threshold);
    let order = locality_order(csr, sources, threshold);
    restricted_multi_source_ordered(csr, sources, threshold, max_sweeps, order, opts)
}

/// [`restricted_multi_source_csr`] with a caller-supplied locality grouping:
/// `groups[i]` is a `(group key, distance within the group)` pair for
/// `sources[i]`, and sources are chunked in `(group, distance, id)` order.
///
/// Thorup–Zwick callers already hold the ideal grouping — the pivot table
/// gives every centre its nearest `A_{i+1}` vertex (its Voronoi cell, inside
/// which its whole cluster lives) and the threshold its distance — so
/// passing it here spares the kernel the multi-source Dijkstra it would
/// otherwise run to reconstruct exactly that information.
///
/// # Panics
///
/// Panics if a source is out of range, `threshold.len() != csr.num_nodes()`,
/// or `groups.len() != sources.len()`.
pub fn restricted_multi_source_csr_grouped(
    csr: &CsrGraph,
    sources: &[NodeId],
    threshold: &[Dist],
    max_sweeps: Option<usize>,
    groups: &[(NodeId, Dist)],
) -> RestrictedMultiSource {
    restricted_multi_source_csr_grouped_opts(
        csr,
        sources,
        threshold,
        max_sweeps,
        groups,
        &BuildOptions::sequential(),
    )
    .0
}

/// [`restricted_multi_source_csr_grouped`] with a thread-count knob; see
/// [`restricted_multi_source_csr_opts`].
///
/// # Panics
///
/// Panics if a source is out of range, `threshold.len() != csr.num_nodes()`,
/// or `groups.len() != sources.len()`.
pub fn restricted_multi_source_csr_grouped_opts(
    csr: &CsrGraph,
    sources: &[NodeId],
    threshold: &[Dist],
    max_sweeps: Option<usize>,
    groups: &[(NodeId, Dist)],
    opts: &BuildOptions,
) -> (RestrictedMultiSource, BuildStats) {
    validate_inputs(csr, sources, threshold);
    assert_eq!(
        groups.len(),
        sources.len(),
        "one group entry per source required"
    );
    let mut order: Vec<usize> = (0..sources.len()).collect();
    order.sort_by_key(|&i| (groups[i], sources[i]));
    restricted_multi_source_ordered(csr, sources, threshold, max_sweeps, order, opts)
}

/// The input contract shared by both entry points, checked before any work.
fn validate_inputs(csr: &CsrGraph, sources: &[NodeId], threshold: &[Dist]) {
    let n = csr.num_nodes();
    assert_eq!(
        threshold.len(),
        n,
        "threshold vector must have one entry per vertex"
    );
    assert!(n < u32::MAX as usize, "vertex ids must fit in u32");
    for &s in sources {
        assert!(s < n, "source {s} out of range");
    }
}

/// Shared body of the two entry points: runs the kernel over `sources`
/// permuted into `order`, mapping output rows back to caller order.
fn restricted_multi_source_ordered(
    csr: &CsrGraph,
    sources: &[NodeId],
    threshold: &[Dist],
    max_sweeps: Option<usize>,
    order: Vec<usize>,
    opts: &BuildOptions,
) -> (RestrictedMultiSource, BuildStats) {
    let _span = en_obs::span("restricted_kernel");
    en_obs::counter_add("kernel.restricted.sources", sources.len() as u64);
    let n = csr.num_nodes();
    let budget = max_sweeps.unwrap_or(usize::MAX);
    let mut out = Outputs {
        reached: vec![Vec::new(); sources.len()],
        member_rows: vec![Vec::new(); sources.len()],
        members: vec![Vec::new(); sources.len()],
    };
    // Sources are processed in locality order — chunk-mates' restricted
    // regions overlap, so the batched rows carry many live cells instead of
    // one or two. Output rows stay in caller order via the position map, and
    // the results themselves are order-independent.
    let permuted: Vec<NodeId> = order.iter().map(|&i| sources[i]).collect();
    // Mostly-finite thresholds mean restricted (small, mostly disjoint)
    // growth, where narrow rows keep the branchless sweeps from grinding
    // dead cells; mostly-infinite thresholds mean spanning growth, where the
    // full 64-cell rows amortise best.
    let finite_thresholds = threshold.iter().filter(|&&t| t < INFINITY).count();
    let chunk_cap = if 2 * finite_thresholds > n { 32 } else { 64 };
    let stats = if fits_i32(n, csr.max_weight()) {
        run_sharded::<i32>(
            csr,
            &permuted,
            &order,
            threshold,
            budget,
            chunk_cap,
            opts.threads,
            &mut out,
        )
    } else {
        run_sharded::<u64>(
            csr,
            &permuted,
            &order,
            threshold,
            budget,
            chunk_cap,
            opts.threads,
            &mut out,
        )
    };
    let Outputs {
        reached,
        member_rows,
        members,
    } = out;
    let res = RestrictedMultiSource {
        sources: sources.to_vec(),
        // Clamp to the saturation point of the Dist domain so the membership
        // test agrees with the kernel's cell-domain mask even for degenerate
        // above-INFINITY inputs (an unreached vertex is never a member).
        threshold: threshold.iter().map(|&t| t.min(INFINITY)).collect(),
        n,
        reached,
        member_rows,
        members,
    };
    (res, stats)
}

/// Shards the permuted source sequence into chunk-aligned spans and sweeps
/// each span on its own scoped worker (sequentially in place for a single
/// span). Workers fill span-local outputs with span-local row maps; the
/// coordinator scatters them back to caller-order rows through `order`, so
/// the result is bit-identical to the one sequential sweep — the chunks each
/// worker processes are exactly the sequential chunks ([`shard_spans`]).
#[allow(clippy::too_many_arguments)]
fn run_sharded<T: DistCell>(
    csr: &CsrGraph,
    permuted: &[NodeId],
    order: &[usize],
    threshold: &[Dist],
    budget: usize,
    chunk_cap: usize,
    threads: usize,
    out: &mut Outputs,
) -> BuildStats {
    let spans = shard_spans(permuted.len(), threads, chunk_cap);
    if spans.len() <= 1 {
        restricted_chunks::<T>(csr, permuted, order, threshold, budget, chunk_cap, out);
        let members = out.members.iter().map(Vec::len).sum();
        return BuildStats::single(permuted.len(), members);
    }
    let shards: Vec<Outputs> = std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .iter()
            .map(|span| {
                let span = span.clone();
                scope.spawn(move || {
                    let len = span.len();
                    let rows: Vec<usize> = (0..len).collect();
                    let mut local = Outputs {
                        reached: vec![Vec::new(); len],
                        member_rows: vec![Vec::new(); len],
                        members: vec![Vec::new(); len],
                    };
                    restricted_chunks::<T>(
                        csr,
                        &permuted[span],
                        &rows,
                        threshold,
                        budget,
                        chunk_cap,
                        &mut local,
                    );
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("restricted kernel worker panicked"))
            .collect()
    });
    let mut stats = BuildStats::default();
    for (span, local) in spans.iter().zip(shards) {
        stats.record(span.len(), local.members.iter().map(Vec::len).sum());
        let Outputs {
            reached,
            member_rows,
            members,
        } = local;
        for (j, ((r, mr), m)) in reached
            .into_iter()
            .zip(member_rows)
            .zip(members)
            .enumerate()
        {
            let si = order[span.start + j];
            out.reached[si] = r;
            out.member_rows[si] = mr;
            out.members[si] = m;
        }
    }
    stats
}

/// The compact per-source output the kernel fills, bundled to keep call
/// sites tidy.
struct Outputs {
    reached: Vec<Vec<(u32, Dist)>>,
    member_rows: Vec<Vec<MemberCell>>,
    members: Vec<Vec<NodeId>>,
}

/// Positions of `sources` ordered so that sources with overlapping
/// restricted regions land in the same chunk, derived from the graph alone
/// (callers that already know the grouping use
/// [`restricted_multi_source_csr_grouped`] instead and skip this work).
///
/// With zero-threshold vertices present (for genuine TZ thresholds these are
/// exactly `A_{i+1}`), sources sort by `(nearest zero vertex, distance to
/// it)` — the Voronoi grouping under which same-cell clusters coincide
/// almost entirely. Otherwise sources sort by BFS discovery order, a weaker
/// but generic locality proxy.
fn locality_order(csr: &CsrGraph, sources: &[NodeId], threshold: &[Dist]) -> Vec<usize> {
    let n = csr.num_nodes();
    let boundary: Vec<NodeId> = (0..n).filter(|&v| threshold[v] == 0).collect();
    let mut order: Vec<usize> = (0..sources.len()).collect();
    if !boundary.is_empty() {
        let (dist, nearest) = crate::dijkstra::multi_source_dijkstra_csr(csr, &boundary);
        order.sort_by_key(|&i| {
            let s = sources[i];
            (nearest[s].unwrap_or(usize::MAX), dist[s], s)
        });
        return order;
    }
    let mut rank = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if rank[start] != u32::MAX {
            continue;
        }
        rank[start] = next;
        next += 1;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in csr.targets(u) {
                if rank[v] == u32::MAX {
                    rank[v] = next;
                    next += 1;
                    queue.push_back(v);
                }
            }
        }
    }
    order.sort_by_key(|&i| rank[sources[i]]);
    order
}

/// The batched vertex-major kernel: processes the (locality-ordered)
/// `sources` in chunks of `chunk_cap`, appending restricted distances,
/// member parents and relaxed parent weights to the compact per-source
/// outputs — `rows[p]` maps processing position `p` back to the caller's
/// row index.
///
/// Restricted growth is *sparse* — a level-0 cluster touches a small
/// neighbourhood, not the whole graph — so unlike the Theorem-1 kernel every
/// per-vertex cost here is proportional to what the chunk actually touched:
/// the state buffers are allocated once and reset via a touched-vertex list,
/// worklists are maintained as push-on-first-change lists rather than dense
/// `O(n)` scans, vertices with no admitted cell are pruned from the frontier
/// (they have nothing to relay — this drops the non-member boundary, which
/// for small clusters outnumbers the members), and the chunk width narrows
/// for restricted growth (mostly finite thresholds) where only a few of a
/// row's cells are ever live. The parent pass walks the adjacency once per
/// *member cell* (falling back to the vectorised whole-row argmin when most
/// of a row's cells are members, as in spanning clusters), and the flush
/// streams the chunk state over the sorted touched list into append-only
/// per-source lists, so nothing ever scatters across an `|sources| × n`
/// array.
#[allow(clippy::too_many_arguments)]
fn restricted_chunks<T: DistCell>(
    csr: &CsrGraph,
    sources: &[NodeId],
    rows: &[usize],
    threshold: &[Dist],
    sweep_budget: usize,
    chunk_cap: usize,
    out: &mut Outputs,
) {
    let n = csr.num_nodes();
    // Local packed adjacency: u32 targets and cell-width weights halve the
    // per-sweep memory traffic relative to the usize/u64 CSR arrays.
    let mut offsets = Vec::with_capacity(n + 1);
    let mut targets: Vec<u32> = Vec::with_capacity(2 * csr.num_edges());
    let mut weights: Vec<T> = Vec::with_capacity(2 * csr.num_edges());
    offsets.push(0usize);
    for v in 0..n {
        let (ts, ws) = csr.arcs(v);
        targets.extend(ts.iter().map(|&t| t as u32));
        weights.extend(ws.iter().map(|&w| T::from_weight(w)));
        offsets.push(targets.len());
    }
    let thr: Vec<T> = threshold.iter().map(|&t| T::from_threshold(t)).collect();
    // Vertex-major state, allocated once: `cur[v * chunk_cap + j]` is the current
    // best value of vertex `v` for chunk source `j`; `prev` holds the
    // *admitted* start-of-sweep values (the membership mask is applied when a
    // frontier row is refreshed), and doubles as the masked-relay buffer of
    // the parent pass; `keys` stages the packed argmin parents until the
    // flush. Only rows on the touched list are ever dirty, and they are
    // re-initialised when a chunk finishes; a ragged final chunk simply
    // leaves its trailing cells at INF, which relax as no-ops.
    let mut cur = vec![T::INF; n * chunk_cap];
    let mut prev = vec![T::INF; n * chunk_cap];
    let mut keys: Vec<T::Key> = vec![T::KEY_MAX; n * chunk_cap];
    let mut frontier: Vec<u32> = Vec::new();
    let mut changed: Vec<u32> = Vec::new();
    let mut changed_flag = vec![0u8; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut touched_flag = vec![0u8; n];
    for (chunk_index, chunk) in sources.chunks(chunk_cap).enumerate() {
        let sc = chunk.len();
        for (j, &src) in chunk.iter().enumerate() {
            cur[src * chunk_cap + j] = T::ZERO;
            if touched_flag[src] == 0 {
                touched_flag[src] = 1;
                touched.push(src as u32);
            }
        }
        // Seeding sweep: every source relays its zero once, unconditionally —
        // this is where the source's exemption from its own threshold lives,
        // so the per-sweep mask below can stay branchless.
        if sweep_budget > 0 {
            for (j, &src) in chunk.iter().enumerate() {
                let lo = offsets[src];
                let hi = offsets[src + 1];
                for (&v, &w) in targets[lo..hi].iter().zip(&weights[lo..hi]) {
                    let cell = &mut cur[v as usize * chunk_cap + j];
                    if w < *cell {
                        *cell = w;
                        let v = v as usize;
                        if changed_flag[v] == 0 {
                            changed_flag[v] = 1;
                            changed.push(v as u32);
                        }
                        if touched_flag[v] == 0 {
                            touched_flag[v] = 1;
                            touched.push(v as u32);
                        }
                    }
                }
            }
        }
        let gauss_seidel = sweep_budget == usize::MAX;
        let mut remaining = sweep_budget.saturating_sub(1);
        loop {
            // Rebuild the union frontier from the changed list, pruning
            // vertices with no admitted cell: they have nothing to relay, and
            // they re-enter the changed list if a later sweep improves them.
            frontier.clear();
            for &v in &changed {
                changed_flag[v as usize] = 0;
                let vrow = v as usize * chunk_cap;
                let t = thr[v as usize];
                if cur[vrow..vrow + chunk_cap].iter().any(|&c| c < t) {
                    frontier.push(v);
                }
            }
            changed.clear();
            if remaining == 0 || frontier.is_empty() {
                break;
            }
            remaining -= 1;
            // Refresh the relay rows of the vertices that will spread values
            // this sweep, masking out non-admitted cells: a value relays only
            // while it is strictly below the vertex's threshold. Under a
            // sweep budget the refresh happens for the whole frontier up
            // front, giving the levelled (Jacobi) semantics of depth-bounded
            // Bellman–Ford; at convergence the refresh happens per relaying
            // vertex instead (Gauss–Seidel), so values improved earlier in
            // the same sweep propagate immediately — same fixed point, fewer
            // sweeps.
            if !gauss_seidel {
                for &u in &frontier {
                    let urow = u as usize * chunk_cap;
                    let t = thr[u as usize];
                    for (pd, &cd) in prev[urow..urow + chunk_cap]
                        .iter_mut()
                        .zip(&cur[urow..urow + chunk_cap])
                    {
                        *pd = if cd < t { cd } else { T::INF };
                    }
                }
            }
            for &u in &frontier {
                let urow = u as usize * chunk_cap;
                if gauss_seidel {
                    let t = thr[u as usize];
                    for (pd, &cd) in prev[urow..urow + chunk_cap]
                        .iter_mut()
                        .zip(&cur[urow..urow + chunk_cap])
                    {
                        *pd = if cd < t { cd } else { T::INF };
                    }
                }
                let lo = offsets[u as usize];
                let hi = offsets[u as usize + 1];
                for (&v, &w) in targets[lo..hi].iter().zip(&weights[lo..hi]) {
                    let vrow = v as usize * chunk_cap;
                    // Fixed-width branchless min over all chunk sources; the
                    // masked INF cells saturate and never win, and the XOR
                    // accumulator detects any change without a branch.
                    let urows = &prev[urow..urow + chunk_cap];
                    let vrows = &mut cur[vrow..vrow + chunk_cap];
                    let mut delta = T::ZERO;
                    for (vd, &ud) in vrows.iter_mut().zip(urows) {
                        let cand = ud.add_capped(w);
                        let old = *vd;
                        let new = if cand < old { cand } else { old };
                        delta = delta | (old ^ new);
                        *vd = new;
                    }
                    if delta != T::ZERO {
                        let v = v as usize;
                        if changed_flag[v] == 0 {
                            changed_flag[v] = 1;
                            changed.push(v as u32);
                        }
                        if touched_flag[v] == 0 {
                            touched_flag[v] = 1;
                            touched.push(v as u32);
                        }
                    }
                }
            }
        }
        // Sort the touched list so the flush below writes each output row in
        // ascending vertex order (sequential streaming) and the member lists
        // come out sorted.
        touched.sort_unstable();
        // Masked relay values for the parent pass: reuse `prev` to hold, for
        // every touched vertex, the value it is allowed to offer — its
        // current value if admitted, INF otherwise, and ZERO for each
        // source's own cell. Untouched rows are INF already.
        for &v in &touched {
            let vrow = v as usize * chunk_cap;
            let t = thr[v as usize];
            for (pd, &cd) in prev[vrow..vrow + chunk_cap]
                .iter_mut()
                .zip(&cur[vrow..vrow + chunk_cap])
            {
                *pd = if cd < t { cd } else { T::INF };
            }
        }
        for (j, &src) in chunk.iter().enumerate() {
            prev[src * chunk_cap + j] = T::ZERO;
        }
        // Parent pass over the touched vertices, staged into `keys`: for
        // every member cell `(v, j)`, the admitted neighbour `p` minimising
        // `relay(p) + w(v, p)` (ties to the smallest id). At convergence the
        // minimum equals `dist[v]` exactly; under a sweep budget it may still
        // undercut it, so the flush accepts with `≤`. Rows that are mostly
        // members (dense spanning clusters) use the vectorised whole-row
        // argmin; sparse rows walk the adjacency once per member cell,
        // keeping the cost proportional to the actual member count.
        for &v in &touched {
            let v = v as usize;
            let vrow = v * chunk_cap;
            let t = thr[v];
            let lo = offsets[v];
            let hi = offsets[v + 1];
            let members_in_row = cur[vrow..vrow + chunk_cap]
                .iter()
                .filter(|&&d| d < t)
                .count();
            if members_in_row == 0 {
                continue;
            }
            if members_in_row * 8 >= chunk_cap {
                // Dense row: one branchless argmin sweep over the adjacency
                // serves every cell.
                keys[vrow..vrow + chunk_cap].fill(T::KEY_MAX);
                for (&p, &w) in targets[lo..hi].iter().zip(&weights[lo..hi]) {
                    let prow = p as usize * chunk_cap;
                    for (key, &pd) in keys[vrow..vrow + chunk_cap]
                        .iter_mut()
                        .zip(&prev[prow..prow + chunk_cap])
                    {
                        let cand = pd.add_capped(w).pack(p);
                        *key = (*key).min(cand);
                    }
                }
            } else {
                // Sparse row: walk the adjacency once per member cell.
                for j in 0..sc {
                    if cur[vrow + j] >= t {
                        continue;
                    }
                    let mut best = T::KEY_MAX;
                    for (&p, &w) in targets[lo..hi].iter().zip(&weights[lo..hi]) {
                        let pd = prev[p as usize * chunk_cap + j];
                        let cand = pd.add_capped(w).pack(p);
                        best = best.min(cand);
                    }
                    keys[vrow + j] = best;
                }
            }
        }
        // Flush: stream the chunk state row-major over the sorted touched
        // list into the compact per-source outputs — sequential reads of
        // `cur`, append-only writes — so no `|sources| × n` array is ever
        // allocated or scattered into. The member lists come out sorted
        // because the touched list is.
        for (j, &src) in chunk.iter().enumerate() {
            let si = rows[chunk_index * chunk_cap + j];
            let reached = &mut out.reached[si];
            let member_rows = &mut out.member_rows[si];
            let mlist = &mut out.members[si];
            reached.reserve(touched.len());
            for &vu in &touched {
                let v = vu as usize;
                let d = cur[v * chunk_cap + j];
                if d >= T::INF {
                    continue;
                }
                reached.push((vu, d.into_dist()));
                if v == src {
                    mlist.push(v);
                    continue;
                }
                if d < thr[v] {
                    mlist.push(v);
                    let key = keys[v * chunk_cap + j];
                    let kv = T::key_value(key);
                    let (parent, weight) = if key != T::KEY_MAX && kv <= d {
                        let p = T::key_neighbor(key);
                        (
                            p,
                            kv.into_dist() - prev[p as usize * chunk_cap + j].into_dist(),
                        )
                    } else {
                        (NO_PARENT, 0)
                    };
                    member_rows.push(MemberCell {
                        v: vu,
                        parent,
                        dist: d.into_dist(),
                        weight,
                    });
                }
            }
        }
        // Reset the dirty rows for the next chunk and clear the bookkeeping.
        for &v in &touched {
            let vrow = v as usize * chunk_cap;
            touched_flag[v as usize] = 0;
            cur[vrow..vrow + chunk_cap].fill(T::INF);
            prev[vrow..vrow + chunk_cap].fill(T::INF);
        }
        touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi_connected, GeneratorConfig};
    use crate::graph::WeightedGraph;

    /// The unbatched reference: one restricted Dijkstra per source (the same
    /// algorithm as `grow_exact_cluster_csr` in `en_routing`).
    fn reference(
        csr: &CsrGraph,
        source: NodeId,
        threshold: &[Dist],
    ) -> (Vec<Dist>, Vec<bool>, Vec<Option<NodeId>>) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = csr.num_nodes();
        let mut dist = vec![INFINITY; n];
        let mut parent = vec![None; n];
        let mut joined = vec![false; n];
        let mut heap = BinaryHeap::new();
        dist[source] = 0;
        heap.push(Reverse((0, source)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v] || joined[v] {
                continue;
            }
            if v != source && d >= threshold[v] {
                continue;
            }
            joined[v] = true;
            let (ts, ws) = csr.arcs(v);
            for (&t, &w) in ts.iter().zip(ws) {
                let nd = d + w;
                if nd < dist[t] {
                    dist[t] = nd;
                    parent[t] = Some(v);
                    heap.push(Reverse((nd, t)));
                }
            }
        }
        (dist, joined, parent)
    }

    fn check_against_reference(g: &WeightedGraph, sources: &[NodeId], threshold: &[Dist]) {
        let csr = CsrGraph::from_graph(g);
        let res = restricted_multi_source_csr(&csr, sources, threshold, None);
        for (s, &src) in sources.iter().enumerate() {
            let (dist, joined, _) = reference(&csr, src, threshold);
            let members: Vec<NodeId> = res.members_of(s).collect();
            let expected: Vec<NodeId> = (0..g.num_nodes()).filter(|&v| joined[v]).collect();
            assert_eq!(members, expected, "source {src}: member sets differ");
            for &v in &members {
                assert_eq!(res.dist_row(s)[v], dist[v], "source {src} vertex {v}");
                if v == src {
                    assert!(res.parent_of(s, v).is_none());
                } else {
                    let (p, w) = res.parent_of(s, v).expect("member has a parent");
                    assert!(res.is_member(s, p), "parent {p} must be a member");
                    assert_eq!(g.edge_weight(v, p), Some(w), "recorded weight is the arc's");
                    assert_eq!(
                        res.dist_row(s)[p] + w,
                        res.dist_row(s)[v],
                        "parent lies on a restricted shortest path"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_restricted_dijkstra_on_random_graphs() {
        for seed in 0..4 {
            let g = erdos_renyi_connected(&GeneratorConfig::new(50, seed).with_weights(1, 30), 0.1);
            let sources: Vec<NodeId> = (0..10).map(|i| i * 5).collect();
            // Genuine TZ-style thresholds: distance to a sampled "next level".
            let level: Vec<NodeId> = (0..50).filter(|v| v % 7 == 3).collect();
            let (threshold, _) = crate::dijkstra::multi_source_dijkstra(&g, &level);
            check_against_reference(&g, &sources, &threshold);
        }
    }

    #[test]
    fn infinite_thresholds_grow_full_shortest_path_trees() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(40, 9).with_weights(1, 20), 0.12);
        let threshold = vec![INFINITY; 40];
        let csr = CsrGraph::from_graph(&g);
        let res = restricted_multi_source_csr(&csr, &[0, 17], &threshold, None);
        for (s, &src) in [0usize, 17].iter().enumerate() {
            let sp = crate::dijkstra::dijkstra(&g, src);
            assert_eq!(res.dist_row(s), sp.dist.as_slice());
            assert_eq!(res.members_of(s).count(), 40);
        }
    }

    /// Definition (6) is strict: a vertex whose distance from the centre
    /// *ties* its threshold is excluded — and everything behind it stays out.
    #[test]
    fn membership_tie_is_excluded_strictly() {
        // Path 0 -2- 1 -2- 2 with A_{i+1} = {2}: thresholds d(·, {2}) are
        // [4, 2, 0], and d(0, 1) = 2 == threshold[1] — a genuine tie.
        let g = WeightedGraph::from_edges(3, [(0, 1, 2), (1, 2, 2)]).unwrap();
        let threshold = vec![4, 2, 0];
        let csr = CsrGraph::from_graph(&g);
        let res = restricted_multi_source_csr(&csr, &[0], &threshold, None);
        assert_eq!(res.members_of(0).collect::<Vec<_>>(), vec![0]);
        // Break the tie and vertex 1 joins (2 < 3), vertex 2 still not.
        let res = restricted_multi_source_csr(&csr, &[0], &[4, 3, 0], None);
        assert_eq!(res.members_of(0).collect::<Vec<_>>(), vec![0, 1]);
        check_against_reference(&g, &[0], &threshold);
        check_against_reference(&g, &[0], &[4, 3, 0]);
    }

    /// The source is exempt from its own threshold: even `threshold = 0` at
    /// the source must not stop it from relaying its zero.
    #[test]
    fn source_relays_despite_zero_threshold() {
        let g = WeightedGraph::from_edges(2, [(0, 1, 1)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        let res = restricted_multi_source_csr(&csr, &[0], &[0, 5], None);
        assert_eq!(res.members_of(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(res.dist_row(0)[1], 1);
        assert_eq!(res.parent_of(0, 1), Some((0, 1)));
        check_against_reference(&g, &[0], &[0, 5]);
    }

    #[test]
    fn sweep_budget_gives_levelled_depth_bounded_values() {
        // Path 0 -1- 1 -1- 2 -1- 3, unbounded thresholds: after β sweeps a
        // vertex β hops out is reached, β + 1 hops is not.
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        let threshold = vec![INFINITY; 4];
        let res = restricted_multi_source_csr(&csr, &[0], &threshold, Some(2));
        assert_eq!(res.dist_row(0), &[0, 1, 2, INFINITY]);
        let res = restricted_multi_source_csr(&csr, &[0], &threshold, Some(0));
        assert_eq!(res.dist_row(0), &[0, INFINITY, INFINITY, INFINITY]);
        assert_eq!(res.members_of(0).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn u64_fallback_matches_on_huge_weights() {
        // A weight large enough that n * max_weight overflows the i32 cells.
        let big = (i32::MAX / 4) as u64;
        let g = WeightedGraph::from_edges(3, [(0, 1, big), (1, 2, 1)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        let res = restricted_multi_source_csr(&csr, &[0], &[INFINITY; 3], None);
        assert_eq!(res.dist_row(0), &[0, big, big + 1]);
        check_against_reference(&g, &[0], &[INFINITY; 3]);
    }

    #[test]
    fn empty_source_set_is_a_no_op() {
        let g = WeightedGraph::from_edges(2, [(0, 1, 1)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        let res = restricted_multi_source_csr(&csr, &[], &[INFINITY; 2], None);
        assert!(res.sources().is_empty());
        assert_eq!(res.num_vertices(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_source() {
        let g = WeightedGraph::from_edges(2, [(0, 1, 1)]).unwrap();
        let _ = restricted_multi_source_csr(&CsrGraph::from_graph(&g), &[5], &[0, 0], None);
    }

    #[test]
    #[should_panic(expected = "one entry per vertex")]
    fn rejects_short_threshold_vector() {
        let g = WeightedGraph::from_edges(2, [(0, 1, 1)]).unwrap();
        let _ = restricted_multi_source_csr(&CsrGraph::from_graph(&g), &[0], &[0], None);
    }
}
