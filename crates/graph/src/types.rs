//! Core scalar types shared across the workspace.
//!
//! The paper assumes integer edge weights in `{1, …, poly(n)}` so that a
//! weight (or a distance) always fits in a single `O(log n)`-bit message word.
//! We model a word as a `u64`.

/// Identifier of a vertex. Vertices are always numbered `0..n` densely.
pub type NodeId = usize;

/// An edge weight, a positive integer bounded by a polynomial in `n`.
pub type Weight = u64;

/// A distance (sum of weights along a path).
pub type Dist = u64;

/// Sentinel distance standing for "unreachable" / "+∞".
///
/// It is chosen well below `u64::MAX` so that `INFINITY + w` for any legal
/// weight `w` never wraps around; all shortest-path code in this workspace
/// uses saturating arithmetic on top of this sentinel.
pub const INFINITY: Dist = u64::MAX / 4;

/// Returns `a + b`, saturating at [`INFINITY`].
///
/// Any sum involving [`INFINITY`] stays at [`INFINITY`], which keeps relaxation
/// loops free of overflow checks.
#[inline]
pub fn dist_add(a: Dist, b: Dist) -> Dist {
    if a >= INFINITY || b >= INFINITY {
        INFINITY
    } else {
        let s = a.saturating_add(b);
        if s >= INFINITY {
            INFINITY
        } else {
            s
        }
    }
}

/// Returns `true` if `d` represents a finite (reachable) distance.
#[inline]
pub fn is_finite(d: Dist) -> bool {
    d < INFINITY
}

/// A fast, deterministic hasher for [`NodeId`] keys.
///
/// Vertex ids are small dense integers, so the default SipHash of
/// `std::collections::HashMap` spends more time hashing than probing; this
/// hasher is a single multiply by a 64-bit golden-ratio constant plus an
/// xor-fold, which spreads consecutive ids across the table's high bits (the
/// bits hashbrown keys on). Cluster `root_estimate` maps are built by the
/// hundred per construction, making this a measured hot path.
#[derive(Debug, Default, Clone)]
pub struct NodeIdHasher(u64);

impl std::hash::Hasher for NodeIdHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.0 = (self.0.rotate_left(29) ^ i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0.rotate_left(29) ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 31)
    }
}

/// A `HashMap` keyed by [`NodeId`] using [`NodeIdHasher`] — the map type of
/// cluster `root_estimate` tables and other per-vertex associative state on
/// construction hot paths.
pub type NodeMap<V> =
    std::collections::HashMap<NodeId, V, std::hash::BuildHasherDefault<NodeIdHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_add_finite() {
        assert_eq!(dist_add(3, 4), 7);
        assert_eq!(dist_add(0, 0), 0);
    }

    #[test]
    fn dist_add_saturates_at_infinity() {
        assert_eq!(dist_add(INFINITY, 1), INFINITY);
        assert_eq!(dist_add(1, INFINITY), INFINITY);
        assert_eq!(dist_add(INFINITY, INFINITY), INFINITY);
    }

    #[test]
    fn dist_add_does_not_wrap() {
        assert_eq!(dist_add(INFINITY - 1, INFINITY - 1), INFINITY);
    }

    #[test]
    fn is_finite_detects_sentinel() {
        assert!(is_finite(0));
        assert!(is_finite(INFINITY - 1));
        assert!(!is_finite(INFINITY));
        assert!(!is_finite(u64::MAX));
    }
}
