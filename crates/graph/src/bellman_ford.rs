//! Hop-bounded distances `d^{(t)}_G` and hop counts `h_G`.
//!
//! Section 2 of the paper defines `d^{(t)}_G(u, v)` as the length of the
//! shortest path from `u` to `v` that uses at most `t` edges (∞ if no such
//! path exists), and `h_G(u, v)` as the number of hops on the shortest path.
//! Both quantities are needed to validate the distributed hop-bounded
//! explorations against a sequential reference.

use crate::csr::CsrGraph;
use crate::dijkstra::dijkstra;
use crate::graph::WeightedGraph;
use crate::types::{dist_add, Dist, NodeId, INFINITY};

/// Result of a hop-bounded single-source computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopBoundedDistances {
    /// The source vertex.
    pub source: NodeId,
    /// The hop bound `t`.
    pub hop_bound: usize,
    /// `dist[v] = d^{(t)}_G(source, v)`.
    pub dist: Vec<Dist>,
    /// `parent[v]`: predecessor of `v` on the best `≤ t`-hop path found.
    pub parent: Vec<Option<NodeId>>,
}

/// Computes `d^{(t)}_G(source, ·)` by `t` frontier-based Bellman–Ford sweeps.
///
/// Builds a [`CsrGraph`] view of `g` once and delegates to
/// [`hop_bounded_distances_csr`]; callers that already hold a CSR view (or
/// that run many explorations over the same graph) should build the CSR
/// themselves and call the `_csr` variant directly.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn hop_bounded_distances(
    g: &WeightedGraph,
    source: NodeId,
    hop_bound: usize,
) -> HopBoundedDistances {
    hop_bounded_distances_csr(&CsrGraph::from_graph(g), source, hop_bound)
}

/// CSR-view implementation of [`hop_bounded_distances`].
///
/// Each sweep relaxes only the *frontier* — the vertices whose distance
/// changed in the previous sweep — reading the value each frontier vertex had
/// at the start of the sweep, so the result is the exact levelled quantity
/// `d^{(t)}_G(source, ·)` with no per-sweep snapshot allocation. The sweep
/// loop stops as soon as a sweep relaxes nothing (empty frontier).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn hop_bounded_distances_csr(
    csr: &CsrGraph,
    source: NodeId,
    hop_bound: usize,
) -> HopBoundedDistances {
    assert!(source < csr.num_nodes(), "source {source} out of range");
    let n = csr.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![None; n];
    dist[source] = 0;
    // `frontier` carries (vertex, its distance at the end of the previous
    // sweep); relaxing from that recorded value — never from `dist`, which
    // may already hold this sweep's improvements — preserves the levelled
    // semantics exactly.
    let mut frontier: Vec<(NodeId, Dist)> = vec![(source, 0)];
    let mut changed: Vec<NodeId> = Vec::new();
    let mut in_changed = vec![false; n];
    for _ in 0..hop_bound {
        if frontier.is_empty() {
            break;
        }
        for &(u, du) in &frontier {
            let (targets, weights) = csr.arcs(u);
            for (&v, &w) in targets.iter().zip(weights) {
                let nd = dist_add(du, w);
                if nd < dist[v] {
                    dist[v] = nd;
                    parent[v] = Some(u);
                    if !in_changed[v] {
                        in_changed[v] = true;
                        changed.push(v);
                    }
                }
            }
        }
        frontier.clear();
        for &v in &changed {
            in_changed[v] = false;
            frontier.push((v, dist[v]));
        }
        changed.clear();
    }
    HopBoundedDistances {
        source,
        hop_bound,
        dist,
        parent,
    }
}

/// The retained naive reference implementation of [`hop_bounded_distances`]:
/// textbook levelled Bellman–Ford, one full `O(n + m)` pass per sweep.
///
/// Kept (and exercised by the equivalence property tests) as the oracle the
/// frontier-based kernel is validated against; not for production use.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn hop_bounded_distances_reference(
    g: &WeightedGraph,
    source: NodeId,
    hop_bound: usize,
) -> HopBoundedDistances {
    assert!(source < g.num_nodes(), "source {source} out of range");
    let n = g.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![None; n];
    dist[source] = 0;
    // Standard "levelled" Bellman-Ford: after sweep t, dist[v] = d^{(t)}(v).
    // The snapshot buffer is allocated once and refilled per sweep.
    let mut snapshot = vec![INFINITY; n];
    for _ in 0..hop_bound {
        snapshot.copy_from_slice(&dist);
        let mut any = false;
        for u in 0..n {
            if snapshot[u] >= INFINITY {
                continue;
            }
            for nb in g.neighbors(u) {
                let nd = dist_add(snapshot[u], nb.weight);
                if nd < dist[nb.node] {
                    dist[nb.node] = nd;
                    parent[nb.node] = Some(u);
                    any = true;
                }
            }
        }
        if !any {
            break;
        }
    }
    HopBoundedDistances {
        source,
        hop_bound,
        dist,
        parent,
    }
}

/// Computes the hop count `h_G(source, v)` of the (canonical) shortest path
/// from `source` to every `v`, using the same tie-breaking as
/// [`dijkstra`].
///
/// Returns `usize::MAX` for unreachable vertices.
pub fn shortest_path_hops(g: &WeightedGraph, source: NodeId) -> Vec<usize> {
    dijkstra(g, source).hops
}

/// The shortest-path diameter `S`: the maximum over all pairs of the number of
/// hops on the canonical shortest path between them.
///
/// The paper contrasts `S` (potentially `Ω(n)`) with the hop-diameter `D`
/// (typically small); the `[LP15]` baseline's `Õ(S + n^{1/k})` running time is
/// parameterised by this quantity.
///
/// Returns 0 for graphs with fewer than two vertices; unreachable pairs are
/// ignored.
pub fn shortest_path_diameter(g: &WeightedGraph) -> usize {
    let csr = CsrGraph::from_graph(g);
    let mut s = 0;
    for u in g.nodes() {
        for (v, &h) in crate::dijkstra::dijkstra_csr(&csr, u)
            .hops
            .iter()
            .enumerate()
        {
            if v != u && h != usize::MAX {
                s = s.max(h);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;

    /// Graph where the shortest path by weight uses many hops:
    /// direct heavy edge 0-3 (weight 10) vs light path 0-1-2-3 (weight 3).
    fn hoppy() -> WeightedGraph {
        WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)]).unwrap()
    }

    #[test]
    fn hop_bound_zero_reaches_only_source() {
        let g = hoppy();
        let hb = hop_bounded_distances(&g, 0, 0);
        assert_eq!(hb.dist[0], 0);
        assert!(hb.dist[1..].iter().all(|&d| d == INFINITY));
    }

    #[test]
    fn hop_bound_limits_path_length() {
        let g = hoppy();
        let hb1 = hop_bounded_distances(&g, 0, 1);
        assert_eq!(hb1.dist[3], 10); // only the direct edge fits in one hop
        let hb3 = hop_bounded_distances(&g, 0, 3);
        assert_eq!(hb3.dist[3], 3); // the light path needs three hops
    }

    #[test]
    fn large_hop_bound_matches_dijkstra() {
        let g = hoppy();
        let hb = hop_bounded_distances(&g, 0, g.num_nodes());
        let sp = dijkstra(&g, 0);
        assert_eq!(hb.dist, sp.dist);
    }

    #[test]
    fn parents_trace_back_to_source() {
        let g = hoppy();
        let hb = hop_bounded_distances(&g, 0, 3);
        let mut cur = 3;
        let mut steps = 0;
        while let Some(p) = hb.parent[cur] {
            cur = p;
            steps += 1;
            assert!(steps <= 3);
        }
        assert_eq!(cur, 0);
    }

    #[test]
    fn hops_of_shortest_paths() {
        let g = hoppy();
        let hops = shortest_path_hops(&g, 0);
        assert_eq!(hops[3], 3);
        assert_eq!(hops[0], 0);
    }

    #[test]
    fn shortest_path_diameter_exceeds_hop_diameter_on_weighted_ring() {
        // Path 0-1-2-3 of light edges plus heavy chord: S = 3 while D = 1 would
        // need a different graph; here just check S is the max hop count.
        let g = hoppy();
        assert_eq!(shortest_path_diameter(&g), 3);
    }

    #[test]
    fn disconnected_vertices_stay_infinite() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1)]).unwrap();
        let hb = hop_bounded_distances(&g, 0, 5);
        assert_eq!(hb.dist[2], INFINITY);
        assert_eq!(hb.parent[2], None);
    }
}
