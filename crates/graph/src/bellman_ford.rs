//! Hop-bounded distances `d^{(t)}_G` and hop counts `h_G`.
//!
//! Section 2 of the paper defines `d^{(t)}_G(u, v)` as the length of the
//! shortest path from `u` to `v` that uses at most `t` edges (∞ if no such
//! path exists), and `h_G(u, v)` as the number of hops on the shortest path.
//! Both quantities are needed to validate the distributed hop-bounded
//! explorations against a sequential reference.

use crate::dijkstra::dijkstra;
use crate::graph::WeightedGraph;
use crate::types::{dist_add, Dist, NodeId, INFINITY};

/// Result of a hop-bounded single-source computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopBoundedDistances {
    /// The source vertex.
    pub source: NodeId,
    /// The hop bound `t`.
    pub hop_bound: usize,
    /// `dist[v] = d^{(t)}_G(source, v)`.
    pub dist: Vec<Dist>,
    /// `parent[v]`: predecessor of `v` on the best `≤ t`-hop path found.
    pub parent: Vec<Option<NodeId>>,
}

/// Computes `d^{(t)}_G(source, ·)` by `t` rounds of Bellman–Ford relaxation.
///
/// This is the sequential reference implementation; the distributed version
/// lives in the `en_congest_algos` crate and is tested against this one.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn hop_bounded_distances(
    g: &WeightedGraph,
    source: NodeId,
    hop_bound: usize,
) -> HopBoundedDistances {
    assert!(source < g.num_nodes(), "source {source} out of range");
    let n = g.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![None; n];
    dist[source] = 0;
    // Standard "levelled" Bellman-Ford: dist_next[v] = min over neighbours of
    // dist[u] + w(u, v), so after round t, dist[v] = d^{(t)}(source, v).
    let mut current = dist.clone();
    for _ in 0..hop_bound {
        let mut next = current.clone();
        let mut next_parent = parent.clone();
        for u in 0..n {
            if current[u] >= INFINITY {
                continue;
            }
            for nb in g.neighbors(u) {
                let nd = dist_add(current[u], nb.weight);
                if nd < next[nb.node] {
                    next[nb.node] = nd;
                    next_parent[nb.node] = Some(u);
                }
            }
        }
        current = next;
        parent = next_parent;
    }
    dist = current;
    HopBoundedDistances {
        source,
        hop_bound,
        dist,
        parent,
    }
}

/// Computes the hop count `h_G(source, v)` of the (canonical) shortest path
/// from `source` to every `v`, using the same tie-breaking as
/// [`dijkstra`](crate::dijkstra::dijkstra).
///
/// Returns `usize::MAX` for unreachable vertices.
pub fn shortest_path_hops(g: &WeightedGraph, source: NodeId) -> Vec<usize> {
    dijkstra(g, source).hops
}

/// The shortest-path diameter `S`: the maximum over all pairs of the number of
/// hops on the canonical shortest path between them.
///
/// The paper contrasts `S` (potentially `Ω(n)`) with the hop-diameter `D`
/// (typically small); the `[LP15]` baseline's `Õ(S + n^{1/k})` running time is
/// parameterised by this quantity.
///
/// Returns 0 for graphs with fewer than two vertices; unreachable pairs are
/// ignored.
pub fn shortest_path_diameter(g: &WeightedGraph) -> usize {
    let mut s = 0;
    for u in g.nodes() {
        for (v, &h) in shortest_path_hops(g, u).iter().enumerate() {
            if v != u && h != usize::MAX {
                s = s.max(h);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;

    /// Graph where the shortest path by weight uses many hops:
    /// direct heavy edge 0-3 (weight 10) vs light path 0-1-2-3 (weight 3).
    fn hoppy() -> WeightedGraph {
        WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)]).unwrap()
    }

    #[test]
    fn hop_bound_zero_reaches_only_source() {
        let g = hoppy();
        let hb = hop_bounded_distances(&g, 0, 0);
        assert_eq!(hb.dist[0], 0);
        assert!(hb.dist[1..].iter().all(|&d| d == INFINITY));
    }

    #[test]
    fn hop_bound_limits_path_length() {
        let g = hoppy();
        let hb1 = hop_bounded_distances(&g, 0, 1);
        assert_eq!(hb1.dist[3], 10); // only the direct edge fits in one hop
        let hb3 = hop_bounded_distances(&g, 0, 3);
        assert_eq!(hb3.dist[3], 3); // the light path needs three hops
    }

    #[test]
    fn large_hop_bound_matches_dijkstra() {
        let g = hoppy();
        let hb = hop_bounded_distances(&g, 0, g.num_nodes());
        let sp = dijkstra(&g, 0);
        assert_eq!(hb.dist, sp.dist);
    }

    #[test]
    fn parents_trace_back_to_source() {
        let g = hoppy();
        let hb = hop_bounded_distances(&g, 0, 3);
        let mut cur = 3;
        let mut steps = 0;
        while let Some(p) = hb.parent[cur] {
            cur = p;
            steps += 1;
            assert!(steps <= 3);
        }
        assert_eq!(cur, 0);
    }

    #[test]
    fn hops_of_shortest_paths() {
        let g = hoppy();
        let hops = shortest_path_hops(&g, 0);
        assert_eq!(hops[3], 3);
        assert_eq!(hops[0], 0);
    }

    #[test]
    fn shortest_path_diameter_exceeds_hop_diameter_on_weighted_ring() {
        // Path 0-1-2-3 of light edges plus heavy chord: S = 3 while D = 1 would
        // need a different graph; here just check S is the max hop count.
        let g = hoppy();
        assert_eq!(shortest_path_diameter(&g), 3);
    }

    #[test]
    fn disconnected_vertices_stay_infinite() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1)]).unwrap();
        let hb = hop_bounded_distances(&g, 0, 5);
        assert_eq!(hb.dist[2], INFINITY);
        assert_eq!(hb.parent[2], None);
    }
}
