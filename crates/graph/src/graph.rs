//! The [`WeightedGraph`] type: an undirected weighted graph with port numbers.
//!
//! The adjacency list of each vertex is ordered; the index of a neighbour in
//! that list is the *port number* of the edge at that endpoint, exactly as a
//! node in the CONGEST model would address its incident links. Routing tables
//! produced by the schemes in this workspace store port numbers, never raw
//! neighbour ids, mirroring the paper's model where "port numbers may be
//! assigned by the routing process".

use crate::error::GraphError;
use crate::types::{Dist, NodeId, Weight};

/// A neighbour entry in an adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Neighbor {
    /// The neighbouring vertex.
    pub node: NodeId,
    /// The weight of the connecting edge.
    pub weight: Weight,
}

/// An undirected edge `(u, v)` with weight `w`, reported with `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// The smaller endpoint.
    pub u: NodeId,
    /// The larger endpoint.
    pub v: NodeId,
    /// The edge weight.
    pub weight: Weight,
}

/// An undirected weighted graph on vertices `0..n`.
///
/// Construction is incremental via [`WeightedGraph::new`] +
/// [`WeightedGraph::add_edge`], or in one shot via
/// [`WeightedGraph::from_edges`].
///
/// # Example
///
/// ```
/// use en_graph::WeightedGraph;
///
/// let mut g = WeightedGraph::new(3);
/// g.add_edge(0, 1, 5).unwrap();
/// g.add_edge(1, 2, 7).unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WeightedGraph {
    adj: Vec<Vec<Neighbor>>,
    num_edges: usize,
}

impl WeightedGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error if any edge references a vertex `>= n`, has zero
    /// weight, is a self-loop, or duplicates an earlier edge.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId, Weight)>,
    {
        let mut g = WeightedGraph::new(n);
        for (u, v, w) in edges {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Number of vertices `n`.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes()
    }

    /// Adds the undirected edge `(u, v)` with weight `w`.
    ///
    /// # Errors
    ///
    /// Returns an error if `u` or `v` is out of range, `w == 0`, `u == v`, or
    /// the edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> Result<(), GraphError> {
        let n = self.num_nodes();
        if u >= n {
            return Err(GraphError::NodeOutOfRange { node: u, n });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if w == 0 {
            return Err(GraphError::ZeroWeight { u, v });
        }
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        self.adj[u].push(Neighbor { node: v, weight: w });
        self.adj[v].push(Neighbor { node: u, weight: w });
        self.num_edges += 1;
        Ok(())
    }

    /// Returns `true` if the undirected edge `(u, v)` exists.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u].iter().any(|nb| nb.node == v)
    }

    /// Returns the weight of edge `(u, v)`, if present.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.adj[u]
            .iter()
            .find(|nb| nb.node == v)
            .map(|nb| nb.weight)
    }

    /// The ordered neighbour list of `u`; position `p` in this slice is port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> &[Neighbor] {
        &self.adj[u]
    }

    /// Degree of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u].len()
    }

    /// The port number at `u` of the edge towards neighbour `v`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn port_towards(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.adj[u].iter().position(|nb| nb.node == v)
    }

    /// The neighbour reached from `u` through port `port`, if the port exists.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbor_at_port(&self, u: NodeId, port: usize) -> Option<Neighbor> {
        self.adj[u].get(port).copied()
    }

    /// Iterator over all undirected edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbs)| {
            nbs.iter().filter_map(move |nb| {
                if u < nb.node {
                    Some(Edge {
                        u,
                        v: nb.node,
                        weight: nb.weight,
                    })
                } else {
                    None
                }
            })
        })
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> Dist {
        self.edges().map(|e| e.weight).sum()
    }

    /// Maximum edge weight (0 for an edgeless graph).
    pub fn max_weight(&self) -> Weight {
        self.edges().map(|e| e.weight).max().unwrap_or(0)
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }
}

impl FromIterator<(NodeId, NodeId, Weight)> for WeightedGraph {
    /// Collects an edge list into a graph sized to the largest referenced
    /// vertex id; duplicate edges keep the first weight seen.
    fn from_iter<I: IntoIterator<Item = (NodeId, NodeId, Weight)>>(iter: I) -> Self {
        let edges: Vec<_> = iter.into_iter().collect();
        let n = edges
            .iter()
            .map(|&(u, v, _)| u.max(v) + 1)
            .max()
            .unwrap_or(0);
        let mut g = WeightedGraph::new(n);
        for (u, v, w) in edges {
            if u != v && w > 0 && !g.has_edge(u, v) {
                // Errors are impossible here: nodes are in range by construction.
                let _ = g.add_edge(u, v, w);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> WeightedGraph {
        WeightedGraph::from_edges(3, [(0, 1, 1), (1, 2, 2), (0, 2, 5)]).unwrap()
    }

    #[test]
    fn new_graph_is_edgeless() {
        let g = WeightedGraph::new(4);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.is_empty());
        assert!(WeightedGraph::new(0).is_empty());
    }

    #[test]
    fn add_edge_updates_both_endpoints() {
        let g = triangle();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(1, 0), Some(1));
        assert_eq!(g.edge_weight(0, 2), Some(5));
        assert_eq!(g.edge_weight(1, 3), None);
    }

    #[test]
    fn add_edge_rejects_out_of_range() {
        let mut g = WeightedGraph::new(2);
        assert_eq!(
            g.add_edge(0, 2, 1),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        );
        assert_eq!(
            g.add_edge(5, 0, 1),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        );
    }

    #[test]
    fn add_edge_rejects_self_loop_zero_weight_duplicate() {
        let mut g = WeightedGraph::new(3);
        assert_eq!(g.add_edge(1, 1, 1), Err(GraphError::SelfLoop { node: 1 }));
        assert_eq!(
            g.add_edge(0, 1, 0),
            Err(GraphError::ZeroWeight { u: 0, v: 1 })
        );
        g.add_edge(0, 1, 3).unwrap();
        assert_eq!(
            g.add_edge(1, 0, 4),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
    }

    #[test]
    fn ports_are_stable_and_symmetric_lookup_works() {
        let g = triangle();
        let p01 = g.port_towards(0, 1).unwrap();
        let p02 = g.port_towards(0, 2).unwrap();
        assert_ne!(p01, p02);
        assert_eq!(g.neighbor_at_port(0, p01).unwrap().node, 1);
        assert_eq!(g.neighbor_at_port(0, p02).unwrap().node, 2);
        assert_eq!(g.neighbor_at_port(0, 99), None);
        assert_eq!(g.port_towards(1, 1), None);
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = triangle();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|e| e.u < e.v));
        assert_eq!(g.total_weight(), 8);
        assert_eq!(g.max_weight(), 5);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn from_iter_sizes_graph_and_skips_invalid() {
        let g: WeightedGraph = [(0, 3, 2), (0, 0, 1), (3, 0, 9), (1, 2, 0)]
            .into_iter()
            .collect();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 3), Some(2));
    }

    #[test]
    fn from_edges_propagates_errors() {
        assert!(WeightedGraph::from_edges(2, [(0, 1, 1), (0, 1, 2)]).is_err());
        assert!(WeightedGraph::from_edges(2, [(0, 1, 1)]).is_ok());
    }
}
