//! Error type for graph construction and queries.

use std::error::Error;
use std::fmt;

use crate::types::NodeId;

/// Errors produced by graph construction and structural queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex id was at least the number of vertices in the graph.
    NodeOutOfRange {
        /// The offending vertex id.
        node: NodeId,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// An edge was given a weight of zero (weights must be in `{1, …, poly(n)}`).
    ZeroWeight {
        /// One endpoint of the edge.
        u: NodeId,
        /// The other endpoint of the edge.
        v: NodeId,
    },
    /// A self-loop `(u, u)` was inserted; the model forbids self-loops.
    SelfLoop {
        /// The vertex with the attempted self-loop.
        node: NodeId,
    },
    /// The same undirected edge was inserted twice.
    DuplicateEdge {
        /// One endpoint of the edge.
        u: NodeId,
        /// The other endpoint of the edge.
        v: NodeId,
    },
    /// An operation requiring a connected graph was invoked on a disconnected one.
    Disconnected,
    /// An operation requiring a non-empty graph was invoked on an empty one.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "vertex {node} out of range for graph with {n} vertices")
            }
            GraphError::ZeroWeight { u, v } => {
                write!(
                    f,
                    "edge ({u}, {v}) has zero weight; weights must be positive"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at vertex {node} is not allowed"),
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u}, {v}) inserted more than once")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::EmptyGraph => write!(f, "graph has no vertices"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains("vertex 9"));
        let e = GraphError::ZeroWeight { u: 1, v: 2 };
        assert!(e.to_string().contains("(1, 2)"));
        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains("3"));
        let e = GraphError::DuplicateEdge { u: 0, v: 5 };
        assert!(e.to_string().contains("(0, 5)"));
        assert_eq!(
            GraphError::Disconnected.to_string(),
            "graph is not connected"
        );
        assert_eq!(GraphError::EmptyGraph.to_string(), "graph has no vertices");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
