//! Weighted-graph substrate for the Elkin–Neiman routing-scheme reproduction.
//!
//! This crate provides everything the higher layers (CONGEST simulator,
//! hopsets, tree routing, and the routing scheme itself) need from a graph
//! library:
//!
//! * [`WeightedGraph`] — an undirected weighted graph with integer weights in
//!   `{1, …, poly(n)}`, stored as adjacency lists with stable port numbers
//!   (the index of a neighbour in a node's adjacency list is that node's
//!   *port* towards the neighbour, exactly as in the CONGEST model).
//! * [`csr`] — the flat [`CsrGraph`] view (`offsets`/`targets`/`weights`)
//!   built once from a [`WeightedGraph`]; every hot shortest-path kernel in
//!   the workspace iterates adjacency through it.
//! * [`generators`] — reproducible random and structured graph generators
//!   (Erdős–Rényi, random geometric, grids, rings, trees, Barabási–Albert,
//!   caterpillars, …) used as workloads by the benchmark harness.
//! * [`forest`] — the arena-backed compact [`ClusterForest`]: every cluster
//!   of a family in shared CSR-style arrays (`O(Σ|C|)` memory instead of
//!   `O(n · #clusters)`), an inverted vertex → clusters membership CSR, and
//!   the [`TreeView`] trait that lets tree-routing consume forest slices
//!   zero-copy and [`tree::RootedTree`]s interchangeably.
//! * [`restricted`] — the batched, threshold-restricted multi-source kernel
//!   behind Thorup–Zwick cluster growing, built on the shared [`cell`]
//!   distance-cell machinery (which the Theorem-1 kernel in
//!   `en_congest_algos` reuses).
//! * [`parallel`] — the deterministic-parallelism plumbing shared by every
//!   construction phase: [`BuildOptions`] (thread count), [`BuildStats`]
//!   (per-thread work accounting), and the chunk-aligned [`shard_spans`]
//!   sharding that keeps parallel builds bit-identical to sequential ones.
//! * [`dijkstra`] — exact single-source shortest paths (the ground truth all
//!   stretch measurements are computed against).
//! * [`bellman_ford`] — hop-bounded distances `d^{(t)}_G` (Section 2 of the
//!   paper) and hop counts `h_G(u, v)`.
//! * [`bfs`] — unweighted BFS, BFS trees, the hop-diameter `D` and the
//!   shortest-path diameter `S`.
//! * [`tree`] — rooted-tree utilities (parent arrays, children, DFS orders,
//!   subtree sizes) shared by the tree-routing crate and the cluster trees.
//! * [`properties`] — connectivity and degree statistics used to validate
//!   generated workloads.
//!
//! # Example
//!
//! ```
//! use en_graph::generators::{erdos_renyi_connected, GeneratorConfig};
//! use en_graph::dijkstra::dijkstra;
//!
//! let cfg = GeneratorConfig::new(64, 7);
//! let g = erdos_renyi_connected(&cfg, 0.1);
//! let sp = dijkstra(&g, 0);
//! assert_eq!(sp.dist[0], 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bellman_ford;
pub mod bfs;
pub mod cell;
pub mod csr;
pub mod dijkstra;
pub mod error;
pub mod forest;
pub mod generators;
pub mod graph;
pub mod parallel;
pub mod path;
pub mod properties;
pub mod restricted;
pub mod tree;
pub mod types;

pub use csr::CsrGraph;
pub use error::GraphError;
pub use forest::{
    ClusterForest, ClusterForestBuilder, ClusterId, ClusterView, ForestMember, LocalTopology,
    TreeView,
};
pub use graph::{Edge, Neighbor, WeightedGraph};
pub use parallel::{shard_spans, BuildOptions, BuildStats};
pub use path::Path;
pub use restricted::{
    restricted_multi_source_csr, restricted_multi_source_csr_grouped,
    restricted_multi_source_csr_grouped_opts, restricted_multi_source_csr_opts,
    RestrictedMultiSource,
};
pub use types::{dist_add, is_finite, Dist, NodeId, NodeIdHasher, NodeMap, Weight, INFINITY};
