//! Rooted-tree utilities shared by the tree-routing crate and cluster trees.
//!
//! Both the exact Thorup–Zwick clusters and the paper's approximate clusters
//! are stored as trees given by parent pointers (Section 3.1: "each vertex
//! `v ∈ C̃(u)` will store a pointer to its parent in the tree"). This module
//! provides the [`RootedTree`] view over such parent arrays: children lists,
//! DFS orders, subtree sizes, depths, and path extraction — everything the
//! tree-routing scheme of Section 6 consumes.

use crate::graph::WeightedGraph;
use crate::path::Path;
use crate::types::{dist_add, Dist, NodeId, Weight};

/// A rooted tree over a subset of the vertices of some host graph.
///
/// Vertices not in the tree have no parent and are reported as absent by
/// [`RootedTree::contains`]. Edge weights are carried explicitly so that a
/// tree may be *virtual* (its edges need not exist in the host graph), which
/// is required for the virtual trees `T'` of Section 6 and the cluster trees
/// built over hopset edges.
///
/// Internally the parent pointers live in two parallel memset-friendly
/// arrays (`u32` ids with a sentinel, plus weights) rather than a
/// `Vec<Option<(NodeId, Weight)>>`: a cluster family materialises one tree
/// per centre, so construction cost is dominated by initialising these
/// arrays, and a 0xFF/zero fill is several times faster than writing a
/// 24-byte `None` pattern per vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    root: NodeId,
    /// `parent_id[v]` is the parent of `v`, or [`NO_PARENT`] for the root and
    /// for non-members; `parent_weight[v]` is the weight of the edge
    /// `(parent_id[v], v)` wherever a parent is set.
    parent_id: Vec<u32>,
    parent_weight: Vec<Weight>,
    member: Vec<bool>,
}

/// `parent_id` sentinel meaning "no parent".
const NO_PARENT: u32 = u32::MAX;

impl RootedTree {
    /// Creates a tree containing only `root`, over a host of `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `root >= n`.
    pub fn new(n: usize, root: NodeId) -> Self {
        assert!(root < n, "root {root} out of range");
        assert!(n < NO_PARENT as usize, "host size must fit in u32");
        let mut member = vec![false; n];
        member[root] = true;
        RootedTree {
            root,
            parent_id: vec![NO_PARENT; n],
            parent_weight: vec![0; n],
            member,
        }
    }

    /// Builds a tree from an explicit parent array.
    ///
    /// `parents[v] = Some((p, w))` attaches `v` below `p` with edge weight `w`;
    /// vertices with `None` that are not the root are treated as non-members.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range or if the parent pointers contain a
    /// cycle reachable from a member vertex.
    pub fn from_parents(root: NodeId, parents: Vec<Option<(NodeId, Weight)>>) -> Self {
        let n = parents.len();
        assert!(root < n, "root {root} out of range");
        assert!(n < NO_PARENT as usize, "host size must fit in u32");
        let mut member = vec![false; n];
        member[root] = true;
        let mut parent_id = vec![NO_PARENT; n];
        let mut parent_weight = vec![0; n];
        for v in 0..n {
            if let Some((p, w)) = parents[v] {
                member[v] = true;
                parent_id[v] = p as u32;
                parent_weight[v] = w;
            }
        }
        let tree = RootedTree {
            root,
            parent_id,
            parent_weight,
            member,
        };
        // Cycle check: walking up from any member must reach the root within n steps.
        for v in 0..n {
            if tree.member[v] {
                let mut cur = v;
                let mut steps = 0;
                while let Some((p, _)) = tree.parent(cur) {
                    cur = p;
                    steps += 1;
                    assert!(steps <= n, "cycle in parent pointers at vertex {v}");
                }
                assert_eq!(cur, root, "vertex {v} does not reach the root");
            }
        }
        tree
    }

    /// Builds a tree directly from compact member records `(v, parent, w)` —
    /// the shape the batched cluster kernel emits — with no attach-order
    /// requirement and no per-call assertions beyond debug builds, where the
    /// records are verified to form a tree rooted at `root`. Cluster-family
    /// construction materialises one tree per centre, so this constructor is
    /// on a measured hot path.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range; debug builds additionally panic on
    /// out-of-range members, cycles, or members not reaching the root.
    pub fn from_compact_members(
        n: usize,
        root: NodeId,
        members: impl IntoIterator<Item = (NodeId, NodeId, Weight)>,
    ) -> Self {
        let mut tree = RootedTree::new(n, root);
        for (v, p, w) in members {
            debug_assert!(v < n && p < n, "member ({v}, {p}) out of range");
            tree.parent_id[v] = p as u32;
            tree.parent_weight[v] = w;
            tree.member[v] = true;
        }
        #[cfg(debug_assertions)]
        for v in 0..n {
            if tree.member[v] {
                let mut cur = v;
                let mut steps = 0;
                while let Some((p, _)) = tree.parent(cur) {
                    assert!(tree.member[p], "parent {p} of {cur} is not a member");
                    cur = p;
                    steps += 1;
                    assert!(steps <= n, "cycle in compact member records at {v}");
                }
                assert_eq!(cur, root, "member {v} does not reach the root");
            }
        }
        tree
    }

    /// The root of the tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of vertices in the host graph (the length of the parent array).
    pub fn host_size(&self) -> usize {
        self.parent_id.len()
    }

    /// Returns `true` if `v` belongs to the tree.
    pub fn contains(&self, v: NodeId) -> bool {
        v < self.member.len() && self.member[v]
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.member.iter().filter(|&&m| m).count()
    }

    /// Returns `true` if the tree contains only its root... never; a tree
    /// always contains at least the root, so this reports whether it has no
    /// other members.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// The parent of `v` together with the connecting edge weight, or `None`
    /// for the root and non-members.
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, Weight)> {
        match self.parent_id.get(v) {
            Some(&p) if p != NO_PARENT => Some((p as NodeId, self.parent_weight[v])),
            _ => None,
        }
    }

    /// Attaches `child` under `parent` with edge weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a member, if `child` is already a member, or
    /// if either id is out of range.
    pub fn attach(&mut self, child: NodeId, parent: NodeId, w: Weight) {
        assert!(child < self.parent_id.len(), "child {child} out of range");
        assert!(self.contains(parent), "parent {parent} not in tree");
        assert!(!self.contains(child), "child {child} already in tree");
        self.parent_id[child] = parent as u32;
        self.parent_weight[child] = w;
        self.member[child] = true;
    }

    /// Re-parents `v` (which may be new) under `parent` with weight `w`.
    ///
    /// Unlike [`attach`](Self::attach) this allows updating the parent of an
    /// existing member, which is how the Bellman–Ford style cluster growth in
    /// Section 3 repeatedly improves a vertex's parent.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range, `parent` is not a member, or `v` is the root.
    pub fn set_parent(&mut self, v: NodeId, parent: NodeId, w: Weight) {
        assert!(v < self.parent_id.len(), "vertex {v} out of range");
        assert!(self.contains(parent), "parent {parent} not in tree");
        assert_ne!(v, self.root, "cannot set a parent for the root");
        self.parent_id[v] = parent as u32;
        self.parent_weight[v] = w;
        self.member[v] = true;
    }

    /// The member vertices, in increasing id order.
    pub fn members(&self) -> Vec<NodeId> {
        (0..self.member.len()).filter(|&v| self.member[v]).collect()
    }

    /// Children lists for every vertex (empty for non-members and leaves).
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut ch = vec![Vec::new(); self.parent_id.len()];
        for (v, &p) in self.parent_id.iter().enumerate() {
            if p != NO_PARENT {
                ch[p as usize].push(v);
            }
        }
        ch
    }

    /// Hop depth of every member (root = 0); `None` for non-members.
    pub fn depths(&self) -> Vec<Option<usize>> {
        let n = self.parent_id.len();
        let mut depth = vec![None; n];
        for v in 0..n {
            if !self.member[v] {
                continue;
            }
            // Walk up, memoising as we go back down.
            let mut chain = Vec::new();
            let mut cur = v;
            while depth[cur].is_none() {
                if cur == self.root {
                    depth[cur] = Some(0);
                    break;
                }
                chain.push(cur);
                cur = self.parent(cur).expect("member must have parent").0;
            }
            let mut d = depth[cur].expect("walk terminated at known depth");
            for &x in chain.iter().rev() {
                d += 1;
                depth[x] = Some(d);
            }
        }
        depth
    }

    /// Maximum hop depth over all members.
    pub fn depth(&self) -> usize {
        self.depths().into_iter().flatten().max().unwrap_or(0)
    }

    /// Weighted distance from every member to the root along tree edges;
    /// `None` for non-members.
    pub fn root_distances(&self) -> Vec<Option<Dist>> {
        let n = self.parent_id.len();
        let mut dist = vec![None; n];
        for v in 0..n {
            if !self.member[v] {
                continue;
            }
            let mut chain = Vec::new();
            let mut cur = v;
            while dist[cur].is_none() {
                if cur == self.root {
                    dist[cur] = Some(0);
                    break;
                }
                chain.push(cur);
                cur = self.parent(cur).expect("member must have parent").0;
            }
            let mut d = dist[cur].expect("walk terminated at known distance");
            for &x in chain.iter().rev() {
                let (_, w) = self.parent(x).expect("member must have parent");
                d = dist_add(d, w);
                dist[x] = Some(d);
            }
        }
        dist
    }

    /// The unique tree path from `u` to `v` (both must be members), or `None`
    /// if either is not a member.
    pub fn tree_path(&self, u: NodeId, v: NodeId) -> Option<Path> {
        if !self.contains(u) || !self.contains(v) {
            return None;
        }
        // Collect ancestors of u (including u) with their order.
        let mut anc_order = vec![usize::MAX; self.parent_id.len()];
        let mut up_u = Vec::new();
        let mut cur = u;
        loop {
            anc_order[cur] = up_u.len();
            up_u.push(cur);
            match self.parent(cur) {
                Some((p, _)) => cur = p,
                None => break,
            }
        }
        // Walk up from v until we hit an ancestor of u (the LCA).
        let mut up_v = Vec::new();
        let mut cur = v;
        while anc_order[cur] == usize::MAX {
            up_v.push(cur);
            cur = self.parent(cur)?.0;
        }
        let lca = cur;
        let mut nodes: Vec<NodeId> = up_u[..=anc_order[lca]].to_vec();
        up_v.reverse();
        nodes.extend(up_v);
        Some(Path::new(nodes))
    }

    /// Weighted length of the unique tree path between two members.
    pub fn tree_distance(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        let path = self.tree_path(u, v)?;
        let mut total = 0;
        for w in path.nodes().windows(2) {
            let (a, b) = (w[0], w[1]);
            let weight = if self.parent(a).map(|(p, _)| p) == Some(b) {
                self.parent(a).map(|(_, w)| w)
            } else if self.parent(b).map(|(p, _)| p) == Some(a) {
                self.parent(b).map(|(_, w)| w)
            } else {
                None
            }?;
            total = dist_add(total, weight);
        }
        Some(total)
    }

    /// Checks that every tree edge is an edge of `g` with matching weight.
    ///
    /// Virtual trees (over hopset edges or contracted subtrees) will fail this
    /// check by design; the real cluster trees used for routing must pass it.
    pub fn is_subgraph_of(&self, g: &WeightedGraph) -> bool {
        (0..self.parent_id.len()).all(|v| match self.parent(v) {
            None => true,
            Some((p, w)) => {
                v < g.num_nodes() && p < g.num_nodes() && g.edge_weight(v, p) == Some(w)
            }
        })
    }

    /// Extracts the shortest-path tree of a [`ShortestPaths`] result as a
    /// [`RootedTree`] (only reachable vertices become members).
    ///
    /// [`ShortestPaths`]: crate::dijkstra::ShortestPaths
    pub fn from_shortest_paths(g: &WeightedGraph, sp: &crate::dijkstra::ShortestPaths) -> Self {
        let n = g.num_nodes();
        let mut parents = vec![None; n];
        for v in 0..n {
            if let Some(p) = sp.parent[v] {
                let w = g
                    .edge_weight(p, v)
                    .expect("shortest-path parent must be a neighbour");
                parents[v] = Some((p, w));
            }
        }
        RootedTree::from_parents(sp.source, parents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;

    /// Tree: 0 is root, children 1 (w=2) and 2 (w=3); 3 under 1 (w=1).
    fn small_tree() -> RootedTree {
        let mut t = RootedTree::new(5, 0);
        t.attach(1, 0, 2);
        t.attach(2, 0, 3);
        t.attach(3, 1, 1);
        t
    }

    #[test]
    fn membership_and_sizes() {
        let t = small_tree();
        assert!(t.contains(0) && t.contains(3));
        assert!(!t.contains(4));
        assert_eq!(t.len(), 4);
        assert_eq!(t.members(), vec![0, 1, 2, 3]);
        assert_eq!(t.host_size(), 5);
        assert!(!t.is_empty());
        assert!(RootedTree::new(3, 1).is_empty());
    }

    #[test]
    fn depths_and_root_distances() {
        let t = small_tree();
        assert_eq!(t.depths()[3], Some(2));
        assert_eq!(t.depths()[4], None);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.root_distances()[3], Some(3));
        assert_eq!(t.root_distances()[2], Some(3));
        assert_eq!(t.root_distances()[0], Some(0));
    }

    #[test]
    fn children_lists() {
        let t = small_tree();
        let ch = t.children();
        assert_eq!(ch[0], vec![1, 2]);
        assert_eq!(ch[1], vec![3]);
        assert!(ch[3].is_empty());
    }

    #[test]
    fn tree_path_goes_through_lca() {
        let t = small_tree();
        let p = t.tree_path(3, 2).unwrap();
        assert_eq!(p.nodes(), &[3, 1, 0, 2]);
        assert_eq!(t.tree_distance(3, 2), Some(6));
        assert_eq!(t.tree_distance(3, 3), Some(0));
        assert!(t.tree_path(3, 4).is_none());
    }

    #[test]
    fn set_parent_reparents_existing_member() {
        let mut t = small_tree();
        t.set_parent(3, 2, 5);
        assert_eq!(t.parent(3), Some((2, 5)));
        assert_eq!(t.root_distances()[3], Some(8));
    }

    #[test]
    #[should_panic(expected = "already in tree")]
    fn attach_rejects_existing_member() {
        let mut t = small_tree();
        t.attach(3, 0, 1);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn from_parents_rejects_cycles() {
        let parents = vec![None, Some((2, 1)), Some((1, 1))];
        let _ = RootedTree::from_parents(0, parents);
    }

    #[test]
    fn shortest_path_tree_extraction() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (0, 2, 5), (2, 3, 2)]).unwrap();
        let sp = dijkstra(&g, 0);
        let t = RootedTree::from_shortest_paths(&g, &sp);
        assert!(t.is_subgraph_of(&g));
        assert_eq!(t.root_distances()[3], Some(4));
        assert_eq!(t.parent(2), Some((1, 1)));
    }

    #[test]
    fn virtual_tree_is_not_subgraph() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1)]).unwrap();
        let mut t = RootedTree::new(3, 0);
        t.attach(2, 0, 7); // edge (0,2) does not exist in g
        assert!(!t.is_subgraph_of(&g));
    }
}
