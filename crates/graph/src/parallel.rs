//! Deterministic parallelism plumbing for the construction pipeline.
//!
//! The batched construction kernels (the Theorem-1 multi-source kernel, the
//! restricted cluster-growing kernel, the forest pushes and the Section-4
//! scheme assembly) all process *independent* work items — a source's output
//! column depends only on the graph and the shared threshold vector, never on
//! which chunk-mates it was batched with. That makes them parallelisable over
//! plain `std::thread::scope` workers **without changing a single output
//! bit**, provided two invariants hold:
//!
//! 1. **Chunk composition is preserved.** Work is split into *contiguous*
//!    spans whose boundaries are multiples of the kernel's chunk width
//!    ([`shard_spans`]), so each worker processes exactly the chunks the
//!    sequential sweep would have — same chunk-mates, same ragged tail.
//! 2. **Merge order is fixed.** Per-worker outputs (distance spans, forest
//!    shards, table spans) are concatenated in span order on the calling
//!    thread, reproducing the sequential append order exactly.
//!
//! There is no RNG in any kernel (tree-routing portal sampling is seeded per
//! centre, independent of processing order), no floating-point reduction
//! across shards, and every tie-break is by vertex id — so the parallel
//! build is bit-identical to the sequential one for every thread count. The
//! default `cargo test` pass enforces this (see
//! `tests/property_parallel_build.rs`); [`BuildStats`] carries the
//! per-thread work accounting that makes the sharding itself observable, so
//! a multi-core host can verify both the determinism *and* the speedup.

use std::ops::Range;

/// Thread-count knob of the parallel construction pipeline.
///
/// `threads` is an upper bound: a phase never spawns more workers than it has
/// aligned spans of work (see [`shard_spans`]), and `threads <= 1` runs the
/// exact sequential code path. The parallel output is bit-identical to the
/// sequential one in all cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Maximum number of worker threads per parallel phase (minimum 1).
    pub threads: usize,
}

impl Default for BuildOptions {
    /// Defaults to the host's available parallelism (1 when unknown).
    fn default() -> Self {
        BuildOptions {
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
    }
}

impl BuildOptions {
    /// Options capped at `threads` workers.
    pub fn new(threads: usize) -> Self {
        BuildOptions {
            threads: threads.max(1),
        }
    }

    /// The sequential pipeline (`threads = 1`) — the determinism oracle the
    /// parallel paths are tested against.
    pub fn sequential() -> Self {
        BuildOptions { threads: 1 }
    }
}

/// Per-thread work accounting of a parallel build, the observable footprint
/// of the sharding: entry `t` counts the work executed by worker slot `t`.
///
/// Across thread counts the *totals* are invariant — the same sources are
/// swept and the same members are produced however the work is sharded — and
/// the determinism suite asserts exactly that ([`Self::total_sources`] /
/// [`Self::total_members`] of an 8-thread build equal the sequential ones).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Sources (kernel columns, clusters, vertices) processed per worker slot.
    pub per_thread_sources: Vec<usize>,
    /// Output members (reached cells, cluster members, label entries)
    /// produced per worker slot.
    pub per_thread_members: Vec<usize>,
}

impl BuildStats {
    /// Accounting of a phase that ran on a single worker.
    pub fn single(sources: usize, members: usize) -> Self {
        BuildStats {
            per_thread_sources: vec![sources],
            per_thread_members: vec![members],
        }
    }

    /// Appends one worker slot's counts (call in span order).
    pub fn record(&mut self, sources: usize, members: usize) {
        self.per_thread_sources.push(sources);
        self.per_thread_members.push(members);
    }

    /// Number of worker slots that recorded work.
    pub fn threads_used(&self) -> usize {
        self.per_thread_sources.len()
    }

    /// Total sources processed (invariant across thread counts).
    pub fn total_sources(&self) -> usize {
        self.per_thread_sources.iter().sum()
    }

    /// Total members produced (invariant across thread counts).
    pub fn total_members(&self) -> usize {
        self.per_thread_members.iter().sum()
    }

    /// Folds another phase's accounting into this one, slot by slot (slot `t`
    /// accumulates the work of every phase's worker `t`; shorter sides are
    /// zero-padded). Totals add exactly.
    pub fn absorb(&mut self, other: &BuildStats) {
        if self.per_thread_sources.len() < other.per_thread_sources.len() {
            self.per_thread_sources
                .resize(other.per_thread_sources.len(), 0);
        }
        if self.per_thread_members.len() < other.per_thread_members.len() {
            self.per_thread_members
                .resize(other.per_thread_members.len(), 0);
        }
        for (a, &b) in self
            .per_thread_sources
            .iter_mut()
            .zip(&other.per_thread_sources)
        {
            *a += b;
        }
        for (a, &b) in self
            .per_thread_members
            .iter_mut()
            .zip(&other.per_thread_members)
        {
            *a += b;
        }
    }
}

/// Splits `0..len` into at most `workers` contiguous spans whose start
/// offsets are multiples of `align` — the sharding that keeps a chunked
/// kernel's chunk composition identical to the sequential sweep (invariant 1
/// of the module docs).
///
/// Every span except possibly the last has a length that is a multiple of
/// `align`; spans are returned in order and cover `0..len` exactly. With more
/// workers than aligned units the surplus workers simply get no span (the
/// "empty shard" degenerate case), and `len == 0` yields no spans at all.
pub fn shard_spans(len: usize, workers: usize, align: usize) -> Vec<Range<usize>> {
    let align = align.max(1);
    let workers = workers.max(1);
    if len == 0 {
        return Vec::new();
    }
    let units = len.div_ceil(align);
    let workers = workers.min(units);
    let units_per = units.div_ceil(workers);
    let step = units_per * align;
    let mut spans = Vec::with_capacity(workers);
    let mut start = 0;
    while start < len {
        let end = (start + step).min(len);
        spans.push(start..end);
        start = end;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spans_cover_exactly_and_respect_alignment() {
        for (len, workers, align) in [
            (0usize, 4usize, 64usize),
            (1, 8, 64),
            (64, 2, 64),
            (65, 2, 64),
            (1000, 8, 64),
            (1000, 3, 32),
            (129, 16, 64),
            (7, 3, 1),
            (10, 1, 4),
        ] {
            let spans = shard_spans(len, workers, align);
            assert!(spans.len() <= workers.max(1), "{len}/{workers}/{align}");
            let mut cursor = 0;
            for span in &spans {
                assert_eq!(span.start, cursor, "contiguous");
                assert_eq!(span.start % align, 0, "aligned start");
                assert!(!span.is_empty(), "no empty spans emitted");
                cursor = span.end;
            }
            assert_eq!(cursor, len, "full coverage for {len}/{workers}/{align}");
        }
        assert!(shard_spans(0, 4, 64).is_empty());
        // More workers than aligned units: surplus workers get nothing.
        assert_eq!(shard_spans(10, 8, 64), vec![0..10]);
        assert_eq!(shard_spans(128, 64, 64).len(), 2);
    }

    #[test]
    fn shard_spans_preserve_chunk_boundaries() {
        // Walking the spans chunk by chunk visits exactly the sequential
        // chunk sequence — the bit-identity invariant.
        let len = 300;
        let align = 64;
        let sequential: Vec<(usize, usize)> = (0..len)
            .step_by(align)
            .map(|s| (s, (s + align).min(len)))
            .collect();
        for workers in 1..10 {
            let mut chunks = Vec::new();
            for span in shard_spans(len, workers, align) {
                for s in span.clone().step_by(align) {
                    chunks.push((s, (s + align).min(span.end)));
                }
            }
            assert_eq!(chunks, sequential, "{workers} workers");
        }
    }

    #[test]
    fn stats_absorb_adds_slotwise_and_totals() {
        let mut a = BuildStats::single(10, 100);
        a.absorb(&BuildStats {
            per_thread_sources: vec![1, 2, 3],
            per_thread_members: vec![4, 5, 6],
        });
        assert_eq!(a.per_thread_sources, vec![11, 2, 3]);
        assert_eq!(a.per_thread_members, vec![104, 5, 6]);
        assert_eq!(a.total_sources(), 16);
        assert_eq!(a.total_members(), 115);
        assert_eq!(a.threads_used(), 3);
        let mut b = BuildStats::default();
        b.record(7, 8);
        b.record(9, 10);
        assert_eq!(b.total_sources(), 16);
        assert_eq!(b.total_members(), 18);
    }

    #[test]
    fn options_constructors() {
        assert_eq!(BuildOptions::sequential().threads, 1);
        assert_eq!(BuildOptions::new(0).threads, 1);
        assert_eq!(BuildOptions::new(8).threads, 8);
        assert!(BuildOptions::default().threads >= 1);
    }
}
