//! Exact shortest paths (Dijkstra) — the ground truth for all stretch
//! measurements in the workspace.
//!
//! The paper measures stretch against `d_G(u, v)`, the exact shortest-path
//! metric; every benchmark and test in this repository obtains `d_G` from the
//! functions in this module.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::csr::CsrGraph;
use crate::graph::WeightedGraph;
use crate::path::Path;
use crate::types::{dist_add, is_finite, Dist, NodeId, INFINITY};

/// The result of a single-source shortest-path computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPaths {
    /// The source vertex.
    pub source: NodeId,
    /// `dist[v]` is `d_G(source, v)`, or [`INFINITY`] if unreachable.
    pub dist: Vec<Dist>,
    /// `parent[v]` is the predecessor of `v` on a shortest path from the
    /// source, or `None` for the source itself and unreachable vertices.
    pub parent: Vec<Option<NodeId>>,
    /// `hops[v]` is the number of edges on the produced shortest path to `v`.
    pub hops: Vec<usize>,
}

impl ShortestPaths {
    /// Reconstructs the shortest path from the source to `target`, or `None`
    /// if `target` is unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Path> {
        if !is_finite(self.dist[target]) {
            return None;
        }
        let mut nodes = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent[cur] {
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        debug_assert_eq!(nodes[0], self.source);
        Some(Path::new(nodes))
    }
}

/// Runs Dijkstra's algorithm from `source`.
///
/// Ties between equal-length paths are broken towards fewer hops and then
/// towards smaller parent id, which makes the produced shortest-path tree
/// deterministic (the paper assumes unique shortest paths; deterministic tie
/// breaking gives us a canonical choice).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn dijkstra(g: &WeightedGraph, source: NodeId) -> ShortestPaths {
    dijkstra_csr(&CsrGraph::from_graph(g), source)
}

/// [`dijkstra`] over a prebuilt [`CsrGraph`] view.
///
/// Callers that run Dijkstra from many sources on the same graph (all-pairs
/// ground truth, hopset pivots, cluster growing) should build the CSR once
/// and call this directly.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn dijkstra_csr(csr: &CsrGraph, source: NodeId) -> ShortestPaths {
    assert!(source < csr.num_nodes(), "source {source} out of range");
    let n = csr.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![None; n];
    let mut hops = vec![usize::MAX; n];
    let mut heap: BinaryHeap<Reverse<(Dist, usize, NodeId)>> = BinaryHeap::new();
    dist[source] = 0;
    hops[source] = 0;
    heap.push(Reverse((0, 0, source)));
    while let Some(Reverse((d, h, u))) = heap.pop() {
        if d > dist[u] || (d == dist[u] && h > hops[u]) {
            continue;
        }
        let (targets, weights) = csr.arcs(u);
        for (&v, &w) in targets.iter().zip(weights) {
            let nd = dist_add(d, w);
            let nh = h + 1;
            let better = nd < dist[v]
                || (nd == dist[v] && nh < hops[v])
                || (nd == dist[v] && nh == hops[v] && parent[v].is_some_and(|p| u < p));
            if better {
                dist[v] = nd;
                hops[v] = nh;
                parent[v] = Some(u);
                heap.push(Reverse((nd, nh, v)));
            }
        }
    }
    for (v, h) in hops.iter_mut().enumerate() {
        if !is_finite(dist[v]) {
            *h = usize::MAX;
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
        hops,
    }
}

/// Computes the distance from every vertex to the nearest vertex of `sources`
/// (a "virtual super-source" Dijkstra), together with which source is nearest.
///
/// This is exactly the quantity `d_G(v, A_i)` used throughout Section 3 of the
/// paper, plus the pivot realising it.
///
/// Returns `(dist, nearest)` where `nearest[v]` is the closest source to `v`
/// (ties broken by smaller source id) or `None` if no source is reachable.
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn multi_source_dijkstra(
    g: &WeightedGraph,
    sources: &[NodeId],
) -> (Vec<Dist>, Vec<Option<NodeId>>) {
    multi_source_dijkstra_csr(&CsrGraph::from_graph(g), sources)
}

/// [`multi_source_dijkstra`] over a prebuilt [`CsrGraph`] view.
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn multi_source_dijkstra_csr(
    csr: &CsrGraph,
    sources: &[NodeId],
) -> (Vec<Dist>, Vec<Option<NodeId>>) {
    let n = csr.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut nearest: Vec<Option<NodeId>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId, NodeId)>> = BinaryHeap::new();
    for &s in sources {
        assert!(s < n, "source {s} out of range");
        if dist[s] > 0 || nearest[s].is_none_or(|x| s < x) {
            dist[s] = 0;
            nearest[s] = Some(s);
            heap.push(Reverse((0, s, s)));
        }
    }
    while let Some(Reverse((d, src, u))) = heap.pop() {
        if d > dist[u] || (d == dist[u] && nearest[u].is_some_and(|x| x < src)) {
            continue;
        }
        let (targets, weights) = csr.arcs(u);
        for (&v, &w) in targets.iter().zip(weights) {
            let nd = dist_add(d, w);
            let better = nd < dist[v] || (nd == dist[v] && nearest[v].is_none_or(|x| src < x));
            if better {
                dist[v] = nd;
                nearest[v] = Some(src);
                heap.push(Reverse((nd, src, v)));
            }
        }
    }
    (dist, nearest)
}

/// All-pairs shortest distances, computed by running Dijkstra from every
/// vertex over one shared CSR view. Intended for ground-truth computation on
/// benchmark-sized graphs.
pub fn all_pairs_dijkstra(g: &WeightedGraph) -> Vec<Vec<Dist>> {
    let csr = CsrGraph::from_graph(g);
    g.nodes().map(|s| dijkstra_csr(&csr, s).dist).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedGraph {
        // 0 --1-- 1 --1-- 2
        //  \             /
        //   \----10-----/
        // 3 isolated
        WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (0, 2, 10)]).unwrap()
    }

    #[test]
    fn dijkstra_finds_shortest_distances() {
        let g = sample();
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist, vec![0, 1, 2, INFINITY]);
    }

    #[test]
    fn dijkstra_parent_pointers_reconstruct_paths() {
        let g = sample();
        let sp = dijkstra(&g, 0);
        let p = sp.path_to(2).unwrap();
        assert_eq!(p.nodes(), &[0, 1, 2]);
        assert_eq!(p.length_in(&g), Some(2));
        assert!(sp.path_to(3).is_none());
        assert_eq!(sp.path_to(0).unwrap().nodes(), &[0]);
    }

    #[test]
    fn dijkstra_hop_counts_match_paths() {
        let g = sample();
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.hops[0], 0);
        assert_eq!(sp.hops[1], 1);
        assert_eq!(sp.hops[2], 2);
        assert_eq!(sp.hops[3], usize::MAX);
    }

    #[test]
    fn multi_source_matches_minimum_over_sources() {
        let g = sample();
        let (dist, nearest) = multi_source_dijkstra(&g, &[0, 2]);
        assert_eq!(dist, vec![0, 1, 0, INFINITY]);
        assert_eq!(nearest[0], Some(0));
        assert_eq!(nearest[2], Some(2));
        assert_eq!(nearest[3], None);
        // Vertex 1 is at distance 1 from both; the smaller source id wins.
        assert_eq!(nearest[1], Some(0));
    }

    #[test]
    fn multi_source_with_empty_source_set() {
        let g = sample();
        let (dist, nearest) = multi_source_dijkstra(&g, &[]);
        assert!(dist.iter().all(|&d| d == INFINITY));
        assert!(nearest.iter().all(Option::is_none));
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let g = sample();
        let apsp = all_pairs_dijkstra(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(apsp[u][v], apsp[v][u]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dijkstra_panics_on_bad_source() {
        let g = sample();
        let _ = dijkstra(&g, 10);
    }
}
