//! Structural properties of graphs used to characterise benchmark workloads.
//!
//! The benchmark harness reports, next to every measurement, the properties of
//! the input graph that the paper's bounds are parameterised by: `n`, `m`, the
//! hop-diameter `D`, the shortest-path diameter `S`, and weight/degree
//! statistics.

use crate::bellman_ford::shortest_path_diameter;
use crate::bfs::{hop_diameter, hop_diameter_estimate, is_connected};
use crate::graph::WeightedGraph;

/// A summary of the structural properties of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphProperties {
    /// Number of vertices `n`.
    pub n: usize,
    /// Number of edges `m`.
    pub m: usize,
    /// Whether the graph is connected.
    pub connected: bool,
    /// Hop-diameter `D` (`usize::MAX` if disconnected).
    pub hop_diameter: usize,
    /// Shortest-path diameter `S` (`0` if fewer than two vertices).
    pub shortest_path_diameter: usize,
    /// Minimum vertex degree.
    pub min_degree: usize,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Maximum edge weight.
    pub max_weight: u64,
}

impl GraphProperties {
    /// Computes all properties exactly. Quadratic in `n`; intended for the
    /// moderate sizes used by tests and the harness.
    pub fn compute(g: &WeightedGraph) -> Self {
        GraphProperties {
            n: g.num_nodes(),
            m: g.num_edges(),
            connected: is_connected(g),
            hop_diameter: hop_diameter(g),
            shortest_path_diameter: shortest_path_diameter(g),
            min_degree: g.nodes().map(|v| g.degree(v)).min().unwrap_or(0),
            max_degree: g.max_degree(),
            max_weight: g.max_weight(),
        }
    }

    /// Computes the cheap properties exactly and estimates the hop-diameter
    /// with a double BFS sweep; the shortest-path diameter is skipped (set to
    /// 0). Used for larger benchmark graphs.
    pub fn compute_fast(g: &WeightedGraph) -> Self {
        GraphProperties {
            n: g.num_nodes(),
            m: g.num_edges(),
            connected: is_connected(g),
            hop_diameter: hop_diameter_estimate(g),
            shortest_path_diameter: 0,
            min_degree: g.nodes().map(|v| g.degree(v)).min().unwrap_or(0),
            max_degree: g.max_degree(),
            max_weight: g.max_weight(),
        }
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.m as f64 / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi_connected, path, GeneratorConfig};

    #[test]
    fn properties_of_a_path() {
        let g = path(&GeneratorConfig::new(6, 3));
        let p = GraphProperties::compute(&g);
        assert_eq!(p.n, 6);
        assert_eq!(p.m, 5);
        assert!(p.connected);
        assert_eq!(p.hop_diameter, 5);
        assert_eq!(p.shortest_path_diameter, 5);
        assert_eq!(p.min_degree, 1);
        assert_eq!(p.max_degree, 2);
        assert!((p.avg_degree() - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn fast_properties_agree_on_easy_graphs() {
        let g = path(&GeneratorConfig::new(9, 3));
        let exact = GraphProperties::compute(&g);
        let fast = GraphProperties::compute_fast(&g);
        assert_eq!(exact.hop_diameter, fast.hop_diameter);
        assert_eq!(exact.n, fast.n);
        assert_eq!(exact.m, fast.m);
    }

    #[test]
    fn fast_estimate_bounded_by_exact_diameter() {
        let g = erdos_renyi_connected(&GeneratorConfig::new(50, 11), 0.08);
        let exact = GraphProperties::compute(&g);
        let fast = GraphProperties::compute_fast(&g);
        assert!(fast.hop_diameter <= exact.hop_diameter);
        assert!(fast.hop_diameter * 2 >= exact.hop_diameter);
    }

    #[test]
    fn empty_graph_properties() {
        let p = GraphProperties::compute(&WeightedGraph::new(0));
        assert_eq!(p.n, 0);
        assert_eq!(p.avg_degree(), 0.0);
        assert!(p.connected);
    }

    #[test]
    fn s_at_least_d_on_weighted_graphs() {
        // The paper notes D <= S always.
        let g = erdos_renyi_connected(&GeneratorConfig::new(40, 9).with_weights(1, 1000), 0.1);
        let p = GraphProperties::compute(&g);
        assert!(p.shortest_path_diameter >= p.hop_diameter);
    }
}
